//! Environments `ρ ∈ Env = Ide → V` (Figure 2, *Alg*).
//!
//! A persistent association structure with two kinds of frames:
//!
//! * plain frames binding one identifier to a value;
//! * **rec frames** realizing the paper's `letrec` equation
//!   `ρ' = ρ[f ↦ (λv. E⟦e₁⟧ ρ'[x↦v]) in Fun]` without reference cycles:
//!   the frame stores the *syntax* of each lambda-valued binding, and a
//!   lookup of `f` constructs the closure with the environment rooted at
//!   that very frame. Since the closure's environment reaches the rec
//!   frame again, recursion unfolds exactly as the fixpoint does — and no
//!   `RefCell` knot is needed (the `repro_why` concern of the brief).
//!
//! At the bottom of every environment sits the initial environment of
//! primitives (resolved by name, so it costs nothing to construct).
//!
//! # Lookup fast paths
//!
//! Three lookup disciplines coexist, fastest first:
//!
//! * [`Env::lookup_addr`] — follows a [`VarAddr`] computed by the static
//!   resolver (`crate::resolve`): pointer hops and an indexed read, **zero
//!   name comparisons** of any kind;
//! * [`Env::lookup`] — walks the chain comparing interned symbols (one
//!   `u32` compare per frame) and finishes with a hashed primitive lookup;
//!   used for occurrences the resolver could not address (free variables
//!   of dynamically-shaped `letrec` value bindings, REPL-style
//!   environments) and for monitors reading variables by name;
//! * [`Env::lookup_str`] — re-creates the pre-interning behaviour (full
//!   string comparison per frame, linear primitive scan) and exists only
//!   so the `ablation_environments` benchmark can measure what the fast
//!   paths buy.

use crate::prims::Prim;
use crate::value::{Closure, Value};
use monsem_syntax::{Binding, Expr, Ident, Lambda, VarAddr};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

#[derive(Debug)]
pub(crate) enum Node {
    /// `ρ[x ↦ v]`
    Frame {
        name: Ident,
        value: Value,
        parent: Env,
    },
    /// One frame per `letrec`, holding every lambda-valued binding.
    Rec {
        bindings: Arc<Vec<(Ident, Arc<Lambda>)>>,
        parent: Env,
    },
}

/// A persistent environment. Cloning is O(1).
///
/// ```
/// use monsem_core::{Env, Value};
/// use monsem_syntax::Ident;
/// let outer = Env::empty().extend(Ident::new("x"), Value::Int(1));
/// let inner = outer.extend(Ident::new("x"), Value::Int(2));
/// assert_eq!(inner.lookup(&Ident::new("x")), Some(Value::Int(2)));
/// assert_eq!(outer.lookup(&Ident::new("x")), Some(Value::Int(1))); // persistent
/// assert!(matches!(outer.lookup(&Ident::new("+")), Some(Value::Prim(..))));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Env(pub(crate) Option<Rc<Node>>);

impl Env {
    /// The initial environment: primitives only.
    pub fn empty() -> Env {
        Env(None)
    }

    /// `ρ[name ↦ value]`.
    pub fn extend(&self, name: Ident, value: Value) -> Env {
        Env(Some(Rc::new(Node::Frame {
            name,
            value,
            parent: self.clone(),
        })))
    }

    /// Pushes a rec frame for the lambda-valued bindings of a `letrec`.
    ///
    /// Looking any of these names up yields a closure whose environment is
    /// rooted at this frame, tying the recursive knot.
    pub fn extend_rec(&self, bindings: Arc<Vec<(Ident, Arc<Lambda>)>>) -> Env {
        Env(Some(Rc::new(Node::Rec {
            bindings,
            parent: self.clone(),
        })))
    }

    /// Looks `name` up, falling back to the primitive table.
    ///
    /// Frame comparisons are interned-symbol compares (one `u32` each); the
    /// primitive fallback is a hashed symbol lookup.
    pub fn lookup(&self, name: &Ident) -> Option<Value> {
        let mut cur = self;
        loop {
            match cur.0.as_deref() {
                Some(Node::Frame {
                    name: n,
                    value,
                    parent,
                }) => {
                    if n == name {
                        return Some(value.clone());
                    }
                    cur = parent;
                }
                Some(Node::Rec { bindings, parent }) => {
                    if let Some(slot) = bindings.iter().position(|(n, _)| n == name) {
                        return Some(cur.rec_closure(bindings, slot));
                    }
                    cur = parent;
                }
                None => return Prim::by_ident(name).map(Value::prim),
            }
        }
    }

    /// Follows a lexical address computed by `crate::resolve`: `depth`
    /// pointer hops, then an indexed read. No name comparison of any kind
    /// happens on this path.
    ///
    /// # Panics
    ///
    /// If the address does not fit this environment. The resolver only
    /// emits addresses for binders it tracked through every engine's
    /// uniform frame discipline, so a panic here is a resolver bug, not a
    /// program error.
    pub fn lookup_addr(&self, addr: &VarAddr) -> Value {
        let (depth, slot) = match addr {
            VarAddr::Frame { depth } => (*depth, None),
            VarAddr::Rec { depth, slot } => (*depth, Some(*slot as usize)),
            // Statically proved to live below every frame: one indexed
            // read into the primitive table, no chain walk at all.
            VarAddr::Base { slot } => return Value::prim(Prim::ALL[*slot as usize].1),
        };
        let mut cur = self;
        for _ in 0..depth {
            cur = match cur.0.as_deref() {
                Some(Node::Frame { parent, .. }) | Some(Node::Rec { parent, .. }) => parent,
                None => panic!("lexical address escapes the environment"),
            };
        }
        match (cur.0.as_deref(), slot) {
            (Some(Node::Frame { value, .. }), None) => value.clone(),
            (Some(Node::Rec { bindings, .. }), Some(slot)) => cur.rec_closure(bindings, slot),
            _ => panic!("lexical address shape does not match the environment"),
        }
    }

    /// The closure for slot `slot` of the rec frame at `self`, rooted at
    /// this very frame (the knot of the `letrec` fixpoint).
    fn rec_closure(&self, bindings: &[(Ident, Arc<Lambda>)], slot: usize) -> Value {
        let (_, lam) = &bindings[slot];
        Value::Closure(Rc::new(Closure {
            param: lam.param.clone(),
            body: lam.body.clone(),
            env: self.clone(),
        }))
    }

    /// Pre-interning lookup, kept verbatim for the environments ablation:
    /// a full string comparison per frame and a linear scan of the
    /// primitive table at the bottom. Semantically identical to
    /// [`Env::lookup`]; never use it outside benchmarks.
    pub fn lookup_str(&self, name: &Ident) -> Option<Value> {
        let text = name.as_str();
        let mut cur = self;
        loop {
            match cur.0.as_deref() {
                Some(Node::Frame {
                    name: n,
                    value,
                    parent,
                }) => {
                    if n.as_str() == text {
                        return Some(value.clone());
                    }
                    cur = parent;
                }
                Some(Node::Rec { bindings, parent }) => {
                    if let Some(slot) = bindings.iter().position(|(n, _)| n.as_str() == text) {
                        return Some(cur.rec_closure(bindings, slot));
                    }
                    cur = parent;
                }
                None => return Prim::by_name(text).map(Value::prim),
            }
        }
    }

    /// Depth of the environment chain (frames, not bindings) — useful for
    /// diagnostics and tests.
    pub fn depth(&self) -> usize {
        let mut n = 0;
        let mut cur = self;
        while let Some(node) = cur.0.as_deref() {
            n += 1;
            cur = match node {
                Node::Frame { parent, .. } | Node::Rec { parent, .. } => parent,
            };
        }
        n
    }
}

impl Drop for Env {
    /// Deep environment chains are freed iteratively, like list spines in
    /// `value.rs` (`Tail`'s `Drop`). Without this, dropping the last clone
    /// of a ~10⁶-frame environment — or of a closure whose captured
    /// environment captures another closure, and so on — recurses once per
    /// frame and overflows the stack.
    ///
    /// The worklist also unlinks uniquely-owned closure environments and
    /// pending-thunk environments reachable from frame values, because
    /// those are exactly the edges by which an `Env` chain re-enters
    /// another `Env` chain.
    fn drop(&mut self) {
        // Fast path: the empty environment, or a chain still shared with
        // another clone — either way nothing is actually freed here.
        let Some(rc) = self.0.take() else { return };
        if Rc::strong_count(&rc) > 1 {
            return;
        }
        let mut work: Vec<Rc<Node>> = vec![rc];
        while let Some(rc) = work.pop() {
            let Ok(node) = Rc::try_unwrap(rc) else {
                continue;
            };
            let (value, mut parent) = match node {
                Node::Frame { value, parent, .. } => (Some(value), parent),
                Node::Rec { parent, .. } => (None, parent),
            };
            if let Some(p) = parent.0.take() {
                work.push(p);
            }
            match value {
                Some(Value::Closure(c)) => {
                    if let Ok(mut c) = Rc::try_unwrap(c) {
                        if let Some(p) = c.env.0.take() {
                            work.push(p);
                        }
                    }
                }
                Some(Value::Thunk(t)) => {
                    if let Ok(cell) = Rc::try_unwrap(t) {
                        if let crate::value::ThunkState::Pending { mut env, .. } = cell.into_inner()
                        {
                            if let Some(p) = env.0.take() {
                                work.push(p);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

impl fmt::Display for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        let mut cur = self;
        let mut first = true;
        while let Some(node) = cur.0.as_deref() {
            match node {
                Node::Frame {
                    name,
                    value,
                    parent,
                } => {
                    if !first {
                        f.write_str(", ")?;
                    }
                    write!(f, "{name} ↦ {value}")?;
                    first = false;
                    cur = parent;
                }
                Node::Rec { bindings, parent } => {
                    for (name, _) in bindings.iter() {
                        if !first {
                            f.write_str(", ")?;
                        }
                        write!(f, "{name} ↦ <rec>")?;
                        first = false;
                    }
                    cur = parent;
                }
            }
        }
        f.write_str("]")
    }
}

/// Extracts the lambda under any annotations, for rec-frame eligibility.
/// Annotations wrapped directly around the lambda are *also* kept by the
/// caller (evaluated once at binding time); recursion goes through the
/// stripped lambda.
pub fn lambda_of(e: &Expr) -> Option<Arc<Lambda>> {
    match e.strip_annotations() {
        Expr::Lambda(l) => Some(Arc::new(l.clone())),
        _ => None,
    }
}

/// The evaluation plan every engine uses for `letrec f₁ = e₁ and … in e`
/// (the paper's single-lambda form generalized to the mixed bindings its
/// §8 examples use):
///
/// 1. non-lambda bindings are evaluated in source order (each sees the
///    previous ones, **not** the group's functions);
/// 2. the rec frame for the (stripped) lambda bindings is pushed — so
///    recursive closures *do* see the value bindings, matching the
///    intuition that `letrec base = 10 and f = λx. … base …` works;
/// 3. lambda bindings that carry annotations are then evaluated once (the
///    annotation is a monitoring event that must fire), shadowing their
///    rec-frame entry with the rec-frame closure (see [`LetrecPlan::bind`]);
/// 4. the body runs.
#[derive(Debug)]
pub struct LetrecPlan {
    /// Bindings to evaluate: values first (source order), then annotated
    /// lambda bindings (source order).
    pub ordered: Vec<Binding>,
    /// How many of `ordered` are value bindings — the rec frame is pushed
    /// after exactly this many bindings have been evaluated.
    pub values: usize,
    /// The rec frame contents (stripped lambdas), possibly empty.
    pub rec: Arc<Vec<(Ident, Arc<Lambda>)>>,
}

impl LetrecPlan {
    /// Computes the plan for a binding group.
    pub fn of(bindings: &[Binding]) -> LetrecPlan {
        let mut ordered: Vec<Binding> = Vec::new();
        let mut annotated: Vec<Binding> = Vec::new();
        let mut rec: Vec<(Ident, Arc<Lambda>)> = Vec::new();
        for b in bindings {
            match lambda_of(&b.value) {
                Some(l) => {
                    rec.push((b.name.clone(), l));
                    if matches!(&*b.value, Expr::Ann(..)) {
                        annotated.push(b.clone());
                    }
                }
                None => ordered.push(b.clone()),
            }
        }
        let values = ordered.len();
        ordered.extend(annotated);
        LetrecPlan {
            ordered,
            values,
            rec: Arc::new(rec),
        }
    }

    /// Pushes the rec frame if the group has any functions.
    pub fn push_rec(&self, env: &Env) -> Env {
        if self.rec.is_empty() {
            env.clone()
        } else {
            env.extend_rec(self.rec.clone())
        }
    }

    /// Extends `env` with the `index`-th planned binding, given the value
    /// its right-hand side evaluated to.
    ///
    /// Value bindings (`index < values`) bind that value. Annotated lambda
    /// bindings bind the **rec-frame closure** instead: evaluating the
    /// right-hand side existed only to fire the annotation's monitoring
    /// events, and the rec closure is the same function rooted at the one
    /// environment shape the static resolver predicts for the group's
    /// bodies. (Before lexical addressing the shadow frame held the freshly
    /// evaluated closure — an *identical* closure over a slightly taller
    /// environment; observable behaviour is unchanged, but a single body
    /// can now only run in a single frame layout.)
    pub fn bind(&self, env: &Env, index: usize, value: Value) -> Env {
        let name = &self.ordered[index].name;
        if index < self.values {
            return env.extend(name.clone(), value);
        }
        let rec_bound = env.lookup(name).unwrap_or(value);
        env.extend(name.clone(), rec_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_syntax::parse_expr;

    #[test]
    fn lookup_finds_innermost_binding() {
        let env = Env::empty()
            .extend(Ident::new("x"), Value::Int(1))
            .extend(Ident::new("x"), Value::Int(2));
        assert_eq!(env.lookup(&Ident::new("x")), Some(Value::Int(2)));
    }

    #[test]
    fn primitives_resolve_at_the_base() {
        let env = Env::empty();
        assert!(matches!(
            env.lookup(&Ident::new("+")),
            Some(Value::Prim(Prim::Add, _))
        ));
        assert_eq!(env.lookup(&Ident::new("no-such")), None);
    }

    #[test]
    fn user_bindings_shadow_primitives() {
        let env = Env::empty().extend(Ident::new("+"), Value::Int(9));
        assert_eq!(env.lookup(&Ident::new("+")), Some(Value::Int(9)));
    }

    #[test]
    fn rec_frame_ties_the_knot() {
        // letrec f = lambda x. f — looking f up must yield a closure whose
        // environment again resolves f.
        let lam = match parse_expr("lambda x. f").unwrap() {
            Expr::Lambda(l) => Arc::new(l),
            _ => unreachable!(),
        };
        let env = Env::empty().extend_rec(Arc::new(vec![(Ident::new("f"), lam)]));
        let v = env.lookup(&Ident::new("f")).unwrap();
        match v {
            Value::Closure(c) => {
                let inner = c.env.lookup(&Ident::new("f")).unwrap();
                assert!(matches!(inner, Value::Closure(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_shows_bindings_in_scope_order() {
        let env = Env::empty()
            .extend(Ident::new("x"), Value::Int(1))
            .extend(Ident::new("y"), Value::Int(2));
        assert_eq!(env.to_string(), "[y ↦ 2, x ↦ 1]");
    }

    /// A million-frame chain must free without recursing (each frame used
    /// to add one stack frame to the drop, overflowing around ~10⁵).
    #[test]
    fn deep_frame_chain_drops_iteratively() {
        let mut env = Env::empty();
        for i in 0..1_000_000u32 {
            env = env.extend(Ident::new("x"), Value::Int(i as i64));
        }
        assert_eq!(env.depth(), 1_000_000);
        drop(env);
    }

    /// Rec frames interleaved with plain frames take the same worklist.
    #[test]
    fn deep_rec_chain_drops_iteratively() {
        let lam = match parse_expr("lambda x. x").unwrap() {
            Expr::Lambda(l) => Arc::new(l),
            _ => unreachable!(),
        };
        let bindings = Arc::new(vec![(Ident::new("f"), lam)]);
        let mut env = Env::empty();
        for _ in 0..500_000 {
            env = env.extend_rec(bindings.clone());
            env = env.extend(Ident::new("y"), Value::Unit);
        }
        drop(env);
    }

    /// Closure chains: frame → closure → env → frame → closure → … This
    /// re-enters `Env` through `Closure::env`, which the worklist unlinks.
    #[test]
    fn deep_closure_chain_drops_iteratively() {
        let body = match parse_expr("lambda x. x").unwrap() {
            Expr::Lambda(l) => l.body,
            _ => unreachable!(),
        };
        let mut v = Value::Unit;
        for _ in 0..500_000 {
            let env = Env::empty().extend(Ident::new("f"), v);
            v = Value::Closure(Rc::new(Closure {
                param: Ident::new("x"),
                body: body.clone(),
                env,
            }));
        }
        drop(v);
    }

    /// Pending thunks capture environments too (lazy module); their chains
    /// must also free without recursion.
    #[test]
    fn deep_thunk_chain_drops_iteratively() {
        use crate::value::ThunkState;
        use std::cell::RefCell;
        let expr = Arc::new(parse_expr("1 + 2").unwrap());
        let mut v = Value::Unit;
        for _ in 0..500_000 {
            let env = Env::empty().extend(Ident::new("t"), v);
            v = Value::Thunk(Rc::new(RefCell::new(ThunkState::Pending {
                expr: expr.clone(),
                env,
            })));
        }
        drop(v);
    }

    #[test]
    fn shared_chains_survive_a_clone_dropping() {
        let mut env = Env::empty();
        for i in 0..1000 {
            env = env.extend(Ident::new("x"), Value::Int(i));
        }
        let keep = env.clone();
        drop(env);
        assert_eq!(keep.lookup(&Ident::new("x")), Some(Value::Int(999)));
        assert_eq!(keep.depth(), 1000);
    }

    #[test]
    fn lambda_of_sees_through_annotations() {
        let e = parse_expr("{p}:lambda x. x").unwrap();
        assert!(lambda_of(&e).is_some());
        assert!(lambda_of(&parse_expr("1 + 2").unwrap()).is_none());
    }
}
