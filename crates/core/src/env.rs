//! Environments `ρ ∈ Env = Ide → V` (Figure 2, *Alg*).
//!
//! A persistent association structure with two kinds of frames:
//!
//! * plain frames binding one identifier to a value;
//! * **rec frames** realizing the paper's `letrec` equation
//!   `ρ' = ρ[f ↦ (λv. E⟦e₁⟧ ρ'[x↦v]) in Fun]` without reference cycles:
//!   the frame stores the *syntax* of each lambda-valued binding, and a
//!   lookup of `f` constructs the closure with the environment rooted at
//!   that very frame. Since the closure's environment reaches the rec
//!   frame again, recursion unfolds exactly as the fixpoint does — and no
//!   `RefCell` knot is needed (the `repro_why` concern of the brief).
//!
//! At the bottom of every environment sits the initial environment of
//! primitives (resolved by name, so it costs nothing to construct).

use crate::prims::Prim;
use crate::value::{Closure, Value};
use monsem_syntax::{Binding, Expr, Ident, Lambda};
use std::fmt;
use std::rc::Rc;

#[derive(Debug)]
enum Node {
    /// `ρ[x ↦ v]`
    Frame { name: Ident, value: Value, parent: Env },
    /// One frame per `letrec`, holding every lambda-valued binding.
    Rec { bindings: Rc<Vec<(Ident, Rc<Lambda>)>>, parent: Env },
}

/// A persistent environment. Cloning is O(1).
///
/// ```
/// use monsem_core::{Env, Value};
/// use monsem_syntax::Ident;
/// let outer = Env::empty().extend(Ident::new("x"), Value::Int(1));
/// let inner = outer.extend(Ident::new("x"), Value::Int(2));
/// assert_eq!(inner.lookup(&Ident::new("x")), Some(Value::Int(2)));
/// assert_eq!(outer.lookup(&Ident::new("x")), Some(Value::Int(1))); // persistent
/// assert!(matches!(outer.lookup(&Ident::new("+")), Some(Value::Prim(..))));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Env(Option<Rc<Node>>);

impl Env {
    /// The initial environment: primitives only.
    pub fn empty() -> Env {
        Env(None)
    }

    /// `ρ[name ↦ value]`.
    pub fn extend(&self, name: Ident, value: Value) -> Env {
        Env(Some(Rc::new(Node::Frame { name, value, parent: self.clone() })))
    }

    /// Pushes a rec frame for the lambda-valued bindings of a `letrec`.
    ///
    /// Looking any of these names up yields a closure whose environment is
    /// rooted at this frame, tying the recursive knot.
    pub fn extend_rec(&self, bindings: Rc<Vec<(Ident, Rc<Lambda>)>>) -> Env {
        Env(Some(Rc::new(Node::Rec { bindings, parent: self.clone() })))
    }

    /// Looks `name` up, falling back to the primitive table.
    pub fn lookup(&self, name: &Ident) -> Option<Value> {
        let mut cur = self;
        loop {
            match cur.0.as_deref() {
                Some(Node::Frame { name: n, value, parent }) => {
                    if n == name {
                        return Some(value.clone());
                    }
                    cur = parent;
                }
                Some(Node::Rec { bindings, parent }) => {
                    if let Some((_, lam)) = bindings.iter().find(|(n, _)| n == name) {
                        return Some(Value::Closure(Rc::new(Closure {
                            param: lam.param.clone(),
                            body: lam.body.clone(),
                            env: cur.clone(),
                        })));
                    }
                    cur = parent;
                }
                None => return Prim::by_name(name.as_str()).map(Value::prim),
            }
        }
    }

    /// Depth of the environment chain (frames, not bindings) — useful for
    /// diagnostics and tests.
    pub fn depth(&self) -> usize {
        let mut n = 0;
        let mut cur = self;
        while let Some(node) = cur.0.as_deref() {
            n += 1;
            cur = match node {
                Node::Frame { parent, .. } | Node::Rec { parent, .. } => parent,
            };
        }
        n
    }
}

impl fmt::Display for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        let mut cur = self;
        let mut first = true;
        while let Some(node) = cur.0.as_deref() {
            match node {
                Node::Frame { name, value, parent } => {
                    if !first {
                        f.write_str(", ")?;
                    }
                    write!(f, "{name} ↦ {value}")?;
                    first = false;
                    cur = parent;
                }
                Node::Rec { bindings, parent } => {
                    for (name, _) in bindings.iter() {
                        if !first {
                            f.write_str(", ")?;
                        }
                        write!(f, "{name} ↦ <rec>")?;
                        first = false;
                    }
                    cur = parent;
                }
            }
        }
        f.write_str("]")
    }
}

/// Extracts the lambda under any annotations, for rec-frame eligibility.
/// Annotations wrapped directly around the lambda are *also* kept by the
/// caller (evaluated once at binding time); recursion goes through the
/// stripped lambda.
pub fn lambda_of(e: &Expr) -> Option<Rc<Lambda>> {
    match e.strip_annotations() {
        Expr::Lambda(l) => Some(Rc::new(l.clone())),
        _ => None,
    }
}

/// The evaluation plan every engine uses for `letrec f₁ = e₁ and … in e`
/// (the paper's single-lambda form generalized to the mixed bindings its
/// §8 examples use):
///
/// 1. non-lambda bindings are evaluated in source order (each sees the
///    previous ones, **not** the group's functions);
/// 2. the rec frame for the (stripped) lambda bindings is pushed — so
///    recursive closures *do* see the value bindings, matching the
///    intuition that `letrec base = 10 and f = λx. … base …` works;
/// 3. lambda bindings that carry annotations are then evaluated once (the
///    annotation is a monitoring event that must fire), shadowing their
///    rec-frame entry with an identical closure;
/// 4. the body runs.
#[derive(Debug)]
pub struct LetrecPlan {
    /// Bindings to evaluate: values first (source order), then annotated
    /// lambda bindings (source order).
    pub ordered: Vec<Binding>,
    /// How many of `ordered` are value bindings — the rec frame is pushed
    /// after exactly this many bindings have been evaluated.
    pub values: usize,
    /// The rec frame contents (stripped lambdas), possibly empty.
    pub rec: Rc<Vec<(Ident, Rc<Lambda>)>>,
}

impl LetrecPlan {
    /// Computes the plan for a binding group.
    pub fn of(bindings: &[Binding]) -> LetrecPlan {
        let mut ordered: Vec<Binding> = Vec::new();
        let mut annotated: Vec<Binding> = Vec::new();
        let mut rec: Vec<(Ident, Rc<Lambda>)> = Vec::new();
        for b in bindings {
            match lambda_of(&b.value) {
                Some(l) => {
                    rec.push((b.name.clone(), l));
                    if matches!(&*b.value, Expr::Ann(..)) {
                        annotated.push(b.clone());
                    }
                }
                None => ordered.push(b.clone()),
            }
        }
        let values = ordered.len();
        ordered.extend(annotated);
        LetrecPlan { ordered, values, rec: Rc::new(rec) }
    }

    /// Pushes the rec frame if the group has any functions.
    pub fn push_rec(&self, env: &Env) -> Env {
        if self.rec.is_empty() {
            env.clone()
        } else {
            env.extend_rec(self.rec.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_syntax::parse_expr;

    #[test]
    fn lookup_finds_innermost_binding() {
        let env = Env::empty()
            .extend(Ident::new("x"), Value::Int(1))
            .extend(Ident::new("x"), Value::Int(2));
        assert_eq!(env.lookup(&Ident::new("x")), Some(Value::Int(2)));
    }

    #[test]
    fn primitives_resolve_at_the_base() {
        let env = Env::empty();
        assert!(matches!(env.lookup(&Ident::new("+")), Some(Value::Prim(Prim::Add, _))));
        assert_eq!(env.lookup(&Ident::new("no-such")), None);
    }

    #[test]
    fn user_bindings_shadow_primitives() {
        let env = Env::empty().extend(Ident::new("+"), Value::Int(9));
        assert_eq!(env.lookup(&Ident::new("+")), Some(Value::Int(9)));
    }

    #[test]
    fn rec_frame_ties_the_knot() {
        // letrec f = lambda x. f — looking f up must yield a closure whose
        // environment again resolves f.
        let lam = match parse_expr("lambda x. f").unwrap() {
            Expr::Lambda(l) => Rc::new(l),
            _ => unreachable!(),
        };
        let env =
            Env::empty().extend_rec(Rc::new(vec![(Ident::new("f"), lam)]));
        let v = env.lookup(&Ident::new("f")).unwrap();
        match v {
            Value::Closure(c) => {
                let inner = c.env.lookup(&Ident::new("f")).unwrap();
                assert!(matches!(inner, Value::Closure(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_shows_bindings_in_scope_order() {
        let env = Env::empty()
            .extend(Ident::new("x"), Value::Int(1))
            .extend(Ident::new("y"), Value::Int(2));
        assert_eq!(env.to_string(), "[y ↦ 2, x ↦ 1]");
    }

    #[test]
    fn lambda_of_sees_through_annotations() {
        let e = parse_expr("{p}:lambda x. x").unwrap();
        assert!(lambda_of(&e).is_some());
        assert!(lambda_of(&parse_expr("1 + 2").unwrap()).is_none());
    }
}
