//! Answer algebras (§3.1).
//!
//! A continuation semantics can be *parameterized with respect to its final
//! answer*: the initial continuation `κ_init = {λv. φ v}` applies an
//! operation `φ : V → Ans` drawn from an **answer algebra**. Swapping the
//! algebra re-targets the whole semantics — the monitoring semantics of §4
//! is obtained by composing every `φᵢ` with the answer transformer
//! `θ α = λσ.⟨α,σ⟩` (Definition 4.1; implemented in `monsem-monitor`).

use crate::error::EvalError;
use crate::value::Value;

/// An answer algebra `Ans = [Ans; {φ₁ … φₙ}]` for `L_λ`.
///
/// `L_λ`'s final answer is produced solely by its initial continuation, so
/// a single operation `φ : V → Ans` suffices (as the paper notes when
/// instantiating `Ans_std` and `Ans_str`).
pub trait AnswerAlgebra {
    /// The answer domain.
    type Ans;

    /// The operation `φ` mapping a denotable value to a final answer.
    ///
    /// # Errors
    ///
    /// May reject values outside the answer domain (e.g. [`BasAnswer`]
    /// rejects functions, mirroring the projection `v|Bas`).
    fn phi(&self, v: Value) -> Result<Self::Ans, EvalError>;
}

/// `Ans_std^{L_λ} = [Bas; φ v = v|Bas]`: the standard answer algebra.
///
/// The projection fails on function values — a program whose result is a
/// closure has no standard basic answer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BasAnswer;

impl AnswerAlgebra for BasAnswer {
    type Ans = Value;

    fn phi(&self, v: Value) -> Result<Value, EvalError> {
        if v.is_basic() {
            Ok(v)
        } else {
            Err(EvalError::TypeError {
                expected: "a basic value (v|Bas)",
                found: v.to_string(),
                operation: "answer",
            })
        }
    }
}

/// The identity answer algebra: `Ans = V`. Useful when the caller wants to
/// observe function results (e.g. the specializer's residual closures).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValueAnswer;

impl AnswerAlgebra for ValueAnswer {
    type Ans = Value;

    fn phi(&self, v: Value) -> Result<Value, EvalError> {
        Ok(v)
    }
}

/// `Ans_str^{L_λ}`: the paper's string answer algebra,
/// `φ v = "The result is: " ++ toStr(v)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StringAnswer;

impl AnswerAlgebra for StringAnswer {
    type Ans = String;

    fn phi(&self, v: Value) -> Result<String, EvalError> {
        Ok(format!("The result is: {v}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prims::Prim;

    #[test]
    fn bas_answer_projects_basic_values() {
        assert_eq!(BasAnswer.phi(Value::Int(7)), Ok(Value::Int(7)));
        assert!(BasAnswer.phi(Value::prim(Prim::Add)).is_err());
    }

    #[test]
    fn string_answer_matches_the_paper() {
        assert_eq!(
            StringAnswer.phi(Value::Int(120)),
            Ok("The result is: 120".to_string())
        );
    }

    #[test]
    fn value_answer_is_total() {
        assert_eq!(
            ValueAnswer.phi(Value::prim(Prim::Add)),
            Ok(Value::prim(Prim::Add))
        );
    }
}
