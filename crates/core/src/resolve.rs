//! Static resolution of variable occurrences to lexical addresses.
//!
//! Every engine in the workspace — the standard machine, the trampolined
//! CPS engine, the lazy and imperative modules, and their monitored
//! counterparts — extends the environment with exactly the same frame
//! discipline:
//!
//! * applying a closure pushes **one** frame (the parameter);
//! * `let x = v in b` pushes one frame around `b`;
//! * `letrec` follows the [`LetrecPlan`]: one frame per value binding (in
//!   source order), then one rec frame for all lambda-like bindings, then
//!   one shadow frame per *annotated* lambda binding.
//!
//! Because the discipline is shared, a variable occurrence's binder sits at
//! a statically known number of environment nodes below the top. This pass
//! walks the tree once, rewrites each occurrence `Var(x)` whose binder it
//! can see into `VarAt(x, addr)`, and leaves the rest alone — evaluation
//! then does pointer hops ([`Env::lookup_addr`]) instead of comparisons.
//!
//! Two kinds of occurrence stay unresolved, falling back to (interned,
//! O(1)-compare) name lookup:
//!
//! * **free variables** — bindings of caller-supplied (REPL-style)
//!   environments whose shape the resolver cannot know. When evaluation
//!   is known to start from the bare base environment
//!   ([`resolve_closed`]), free occurrences of *primitive* names do
//!   resolve — to a direct [`VarAddr::Base`] index into the primitive
//!   table, skipping the chain walk altogether;
//! * free variables of **`letrec` value bindings** — the strict engines
//!   evaluate those right-hand sides in the partially built environment
//!   while the lazy engine forces them against the final, knot-tied one,
//!   so no single depth is correct for both. An internal scope barrier marks
//!   this boundary; binders *inside* the right-hand side still resolve.
//!
//! Annotations `{μ}:e` are structure, not binders: the pass threads them
//! through untouched, which is what keeps the soundness theorem (7.7)
//! applicable to resolved trees — `resolve(e)` erases to the same program
//! as `e`, and the monitored machines fire identical events on both.

use crate::env::{lambda_of, Env, LetrecPlan};
use crate::prims::Prim;
use monsem_syntax::{Binding, Expr, Ident, Lambda, VarAddr};
use std::sync::Arc;

/// One statically tracked environment node (cf. `env::Node`).
enum Scope {
    /// A single-name frame: lambda parameter, `let`, or `letrec` shadow.
    Single(Ident),
    /// A rec frame; slot = first occurrence, like runtime lookup.
    Rec(Vec<Ident>),
    /// The shape below this point differs between engines: stop resolving.
    Barrier,
}

/// The resolver's static model of the environment in force.
struct Frames {
    stack: Vec<Scope>,
    /// Whether evaluation is known to start from [`Env::empty`] — in which
    /// case a statically free occurrence (outside every barrier) can only
    /// be a primitive, and resolves to a [`VarAddr::Base`] table index.
    closed: bool,
}

/// Resolves every variable occurrence whose binder is statically visible;
/// see the module docs for what stays unresolved. Idempotent, and safe to
/// apply to already (or partially) resolved trees.
///
/// This variant assumes nothing about the environment evaluation will
/// start from, so free variables stay name-looked-up; use
/// [`resolve_closed`] (or [`resolve_for`]) when that environment is known
/// to be the primitive base.
pub fn resolve(expr: &Expr) -> Expr {
    go(
        expr,
        &mut Frames {
            stack: Vec::new(),
            closed: false,
        },
    )
}

/// [`resolve`], additionally resolving free occurrences of primitive
/// names to direct [`VarAddr::Base`] indices into the primitive table.
/// Only sound when evaluation starts from [`Env::empty`] — a caller
/// environment could rebind `+`.
pub fn resolve_closed(expr: &Expr) -> Expr {
    go(
        expr,
        &mut Frames {
            stack: Vec::new(),
            closed: true,
        },
    )
}

/// Picks [`resolve_closed`] when `env` is the bare base environment and
/// the conservative [`resolve`] otherwise. The engines call this once at
/// entry.
pub fn resolve_for(expr: &Expr, env: &Env) -> Expr {
    if env.depth() == 0 {
        resolve_closed(expr)
    } else {
        resolve(expr)
    }
}

/// [`resolve`] for reference-counted trees.
pub fn resolve_rc(expr: &Arc<Expr>) -> Arc<Expr> {
    Arc::new(resolve(expr))
}

fn go(e: &Expr, stack: &mut Frames) -> Expr {
    match e {
        Expr::Con(_) => e.clone(),
        Expr::Var(x) | Expr::VarAt(x, _) => match stack.addr_of(x) {
            Some(addr) => Expr::VarAt(x.clone(), addr),
            None => Expr::Var(x.clone()),
        },
        Expr::Lambda(l) => {
            stack.push(Scope::Single(l.param.clone()));
            let body = go(&l.body, stack);
            stack.pop();
            Expr::Lambda(Lambda {
                param: l.param.clone(),
                body: Arc::new(body),
            })
        }
        Expr::If(c, t, els) => Expr::If(
            Arc::new(go(c, stack)),
            Arc::new(go(t, stack)),
            Arc::new(go(els, stack)),
        ),
        Expr::App(f, a) => Expr::App(Arc::new(go(f, stack)), Arc::new(go(a, stack))),
        Expr::Let(x, v, b) => {
            let v = go(v, stack);
            stack.push(Scope::Single(x.clone()));
            let b = go(b, stack);
            stack.pop();
            Expr::Let(x.clone(), Arc::new(v), Arc::new(b))
        }
        Expr::Letrec(bs, body) => resolve_letrec(bs, body, stack),
        Expr::Ann(ann, inner) => Expr::Ann(ann.clone(), Arc::new(go(inner, stack))),
        Expr::Seq(a, b) => Expr::Seq(Arc::new(go(a, stack)), Arc::new(go(b, stack))),
        // The assigned name stays a name: the imperative machine looks the
        // location up by (interned) name. Only the right-hand side resolves.
        Expr::Assign(x, v) => Expr::Assign(x.clone(), Arc::new(go(v, stack))),
        Expr::While(c, b) => Expr::While(Arc::new(go(c, stack)), Arc::new(go(b, stack))),
        // `par` binds nothing; each element resolves in the enclosing scope.
        Expr::Par(items) => Expr::Par(items.iter().map(|e| Arc::new(go(e, stack))).collect()),
    }
}

fn resolve_letrec(bs: &[Binding], body: &Expr, stack: &mut Frames) -> Expr {
    let plan = LetrecPlan::of(bs);

    // Stack shape for lambda-like right-hand sides: their bodies only ever
    // run through closures rooted at the rec frame (the shadow frames bind
    // that same closure — LetrecPlan::bind), which sits above the value
    // frames.
    let mut new_bs = Vec::with_capacity(bs.len());
    for b in bs {
        let value = if lambda_of(&b.value).is_some() {
            for vb in &plan.ordered[..plan.values] {
                stack.push(Scope::Single(vb.name.clone()));
            }
            stack.push(Scope::Rec(
                plan.rec.iter().map(|(n, _)| n.clone()).collect(),
            ));
            let value = go(&b.value, stack);
            stack.truncate(stack.len() - plan.values - 1);
            value
        } else {
            // Value bindings: the strict machines evaluate these in the
            // partially built environment, the lazy engine in the final
            // one — resolve only their internal binders.
            stack.push(Scope::Barrier);
            let value = go(&b.value, stack);
            stack.pop();
            value
        };
        new_bs.push(Binding {
            name: b.name.clone(),
            value: Arc::new(value),
        });
    }

    // Body shape: value frames, rec frame, one shadow frame per annotated
    // lambda binding — exactly what every engine has built by then.
    let before = stack.len();
    for vb in &plan.ordered[..plan.values] {
        stack.push(Scope::Single(vb.name.clone()));
    }
    if !plan.rec.is_empty() {
        stack.push(Scope::Rec(
            plan.rec.iter().map(|(n, _)| n.clone()).collect(),
        ));
    }
    for ab in &plan.ordered[plan.values..] {
        stack.push(Scope::Single(ab.name.clone()));
    }
    let body = go(body, stack);
    stack.truncate(before);

    Expr::Letrec(new_bs, Arc::new(body))
}

impl Frames {
    fn push(&mut self, scope: Scope) {
        self.stack.push(scope);
    }

    fn pop(&mut self) {
        self.stack.pop();
    }

    fn len(&self) -> usize {
        self.stack.len()
    }

    fn truncate(&mut self, len: usize) {
        self.stack.truncate(len);
    }

    fn addr_of(&self, x: &Ident) -> Option<VarAddr> {
        for (depth, scope) in (0_u32..).zip(self.stack.iter().rev()) {
            match scope {
                Scope::Single(n) => {
                    if n == x {
                        return Some(VarAddr::Frame { depth });
                    }
                }
                Scope::Rec(names) => {
                    if let Some(slot) = names.iter().position(|n| n == x) {
                        return Some(VarAddr::Rec {
                            depth,
                            slot: slot as u32,
                        });
                    }
                }
                // Below a barrier the runtime frame count is mode-dependent
                // — and the letrec's own binders, invisible here, may bind
                // the name in some modes — so nothing below it (not even
                // the base) can be addressed.
                Scope::Barrier => return None,
            }
        }
        // Statically free. Under a closed base environment the only thing
        // left to find is a primitive, at a known table index.
        if self.closed {
            if let Some(slot) = Prim::ALL.iter().position(|(n, _)| *n == x.as_str()) {
                return Some(VarAddr::Base { slot: slot as u32 });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_syntax::parse_expr;

    fn resolved(src: &str) -> Expr {
        resolve(&parse_expr(src).unwrap())
    }

    /// Collects `(name, addr)` for every resolved occurrence.
    fn addresses(e: &Expr) -> Vec<(String, VarAddr)> {
        fn walk(e: &Expr, out: &mut Vec<(String, VarAddr)>) {
            match e {
                Expr::VarAt(x, a) => out.push((x.as_str().to_string(), *a)),
                Expr::Con(_) | Expr::Var(_) => {}
                Expr::Lambda(l) => walk(&l.body, out),
                Expr::If(a, b, c) => {
                    walk(a, out);
                    walk(b, out);
                    walk(c, out);
                }
                Expr::App(a, b) | Expr::Seq(a, b) | Expr::While(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Expr::Letrec(bs, body) => {
                    for b in bs {
                        walk(&b.value, out);
                    }
                    walk(body, out);
                }
                Expr::Let(_, v, b) => {
                    walk(v, out);
                    walk(b, out);
                }
                Expr::Ann(_, inner) => walk(inner, out),
                Expr::Assign(_, v) => walk(v, out),
                Expr::Par(items) => {
                    for item in items {
                        walk(item, out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk(e, &mut out);
        out
    }

    #[test]
    fn lambda_parameter_resolves_to_depth_zero() {
        let e = resolved("lambda x. x");
        assert_eq!(
            addresses(&e),
            vec![("x".into(), VarAddr::Frame { depth: 0 })]
        );
    }

    #[test]
    fn shadowing_picks_the_nearest_binder() {
        let e = resolved("lambda x. lambda x. x");
        assert_eq!(
            addresses(&e),
            vec![("x".into(), VarAddr::Frame { depth: 0 })]
        );
        let e = resolved("lambda x. lambda y. x");
        assert_eq!(
            addresses(&e),
            vec![("x".into(), VarAddr::Frame { depth: 1 })]
        );
    }

    #[test]
    fn free_variables_and_primitives_stay_unresolved() {
        let e = resolved("lambda x. x + free");
        // `x` resolves; `+` and `free` stay Var.
        assert_eq!(
            addresses(&e),
            vec![("x".into(), VarAddr::Frame { depth: 0 })]
        );
    }

    #[test]
    fn let_pushes_one_frame() {
        let e = resolved("let a = 1 in lambda b. a");
        assert_eq!(
            addresses(&e),
            vec![("a".into(), VarAddr::Frame { depth: 1 })]
        );
    }

    #[test]
    fn letrec_functions_resolve_through_the_rec_frame() {
        let e = resolved("letrec f = lambda x. f x in f 1");
        assert_eq!(
            addresses(&e),
            vec![
                // In the body of f: param frame (depth 0), rec frame at 1.
                ("f".into(), VarAddr::Rec { depth: 1, slot: 0 }),
                ("x".into(), VarAddr::Frame { depth: 0 }),
                // In the letrec body: rec frame on top.
                ("f".into(), VarAddr::Rec { depth: 0, slot: 0 }),
            ]
        );
    }

    #[test]
    fn mutual_recursion_uses_slots() {
        let e = resolved("letrec even = lambda n. odd n and odd = lambda n. even n in even 4");
        assert_eq!(
            addresses(&e),
            vec![
                ("odd".into(), VarAddr::Rec { depth: 1, slot: 1 }),
                ("n".into(), VarAddr::Frame { depth: 0 }),
                ("even".into(), VarAddr::Rec { depth: 1, slot: 0 }),
                ("n".into(), VarAddr::Frame { depth: 0 }),
                ("even".into(), VarAddr::Rec { depth: 0, slot: 0 }),
            ]
        );
    }

    #[test]
    fn letrec_value_bindings_resolve_behind_a_barrier() {
        // `a` is a value binding: its occurrence of the outer `x` must NOT
        // resolve (strict evaluates it under fewer frames than lazy), but
        // its internal lambda still resolves its own parameter.
        let e = resolved("lambda x. letrec a = (lambda y. y) x in a");
        let addrs = addresses(&e);
        assert_eq!(
            addrs,
            vec![
                ("y".into(), VarAddr::Frame { depth: 0 }),
                // letrec body: a's value frame on top (no rec frame).
                ("a".into(), VarAddr::Frame { depth: 0 }),
            ]
        );
    }

    #[test]
    fn letrec_body_sees_values_rec_and_shadows() {
        let e = resolved(
            "letrec base = 10 and f = {m}:(lambda x. x) and g = lambda x. x in (f base) ; g 1",
        );
        let addrs = addresses(&e);
        // Body env: [shadow f, rec {f, g}, base, ...]: f hits the shadow
        // frame at depth 0, base its value frame at depth 2, g the rec
        // frame at depth 1 slot 1.
        assert!(addrs.contains(&("f".into(), VarAddr::Frame { depth: 0 })));
        assert!(addrs.contains(&("base".into(), VarAddr::Frame { depth: 2 })));
        assert!(addrs.contains(&("g".into(), VarAddr::Rec { depth: 1, slot: 1 })));
    }

    #[test]
    fn annotations_thread_through_unchanged() {
        let src = "{trace/f(x)}:(lambda x. {b}:x)";
        let e = resolved(src);
        let original = parse_expr(src).unwrap();
        assert_eq!(e, original, "resolution preserves program equality");
        assert_eq!(
            e.annotations().len(),
            original.annotations().len(),
            "no annotation is lost or duplicated"
        );
    }

    #[test]
    fn closed_resolution_addresses_primitives_into_the_base_table() {
        let e = resolve_closed(&parse_expr("lambda x. x + free").unwrap());
        let addrs = addresses(&e);
        let plus = Prim::ALL.iter().position(|(n, _)| *n == "+").unwrap() as u32;
        assert!(addrs.contains(&("x".into(), VarAddr::Frame { depth: 0 })));
        assert!(addrs.contains(&("+".into(), VarAddr::Base { slot: plus })));
        // Non-primitive free variables still fall back to name lookup
        // (and to the dynamic unbound-variable error).
        assert!(!addrs.iter().any(|(n, _)| n == "free"));
    }

    #[test]
    fn closed_resolution_respects_shadowing_and_barriers() {
        // A binder named `+` shadows the primitive (the parser forbids
        // such binders, but the AST allows them).
        let shadowed = Expr::Let(
            Ident::new("+"),
            Arc::new(Expr::int(1)),
            Arc::new(Expr::Var(Ident::new("+"))),
        );
        let e = resolve_closed(&shadowed);
        assert_eq!(
            addresses(&e),
            vec![("+".into(), VarAddr::Frame { depth: 0 })]
        );
        // ...and below a letrec value-binding barrier even primitives stay
        // name-looked-up (the letrec's own binders are invisible there).
        let e = resolve_closed(&parse_expr("letrec a = 1 + 2 in a").unwrap());
        assert_eq!(
            addresses(&e),
            vec![("a".into(), VarAddr::Frame { depth: 0 })]
        );
    }

    #[test]
    fn resolve_for_only_goes_closed_on_the_base_environment() {
        use crate::value::Value;
        let src = "1 + 2";
        let open = resolve_for(
            &parse_expr(src).unwrap(),
            &Env::empty().extend(Ident::new("y"), Value::Int(0)),
        );
        assert!(
            addresses(&open).is_empty(),
            "caller env: `+` could be rebound"
        );
        let closed = resolve_for(&parse_expr(src).unwrap(), &Env::empty());
        assert!(matches!(
            addresses(&closed)[..],
            [(_, VarAddr::Base { .. })]
        ));
    }

    #[test]
    fn base_addresses_evaluate_to_the_primitive() {
        let e = resolve_closed(&parse_expr("2 + 3").unwrap());
        assert_eq!(crate::machine::eval(&e), Ok(crate::value::Value::Int(5)));
    }

    #[test]
    fn resolution_is_idempotent() {
        let e = resolved("letrec f = lambda x. if x = 0 then 1 else x * f (x - 1) in f 5");
        let twice = resolve(&e);
        assert_eq!(addresses(&e), addresses(&twice));
    }

    #[test]
    fn erasure_drops_addresses() {
        let e = resolved("lambda x. {m}:x");
        let erased = e.erase_annotations();
        assert!(addresses(&erased).is_empty());
    }
}
