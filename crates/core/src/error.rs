//! Evaluation errors.
//!
//! Soundness (§7) requires the monitored semantics to agree with the
//! standard semantics on *every* program — including erroneous ones — so
//! errors are ordinary, comparable values rather than panics. The
//! soundness property tests assert that both engines produce equal
//! `Result<Value, EvalError>`s.

use monsem_syntax::Ident;
use std::fmt;

/// An error raised during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// `ρ x` was undefined and `x` is not a primitive.
    UnboundVariable(Ident),
    /// Application of a non-function (`v₁ | Fun` failed, Figure 2).
    /// The value is rendered, so the error stays cheap to clone and
    /// `Send` (shard errors cross the fork-join scope boundary).
    NotAFunction(String),
    /// A primitive received a value outside its domain.
    TypeError {
        /// What the operation wanted.
        expected: &'static str,
        /// What it got (rendered, so the error stays cheap to clone).
        found: String,
        /// The operation that failed.
        operation: &'static str,
    },
    /// The condition of an `if`/`while` was not a boolean
    /// (`v | Bool` failed, Figure 2).
    NonBooleanCondition(String),
    /// Integer division or modulus by zero.
    DivisionByZero,
    /// `hd`/`tl` of the empty list.
    EmptyList(&'static str),
    /// Arithmetic overflowed (we evaluate with checked arithmetic so that
    /// the standard and monitored engines agree bit-for-bit).
    Overflow(&'static str),
    /// The step budget ran out; see
    /// [`EvalOptions::fuel`](crate::machine::EvalOptions).
    FuelExhausted,
    /// An imperative construct reached a pure language module.
    UnsupportedConstruct(&'static str),
    /// Assignment to a name not bound to a mutable location.
    NotAssignable(Ident),
    /// A call-by-need value depends on itself (lazy module).
    BlackHole,
    /// A monitor vetoed the computation: a fallible monitoring function
    /// (`try_pre`/`try_post`) returned an `Abort` verdict. This is the
    /// *intended* divergence from Theorem 7.7 — the monitored run stops
    /// where the standard run would continue — and the soundness checker
    /// classifies it accordingly.
    MonitorAbort {
        /// `name()` of the monitor that aborted.
        monitor: String,
        /// The monitor's stated reason.
        reason: String,
    },
    /// A monitored machine detected a broken internal invariant (for
    /// example the `MS` cell was empty at a hook site). Formerly a panic;
    /// surfaced as an error so a buggy monitoring path cannot take the
    /// whole evaluator down.
    Internal(&'static str),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            EvalError::NotAFunction(v) => {
                write!(f, "cannot apply non-function value `{v}`")
            }
            EvalError::TypeError {
                expected,
                found,
                operation,
            } => {
                write!(f, "`{operation}` expected {expected}, found `{found}`")
            }
            EvalError::NonBooleanCondition(v) => {
                write!(f, "condition evaluated to non-boolean `{v}`")
            }
            EvalError::DivisionByZero => f.write_str("division by zero"),
            EvalError::EmptyList(op) => write!(f, "`{op}` of the empty list"),
            EvalError::Overflow(op) => write!(f, "integer overflow in `{op}`"),
            EvalError::FuelExhausted => f.write_str("evaluation fuel exhausted"),
            EvalError::UnsupportedConstruct(what) => {
                write!(f, "`{what}` requires the imperative language module")
            }
            EvalError::NotAssignable(x) => {
                write!(f, "`{x}` is not bound to an assignable location")
            }
            EvalError::BlackHole => f.write_str("value depends on itself (black hole)"),
            EvalError::MonitorAbort { monitor, reason } => {
                write!(f, "monitor `{monitor}` aborted evaluation: {reason}")
            }
            EvalError::Internal(what) => {
                write!(f, "internal invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let e = EvalError::TypeError {
            expected: "an integer",
            found: "true".into(),
            operation: "+",
        };
        assert_eq!(e.to_string(), "`+` expected an integer, found `true`");
        assert_eq!(
            EvalError::UnboundVariable(Ident::new("y")).to_string(),
            "unbound variable `y`"
        );
    }

    #[test]
    fn monitor_abort_names_the_culprit() {
        let e = EvalError::MonitorAbort {
            monitor: "bound-demon".into(),
            reason: "value exceeded 100".into(),
        };
        assert_eq!(
            e.to_string(),
            "monitor `bound-demon` aborted evaluation: value exceeded 100"
        );
        assert_eq!(
            EvalError::Internal("monitor state missing at hook").to_string(),
            "internal invariant violated: monitor state missing at hook"
        );
    }

    #[test]
    fn errors_are_comparable_for_soundness_tests() {
        assert_eq!(EvalError::DivisionByZero, EvalError::DivisionByZero);
        assert_ne!(EvalError::DivisionByZero, EvalError::FuelExhausted);
    }
}
