//! Semantic algebras and standard continuation semantics for `L_λ`
//! (Figure 2 of *Monitoring Semantics*, Kishon/Hudak/Consel, PLDI 1991).
//!
//! The paper expresses the standard semantics as valuation *functionals*
//! in continuation style; their fixpoints are the valuation functions. In
//! Rust we realize the same semantics two ways:
//!
//! * [`machine`] — the production evaluator: continuations are
//!   **defunctionalized** into an explicit frame stack (a CEK machine).
//!   Every transition of the machine corresponds to one continuation
//!   application of the paper's semantics, preserving the linear ordering
//!   of evaluation events that monitoring relies on (§2).
//! * [`closure_cps`] — a direct transliteration using boxed Rust closures
//!   as continuations (with a trampoline for stack safety). It exists to
//!   validate the machine against the paper's own style and as an ablation
//!   point for the benchmarks.
//!
//! The semantic algebras (Figure 2, *Alg*) live in [`value`], [`mod@env`] and
//! [`prims`]; the §3.1 *answer algebras* in [`answer`]; the §9.2 lazy and
//! imperative language modules in [`lazy`] and [`imperative`]. Before the
//! first transition every engine runs [`mod@resolve`], the static pass that
//! rewrites variable occurrences to lexical `(depth, slot)` addresses so the
//! hot loop does pointer hops instead of name comparisons.
//!
//! # Example
//!
//! ```
//! use monsem_core::machine::eval;
//! use monsem_core::value::Value;
//! use monsem_syntax::parse_expr;
//!
//! let prog = parse_expr(
//!     "letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac 5",
//! )?;
//! assert_eq!(eval(&prog)?, Value::Int(120));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod closure_cps;
pub mod env;
pub mod error;
pub mod freeze;
pub mod imperative;
pub mod lazy;
pub mod machine;
pub mod prelude;
pub mod prims;
pub mod programs;
pub mod resolve;
pub mod value;

pub use answer::{AnswerAlgebra, BasAnswer, StringAnswer, ValueAnswer};
pub use env::Env;
pub use error::EvalError;
pub use machine::{eval, eval_with, EvalOptions, LookupMode};
pub use resolve::{resolve, resolve_closed, resolve_for, resolve_rc};
pub use value::{Closure, Value};
