//! A small standard library for `L_λ` programs — the list and arithmetic
//! helpers the paper's example style assumes, as ordinary `letrec`
//! bindings that can be wrapped around any program.
//!
//! ```
//! use monsem_core::machine::eval;
//! use monsem_core::prelude::with_prelude;
//! use monsem_core::Value;
//! use monsem_syntax::parse_expr;
//!
//! let e = parse_expr("sum (map (lambda x. x * x) (range 1 4))")?;
//! assert_eq!(eval(&with_prelude(&e))?, Value::Int(30)); // 1+4+9+16
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use monsem_syntax::{parse_expr, Binding, Expr, Ident};
use std::sync::Arc;

/// The prelude definitions, in dependency order: each may use the ones
/// before it.
const PRELUDE: &[(&str, &str)] = &[
    ("compose", "lambda f. lambda g. lambda x. f (g x)"),
    ("id", "lambda x. x"),
    ("const", "lambda k. lambda u. k"),
    ("flip", "lambda f. lambda a. lambda b. f b a"),
    (
        "foldr",
        "lambda f. lambda z. lambda l. \
         if null? l then z else f (hd l) (foldr f z (tl l))",
    ),
    (
        "foldl",
        "lambda f. lambda z. lambda l. \
         if null? l then z else foldl f (f z (hd l)) (tl l)",
    ),
    (
        "map",
        "lambda f. lambda l. foldr (lambda x. lambda acc. (f x) : acc) [] l",
    ),
    (
        "filter",
        "lambda p. lambda l. \
         foldr (lambda x. lambda acc. if p x then x : acc else acc) [] l",
    ),
    (
        "append",
        "lambda a. lambda b. foldr (lambda x. lambda acc. x : acc) b a",
    ),
    (
        "reverse",
        "lambda l. foldl (lambda acc. lambda x. x : acc) [] l",
    ),
    ("sum", "lambda l. foldl (lambda a. lambda b. a + b) 0 l"),
    ("product", "lambda l. foldl (lambda a. lambda b. a * b) 1 l"),
    (
        "range",
        "lambda lo. lambda hi. if lo > hi then [] else lo : (range (lo + 1) hi)",
    ),
    (
        "zip",
        "lambda a. lambda b. \
         if null? a then [] else if null? b then [] \
         else ((hd a) : (hd b)) : (zip (tl a) (tl b))",
    ),
    (
        "all?",
        "lambda p. lambda l. if null? l then true \
         else if p (hd l) then all? p (tl l) else false",
    ),
    (
        "any?",
        "lambda p. lambda l. if null? l then false \
         else if p (hd l) then true else any? p (tl l)",
    ),
    ("member?", "lambda x. lambda l. any? (lambda y. y = x) l"),
    (
        "nth",
        "lambda i. lambda l. if i = 0 then hd l else nth (i - 1) (tl l)",
    ),
    (
        "sorted?",
        "lambda l. if null? l then true else if null? (tl l) then true \
         else if (hd l) <= (hd (tl l)) then sorted? (tl l) else false",
    ),
];

/// The prelude as `letrec` bindings, in dependency order.
pub fn prelude_bindings() -> Vec<Binding> {
    PRELUDE
        .iter()
        .map(|(name, src)| {
            let value =
                parse_expr(src).unwrap_or_else(|e| panic!("prelude `{name}` failed to parse: {e}"));
            Binding::new(*name, value)
        })
        .collect()
}

/// Wraps `body` in the prelude: each definition in its own `letrec`, so
/// later definitions may use earlier ones and user code may shadow any of
/// them.
pub fn with_prelude(body: &Expr) -> Expr {
    prelude_bindings()
        .into_iter()
        .rev()
        .fold(body.clone(), |acc, b| Expr::Letrec(vec![b], Arc::new(acc)))
}

/// The names the prelude defines.
pub fn prelude_names() -> Vec<Ident> {
    PRELUDE.iter().map(|(name, _)| Ident::new(*name)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::eval;
    use crate::Value;

    fn run(src: &str) -> Value {
        let e = monsem_syntax::parse_expr(src).expect("parses");
        eval(&with_prelude(&e)).expect("evaluates")
    }

    #[test]
    fn list_combinators() {
        assert_eq!(
            run("map (lambda x. x + 1) [1, 2, 3]"),
            Value::list([2, 3, 4].map(Value::Int))
        );
        assert_eq!(
            run("filter (lambda x. (mod x 2) = 0) (range 1 10)"),
            Value::list([2, 4, 6, 8, 10].map(Value::Int))
        );
        assert_eq!(
            run("append [1, 2] [3]"),
            Value::list([1, 2, 3].map(Value::Int))
        );
        assert_eq!(
            run("reverse (range 1 4)"),
            Value::list([4, 3, 2, 1].map(Value::Int))
        );
        assert_eq!(run("sum (range 1 100)"), Value::Int(5050));
        assert_eq!(run("product (range 1 6)"), Value::Int(720));
        assert_eq!(run("nth 2 [10, 20, 30, 40]"), Value::Int(30));
    }

    #[test]
    fn folds_and_predicates() {
        assert_eq!(
            run("foldr (:) [] [1, 2]"),
            Value::list([1, 2].map(Value::Int))
        );
        assert_eq!(run("all? (lambda x. x > 0) [1, 2, 3]"), Value::Bool(true));
        assert_eq!(run("any? (lambda x. x > 2) [1, 2, 3]"), Value::Bool(true));
        assert_eq!(run("member? 3 [1, 2, 3]"), Value::Bool(true));
        assert_eq!(run("member? 9 [1, 2, 3]"), Value::Bool(false));
        assert_eq!(run("sorted? [1, 2, 2, 5]"), Value::Bool(true));
        assert_eq!(run("sorted? [2, 1]"), Value::Bool(false));
    }

    #[test]
    fn higher_order_plumbing() {
        assert_eq!(
            run("(compose (lambda x. x * 2) (lambda x. x + 1)) 10"),
            Value::Int(22)
        );
        assert_eq!(run("flip (-) 1 10"), Value::Int(9));
        assert_eq!(run("const 7 99"), Value::Int(7));
        assert_eq!(
            run("zip [1, 2] [true, false]"),
            Value::list([
                Value::pair(Value::Int(1), Value::Bool(true)),
                Value::pair(Value::Int(2), Value::Bool(false)),
            ])
        );
    }

    #[test]
    fn user_code_can_shadow_the_prelude() {
        assert_eq!(
            run("let sum = lambda l. 42 in sum [1, 2, 3]"),
            Value::Int(42)
        );
    }

    #[test]
    fn prelude_names_match_bindings() {
        let names = prelude_names();
        let bindings = prelude_bindings();
        assert_eq!(names.len(), bindings.len());
        for (n, b) in names.iter().zip(&bindings) {
            assert_eq!(n, &b.name);
        }
    }
}
