//! The imperative language module (§9.2).
//!
//! Extends `L_λ` with assignment `x := e`, sequencing `e₁ ; e₂` and
//! `while e₁ do e₂ end`, under a store-threading continuation semantics:
//! every binder allocates a store location, environments map identifiers
//! to locations, and variable reference dereferences the store. Closures
//! capture location-bearing environments, so mutation is visible through
//! captured variables — the behaviour a Pascal-style monitor like Magpie's
//! demons (§8) observes.

use crate::env::{Env, LetrecPlan};
use crate::error::EvalError;
use crate::machine::{constant, EvalOptions, LookupMode};
use crate::resolve::resolve_for;
use crate::value::{Closure, Value};
use monsem_syntax::{Expr, Ident};
use std::rc::Rc;
use std::sync::Arc;

/// The store `σ : Loc → V`.
#[derive(Debug, Clone, Default)]
pub struct Store(Vec<Value>);

impl Store {
    /// An empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Allocates a fresh location holding `v`.
    pub fn alloc(&mut self, v: Value) -> usize {
        self.0.push(v);
        self.0.len() - 1
    }

    /// Reads a location.
    pub fn read(&self, loc: usize) -> &Value {
        &self.0[loc]
    }

    /// Overwrites a location.
    pub fn write(&mut self, loc: usize, v: Value) {
        self.0[loc] = v;
    }

    /// Number of allocated cells.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no cell has been allocated.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[derive(Debug)]
enum Frame {
    Arg {
        func: Arc<Expr>,
        env: Env,
    },
    Apply {
        arg: Value,
    },
    Branch {
        then: Arc<Expr>,
        els: Arc<Expr>,
        env: Env,
    },
    Bind {
        name: Ident,
        body: Arc<Expr>,
        env: Env,
    },
    LetrecBind {
        plan: Rc<LetrecPlan>,
        index: usize,
        body: Arc<Expr>,
        env: Env,
    },
    Discard {
        second: Arc<Expr>,
        env: Env,
    },
    /// Store the value into the location and yield unit.
    Write {
        loc: usize,
    },
    /// Condition of a `while` just evaluated.
    LoopTest {
        cond: Arc<Expr>,
        body: Arc<Expr>,
        env: Env,
    },
    /// Body of a `while` just evaluated; re-test the condition.
    LoopBack {
        cond: Arc<Expr>,
        body: Arc<Expr>,
        env: Env,
    },
}

enum State {
    Eval(Arc<Expr>, Env),
    Continue(Value),
}

/// Evaluates `expr` under the imperative semantics with a fresh store.
///
/// # Errors
///
/// Any [`EvalError`] the program provokes.
pub fn eval_imperative(expr: &Expr) -> Result<Value, EvalError> {
    eval_imperative_with(expr, &Env::empty(), &EvalOptions::default()).map(|(v, _)| v)
}

/// Evaluates `expr` under the imperative semantics, returning the value
/// and the final store.
///
/// # Errors
///
/// Any [`EvalError`] the program provokes, including
/// [`EvalError::FuelExhausted`].
pub fn eval_imperative_with(
    expr: &Expr,
    env: &Env,
    options: &EvalOptions,
) -> Result<(Value, Store), EvalError> {
    let mut store = Store::new();
    let mut stack: Vec<Frame> = Vec::new();
    let program = match options.lookup {
        LookupMode::ByAddress => Arc::new(resolve_for(expr, env)),
        LookupMode::BySymbol | LookupMode::ByString => Arc::new(expr.clone()),
    };
    let by_string = options.lookup == LookupMode::ByString;
    let mut state = State::Eval(program, env.clone());
    let mut fuel = options.fuel;

    loop {
        if fuel == 0 {
            return Err(EvalError::FuelExhausted);
        }
        fuel -= 1;

        state = match state {
            State::Eval(expr, env) => match &*expr {
                Expr::Con(c) => State::Continue(constant(c)),
                Expr::Par(..) => {
                    return Err(EvalError::UnsupportedConstruct(
                        "par (only the strict machines evaluate it)",
                    ))
                }
                Expr::VarAt(_, addr) => match env.lookup_addr(addr) {
                    Value::Loc(l) => State::Continue(store.read(l).clone()),
                    v => State::Continue(v),
                },
                Expr::Var(x) => {
                    let v = if by_string {
                        env.lookup_str(x)
                    } else {
                        env.lookup(x)
                    };
                    match v {
                        Some(Value::Loc(l)) => State::Continue(store.read(l).clone()),
                        Some(v) => State::Continue(v),
                        None => return Err(EvalError::UnboundVariable(x.clone())),
                    }
                }
                Expr::Lambda(l) => State::Continue(Value::Closure(Rc::new(Closure {
                    param: l.param.clone(),
                    body: l.body.clone(),
                    env: env.clone(),
                }))),
                Expr::If(c, t, e) => {
                    stack.push(Frame::Branch {
                        then: t.clone(),
                        els: e.clone(),
                        env: env.clone(),
                    });
                    State::Eval(c.clone(), env)
                }
                Expr::App(f, a) => {
                    stack.push(Frame::Arg {
                        func: f.clone(),
                        env: env.clone(),
                    });
                    State::Eval(a.clone(), env)
                }
                Expr::Let(x, v, b) => {
                    stack.push(Frame::Bind {
                        name: x.clone(),
                        body: b.clone(),
                        env: env.clone(),
                    });
                    State::Eval(v.clone(), env)
                }
                Expr::Letrec(bs, body) => {
                    let plan = Rc::new(LetrecPlan::of(bs));
                    let env = if plan.values == 0 {
                        plan.push_rec(&env)
                    } else {
                        env
                    };
                    if plan.ordered.is_empty() {
                        State::Eval(body.clone(), env)
                    } else {
                        let first = plan.ordered[0].value.clone();
                        stack.push(Frame::LetrecBind {
                            plan,
                            index: 0,
                            body: body.clone(),
                            env: env.clone(),
                        });
                        State::Eval(first, env)
                    }
                }
                Expr::Ann(_, inner) => State::Eval(inner.clone(), env),
                Expr::Seq(a, b) => {
                    stack.push(Frame::Discard {
                        second: b.clone(),
                        env: env.clone(),
                    });
                    State::Eval(a.clone(), env)
                }
                Expr::Assign(x, e) => match env.lookup(x) {
                    Some(Value::Loc(l)) => {
                        stack.push(Frame::Write { loc: l });
                        State::Eval(e.clone(), env)
                    }
                    Some(_) => return Err(EvalError::NotAssignable(x.clone())),
                    None => return Err(EvalError::UnboundVariable(x.clone())),
                },
                Expr::While(c, b) => {
                    stack.push(Frame::LoopTest {
                        cond: c.clone(),
                        body: b.clone(),
                        env: env.clone(),
                    });
                    State::Eval(c.clone(), env)
                }
            },
            State::Continue(value) => match stack.pop() {
                None => return Ok((value, store)),
                Some(Frame::Arg { func, env }) => {
                    stack.push(Frame::Apply { arg: value });
                    State::Eval(func, env)
                }
                Some(Frame::Apply { arg }) => match value {
                    Value::Closure(c) => {
                        let loc = store.alloc(arg);
                        State::Eval(
                            c.body.clone(),
                            c.env.extend(c.param.clone(), Value::Loc(loc)),
                        )
                    }
                    Value::Prim(p, collected) => {
                        let mut args = collected.as_ref().clone();
                        args.push(arg);
                        if args.len() == p.arity() {
                            State::Continue(p.apply(&args)?)
                        } else {
                            State::Continue(Value::Prim(p, Rc::new(args)))
                        }
                    }
                    other => return Err(EvalError::NotAFunction(other.to_string())),
                },
                Some(Frame::Branch { then, els, env }) => match value {
                    Value::Bool(true) => State::Eval(then, env),
                    Value::Bool(false) => State::Eval(els, env),
                    other => return Err(EvalError::NonBooleanCondition(other.to_string())),
                },
                Some(Frame::Bind { name, body, env }) => {
                    let loc = store.alloc(value);
                    State::Eval(body, env.extend(name, Value::Loc(loc)))
                }
                Some(Frame::LetrecBind {
                    plan,
                    index,
                    body,
                    env,
                }) => {
                    // Function bindings stay immutable (recursion resolves
                    // through the rec frame, so mutating them would be
                    // unsound); value bindings get store cells.
                    let bound = if index < plan.values {
                        Value::Loc(store.alloc(value))
                    } else {
                        value
                    };
                    let mut env = plan.bind(&env, index, bound);
                    if index + 1 == plan.values {
                        env = plan.push_rec(&env);
                    }
                    if index + 1 < plan.ordered.len() {
                        let next = plan.ordered[index + 1].value.clone();
                        stack.push(Frame::LetrecBind {
                            plan,
                            index: index + 1,
                            body,
                            env: env.clone(),
                        });
                        State::Eval(next, env)
                    } else {
                        State::Eval(body, env)
                    }
                }
                Some(Frame::Discard { second, env }) => State::Eval(second, env),
                Some(Frame::Write { loc }) => {
                    store.write(loc, value);
                    State::Continue(Value::Unit)
                }
                Some(Frame::LoopTest { cond, body, env }) => match value {
                    Value::Bool(true) => {
                        stack.push(Frame::LoopBack {
                            cond,
                            body: body.clone(),
                            env: env.clone(),
                        });
                        State::Eval(body, env)
                    }
                    Value::Bool(false) => State::Continue(Value::Unit),
                    other => return Err(EvalError::NonBooleanCondition(other.to_string())),
                },
                Some(Frame::LoopBack { cond, body, env }) => {
                    stack.push(Frame::LoopTest {
                        cond: cond.clone(),
                        body,
                        env: env.clone(),
                    });
                    State::Eval(cond, env)
                }
            },
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_syntax::parse_expr;

    fn run_imp(src: &str) -> Result<Value, EvalError> {
        eval_imperative(&parse_expr(src).expect("parses"))
    }

    #[test]
    fn assignment_and_while_compute_factorial() {
        assert_eq!(
            run_imp(
                "let n = 5 in let acc = 1 in \
                 (while n > 0 do acc := acc * n; n := n - 1 end); acc"
            ),
            Ok(Value::Int(120))
        );
    }

    #[test]
    fn closures_share_mutable_state() {
        assert_eq!(
            run_imp(
                "let counter = 0 in \
                 let bump = lambda u. counter := counter + 1 in \
                 bump (); bump (); bump (); counter"
            ),
            Ok(Value::Int(3))
        );
    }

    #[test]
    fn pure_programs_agree_with_the_pure_machine() {
        let src = "letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac 5";
        let e = parse_expr(src).unwrap();
        assert_eq!(eval_imperative(&e), crate::machine::eval(&e));
    }

    #[test]
    fn assignment_to_letrec_function_is_rejected() {
        assert_eq!(
            run_imp("letrec f = lambda x. x in (f := 1)"),
            Err(EvalError::NotAssignable(Ident::new("f")))
        );
    }

    #[test]
    fn while_with_non_boolean_condition_errors() {
        assert_eq!(
            run_imp("while 1 do 2 end"),
            Err(EvalError::NonBooleanCondition("1".into()))
        );
    }

    #[test]
    fn while_result_is_unit() {
        assert_eq!(
            run_imp("let x = 0 in while false do x := 1 end"),
            Ok(Value::Unit)
        );
    }

    #[test]
    fn parameters_are_assignable() {
        assert_eq!(
            run_imp("(lambda x. (x := x + 1; x)) 41"),
            Ok(Value::Int(42))
        );
    }

    #[test]
    fn final_store_is_observable() {
        let e = parse_expr("let x = 1 in x := 2; x").unwrap();
        let (v, store) = eval_imperative_with(&e, &Env::empty(), &EvalOptions::default()).unwrap();
        assert_eq!(v, Value::Int(2));
        assert!(!store.is_empty());
        assert_eq!(store.read(0), &Value::Int(2));
    }

    #[test]
    fn annotations_are_transparent() {
        assert_eq!(run_imp("let x = 0 in {w}:(x := 5); x"), Ok(Value::Int(5)));
    }

    #[test]
    fn fuel_bounds_infinite_loops() {
        let e = parse_expr("while true do 1 end").unwrap();
        assert_eq!(
            eval_imperative_with(&e, &Env::empty(), &EvalOptions::with_fuel(1000)).map(|(v, _)| v),
            Err(EvalError::FuelExhausted)
        );
    }
}
