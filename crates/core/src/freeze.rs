//! `Send`able snapshots of values and environments for fork-join evaluation.
//!
//! [`crate::Value`] and [`crate::Env`] are deliberately `Rc`-based: the
//! evaluators are single-threaded inner loops, and reference counting there
//! is not contended. Crossing a `std::thread::scope` boundary (the
//! `monsem-monitor` parallel machine) therefore goes through an explicit
//! *freeze*: a deep, `Send + Sync` copy of the value or environment, thawed
//! back into `Rc` form on the receiving thread.
//!
//! Freezing preserves **environment shape exactly**: a frozen chain has the
//! same sequence of plain and rec frames as the original, so every lexical
//! address (`VarAddr`) resolved against the original environment stays
//! valid against the thawed one. Rec frames hold syntax (the lambda
//! bindings), not values, which keeps the frozen graph acyclic — closures
//! produced by a rec frame are re-tied on the thawing side exactly as
//! `Env::rec_closure` ties them here.
//!
//! Not every value can cross a thread: lazy thunks (shared mutable cells),
//! store locations (indices into a thread's heap) and external values
//! (arbitrary `Rc<dyn Any>` payloads) are rejected with
//! [`EvalError::UnsupportedConstruct`]. These only arise under the lazy and
//! imperative engines, which the parallel machine does not drive.

use crate::env::{Env, Node};
use crate::error::EvalError;
use crate::prims::Prim;
use crate::value::{Closure, Value};
use monsem_syntax::{Expr, Ident, Lambda};
use std::rc::Rc;
use std::sync::Arc;

/// A `Send + Sync` deep copy of a [`Value`].
#[derive(Debug, Clone, PartialEq)]
pub enum FrozenValue {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String (the allocation is shared with the original).
    Str(Arc<str>),
    /// Unit.
    Unit,
    /// Empty list.
    Nil,
    /// Cons cell.
    Pair(Box<FrozenValue>, Box<FrozenValue>),
    /// A closure: parameter, body syntax, frozen captured environment.
    Closure {
        /// The parameter.
        param: Ident,
        /// The body (already `Arc`-shared syntax).
        body: Arc<Expr>,
        /// The captured environment.
        env: FrozenEnv,
    },
    /// A (possibly partially applied) primitive.
    Prim(Prim, Vec<FrozenValue>),
}

/// A `Send + Sync` deep copy of an [`Env`] chain with identical frame
/// structure.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FrozenEnv(Option<Arc<FrozenNode>>);

#[derive(Debug, PartialEq)]
enum FrozenNode {
    Frame {
        name: Ident,
        value: FrozenValue,
        parent: FrozenEnv,
    },
    Rec {
        bindings: Arc<Vec<(Ident, Arc<Lambda>)>>,
        parent: FrozenEnv,
    },
}

fn unsupported(what: &'static str) -> EvalError {
    EvalError::UnsupportedConstruct(what)
}

/// Deep-copies `v` into a thread-portable form.
///
/// # Errors
///
/// [`EvalError::UnsupportedConstruct`] for thunks, store locations and
/// external values — none of which have a coherent cross-thread meaning.
pub fn freeze(v: &Value) -> Result<FrozenValue, EvalError> {
    match v {
        Value::Int(n) => Ok(FrozenValue::Int(*n)),
        Value::Bool(b) => Ok(FrozenValue::Bool(*b)),
        Value::Str(s) => Ok(FrozenValue::Str(s.clone())),
        Value::Unit => Ok(FrozenValue::Unit),
        Value::Nil => Ok(FrozenValue::Nil),
        Value::Pair(..) => {
            // Iterate the spine so deep lists don't recurse.
            let mut spine = Vec::new();
            let mut cur = v;
            while let Value::Pair(h, t) = cur {
                spine.push(freeze(h)?);
                cur = &**t;
            }
            let mut tail = freeze(cur)?;
            for head in spine.into_iter().rev() {
                tail = FrozenValue::Pair(Box::new(head), Box::new(tail));
            }
            Ok(tail)
        }
        Value::Closure(c) => Ok(FrozenValue::Closure {
            param: c.param.clone(),
            body: c.body.clone(),
            env: freeze_env(&c.env)?,
        }),
        Value::Prim(p, args) => Ok(FrozenValue::Prim(
            *p,
            args.iter().map(freeze).collect::<Result<_, _>>()?,
        )),
        Value::Thunk(_) => Err(unsupported("freezing a lazy thunk across threads")),
        Value::Loc(_) => Err(unsupported("freezing a store location across threads")),
        Value::Ext(_) => Err(unsupported("freezing an external value across threads")),
    }
}

/// Reconstructs a [`Value`] on the current thread.
pub fn thaw(v: &FrozenValue) -> Value {
    match v {
        FrozenValue::Int(n) => Value::Int(*n),
        FrozenValue::Bool(b) => Value::Bool(*b),
        FrozenValue::Str(s) => Value::Str(s.clone()),
        FrozenValue::Unit => Value::Unit,
        FrozenValue::Nil => Value::Nil,
        FrozenValue::Pair(..) => {
            let mut spine = Vec::new();
            let mut cur = v;
            while let FrozenValue::Pair(h, t) = cur {
                spine.push(thaw(h));
                cur = t;
            }
            let mut tail = thaw(cur);
            for head in spine.into_iter().rev() {
                tail = Value::pair(head, tail);
            }
            tail
        }
        FrozenValue::Closure { param, body, env } => Value::Closure(Rc::new(Closure {
            param: param.clone(),
            body: body.clone(),
            env: thaw_env(env),
        })),
        FrozenValue::Prim(p, args) => {
            let args: Vec<Value> = args.iter().map(thaw).collect();
            Value::Prim(*p, Rc::new(args))
        }
    }
}

/// Deep-copies an environment chain, preserving its frame structure (and
/// with it every resolved [`monsem_syntax::VarAddr`]).
///
/// # Errors
///
/// Propagates [`freeze`] errors from any captured value.
pub fn freeze_env(env: &Env) -> Result<FrozenEnv, EvalError> {
    // Walk the chain to the root, then rebuild outside-in so long chains
    // don't recurse (closure values inside frames still freeze recursively,
    // but env *chains* are the deep dimension in practice).
    let mut frames = Vec::new();
    let mut cur = env.clone();
    while let Some(node) = cur.0.clone() {
        match &*node {
            Node::Frame {
                name,
                value,
                parent,
            } => {
                frames.push((Some((name.clone(), freeze(value)?)), None));
                cur = parent.clone();
            }
            Node::Rec { bindings, parent } => {
                frames.push((None, Some(bindings.clone())));
                cur = parent.clone();
            }
        }
    }
    let mut out = FrozenEnv(None);
    for frame in frames.into_iter().rev() {
        out = match frame {
            (Some((name, value)), None) => FrozenEnv(Some(Arc::new(FrozenNode::Frame {
                name,
                value,
                parent: out,
            }))),
            (None, Some(bindings)) => FrozenEnv(Some(Arc::new(FrozenNode::Rec {
                bindings,
                parent: out,
            }))),
            _ => unreachable!("each frame is exactly one kind"),
        };
    }
    Ok(out)
}

/// Reconstructs an [`Env`] with the same frame structure on this thread.
pub fn thaw_env(env: &FrozenEnv) -> Env {
    let mut frames = Vec::new();
    let mut cur = env;
    while let FrozenEnv(Some(node)) = cur {
        frames.push(&**node);
        cur = match &**node {
            FrozenNode::Frame { parent, .. } => parent,
            FrozenNode::Rec { parent, .. } => parent,
        };
    }
    let mut out = Env::empty();
    for node in frames.into_iter().rev() {
        out = match node {
            FrozenNode::Frame { name, value, .. } => out.extend(name.clone(), thaw(value)),
            FrozenNode::Rec { bindings, .. } => out.extend_rec(bindings.clone()),
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{eval_with, EvalOptions};
    use monsem_syntax::parse_expr;

    fn assert_send<T: Send + Sync>(_: &T) {}

    #[test]
    fn basic_values_round_trip() {
        for v in [
            Value::Int(-3),
            Value::Bool(true),
            Value::Unit,
            Value::Nil,
            Value::Str(Arc::from("hi")),
            Value::list([Value::Int(1), Value::Int(2)]),
            Value::pair(Value::Int(1), Value::Int(2)), // improper pair
        ] {
            let frozen = freeze(&v).unwrap();
            assert_send(&frozen);
            assert_eq!(thaw(&frozen), v);
        }
    }

    #[test]
    fn closures_survive_freezing_and_still_run() {
        let e = parse_expr("lambda x. x + y").unwrap();
        let env = Env::empty().extend(Ident::new("y"), Value::Int(10));
        let v = eval_with(&e, &env, &EvalOptions::default()).unwrap();
        let frozen = freeze(&v).unwrap();
        let thawed = thaw(&frozen);
        // Apply the thawed closure: (lambda x. x + y) 32 with y = 10.
        let app_env = Env::empty().extend(Ident::new("f"), thawed);
        let call = parse_expr("f 32").unwrap();
        assert_eq!(
            eval_with(&call, &app_env, &EvalOptions::default()),
            Ok(Value::Int(42))
        );
    }

    #[test]
    fn rec_environments_keep_lexical_addresses_valid() {
        // Evaluate a letrec body in an env, freeze mid-flight env shape via
        // a closure, and check the recursive function still computes.
        let e = parse_expr(
            "letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in lambda n. fac n",
        )
        .unwrap();
        let v = eval_with(&e, &Env::empty(), &EvalOptions::default()).unwrap();
        let frozen = freeze(&v).unwrap();
        assert_send(&frozen);
        let thawed = thaw(&frozen);
        let app_env = Env::empty().extend(Ident::new("g"), thawed);
        let call = parse_expr("g 5").unwrap();
        assert_eq!(
            eval_with(&call, &app_env, &EvalOptions::default()),
            Ok(Value::Int(120))
        );
    }

    #[test]
    fn partially_applied_prims_round_trip() {
        let e = parse_expr("(+) 1").unwrap();
        let v = eval_with(&e, &Env::empty(), &EvalOptions::default()).unwrap();
        let thawed = thaw(&freeze(&v).unwrap());
        let app_env = Env::empty().extend(Ident::new("inc"), thawed);
        assert_eq!(
            eval_with(
                &parse_expr("inc 41").unwrap(),
                &app_env,
                &EvalOptions::default()
            ),
            Ok(Value::Int(42))
        );
    }

    #[test]
    fn thunks_and_locations_are_rejected() {
        use crate::value::ThunkState;
        use std::cell::RefCell;
        let t = Value::Thunk(Rc::new(RefCell::new(ThunkState::InProgress)));
        assert!(matches!(
            freeze(&t),
            Err(EvalError::UnsupportedConstruct(_))
        ));
        assert!(matches!(
            freeze(&Value::Loc(0)),
            Err(EvalError::UnsupportedConstruct(_))
        ));
    }

    #[test]
    fn frozen_values_cross_a_real_thread() {
        let e = parse_expr("lambda x. x * x").unwrap();
        let v = eval_with(&e, &Env::empty(), &EvalOptions::default()).unwrap();
        let frozen = freeze(&v).unwrap();
        let result = std::thread::spawn(move || {
            let thawed = thaw(&frozen);
            let env = Env::empty().extend(Ident::new("sq"), thawed);
            let v = eval_with(&parse_expr("sq 9").unwrap(), &env, &EvalOptions::default()).unwrap();
            // `Value` itself is !Send — ship the result back frozen.
            freeze(&v).unwrap()
        })
        .join()
        .unwrap();
        assert_eq!(thaw(&result), Value::Int(81));
    }
}
