//! Denotable values — the paper's `V = Bas + Fun` (Figure 2, *Alg*),
//! extended with lists (used by the §8 demon), partially applied
//! primitives, memoized thunks (lazy module) and store locations
//! (imperative module).

use crate::env::Env;
use crate::prims::Prim;
use monsem_syntax::{Expr, Ident};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// A user-defined function value: the paper's
/// `(λv. E⟦e⟧ ρ[x↦v]) in Fun`.
#[derive(Debug, Clone)]
pub struct Closure {
    /// The bound variable `x`.
    pub param: Ident,
    /// The body `e`.
    pub body: Arc<Expr>,
    /// The captured environment `ρ`.
    pub env: Env,
}

/// The state of a call-by-need thunk (lazy language module, §9.2).
#[derive(Debug)]
pub enum ThunkState {
    /// Not yet forced.
    Pending {
        /// The suspended expression.
        expr: Arc<Expr>,
        /// Its environment.
        env: Env,
    },
    /// Currently being forced — observing this means the value depends on
    /// itself (a "black hole").
    InProgress,
    /// Forced to a value (memoized).
    Forced(Value),
}

/// A shared, memoized thunk.
pub type ThunkRef = Rc<RefCell<ThunkState>>;

/// The tail of a cons cell.
///
/// A dedicated wrapper so that dropping a long, uniquely-owned list
/// unlinks the chain **iteratively** — a million-element list neither
/// overflows the stack when built nor when freed. Dereferences to the
/// tail [`Value`].
#[derive(Clone, Debug)]
pub struct Tail(Rc<Value>);

impl Tail {
    /// Wraps a tail value.
    pub fn new(v: Value) -> Tail {
        Tail(Rc::new(v))
    }

    /// The shared tail.
    pub fn as_rc(&self) -> &Rc<Value> {
        &self.0
    }
}

impl From<Rc<Value>> for Tail {
    fn from(rc: Rc<Value>) -> Tail {
        Tail(rc)
    }
}

impl std::ops::Deref for Tail {
    type Target = Value;

    fn deref(&self) -> &Value {
        &self.0
    }
}

impl fmt::Display for Tail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl PartialEq for Tail {
    fn eq(&self, other: &Tail) -> bool {
        **self == **other
    }
}

impl PartialEq<Value> for Tail {
    fn eq(&self, other: &Value) -> bool {
        **self == *other
    }
}

thread_local! {
    /// Shared `Nil` used to unlink chains cheaply during drops.
    static NIL: Rc<Value> = Rc::new(Value::Nil);
}

impl Drop for Tail {
    fn drop(&mut self) {
        // Fast path: scalar or shared tails drop trivially.
        if !matches!(&*self.0, Value::Pair(..)) || Rc::strong_count(&self.0) > 1 {
            return;
        }
        // Unlink the uniquely-owned chain iteratively.
        let mut cur = NIL.with(|nil| std::mem::replace(&mut self.0, nil.clone()));
        while let Ok(mut v) = Rc::try_unwrap(cur) {
            let Value::Pair(_, t) = &mut v else { break };
            cur = NIL.with(|nil| std::mem::replace(&mut t.0, nil.clone()));
            // `v` now has a Nil tail and drops shallowly.
        }
    }
}

/// Denotable values `v ∈ V`.
#[derive(Debug, Clone)]
pub enum Value {
    /// Integer (∈ `Bas`).
    Int(i64),
    /// Boolean (∈ `Bas`).
    Bool(bool),
    /// String (∈ `Bas`; used by the `Ans_str` answer algebra of §3.1).
    Str(Arc<str>),
    /// The unit value (imperative module).
    Unit,
    /// The empty list `[]`.
    Nil,
    /// A cons cell. The tail is wrapped so long lists free iteratively;
    /// it dereferences to the tail [`Value`].
    Pair(Rc<Value>, Tail),
    /// A user function (∈ `Fun`).
    Closure(Rc<Closure>),
    /// A primitive, possibly partially applied (collected arguments in
    /// application order).
    Prim(Prim, Rc<Vec<Value>>),
    /// A call-by-need suspension (lazy module only; never escapes as a
    /// final answer).
    Thunk(ThunkRef),
    /// A store location (imperative module only; environments bind
    /// variables to locations).
    Loc(usize),
    /// An engine-specific function value (e.g. a compiled closure from
    /// `monsem-pe`). Opaque to monitors and to the `=` primitive; only
    /// the engine that created it can apply it.
    Ext(ExtValue),
}

/// An opaque, engine-owned value. Compared by identity; displayed by tag.
#[derive(Clone)]
pub struct ExtValue {
    /// A short tag naming the owning engine (shown by `Display`).
    pub tag: &'static str,
    /// The payload, downcast by the owning engine.
    pub payload: Rc<dyn std::any::Any>,
}

impl ExtValue {
    /// Wraps an engine value.
    pub fn new<T: 'static>(tag: &'static str, payload: T) -> Self {
        ExtValue {
            tag,
            payload: Rc::new(payload),
        }
    }

    /// Recovers the engine value.
    pub fn downcast<T: 'static>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }
}

impl fmt::Debug for ExtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ExtValue({})", self.tag)
    }
}

impl Value {
    /// Builds a primitive value with no collected arguments. The empty
    /// argument vector is shared per thread — every primitive *reference*
    /// constructs one of these, and a refcount bump beats an allocation.
    pub fn prim(p: Prim) -> Value {
        thread_local! {
            static NO_ARGS: Rc<Vec<Value>> = Rc::new(Vec::new());
        }
        Value::Prim(p, NO_ARGS.with(Rc::clone))
    }

    /// Builds a cons cell.
    pub fn pair(head: Value, tail: Value) -> Value {
        Value::Pair(Rc::new(head), Tail::new(tail))
    }

    /// Builds a proper list.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Value {
        let items: Vec<Value> = items.into_iter().collect();
        items
            .into_iter()
            .rev()
            .fold(Value::Nil, |tail, head| Value::pair(head, tail))
    }

    /// A short name for the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::Str(_) => "string",
            Value::Unit => "unit",
            Value::Nil => "empty list",
            Value::Pair(..) => "pair",
            Value::Closure(_) => "function",
            Value::Prim(..) => "primitive",
            Value::Thunk(_) => "thunk",
            Value::Loc(_) => "location",
            Value::Ext(e) => e.tag,
        }
    }

    /// Whether this value is a member of the paper's basic-value domain
    /// `Bas` (plus lists of basic values, which the §8 examples treat as
    /// observable).
    pub fn is_basic(&self) -> bool {
        // Iterative along cons tails, so arbitrarily long lists are fine
        // (heads recurse; deeply left-nested pairs are not a list shape).
        let mut cur = self;
        loop {
            match cur {
                Value::Int(_) | Value::Bool(_) | Value::Str(_) | Value::Unit | Value::Nil => {
                    return true
                }
                Value::Pair(h, t) => {
                    if !h.is_basic() {
                        return false;
                    }
                    cur = t;
                }
                Value::Closure(_)
                | Value::Prim(..)
                | Value::Thunk(_)
                | Value::Loc(_)
                | Value::Ext(_) => return false,
            }
        }
    }

    /// Collects a proper list into a vector; `None` for improper lists or
    /// non-lists.
    pub fn iter_list(&self) -> Option<Vec<&Value>> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Value::Nil => return Some(out),
                Value::Pair(h, t) => {
                    out.push(h.as_ref());
                    cur = t;
                }
                _ => return None,
            }
        }
    }
}

/// Structural equality on observable values.
///
/// Functions compare by identity (two closures are equal only if they are
/// the *same* closure); thunks never compare equal. This is exactly the
/// equality the soundness theorem (§7) needs: answers drawn from `Bas`
/// compare structurally.
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Unit, Value::Unit) => true,
            (Value::Nil, Value::Nil) => true,
            (Value::Pair(..), Value::Pair(..)) => {
                // Iterative along tails, so long lists compare without
                // exhausting the stack.
                let (mut x, mut y) = (self, other);
                loop {
                    match (x, y) {
                        (Value::Pair(h1, t1), Value::Pair(h2, t2)) => {
                            if h1 != h2 {
                                return false;
                            }
                            x = t1;
                            y = t2;
                        }
                        _ => return x == y,
                    }
                }
            }
            (Value::Closure(a), Value::Closure(b)) => Rc::ptr_eq(a, b),
            (Value::Prim(a, xs), Value::Prim(b, ys)) => a == b && xs == ys,
            (Value::Loc(a), Value::Loc(b)) => a == b,
            (Value::Ext(a), Value::Ext(b)) => Rc::ptr_eq(&a.payload, &b.payload),
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Unit => f.write_str("()"),
            Value::Nil => f.write_str("[]"),
            Value::Pair(..) => {
                if let Some(items) = self.iter_list() {
                    f.write_str("[")?;
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{v}")?;
                    }
                    f.write_str("]")
                } else if let Value::Pair(h, t) = self {
                    write!(f, "({h} . {})", &**t)
                } else {
                    unreachable!()
                }
            }
            Value::Closure(c) => write!(f, "<function:{}>", c.param),
            Value::Prim(p, args) if args.is_empty() => write!(f, "<primitive:{p}>"),
            Value::Prim(p, args) => write!(f, "<primitive:{p}/{}>", args.len()),
            Value::Thunk(_) => f.write_str("<thunk>"),
            Value::Loc(l) => write!(f, "<loc:{l}>"),
            Value::Ext(e) => write!(f, "<{}>", e.tag),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lists_display_like_source_literals() {
        let v = Value::list([Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(v.to_string(), "[1, 2, 3]");
        assert_eq!(Value::Nil.to_string(), "[]");
    }

    #[test]
    fn improper_pairs_display_with_a_dot() {
        let v = Value::pair(Value::Int(1), Value::Int(2));
        assert_eq!(v.to_string(), "(1 . 2)");
    }

    #[test]
    fn structural_equality_on_ground_values() {
        assert_eq!(
            Value::list([Value::Int(1), Value::Int(2)]),
            Value::list([Value::Int(1), Value::Int(2)])
        );
        assert_ne!(Value::Int(1), Value::Bool(true));
        assert_ne!(Value::Nil, Value::Unit);
    }

    #[test]
    fn closures_compare_by_identity() {
        let c = Rc::new(Closure {
            param: Ident::new("x"),
            body: Arc::new(Expr::var("x")),
            env: Env::empty(),
        });
        let a = Value::Closure(c.clone());
        let b = Value::Closure(c);
        assert_eq!(a, b);
        let other = Value::Closure(Rc::new(Closure {
            param: Ident::new("x"),
            body: Arc::new(Expr::var("x")),
            env: Env::empty(),
        }));
        assert_ne!(a, other);
    }

    #[test]
    fn is_basic_rejects_functions_inside_lists() {
        let fun = Value::prim(Prim::Add);
        assert!(!Value::pair(Value::Int(1), fun).is_basic());
        assert!(Value::list([Value::Int(1)]).is_basic());
    }

    #[test]
    fn iter_list_rejects_improper_lists() {
        assert!(Value::pair(Value::Int(1), Value::Int(2))
            .iter_list()
            .is_none());
        assert_eq!(Value::Nil.iter_list(), Some(vec![]));
    }
}
