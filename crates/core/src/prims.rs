//! Primitive operations.
//!
//! The paper assumes `-`, `*`, `=`, `hd`, `tl`, … are "primitives" bound in
//! the initial environment. Each primitive is a curried function value;
//! applying one collects arguments until the arity is reached, then
//! computes. All arithmetic is checked so the standard, monitored and
//! specialized engines agree exactly (overflow is a reported error, not a
//! wrap or a panic).

use crate::error::EvalError;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// The primitive operations of the initial environment.
///
/// ```
/// use monsem_core::prims::Prim;
/// use monsem_core::Value;
/// let plus = Prim::by_name("+").unwrap();
/// assert_eq!(plus.arity(), 2);
/// assert_eq!(plus.apply(&[Value::Int(40), Value::Int(2)]), Ok(Value::Int(42)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prim {
    /// `+` on integers
    Add,
    /// `-` on integers
    Sub,
    /// `*` on integers
    Mul,
    /// `/` integer division
    Div,
    /// `mod`
    Mod,
    /// unary negation (`neg`)
    Neg,
    /// `abs`
    Abs,
    /// `min`
    Min,
    /// `max`
    Max,
    /// `=` structural equality on basic values
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `not`
    Not,
    /// `cons` (also written infix `:`)
    Cons,
    /// `hd`
    Hd,
    /// `tl`
    Tl,
    /// `null?`
    IsNull,
    /// `length` of a proper list
    Length,
    /// `++` — append for strings and lists
    Append,
    /// `toStr` — render any basic value as a string (the paper's `toStr`
    /// in the `Ans_str` answer algebra, §3.1)
    ToStr,
    /// `par_map f xs` — `map` with fork-join evaluation order: the strict
    /// machines rewrite a saturated application into `par(f x₁, …, f xₙ)`,
    /// so under the parallel machine the calls run on the worker pool.
    /// Unlike the other primitives it re-enters the evaluator, so
    /// [`Prim::apply`] rejects it; the machines intercept it at
    /// application time.
    ParMap,
    /// `int?` — total type test: is the value an integer? Residual
    /// monitoring code classifies observed values with it (the compiled
    /// spec's value classes are integer regions, so non-integers must be
    /// told apart without raising a type error).
    IsInt,
    /// `pair?` — total type test: is the value a cons cell? Lets residual
    /// code walk possibly-improper lists safely (`hd`/`tl` error on
    /// non-pairs).
    IsPair,
}

impl Prim {
    /// All primitives with their source-level names.
    pub const ALL: &'static [(&'static str, Prim)] = &[
        ("+", Prim::Add),
        ("-", Prim::Sub),
        ("*", Prim::Mul),
        ("/", Prim::Div),
        ("mod", Prim::Mod),
        ("neg", Prim::Neg),
        ("abs", Prim::Abs),
        ("min", Prim::Min),
        ("max", Prim::Max),
        ("=", Prim::Eq),
        ("<", Prim::Lt),
        (">", Prim::Gt),
        ("<=", Prim::Le),
        (">=", Prim::Ge),
        ("not", Prim::Not),
        ("cons", Prim::Cons),
        ("hd", Prim::Hd),
        ("tl", Prim::Tl),
        ("null?", Prim::IsNull),
        ("length", Prim::Length),
        ("++", Prim::Append),
        ("toStr", Prim::ToStr),
        // Keep new primitives at the end: `VarAddr::Base` slots index into
        // this table, and stable prefixes keep resolved programs valid.
        ("par_map", Prim::ParMap),
        ("int?", Prim::IsInt),
        ("pair?", Prim::IsPair),
    ];

    /// Resolves a primitive by its source-level name (linear scan; the
    /// evaluators use the interned fast path [`Prim::by_ident`]).
    pub fn by_name(name: &str) -> Option<Prim> {
        Prim::ALL.iter().find(|(n, _)| *n == name).map(|(_, p)| *p)
    }

    /// Resolves a primitive by interned symbol: one indexed read into a
    /// per-thread dense table (symbols are small integers, so the table is
    /// sym-indexed — no hashing, no string comparison). This sits at the
    /// bottom of every [`crate::Env`] lookup.
    ///
    /// The table itself is `thread_local!` only to avoid synchronization:
    /// interning is global, so every thread derives the *same* symbols for
    /// the primitive names and builds an identical table. Symbols created
    /// on other threads therefore resolve correctly here.
    pub fn by_ident(name: &monsem_syntax::Ident) -> Option<Prim> {
        thread_local! {
            static BY_SYM: Vec<Option<Prim>> = {
                let entries: Vec<(u32, Prim)> = Prim::ALL
                    .iter()
                    .map(|(n, p)| (monsem_syntax::Ident::new(n).sym(), *p))
                    .collect();
                let len = entries.iter().map(|(s, _)| *s + 1).max().unwrap_or(0);
                let mut table = vec![None; len as usize];
                for (s, p) in entries {
                    table[s as usize] = Some(p);
                }
                table
            };
        }
        BY_SYM.with(|table| table.get(name.sym() as usize).copied().flatten())
    }

    /// The source-level name.
    pub fn name(self) -> &'static str {
        Prim::ALL
            .iter()
            .find(|(_, p)| *p == self)
            .map(|(n, _)| *n)
            .expect("every primitive is in ALL")
    }

    /// Number of arguments the primitive consumes.
    pub fn arity(self) -> usize {
        match self {
            Prim::Neg
            | Prim::Abs
            | Prim::Not
            | Prim::Hd
            | Prim::Tl
            | Prim::IsNull
            | Prim::Length
            | Prim::ToStr
            | Prim::IsInt
            | Prim::IsPair => 1,
            _ => 2,
        }
    }

    /// Applies the primitive to a full argument vector.
    ///
    /// # Errors
    ///
    /// [`EvalError::TypeError`] on domain violations,
    /// [`EvalError::DivisionByZero`], [`EvalError::EmptyList`] and
    /// [`EvalError::Overflow`] as appropriate.
    pub fn apply(self, args: &[Value]) -> Result<Value, EvalError> {
        debug_assert_eq!(args.len(), self.arity());
        let int = |v: &Value| -> Result<i64, EvalError> {
            match v {
                Value::Int(n) => Ok(*n),
                other => Err(EvalError::TypeError {
                    expected: "an integer",
                    found: other.to_string(),
                    operation: self.name(),
                }),
            }
        };
        let boolean = |v: &Value| -> Result<bool, EvalError> {
            match v {
                Value::Bool(b) => Ok(*b),
                other => Err(EvalError::TypeError {
                    expected: "a boolean",
                    found: other.to_string(),
                    operation: self.name(),
                }),
            }
        };
        match self {
            Prim::Add => int(&args[0])?
                .checked_add(int(&args[1])?)
                .map(Value::Int)
                .ok_or(EvalError::Overflow("+")),
            Prim::Sub => int(&args[0])?
                .checked_sub(int(&args[1])?)
                .map(Value::Int)
                .ok_or(EvalError::Overflow("-")),
            Prim::Mul => int(&args[0])?
                .checked_mul(int(&args[1])?)
                .map(Value::Int)
                .ok_or(EvalError::Overflow("*")),
            Prim::Div => {
                let d = int(&args[1])?;
                if d == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                int(&args[0])?
                    .checked_div(d)
                    .map(Value::Int)
                    .ok_or(EvalError::Overflow("/"))
            }
            Prim::Mod => {
                let d = int(&args[1])?;
                if d == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                int(&args[0])?
                    .checked_rem(d)
                    .map(Value::Int)
                    .ok_or(EvalError::Overflow("mod"))
            }
            Prim::Neg => int(&args[0])?
                .checked_neg()
                .map(Value::Int)
                .ok_or(EvalError::Overflow("neg")),
            Prim::Abs => int(&args[0])?
                .checked_abs()
                .map(Value::Int)
                .ok_or(EvalError::Overflow("abs")),
            Prim::Min => Ok(Value::Int(int(&args[0])?.min(int(&args[1])?))),
            Prim::Max => Ok(Value::Int(int(&args[0])?.max(int(&args[1])?))),
            Prim::Eq => structural_eq(&args[0], &args[1], self.name()).map(Value::Bool),
            Prim::Lt => Ok(Value::Bool(int(&args[0])? < int(&args[1])?)),
            Prim::Gt => Ok(Value::Bool(int(&args[0])? > int(&args[1])?)),
            Prim::Le => Ok(Value::Bool(int(&args[0])? <= int(&args[1])?)),
            Prim::Ge => Ok(Value::Bool(int(&args[0])? >= int(&args[1])?)),
            Prim::Not => Ok(Value::Bool(!boolean(&args[0])?)),
            Prim::Cons => Ok(Value::pair(args[0].clone(), args[1].clone())),
            Prim::Hd => match &args[0] {
                Value::Pair(h, _) => Ok((**h).clone()),
                Value::Nil => Err(EvalError::EmptyList("hd")),
                other => Err(EvalError::TypeError {
                    expected: "a list",
                    found: other.to_string(),
                    operation: "hd",
                }),
            },
            Prim::Tl => match &args[0] {
                Value::Pair(_, t) => Ok((**t).clone()),
                Value::Nil => Err(EvalError::EmptyList("tl")),
                other => Err(EvalError::TypeError {
                    expected: "a list",
                    found: other.to_string(),
                    operation: "tl",
                }),
            },
            Prim::IsNull => Ok(Value::Bool(matches!(&args[0], Value::Nil))),
            Prim::Length => {
                let items = args[0].iter_list().ok_or_else(|| EvalError::TypeError {
                    expected: "a proper list",
                    found: args[0].to_string(),
                    operation: "length",
                })?;
                Ok(Value::Int(items.len() as i64))
            }
            Prim::Append => match (&args[0], &args[1]) {
                (Value::Str(a), Value::Str(b)) => {
                    Ok(Value::Str(Arc::from(format!("{a}{b}").as_str())))
                }
                (a, b) => {
                    let items = a.iter_list().ok_or_else(|| EvalError::TypeError {
                        expected: "two strings or two lists",
                        found: a.to_string(),
                        operation: "++",
                    })?;
                    b.iter_list().ok_or_else(|| EvalError::TypeError {
                        expected: "two strings or two lists",
                        found: b.to_string(),
                        operation: "++",
                    })?;
                    Ok(items
                        .into_iter()
                        .rev()
                        .fold(b.clone(), |tail, head| Value::pair(head.clone(), tail)))
                }
            },
            Prim::ToStr => Ok(Value::Str(Arc::from(args[0].to_string().as_str()))),
            Prim::IsInt => Ok(Value::Bool(matches!(&args[0], Value::Int(_)))),
            Prim::IsPair => Ok(Value::Bool(matches!(&args[0], Value::Pair(..)))),
            // Re-enters the evaluator; the strict machines intercept a
            // saturated `par_map` before this point is reachable.
            Prim::ParMap => Err(EvalError::UnsupportedConstruct(
                "par_map (only the strict machines evaluate it)",
            )),
        }
    }
}

/// Structural equality as the `=` primitive sees it: defined on basic
/// values (including lists of them), an error if a function is involved.
fn structural_eq(a: &Value, b: &Value, op: &'static str) -> Result<bool, EvalError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(x == y),
        (Value::Bool(x), Value::Bool(y)) => Ok(x == y),
        (Value::Str(x), Value::Str(y)) => Ok(x == y),
        (Value::Unit, Value::Unit) => Ok(true),
        (Value::Nil, Value::Nil) => Ok(true),
        (Value::Nil, Value::Pair(..)) | (Value::Pair(..), Value::Nil) => Ok(false),
        (Value::Pair(..), Value::Pair(..)) => {
            // Iterative along tails (long lists).
            let (mut x, mut y) = (a, b);
            loop {
                match (x, y) {
                    (Value::Pair(h1, t1), Value::Pair(h2, t2)) => {
                        if !structural_eq(h1, h2, op)? {
                            return Ok(false);
                        }
                        x = t1;
                        y = t2;
                    }
                    _ => return structural_eq(x, y, op),
                }
            }
        }
        (Value::Closure(_) | Value::Prim(..), _) | (_, Value::Closure(_) | Value::Prim(..)) => {
            Err(EvalError::TypeError {
                expected: "comparable (non-function) values",
                found: format!("{a} = {b}"),
                operation: op,
            })
        }
        _ => Ok(false),
    }
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_checked() {
        assert_eq!(
            Prim::Add.apply(&[Value::Int(2), Value::Int(3)]),
            Ok(Value::Int(5))
        );
        assert_eq!(
            Prim::Add.apply(&[Value::Int(i64::MAX), Value::Int(1)]),
            Err(EvalError::Overflow("+"))
        );
        assert_eq!(
            Prim::Div.apply(&[Value::Int(1), Value::Int(0)]),
            Err(EvalError::DivisionByZero)
        );
        assert_eq!(
            Prim::Div.apply(&[Value::Int(7), Value::Int(2)]),
            Ok(Value::Int(3))
        );
    }

    #[test]
    fn equality_spans_lists_and_scalars() {
        let l1 = Value::list([Value::Int(1), Value::Int(2)]);
        let l2 = Value::list([Value::Int(1), Value::Int(2)]);
        assert_eq!(Prim::Eq.apply(&[l1.clone(), l2]), Ok(Value::Bool(true)));
        assert_eq!(
            Prim::Eq.apply(&[l1.clone(), Value::Nil]),
            Ok(Value::Bool(false))
        );
        assert_eq!(
            Prim::Eq.apply(&[Value::Int(1), Value::Bool(true)]),
            Ok(Value::Bool(false))
        );
        assert!(Prim::Eq
            .apply(&[Value::prim(Prim::Add), Value::Int(1)])
            .is_err());
    }

    #[test]
    fn list_operations() {
        let l = Value::list([Value::Int(1), Value::Int(2)]);
        assert_eq!(Prim::Hd.apply(std::slice::from_ref(&l)), Ok(Value::Int(1)));
        assert_eq!(
            Prim::Tl.apply(std::slice::from_ref(&l)),
            Ok(Value::list([Value::Int(2)]))
        );
        assert_eq!(
            Prim::Hd.apply(&[Value::Nil]),
            Err(EvalError::EmptyList("hd"))
        );
        assert_eq!(Prim::Length.apply(&[l]), Ok(Value::Int(2)));
        assert_eq!(Prim::IsNull.apply(&[Value::Nil]), Ok(Value::Bool(true)));
    }

    #[test]
    fn type_tests_are_total() {
        for v in [
            Value::Int(3),
            Value::Bool(true),
            Value::Nil,
            Value::Unit,
            Value::pair(Value::Int(1), Value::Int(2)),
            Value::prim(Prim::Add),
        ] {
            let is_int = Prim::IsInt.apply(std::slice::from_ref(&v)).unwrap();
            let is_pair = Prim::IsPair.apply(std::slice::from_ref(&v)).unwrap();
            assert_eq!(is_int, Value::Bool(matches!(v, Value::Int(_))));
            assert_eq!(is_pair, Value::Bool(matches!(v, Value::Pair(..))));
        }
    }

    #[test]
    fn append_handles_strings_and_lists() {
        let a = Value::Str(Arc::from("ab"));
        let b = Value::Str(Arc::from("cd"));
        assert_eq!(
            Prim::Append.apply(&[a, b]),
            Ok(Value::Str(Arc::from("abcd")))
        );
        let l1 = Value::list([Value::Int(1)]);
        let l2 = Value::list([Value::Int(2)]);
        assert_eq!(
            Prim::Append.apply(&[l1, l2]),
            Ok(Value::list([Value::Int(1), Value::Int(2)]))
        );
    }

    #[test]
    fn names_round_trip() {
        for (name, p) in Prim::ALL {
            assert_eq!(Prim::by_name(name), Some(*p));
            assert_eq!(p.name(), *name);
        }
        assert_eq!(Prim::by_name("frobnicate"), None);
    }

    #[test]
    fn to_str_matches_display() {
        assert_eq!(
            Prim::ToStr.apply(&[Value::list([Value::Int(1)])]),
            Ok(Value::Str(Arc::from("[1]")))
        );
    }
}
