//! The lazy (call-by-need) language module (§9.2).
//!
//! The paper's Haskell environment "allows automatic integration of
//! monitoring tools with several language modules (lazy, strict and
//! imperative languages)". This module gives `L_λ` a call-by-need
//! semantics: function arguments and `let`/`letrec`-bound values are
//! suspended as memoized thunks and forced on first use.
//!
//! Primitives are strict in all arguments, and data constructors (`cons`)
//! are built from forced values, so laziness lives exactly in *bindings*:
//! an argument that is never used is never evaluated. Self-dependent
//! values are detected as [`EvalError::BlackHole`].

use crate::env::{Env, LetrecPlan};
use crate::error::EvalError;
use crate::machine::{constant, EvalOptions, LookupMode};
use crate::prims::Prim;
use crate::resolve::resolve_for;
use crate::value::{Closure, ThunkRef, ThunkState, Value};
use monsem_syntax::{Binding, Expr};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Continuation frames of the lazy machine.
#[derive(Debug)]
enum Frame {
    /// After the function value of `e₁ e₂` arrives, apply it to a thunk of
    /// the (unevaluated) argument. Call-by-name order: the function
    /// expression is evaluated first.
    ApplyTo { arg: Arc<Expr>, env: Env },
    /// Waiting for the condition of an `if`.
    Branch {
        then: Arc<Expr>,
        els: Arc<Expr>,
        env: Env,
    },
    /// Memoize the value into the thunk being forced.
    Update(ThunkRef),
    /// A primitive waiting for its `index`-th argument to be forced.
    PrimArgs {
        prim: Prim,
        args: Vec<Value>,
        index: usize,
    },
    /// Discard and evaluate the second expression of a sequence.
    Discard { second: Arc<Expr>, env: Env },
}

enum State {
    Eval(Arc<Expr>, Env),
    Continue(Value),
}

/// Evaluates `expr` call-by-need in the initial environment.
///
/// # Errors
///
/// Any [`EvalError`]; additionally [`EvalError::BlackHole`] when a value
/// depends on itself.
pub fn eval_lazy(expr: &Expr) -> Result<Value, EvalError> {
    eval_lazy_with(expr, &Env::empty(), &EvalOptions::default())
}

/// Evaluates `expr` call-by-need in `env` with the given options.
///
/// # Errors
///
/// Same as [`eval_lazy`], plus [`EvalError::FuelExhausted`].
pub fn eval_lazy_with(expr: &Expr, env: &Env, options: &EvalOptions) -> Result<Value, EvalError> {
    let mut stack: Vec<Frame> = Vec::new();
    let program = match options.lookup {
        LookupMode::ByAddress => Arc::new(resolve_for(expr, env)),
        LookupMode::BySymbol | LookupMode::ByString => Arc::new(expr.clone()),
    };
    let by_string = options.lookup == LookupMode::ByString;
    let mut state = State::Eval(program, env.clone());
    let mut fuel = options.fuel;

    loop {
        if fuel == 0 {
            return Err(EvalError::FuelExhausted);
        }
        fuel -= 1;

        state = match state {
            State::Eval(expr, env) => match &*expr {
                Expr::Con(c) => State::Continue(constant(c)),
                Expr::VarAt(_, addr) => match env.lookup_addr(addr) {
                    Value::Thunk(t) => force(t, &mut stack)?,
                    v => State::Continue(v),
                },
                Expr::Var(x) => {
                    let v = if by_string {
                        env.lookup_str(x)
                    } else {
                        env.lookup(x)
                    };
                    match v {
                        Some(Value::Thunk(t)) => force(t, &mut stack)?,
                        Some(v) => State::Continue(v),
                        None => return Err(EvalError::UnboundVariable(x.clone())),
                    }
                }
                Expr::Lambda(l) => State::Continue(Value::Closure(Rc::new(Closure {
                    param: l.param.clone(),
                    body: l.body.clone(),
                    env: env.clone(),
                }))),
                Expr::If(c, t, e) => {
                    stack.push(Frame::Branch {
                        then: t.clone(),
                        els: e.clone(),
                        env: env.clone(),
                    });
                    State::Eval(c.clone(), env)
                }
                Expr::App(f, a) => {
                    stack.push(Frame::ApplyTo {
                        arg: a.clone(),
                        env: env.clone(),
                    });
                    State::Eval(f.clone(), env)
                }
                Expr::Let(x, v, b) => {
                    let t = suspend(v.clone(), env.clone());
                    State::Eval(b.clone(), env.extend(x.clone(), t))
                }
                Expr::Letrec(bs, body) => State::Eval(body.clone(), letrec_env(bs, &env)),
                Expr::Ann(_, inner) => State::Eval(inner.clone(), env),
                Expr::Seq(a, b) => {
                    stack.push(Frame::Discard {
                        second: b.clone(),
                        env: env.clone(),
                    });
                    State::Eval(a.clone(), env)
                }
                Expr::Assign(..) => return Err(EvalError::UnsupportedConstruct("assignment")),
                Expr::While(..) => return Err(EvalError::UnsupportedConstruct("while")),
                Expr::Par(..) => {
                    return Err(EvalError::UnsupportedConstruct(
                        "par (only the strict machines evaluate it)",
                    ))
                }
            },
            State::Continue(value) => match stack.pop() {
                None => return Ok(value),
                Some(Frame::ApplyTo { arg, env }) => match value {
                    Value::Closure(c) => {
                        let t = suspend(arg, env);
                        State::Eval(c.body.clone(), c.env.extend(c.param.clone(), t))
                    }
                    Value::Prim(p, collected) => {
                        let mut args = collected.as_ref().clone();
                        args.push(suspend(arg, env));
                        if args.len() == p.arity() {
                            prim_step(p, args, &mut stack)?
                        } else {
                            State::Continue(Value::Prim(p, Rc::new(args)))
                        }
                    }
                    other => return Err(EvalError::NotAFunction(other.to_string())),
                },
                Some(Frame::Branch { then, els, env }) => match value {
                    Value::Bool(true) => State::Eval(then, env),
                    Value::Bool(false) => State::Eval(els, env),
                    other => return Err(EvalError::NonBooleanCondition(other.to_string())),
                },
                Some(Frame::Update(t)) => {
                    *t.borrow_mut() = ThunkState::Forced(value.clone());
                    State::Continue(value)
                }
                Some(Frame::PrimArgs {
                    prim,
                    mut args,
                    index,
                }) => {
                    args[index] = value;
                    prim_step(prim, args, &mut stack)?
                }
                Some(Frame::Discard { second, env }) => State::Eval(second, env),
            },
        };
    }
}

/// Wraps an expression as a pending thunk (constants are bound directly —
/// a worthwhile and semantics-preserving shortcut).
fn suspend(expr: Arc<Expr>, env: Env) -> Value {
    if let Expr::Con(c) = &*expr {
        return constant(c);
    }
    Value::Thunk(Rc::new(RefCell::new(ThunkState::Pending { expr, env })))
}

/// Begins forcing a thunk: memoized values return immediately; pending
/// thunks are marked in-progress and entered under an update frame.
fn force(t: ThunkRef, stack: &mut Vec<Frame>) -> Result<State, EvalError> {
    let taken = {
        let mut state = t.borrow_mut();
        match &*state {
            ThunkState::Forced(v) => return Ok(State::Continue(v.clone())),
            ThunkState::InProgress => return Err(EvalError::BlackHole),
            ThunkState::Pending { .. } => std::mem::replace(&mut *state, ThunkState::InProgress),
        }
    };
    match taken {
        ThunkState::Pending { expr, env } => {
            stack.push(Frame::Update(t));
            Ok(State::Eval(expr, env))
        }
        _ => unreachable!("checked above"),
    }
}

/// Forces the first outstanding thunk among a primitive's arguments, or
/// applies the primitive once all are forced. Already-memoized thunks are
/// replaced inline without a machine step.
fn prim_step(prim: Prim, mut args: Vec<Value>, stack: &mut Vec<Frame>) -> Result<State, EvalError> {
    let mut i = 0;
    while i < args.len() {
        if let Value::Thunk(t) = &args[i] {
            let t = t.clone();
            let forced = {
                let state = t.borrow();
                match &*state {
                    ThunkState::Forced(v) => Some(v.clone()),
                    ThunkState::InProgress => return Err(EvalError::BlackHole),
                    ThunkState::Pending { .. } => None,
                }
            };
            match forced {
                Some(v) => {
                    args[i] = v;
                    continue;
                }
                None => {
                    stack.push(Frame::PrimArgs {
                        prim,
                        args: args.clone(),
                        index: i,
                    });
                    return force(t, stack);
                }
            }
        }
        i += 1;
    }
    Ok(State::Continue(prim.apply(&args)?))
}

/// Builds the `letrec` environment: lambda bindings go into a rec frame;
/// other bindings become thunks whose environment is the *final*
/// environment (patched after construction), so value bindings may refer
/// to each other — and a self-dependent value is caught as a black hole
/// rather than an unbound variable.
fn letrec_env(bs: &[Binding], env: &Env) -> Env {
    let plan = LetrecPlan::of(bs);
    let mut env = env.clone();
    let mut value_thunks: Vec<ThunkRef> = Vec::new();
    let mut annotated_thunks: Vec<ThunkRef> = Vec::new();
    let suspend_binding = |env: &Env, b: &Binding, created: &mut Vec<ThunkRef>| match suspend(
        b.value.clone(),
        Env::empty(),
    ) {
        Value::Thunk(t) => {
            created.push(t.clone());
            env.extend(b.name.clone(), Value::Thunk(t))
        }
        constant_value => env.extend(b.name.clone(), constant_value),
    };
    for b in &plan.ordered[..plan.values] {
        env = suspend_binding(&env, b, &mut value_thunks);
    }
    env = plan.push_rec(&env);
    let rec_env = env.clone();
    for b in &plan.ordered[plan.values..] {
        env = suspend_binding(&env, b, &mut annotated_thunks);
    }
    // Tie the knot. Value bindings see the *final* environment (shadow
    // frames included), so they may refer to the group's functions and
    // self-dependence surfaces as a black hole; the resolver leaves their
    // free variables unaddressed (barrier) precisely because the strict
    // engines give them a different, shorter view. Annotated lambda
    // bindings instead close over the rec-rooted environment — the one
    // shape the resolver predicts for the group's function bodies, and the
    // same shape the strict engines use after `LetrecPlan::bind` rebinds
    // shadows to the rec closure.
    for t in value_thunks {
        let mut state = t.borrow_mut();
        if let ThunkState::Pending { env: thunk_env, .. } = &mut *state {
            *thunk_env = env.clone();
        }
    }
    for t in annotated_thunks {
        let mut state = t.borrow_mut();
        if let ThunkState::Pending { env: thunk_env, .. } = &mut *state {
            *thunk_env = rec_env.clone();
        }
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::eval;
    use monsem_syntax::{parse_expr, Ident};

    fn run_lazy(src: &str) -> Result<Value, EvalError> {
        eval_lazy(&parse_expr(src).expect("parses"))
    }

    #[test]
    fn agrees_with_strict_on_factorial() {
        let src = "letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac 6";
        let e = parse_expr(src).unwrap();
        assert_eq!(eval_lazy(&e), eval(&e));
        assert_eq!(eval_lazy(&e), Ok(Value::Int(720)));
    }

    #[test]
    fn unused_erroneous_argument_is_never_evaluated() {
        // Strict evaluation would divide by zero; call-by-need never
        // touches the argument.
        assert_eq!(run_lazy("(lambda x. 42) (1 / 0)"), Ok(Value::Int(42)));
    }

    /// Smallest fuel for which the program completes (binary search).
    fn min_fuel(e: &Expr) -> u64 {
        let (mut lo, mut hi) = (1u64, 50_000_000u64);
        assert!(eval_lazy_with(e, &Env::empty(), &EvalOptions::with_fuel(hi)).is_ok());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if eval_lazy_with(e, &Env::empty(), &EvalOptions::with_fuel(mid)).is_ok() {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    #[test]
    fn bindings_are_memoized_not_re_evaluated() {
        // With call-by-name (no memoization), using `x` four times would
        // pay for `fib 14` four times. Call-by-need pays once: the 4-use
        // program must cost far less than twice the 1-use program.
        const FIB: &str =
            "letrec fib = lambda n. if n < 2 then n else (fib (n-1)) + (fib (n-2)) in ";
        let once = parse_expr(&format!("{FIB} let x = fib 14 in x + 0")).unwrap();
        let four = parse_expr(&format!("{FIB} let x = fib 14 in x + x + x + x")).unwrap();
        let cost_once = min_fuel(&once);
        let cost_four = min_fuel(&four);
        assert!(
            cost_four < cost_once + cost_once / 2,
            "sharing lost: 1 use costs {cost_once}, 4 uses cost {cost_four}"
        );
    }

    #[test]
    fn black_hole_is_detected() {
        assert_eq!(run_lazy("letrec x = x + 1 in x"), Err(EvalError::BlackHole));
    }

    #[test]
    fn call_by_need_uses_function_first_order() {
        // The function position errors before the argument is touched.
        assert_eq!(
            run_lazy("missing (1 / 0)"),
            Err(EvalError::UnboundVariable(Ident::new("missing")))
        );
    }

    #[test]
    fn annotations_are_transparent() {
        assert_eq!(
            run_lazy("letrec f = lambda x. {l}:(x + 1) in {m}:(f 1)"),
            Ok(Value::Int(2))
        );
    }

    #[test]
    fn primitives_force_all_arguments() {
        assert_eq!(run_lazy("let x = 1 + 1 in x * x"), Ok(Value::Int(4)));
        assert_eq!(
            run_lazy("let bad = 1 / 0 in bad + 1"),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn lazy_letrec_value_bindings() {
        assert_eq!(
            run_lazy("letrec a = 1 + 1 in letrec b = a * 10 in b"),
            Ok(Value::Int(20))
        );
    }
}
