//! Abstract syntax for temporal specifications.
//!
//! A specification denotes a set of allowed *completed* event traces: the
//! sequence of `pre`/`post` hook events a monitored run produces, followed
//! by one synthetic `done` event when evaluation finishes. The surface
//! syntax has two layers:
//!
//! * **event predicates** ([`Pred`]) classify a single event by hook phase,
//!   annotation name, and (for `post` events) the observed
//!   [`Value`](monsem_core::Value);
//! * **trace expressions** ([`SpecExpr`]) are extended regular expressions
//!   (with intersection `&` and complement `!`) over those predicates.
//!
//! Temporal sugar (`always`, `never`, `eventually`, `respond`) is expanded
//! by the parser, so this AST is already the core language.

use monsem_syntax::Ident;

/// Comparison operators usable in `value <op> n` atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `value = n`
    Eq,
    /// `value != n`
    Ne,
    /// `value < n`
    Lt,
    /// `value <= n`
    Le,
    /// `value > n`
    Gt,
    /// `value >= n`
    Ge,
}

impl CmpOp {
    /// Applies the comparison.
    pub fn holds(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// An annotation-name pattern: a concrete label/function name or the
/// wildcard `_`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NamePat {
    /// `_` — any annotation name.
    Any,
    /// A specific annotation name.
    Name(Ident),
}

/// Atomic event predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Atom {
    /// `true` — holds of every event.
    True,
    /// `false` — holds of no event.
    False,
    /// `pre(p)` — an `updPre` hook event whose annotation name matches `p`.
    Pre(NamePat),
    /// `post(p)` — an `updPost` hook event whose annotation name matches `p`.
    Post(NamePat),
    /// `at(p)` — `pre(p) or post(p)`: any hook event at a matching point.
    At(NamePat),
    /// `done` — the synthetic end-of-trace event.
    Done,
    /// `value <op> n` — holds of `post` events whose observed value is an
    /// integer satisfying the comparison (never of `pre`/`done` events or
    /// non-integer results).
    Value(CmpOp, i64),
    /// `unsorted` — holds of `post` events whose observed value is a list
    /// with a definitely-decreasing adjacent integer pair (the Figure 8
    /// demon's trigger).
    Unsorted,
}

/// An event predicate: a boolean combination of [`Atom`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// An atomic predicate.
    Atom(Atom),
    /// `not p`
    Not(Box<Pred>),
    /// `p and q`
    And(Box<Pred>, Box<Pred>),
    /// `p or q`
    Or(Box<Pred>, Box<Pred>),
}

impl Pred {
    /// `p => q`, expanded to `not p or q` (the parser's desugaring).
    pub fn implies(self, q: Pred) -> Pred {
        Pred::Or(Box::new(Pred::Not(Box::new(self))), Box::new(q))
    }
}

/// A trace expression: an extended regular expression over event
/// predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecExpr {
    /// `none` — matches no trace at all.
    Empty,
    /// `empty` — matches exactly the empty trace.
    Eps,
    /// `any` — any single event (including `done`).
    Any,
    /// `[p]` — a single event satisfying `p`.
    Event(Pred),
    /// `r ; s` — concatenation.
    Cat(Box<SpecExpr>, Box<SpecExpr>),
    /// `r | s` — union.
    Or(Box<SpecExpr>, Box<SpecExpr>),
    /// `r & s` — intersection.
    And(Box<SpecExpr>, Box<SpecExpr>),
    /// `! r` — complement (with respect to all traces).
    Not(Box<SpecExpr>),
    /// `r *` — Kleene star.
    Star(Box<SpecExpr>),
    /// `r +` — one or more repetitions.
    Plus(Box<SpecExpr>),
    /// `r ?` — zero or one occurrence.
    Opt(Box<SpecExpr>),
    /// `r {n}` — exactly `n` repetitions.
    Repeat(Box<SpecExpr>, u32),
}

impl SpecExpr {
    /// Walks every predicate in the expression (used to build the abstract
    /// alphabet).
    pub fn visit_preds(&self, f: &mut impl FnMut(&Pred)) {
        match self {
            SpecExpr::Empty | SpecExpr::Eps | SpecExpr::Any => {}
            SpecExpr::Event(p) => f(p),
            SpecExpr::Cat(a, b) | SpecExpr::Or(a, b) | SpecExpr::And(a, b) => {
                a.visit_preds(f);
                b.visit_preds(f);
            }
            SpecExpr::Not(r)
            | SpecExpr::Star(r)
            | SpecExpr::Plus(r)
            | SpecExpr::Opt(r)
            | SpecExpr::Repeat(r, _) => r.visit_preds(f),
        }
    }
}

impl Pred {
    /// Walks every atom in the predicate.
    pub fn visit_atoms(&self, f: &mut impl FnMut(&Atom)) {
        match self {
            Pred::Atom(a) => f(a),
            Pred::Not(p) => p.visit_atoms(f),
            Pred::And(p, q) | Pred::Or(p, q) => {
                p.visit_atoms(f);
                q.visit_atoms(f);
            }
        }
    }
}
