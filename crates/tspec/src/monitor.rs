//! The automaton-as-[`Monitor`] adapter.
//!
//! [`SpecMonitor`] runs a compiled [`Automaton`] against the event stream
//! of a monitored evaluation. Its state is the DFA state plus a bounded
//! match trace of the relevant events observed so far; its verdicts ride
//! the existing machinery — an *enforcing* monitor returns
//! [`Outcome::Abort`] the moment the run enters a dead DFA state (the
//! observed prefix extends to no accepted trace), an *observing* one
//! records the violation in its state and lets the run finish, preserving
//! the answer per Theorem 7.7.
//!
//! Events whose hook phase × name class can never move any DFA state are
//! not observed at all — not counted, not recorded in the trace — and
//! [`Monitor::accepts_event`] tells the machines those hooks may be
//! skipped. Observation is gated at exactly the hint's granularity, so the
//! monitor state evolves identically whether a machine consults the hint
//! or not.

use crate::automaton::Automaton;
use crate::{Spec, SpecError};
use monsem_core::Value;
use monsem_monitor::{HookPhase, MergeMonitor, Monitor, Outcome, Scope};
use monsem_syntax::{Annotation, Expr, Namespace};
use std::collections::VecDeque;
use std::sync::Arc;

/// Default bound on the recent-event trace kept in [`SpecState`].
pub const DEFAULT_TRACE_CAP: usize = 8;

/// A compiled temporal specification running as a monitor.
#[derive(Debug, Clone)]
pub struct SpecMonitor {
    name: String,
    namespace: Namespace,
    spec: Arc<Spec>,
    enforcing: bool,
    trace_cap: usize,
}

/// The monitor state: current DFA state plus a bounded match trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecState {
    /// Current DFA state.
    pub state: u32,
    /// Number of relevant events observed.
    pub events: u64,
    /// The most recent relevant events (bounded ring).
    pub trace: VecDeque<String>,
    /// The first violation observed, if any (an observing monitor records
    /// it here and keeps running).
    pub violation: Option<String>,
    /// The event tape: every observed letter (with its trace entry) since
    /// this state was born from [`MergeMonitor::split`]. `None` outside
    /// fork-join evaluation — the root state records nothing. The join
    /// replays the tape with [`SpecMonitor::advance`], so the merged state
    /// is exactly the state the sequential run would have reached.
    pub tape: Option<Vec<(u32, String)>>,
}

fn short_value(v: &Value) -> String {
    let s = v.to_string();
    if s.chars().count() > 40 {
        let head: String = s.chars().take(37).collect();
        format!("{head}...")
    } else {
        s
    }
}

impl SpecMonitor {
    /// Parses and compiles `src` into an *observing* monitor named `name`,
    /// watching the anonymous namespace.
    ///
    /// # Errors
    ///
    /// Parse or compilation errors, with byte offsets.
    pub fn new(name: impl Into<String>, src: &str) -> Result<Self, SpecError> {
        Ok(Self::from_spec(name, Spec::parse(src)?))
    }

    /// Wraps an already-compiled [`Spec`].
    pub fn from_spec(name: impl Into<String>, spec: Spec) -> Self {
        SpecMonitor {
            name: name.into(),
            namespace: Namespace::anonymous(),
            spec: Arc::new(spec),
            enforcing: false,
            trace_cap: DEFAULT_TRACE_CAP,
        }
    }

    /// Upgrades to an enforcing monitor: entering a dead DFA state aborts
    /// evaluation with [`EvalError::MonitorAbort`] naming this spec.
    ///
    /// [`EvalError::MonitorAbort`]: monsem_core::error::EvalError::MonitorAbort
    pub fn enforcing(mut self) -> Self {
        self.enforcing = true;
        self
    }

    /// Restricts the monitor to annotations in `namespace`.
    pub fn in_namespace(mut self, namespace: Namespace) -> Self {
        self.namespace = namespace;
        self
    }

    /// Changes the match-trace bound (default [`DEFAULT_TRACE_CAP`]).
    pub fn trace_cap(mut self, cap: usize) -> Self {
        self.trace_cap = cap;
        self
    }

    /// The compiled spec.
    pub fn spec(&self) -> &Arc<Spec> {
        &self.spec
    }

    /// The compiled automaton.
    pub fn automaton(&self) -> &Arc<Automaton> {
        self.spec.automaton()
    }

    /// The namespace this monitor watches.
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// Whether violations abort evaluation.
    pub fn is_enforcing(&self) -> bool {
        self.enforcing
    }

    /// Advances the state by one abstract letter. Shared by the
    /// interpreted adapter and the pe-specialized one, so both evolve
    /// states identically (same trace entries, same counters, same abort
    /// reasons).
    ///
    /// Irrelevant letters (universal self-loops) are not observed:
    /// the state is returned untouched.
    pub fn advance(
        &self,
        mut s: SpecState,
        letter: u32,
        desc: impl FnOnce() -> String,
    ) -> Outcome<SpecState> {
        let aut = self.automaton();
        if !aut.letter_observed(letter) {
            return Outcome::Continue(s);
        }
        let desc = desc();
        if let Some(tape) = &mut s.tape {
            tape.push((letter, desc.clone()));
        }
        s.events += 1;
        if self.trace_cap > 0 {
            if s.trace.len() == self.trace_cap {
                s.trace.pop_front();
            }
            s.trace.push_back(desc.clone());
        }
        s.state = aut.step(s.state, letter);
        if s.violation.is_none() && aut.is_dead(s.state) {
            let recent: Vec<String> = s.trace.iter().cloned().collect();
            let reason = format!(
                "spec `{}` violated at event #{} ({desc}); recent: [{}]",
                self.name,
                s.events,
                recent.join(", ")
            );
            s.violation = Some(reason.clone());
            if self.enforcing {
                return Outcome::abort(s, self.name.clone(), reason);
            }
        }
        Outcome::Continue(s)
    }

    /// Ends the trace: feeds the synthetic `done` event and checks that
    /// the completed trace is accepted.
    ///
    /// # Errors
    ///
    /// The violation reason — either one already recorded mid-run, or
    /// "trace ended unsatisfied" if the post-`done` state is not
    /// accepting (e.g. an `eventually(..)` that never happened).
    pub fn finish(&self, state: &SpecState) -> Result<SpecState, String> {
        if let Some(v) = &state.violation {
            return Err(v.clone());
        }
        let aut = self.automaton();
        let done = aut.alphabet().done_letter();
        let mut s = match self.advance(state.clone(), done, || "done".to_string()) {
            Outcome::Continue(s) => s,
            Outcome::Abort { reason, .. } => return Err(reason),
        };
        if let Some(v) = &s.violation {
            return Err(v.clone());
        }
        // If `done` was an (unobserved) self-loop, `advance` left the
        // state untouched — which is exactly where `done` leads, so the
        // nullability check below is right in both cases.
        if !aut.is_nullable(s.state) {
            let reason = format!(
                "spec `{}` unsatisfied at end of trace after {} events",
                self.name, s.events
            );
            s.violation = Some(reason.clone());
            return Err(reason);
        }
        Ok(s)
    }

    fn ours(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace
    }
}

impl Monitor for SpecMonitor {
    type State = SpecState;

    fn name(&self) -> &str {
        &self.name
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        if !self.ours(ann) {
            return false;
        }
        let aut = self.automaton();
        let nc = aut.alphabet().name_class(ann.name());
        aut.pre_relevant(nc) || aut.post_relevant(nc)
    }

    fn accepts_event(&self, ann: &Annotation, phase: HookPhase) -> bool {
        if !self.ours(ann) {
            return false;
        }
        let aut = self.automaton();
        let nc = aut.alphabet().name_class(ann.name());
        match phase {
            HookPhase::Pre => aut.pre_relevant(nc),
            HookPhase::Post => aut.post_relevant(nc),
        }
    }

    fn initial_state(&self) -> SpecState {
        SpecState {
            state: self.automaton().start(),
            events: 0,
            trace: VecDeque::new(),
            violation: None,
            tape: None,
        }
    }

    fn pre(&self, ann: &Annotation, expr: &Expr, scope: &Scope<'_>, state: SpecState) -> SpecState {
        // The pure hook observes without the power to veto (Theorem 7.7's
        // shape); violations are still recorded in the state.
        match self.try_pre(ann, expr, scope, state) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: SpecState,
    ) -> SpecState {
        match self.try_post(ann, expr, scope, value, state) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn try_pre(
        &self,
        ann: &Annotation,
        _expr: &Expr,
        _scope: &Scope<'_>,
        state: SpecState,
    ) -> Outcome<SpecState> {
        if !self.ours(ann) {
            return Outcome::Continue(state);
        }
        let aut = self.automaton();
        let letter = aut
            .alphabet()
            .pre_letter(aut.alphabet().name_class(ann.name()));
        self.advance(state, letter, || format!("pre {}", ann.name()))
    }

    fn try_post(
        &self,
        ann: &Annotation,
        _expr: &Expr,
        _scope: &Scope<'_>,
        value: &Value,
        state: SpecState,
    ) -> Outcome<SpecState> {
        if !self.ours(ann) {
            return Outcome::Continue(state);
        }
        let aut = self.automaton();
        let alphabet = aut.alphabet();
        let letter = alphabet.post_letter(
            alphabet.name_class(ann.name()),
            alphabet.classify_value(value),
        );
        self.advance(state, letter, || {
            format!("post {} = {}", ann.name(), short_value(value))
        })
    }

    fn render_state(&self, state: &SpecState) -> String {
        if let Some(v) = &state.violation {
            return format!("VIOLATED — {v}");
        }
        let aut = self.automaton();
        let end = aut.step(state.state, aut.alphabet().done_letter());
        let status = if aut.is_nullable(end) {
            "would accept"
        } else {
            "pending"
        };
        format!(
            "state {}/{} after {} events ({status})",
            state.state,
            aut.num_states(),
            state.events
        )
    }
}

/// Temporal specs merge by *replay*. A shard's state starts at the
/// fork-point DFA state with an empty event tape; the join replays each
/// shard's tape (in shard order) through [`SpecMonitor::advance`] on the
/// accumulated state. Replay recomputes the DFA transitions, the event
/// counter, the bounded trace, and any violation from the authoritative
/// left-hand state, so the merged state is bit-for-bit the one the
/// sequential run reaches — the shard's locally computed DFA fields are
/// provisional and discarded at the join.
///
/// Enforcing specs under fork-join should be safety-shaped (`never(..)`,
/// `always(..)`): their dead states are entered by the violating event
/// itself, so a shard's local abort agrees with the sequential run no
/// matter what the other shards observed.
impl MergeMonitor for SpecMonitor {
    fn split(&self, s: &SpecState) -> SpecState {
        SpecState {
            state: s.state,
            events: s.events,
            trace: s.trace.clone(),
            violation: s.violation.clone(),
            tape: Some(Vec::new()),
        }
    }

    fn merge(&self, left: SpecState, right: SpecState) -> SpecState {
        match self.merge_outcome(left, right) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn merge_outcome(&self, left: SpecState, right: SpecState) -> Outcome<SpecState> {
        let Some(tape) = right.tape else {
            // A tapeless right-hand state was not born from `split`;
            // nothing to replay.
            return Outcome::Continue(left);
        };
        let mut acc = left;
        for (letter, desc) in tape {
            match self.advance(acc, letter, || desc) {
                Outcome::Continue(s) => acc = s,
                abort @ Outcome::Abort { .. } => return abort,
            }
        }
        Outcome::Continue(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::error::EvalError;
    use monsem_monitor::machine::eval_monitored;
    use monsem_syntax::parse_expr;

    #[test]
    fn observing_spec_preserves_the_answer_and_records_the_violation() {
        let prog = parse_expr("{a}:1 + {b}:2").unwrap();
        let m = SpecMonitor::new("no-b", "never(post(b))").unwrap();
        let (v, s) = eval_monitored(&prog, &m).unwrap();
        assert_eq!(v, Value::Int(3));
        assert!(s.violation.is_some(), "violation recorded: {s:?}");
        assert!(m.render_state(&s).contains("VIOLATED"));
    }

    #[test]
    fn enforcing_spec_aborts_naming_the_spec() {
        let prog = parse_expr("{a}:1 + {b}:2").unwrap();
        let m = SpecMonitor::new("no-b", "never(post(b))")
            .unwrap()
            .enforcing();
        let err = eval_monitored(&prog, &m).unwrap_err();
        match err {
            EvalError::MonitorAbort { monitor, reason } => {
                assert_eq!(monitor, "no-b");
                assert!(reason.contains("no-b"), "{reason}");
                assert!(reason.contains("post b"), "{reason}");
            }
            other => panic!("expected MonitorAbort, got {other:?}"),
        }
    }

    #[test]
    fn satisfied_spec_accepts_at_finish() {
        let prog = parse_expr("{a}:1 + {b}:2").unwrap();
        let m = SpecMonitor::new("sees-b", "eventually(post(b))").unwrap();
        let (_, s) = eval_monitored(&prog, &m).unwrap();
        let done = m.finish(&s).unwrap();
        assert!(done.violation.is_none());
    }

    #[test]
    fn unsatisfied_eventually_fails_at_finish() {
        let prog = parse_expr("{a}:1 + {a}:2").unwrap();
        let m = SpecMonitor::new("sees-b", "eventually(post(b))").unwrap();
        let (_, s) = eval_monitored(&prog, &m).unwrap();
        let err = m.finish(&s).unwrap_err();
        assert!(err.contains("unsatisfied"), "{err}");
    }

    #[test]
    fn namespaces_partition_events() {
        let prog = parse_expr("{ns/a}:1 + {b}:2").unwrap();
        // Watching namespace `ns`, the anonymous {b} is foreign: no
        // violation. The same spec over the anonymous namespace sees it.
        let scoped = SpecMonitor::new("no-b", "never(post(b))")
            .unwrap()
            .in_namespace(Namespace::new("ns"));
        let (_, s) = eval_monitored(&prog, &scoped).unwrap();
        assert!(s.violation.is_none());
        let anon = SpecMonitor::new("no-b", "never(post(b))").unwrap();
        let (_, s) = eval_monitored(&prog, &anon).unwrap();
        assert!(s.violation.is_some());
    }

    #[test]
    fn value_predicates_see_post_values() {
        let prog = parse_expr("letrec f = lambda x. {p}:x in f 5").unwrap();
        let ok = SpecMonitor::new("pos", "always(post(p) => value > 0)").unwrap();
        let (_, s) = eval_monitored(&prog, &ok).unwrap();
        assert!(s.violation.is_none());
        let bad = SpecMonitor::new("neg", "always(post(p) => value < 0)").unwrap();
        let (_, s) = eval_monitored(&prog, &bad).unwrap();
        assert!(s.violation.is_some());
    }

    #[test]
    fn irrelevant_hooks_are_invisible() {
        // A post-only spec: pre hooks must not count as events.
        let prog = parse_expr("{a}:({a}:1)").unwrap();
        let m = SpecMonitor::new("posts", "always(post(a) => value >= 0)").unwrap();
        let (_, s) = eval_monitored(&prog, &m).unwrap();
        assert_eq!(s.events, 2, "only the two post events are observed");
        let ann = Annotation::label("a");
        assert!(!m.accepts_event(&ann, HookPhase::Pre));
        assert!(m.accepts_event(&ann, HookPhase::Post));
    }

    #[test]
    fn parallel_spec_run_matches_sequential_bit_for_bit() {
        let prog = parse_expr(
            "letrec f = lambda x. {p}:(x * x) in par(f 2, f 3, f 4, f 5) ++ par(f 6, f 7)",
        )
        .unwrap();
        let m = SpecMonitor::new("pos", "always(post(p) => value > 0)").unwrap();
        let seq = eval_monitored(&prog, &m).unwrap();
        let par = monsem_monitor::eval_parallel(&prog, &m).unwrap();
        assert_eq!(seq, par, "answer and final spec state agree");
        assert_eq!(par.1.events, 6);
        assert!(par.1.tape.is_none(), "the root state records no tape");
    }

    #[test]
    fn parallel_violation_is_the_sequential_violation() {
        let prog = parse_expr("par({a}:1, {b}:2, {a}:3)").unwrap();
        let m = SpecMonitor::new("no-b", "never(post(b))").unwrap();
        let seq = eval_monitored(&prog, &m).unwrap();
        let par = monsem_monitor::eval_parallel(&prog, &m).unwrap();
        assert_eq!(seq, par);
        assert!(par.1.violation.as_deref().unwrap().contains("post b"));
    }

    #[test]
    fn enforcing_spec_aborts_a_shard() {
        let prog = parse_expr("par({a}:1, {b}:2, {a}:3)").unwrap();
        let m = SpecMonitor::new("no-b", "never(post(b))")
            .unwrap()
            .enforcing();
        match monsem_monitor::eval_parallel(&prog, &m).unwrap_err() {
            EvalError::MonitorAbort { monitor, .. } => assert_eq!(monitor, "no-b"),
            other => panic!("expected MonitorAbort, got {other:?}"),
        }
    }

    #[test]
    fn split_and_merge_obey_the_laws() {
        let m = SpecMonitor::new("pos", "always(post(p) => value > 0)").unwrap();
        // Build a mid-run state by observing one event.
        let sigma = match m.advance(
            m.initial_state(),
            {
                let aut = m.automaton();
                let alphabet = aut.alphabet();
                alphabet.post_letter(
                    alphabet.name_class(&monsem_syntax::Ident::new("p")),
                    alphabet.classify_value(&Value::Int(4)),
                )
            },
            || "post p = 4".to_string(),
        ) {
            Outcome::Continue(s) => s,
            Outcome::Abort { .. } => unreachable!(),
        };
        // split is a right identity for merge.
        assert_eq!(m.merge(sigma.clone(), m.split(&sigma)), sigma);
        // Associativity over shard tapes.
        let shard = |descs: &[i64]| {
            let mut s = m.split(&sigma);
            for v in descs {
                let aut = m.automaton();
                let alphabet = aut.alphabet();
                let letter = alphabet.post_letter(
                    alphabet.name_class(&monsem_syntax::Ident::new("p")),
                    alphabet.classify_value(&Value::Int(*v)),
                );
                s = match m.advance(s, letter, || format!("post p = {v}")) {
                    Outcome::Continue(s) => s,
                    Outcome::Abort { .. } => unreachable!(),
                };
            }
            s
        };
        let (a, b, c) = (shard(&[1, 2]), shard(&[-3]), shard(&[4]));
        assert_eq!(
            m.merge(m.merge(a.clone(), b.clone()), c.clone()),
            m.merge(a, m.merge(b, c))
        );
    }

    #[test]
    fn trace_ring_is_bounded() {
        let prog = parse_expr(
            "letrec count = lambda x. if (x = 0) then {z}:0 else {l}:(count (x - 1)) in count 50",
        )
        .unwrap();
        let m = SpecMonitor::new("nonneg", "always(post(l) => value >= 0)")
            .unwrap()
            .trace_cap(4);
        let (_, s) = eval_monitored(&prog, &m).unwrap();
        assert_eq!(s.trace.len(), 4);
        assert_eq!(s.events, 50, "one observed event per {{l}} post");
        assert!(s.violation.is_none());
    }
}
