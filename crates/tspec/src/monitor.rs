//! The automaton-as-[`Monitor`] adapter.
//!
//! [`SpecMonitor`] runs a compiled [`Automaton`] against the event stream
//! of a monitored evaluation. Its state is the DFA state plus a bounded
//! match trace of the relevant events observed so far; its verdicts ride
//! the existing machinery — an *enforcing* monitor returns
//! [`Outcome::Abort`] the moment the run enters a dead DFA state (the
//! observed prefix extends to no accepted trace), an *observing* one
//! records the violation in its state and lets the run finish, preserving
//! the answer per Theorem 7.7.
//!
//! Events whose hook phase × name class can never move any DFA state are
//! not observed at all — not counted, not recorded in the trace — and
//! [`Monitor::accepts_event`] tells the machines those hooks may be
//! skipped. Observation is gated at exactly the hint's granularity, so the
//! monitor state evolves identically whether a machine consults the hint
//! or not.

use crate::automaton::Automaton;
use crate::{Spec, SpecError};
use monsem_core::Value;
use monsem_monitor::tape::{short_display, TapeEvent, TapePhase};
use monsem_monitor::{HookPhase, MergeMonitor, Monitor, Outcome, Scope};
use monsem_syntax::{Annotation, Expr, Namespace};
use std::collections::VecDeque;
use std::sync::Arc;

/// Default bound on the recent-event trace kept in [`SpecState`].
pub const DEFAULT_TRACE_CAP: usize = 8;

/// Default bound on the per-shard replay tape kept by states born from
/// [`MergeMonitor::split`] (and on the replay window a monitor server
/// keeps per session). Shards that observe more events than this stop
/// retaining them and the join falls back to a conservative merge — see
/// [`SpecMonitor::replay_cap`].
pub const DEFAULT_REPLAY_CAP: usize = 8192;

/// A compiled temporal specification running as a monitor.
#[derive(Debug, Clone)]
pub struct SpecMonitor {
    name: String,
    namespace: Namespace,
    spec: Arc<Spec>,
    enforcing: bool,
    trace_cap: usize,
    replay_cap: usize,
}

/// A shard's bounded replay tape: the observed letters (with their trace
/// entries) since the state was born from [`MergeMonitor::split`], up to
/// a hard cap, plus where the shard forked from so the join can tell
/// whether a truncated tape is still mergeable exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTape {
    /// The retained `(letter, description)` events, oldest first. At most
    /// `cap` entries — see [`ShardTape::dropped`].
    pub events: Vec<(u32, String)>,
    /// Events observed but *not* retained because the cap was hit. When
    /// non-zero the tape no longer supports exact replay.
    pub dropped: u64,
    /// The DFA state this shard split from.
    pub origin_state: u32,
    /// The event count at the split point.
    pub origin_events: u64,
    /// The retention bound this tape was created with.
    pub cap: usize,
}

impl ShardTape {
    fn new(origin: &SpecState, cap: usize) -> ShardTape {
        ShardTape {
            events: Vec::new(),
            dropped: 0,
            origin_state: origin.state,
            origin_events: origin.events,
            cap,
        }
    }

    fn push(&mut self, letter: u32, desc: &str) {
        if self.events.len() < self.cap {
            self.events.push((letter, desc.to_string()));
        } else {
            self.dropped += 1;
        }
    }
}

/// The monitor state: current DFA state plus a bounded match trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecState {
    /// Current DFA state.
    pub state: u32,
    /// Number of relevant events observed.
    pub events: u64,
    /// The most recent relevant events (bounded ring).
    pub trace: VecDeque<String>,
    /// The first violation observed, if any (an observing monitor records
    /// it here and keeps running).
    pub violation: Option<String>,
    /// The bounded event tape recorded since this state was born from
    /// [`MergeMonitor::split`]. `None` outside fork-join evaluation — the
    /// root state records nothing. The join replays the tape with
    /// [`SpecMonitor::advance`], so (while nothing was dropped) the
    /// merged state is exactly the state the sequential run would have
    /// reached.
    pub tape: Option<ShardTape>,
    /// Whether this state passed through a merge whose replay tape was
    /// truncated: the DFA fields are then a *conservative* continuation
    /// of the fork-point state (exact sequential equivalence would need a
    /// full replay from the fork). Violations already on record remain
    /// authoritative.
    pub lossy: bool,
}

fn short_value(v: &Value) -> String {
    short_display(v)
}

impl SpecMonitor {
    /// Parses and compiles `src` into an *observing* monitor named `name`,
    /// watching the anonymous namespace.
    ///
    /// # Errors
    ///
    /// Parse or compilation errors, with byte offsets.
    pub fn new(name: impl Into<String>, src: &str) -> Result<Self, SpecError> {
        Ok(Self::from_spec(name, Spec::parse(src)?))
    }

    /// Wraps an already-compiled [`Spec`].
    pub fn from_spec(name: impl Into<String>, spec: Spec) -> Self {
        SpecMonitor {
            name: name.into(),
            namespace: Namespace::anonymous(),
            spec: Arc::new(spec),
            enforcing: false,
            trace_cap: DEFAULT_TRACE_CAP,
            replay_cap: DEFAULT_REPLAY_CAP,
        }
    }

    /// Upgrades to an enforcing monitor: entering a dead DFA state aborts
    /// evaluation with [`EvalError::MonitorAbort`] naming this spec.
    ///
    /// [`EvalError::MonitorAbort`]: monsem_core::error::EvalError::MonitorAbort
    pub fn enforcing(mut self) -> Self {
        self.enforcing = true;
        self
    }

    /// Restricts the monitor to annotations in `namespace`.
    pub fn in_namespace(mut self, namespace: Namespace) -> Self {
        self.namespace = namespace;
        self
    }

    /// Changes the match-trace bound (default [`DEFAULT_TRACE_CAP`]).
    pub fn trace_cap(mut self, cap: usize) -> Self {
        self.trace_cap = cap;
        self
    }

    /// Changes the per-shard replay-tape bound (default
    /// [`DEFAULT_REPLAY_CAP`]). A shard that observes more than `cap`
    /// relevant events stops retaining them; its join then falls back to
    /// a merge that preserves violations and event counts but marks the
    /// merged state [`SpecState::lossy`] instead of replaying exactly.
    pub fn replay_cap(mut self, cap: usize) -> Self {
        self.replay_cap = cap;
        self
    }

    /// The compiled spec.
    pub fn spec(&self) -> &Arc<Spec> {
        &self.spec
    }

    /// The compiled automaton.
    pub fn automaton(&self) -> &Arc<Automaton> {
        self.spec.automaton()
    }

    /// The namespace this monitor watches.
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// Whether violations abort evaluation.
    pub fn is_enforcing(&self) -> bool {
        self.enforcing
    }

    /// Advances the state by one abstract letter. Shared by the
    /// interpreted adapter and the pe-specialized one, so both evolve
    /// states identically (same trace entries, same counters, same abort
    /// reasons).
    ///
    /// Irrelevant letters (universal self-loops) are not observed:
    /// the state is returned untouched.
    pub fn advance(
        &self,
        mut s: SpecState,
        letter: u32,
        desc: impl FnOnce() -> String,
    ) -> Outcome<SpecState> {
        let aut = self.automaton();
        if !aut.letter_observed(letter) {
            return Outcome::Continue(s);
        }
        let desc = desc();
        if let Some(tape) = &mut s.tape {
            tape.push(letter, &desc);
        }
        s.events += 1;
        if self.trace_cap > 0 {
            if s.trace.len() == self.trace_cap {
                s.trace.pop_front();
            }
            s.trace.push_back(desc.clone());
        }
        s.state = aut.step(s.state, letter);
        if s.violation.is_none() && aut.is_dead(s.state) {
            let recent: Vec<String> = s.trace.iter().cloned().collect();
            let reason = format!(
                "spec `{}` violated at event #{} ({desc}); recent: [{}]",
                self.name,
                s.events,
                recent.join(", ")
            );
            s.violation = Some(reason.clone());
            if self.enforcing {
                return Outcome::abort(s, self.name.clone(), reason);
            }
        }
        Outcome::Continue(s)
    }

    /// Ends the trace: feeds the synthetic `done` event and checks that
    /// the completed trace is accepted.
    ///
    /// # Errors
    ///
    /// The violation reason — either one already recorded mid-run, or
    /// "trace ended unsatisfied" if the post-`done` state is not
    /// accepting (e.g. an `eventually(..)` that never happened).
    pub fn finish(&self, state: &SpecState) -> Result<SpecState, String> {
        if let Some(v) = &state.violation {
            return Err(v.clone());
        }
        let aut = self.automaton();
        let done = aut.alphabet().done_letter();
        let mut s = match self.advance(state.clone(), done, || "done".to_string()) {
            Outcome::Continue(s) => s,
            Outcome::Abort { reason, .. } => return Err(reason),
        };
        if let Some(v) = &s.violation {
            return Err(v.clone());
        }
        // If `done` was an (unobserved) self-loop, `advance` left the
        // state untouched — which is exactly where `done` leads, so the
        // nullability check below is right in both cases.
        if !aut.is_nullable(s.state) {
            let reason = format!(
                "spec `{}` unsatisfied at end of trace after {} events",
                self.name, s.events
            );
            s.violation = Some(reason.clone());
            return Err(reason);
        }
        Ok(s)
    }

    fn ours(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace
    }

    /// Advances the state by one serialized [`TapeEvent`], exactly as the
    /// live run would have: the event's name and value description are
    /// abstracted through the same alphabet maps the in-process hooks
    /// use, so checking a tape offline reaches the same states (and the
    /// same verdicts) as monitoring the original execution.
    ///
    /// Events from foreign namespaces — and [`TapePhase::Done`], which is
    /// handled by [`SpecMonitor::check_tape`] via [`SpecMonitor::finish`]
    /// — leave the state untouched.
    pub fn advance_tape_event(&self, state: SpecState, ev: &TapeEvent) -> Outcome<SpecState> {
        if ev.namespace != self.namespace.as_str() {
            return Outcome::Continue(state);
        }
        let aut = self.automaton();
        let alphabet = aut.alphabet();
        let nc = alphabet.name_class(&monsem_syntax::Ident::new(&ev.name));
        match ev.phase {
            TapePhase::Pre => {
                let letter = alphabet.pre_letter(nc);
                self.advance(state, letter, || format!("pre {}", ev.name))
            }
            TapePhase::Post => {
                let vc = match &ev.value {
                    Some(desc) => alphabet.classify_desc(desc),
                    None => 0,
                };
                let letter = alphabet.post_letter(nc, vc);
                self.advance(state, letter, || {
                    let shown = ev.value.as_ref().map_or("?", |d| d.display.as_str());
                    format!("post {} = {shown}", ev.name)
                })
            }
            TapePhase::Done => Outcome::Continue(state),
        }
    }

    /// Checks a recorded tape offline: replays every event through
    /// [`SpecMonitor::advance_tape_event`] and, if the tape carries a
    /// [`TapePhase::Done`] marker, closes the trace with
    /// [`SpecMonitor::finish`]. No re-execution happens — the verdict is
    /// computed from the serialized stream alone, and agrees with the
    /// live monitored run that produced the tape.
    ///
    /// For an enforcing monitor the replay stops at the first violation,
    /// mirroring the abort the live run would have taken; an observing
    /// monitor replays to the end.
    pub fn check_tape<'a>(&self, events: impl IntoIterator<Item = &'a TapeEvent>) -> TapeCheck {
        self.check_tape_seeded(self.initial_state(), events)
    }

    /// [`SpecMonitor::check_tape`] starting from `seed` instead of the
    /// initial state — the replay primitive behind checkpoint-seeded
    /// checking. A seed carrying a prefix violation (its `violation` is
    /// already set) is reported with the seed's own earliest step left to
    /// the caller to merge; violations discovered *during* this replay
    /// are stamped with their tape step as usual.
    pub fn check_tape_seeded<'a>(
        &self,
        seed: SpecState,
        events: impl IntoIterator<Item = &'a TapeEvent>,
    ) -> TapeCheck {
        let mut state = seed;
        let mut earliest: Option<u64> = None;
        let mut completed = false;
        for ev in events {
            if matches!(ev.phase, TapePhase::Done) {
                completed = true;
                break;
            }
            let before = state.violation.is_some();
            state = match self.advance_tape_event(state, ev) {
                Outcome::Continue(s) => s,
                Outcome::Abort { state: s, .. } => {
                    if earliest.is_none() {
                        earliest = Some(ev.step);
                    }
                    return TapeCheck {
                        outcome: TapeOutcome::Violated(
                            s.violation
                                .clone()
                                .unwrap_or_else(|| "violated".to_string()),
                        ),
                        earliest_violation: earliest,
                        state: s,
                    };
                }
            };
            if !before && state.violation.is_some() && earliest.is_none() {
                earliest = Some(ev.step);
            }
        }
        if completed {
            match self.finish(&state) {
                Ok(done) => TapeCheck {
                    outcome: TapeOutcome::Satisfied,
                    earliest_violation: earliest,
                    state: done,
                },
                Err(reason) => {
                    let mut s = state;
                    if s.violation.is_none() {
                        s.violation = Some(reason.clone());
                    }
                    TapeCheck {
                        outcome: TapeOutcome::Violated(reason),
                        earliest_violation: earliest,
                        state: s,
                    }
                }
            }
        } else if let Some(v) = state.violation.clone() {
            TapeCheck {
                outcome: TapeOutcome::Violated(v),
                earliest_violation: earliest,
                state,
            }
        } else {
            TapeCheck {
                outcome: TapeOutcome::Pending,
                earliest_violation: earliest,
                state,
            }
        }
    }
}

/// The verdict of an offline [`SpecMonitor::check_tape`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TapeOutcome {
    /// The tape ended (with a `done` marker) in an accepting state.
    Satisfied,
    /// The spec was violated; carries the rendered reason.
    Violated(String),
    /// The tape carries no `done` marker and no violation occurred —
    /// the trace is an acceptable prefix but not yet complete (the
    /// recorded run may have errored out, or is still in flight).
    Pending,
}

/// The result of checking a tape offline: the verdict, the step index of
/// the earliest violating event (if any), and the final monitor state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapeCheck {
    /// The verdict.
    pub outcome: TapeOutcome,
    /// Step index (as recorded on the tape) of the event on which the
    /// violation was first entered. `None` when nothing was violated
    /// mid-trace — in particular an `eventually(..)` left unsatisfied at
    /// `done` is reported in [`TapeCheck::outcome`] with no offset, since
    /// no single event caused it.
    pub earliest_violation: Option<u64>,
    /// The final monitor state after replay.
    pub state: SpecState,
}

impl Monitor for SpecMonitor {
    type State = SpecState;

    fn name(&self) -> &str {
        &self.name
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        if !self.ours(ann) {
            return false;
        }
        let aut = self.automaton();
        let nc = aut.alphabet().name_class(ann.name());
        aut.pre_relevant(nc) || aut.post_relevant(nc)
    }

    fn accepts_event(&self, ann: &Annotation, phase: HookPhase) -> bool {
        if !self.ours(ann) {
            return false;
        }
        let aut = self.automaton();
        let nc = aut.alphabet().name_class(ann.name());
        match phase {
            HookPhase::Pre => aut.pre_relevant(nc),
            HookPhase::Post => aut.post_relevant(nc),
        }
    }

    fn initial_state(&self) -> SpecState {
        SpecState {
            state: self.automaton().start(),
            events: 0,
            trace: VecDeque::new(),
            violation: None,
            tape: None,
            lossy: false,
        }
    }

    fn pre(&self, ann: &Annotation, expr: &Expr, scope: &Scope<'_>, state: SpecState) -> SpecState {
        // The pure hook observes without the power to veto (Theorem 7.7's
        // shape); violations are still recorded in the state.
        match self.try_pre(ann, expr, scope, state) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: SpecState,
    ) -> SpecState {
        match self.try_post(ann, expr, scope, value, state) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn try_pre(
        &self,
        ann: &Annotation,
        _expr: &Expr,
        _scope: &Scope<'_>,
        state: SpecState,
    ) -> Outcome<SpecState> {
        if !self.ours(ann) {
            return Outcome::Continue(state);
        }
        let aut = self.automaton();
        let letter = aut
            .alphabet()
            .pre_letter(aut.alphabet().name_class(ann.name()));
        self.advance(state, letter, || format!("pre {}", ann.name()))
    }

    fn try_post(
        &self,
        ann: &Annotation,
        _expr: &Expr,
        _scope: &Scope<'_>,
        value: &Value,
        state: SpecState,
    ) -> Outcome<SpecState> {
        if !self.ours(ann) {
            return Outcome::Continue(state);
        }
        let aut = self.automaton();
        let alphabet = aut.alphabet();
        let letter = alphabet.post_letter(
            alphabet.name_class(ann.name()),
            alphabet.classify_value(value),
        );
        self.advance(state, letter, || {
            format!("post {} = {}", ann.name(), short_value(value))
        })
    }

    fn render_state(&self, state: &SpecState) -> String {
        if let Some(v) = &state.violation {
            return format!("VIOLATED — {v}");
        }
        let aut = self.automaton();
        let end = aut.step(state.state, aut.alphabet().done_letter());
        let status = if aut.is_nullable(end) {
            "would accept"
        } else {
            "pending"
        };
        let lossy = if state.lossy { ", lossy merge" } else { "" };
        format!(
            "state {}/{} after {} events ({status}{lossy})",
            state.state,
            aut.num_states(),
            state.events
        )
    }
}

/// Temporal specs merge by *replay*. A shard's state starts at the
/// fork-point DFA state with an empty event tape; the join replays each
/// shard's tape (in shard order) through [`SpecMonitor::advance`] on the
/// accumulated state. Replay recomputes the DFA transitions, the event
/// counter, the bounded trace, and any violation from the authoritative
/// left-hand state, so the merged state is bit-for-bit the one the
/// sequential run reaches — the shard's locally computed DFA fields are
/// provisional and discarded at the join.
///
/// The replay tape is bounded (see [`SpecMonitor::replay_cap`]): a shard
/// that observes more events than the cap stops retaining them, and its
/// join degrades gracefully instead of replaying a hole. If the
/// accumulated left-hand state is still exactly the fork-point state the
/// shard split from (the earlier shards observed nothing), the shard's
/// own DFA fields *are* the sequential run's and are adopted wholesale.
/// Otherwise the merge is conservative: the event count and any shard
/// violation are preserved, and the result is marked
/// [`SpecState::lossy`] — exact sequential equivalence would need a full
/// replay from the fork point.
///
/// Enforcing specs under fork-join should be safety-shaped (`never(..)`,
/// `always(..)`): their dead states are entered by the violating event
/// itself, so a shard's local abort agrees with the sequential run no
/// matter what the other shards observed.
impl MergeMonitor for SpecMonitor {
    fn split(&self, s: &SpecState) -> SpecState {
        SpecState {
            state: s.state,
            events: s.events,
            trace: s.trace.clone(),
            violation: s.violation.clone(),
            tape: Some(ShardTape::new(s, self.replay_cap)),
            lossy: s.lossy,
        }
    }

    fn merge(&self, left: SpecState, right: SpecState) -> SpecState {
        match self.merge_outcome(left, right) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn merge_outcome(&self, left: SpecState, right: SpecState) -> Outcome<SpecState> {
        let Some(tape) = right.tape else {
            // A tapeless right-hand state was not born from `split`;
            // nothing to replay.
            return Outcome::Continue(left);
        };
        if tape.dropped == 0 {
            // Exact replay: recompute everything on the left state.
            let mut acc = left;
            for (letter, desc) in tape.events {
                match self.advance(acc, letter, || desc) {
                    Outcome::Continue(s) => acc = s,
                    abort @ Outcome::Abort { .. } => return abort,
                }
            }
            return Outcome::Continue(acc);
        }
        if !left.lossy
            && !right.lossy
            && left.state == tape.origin_state
            && left.events == tape.origin_events
        {
            // The left state never moved past the fork point, so the
            // shard's transitions are the sequential run's: adopt its
            // DFA fields wholesale. The retained tape prefix is folded
            // into the left shard tape (if any) so an enclosing join
            // still sees a consistently-truncated tape.
            let fresh = left.violation.is_none() && right.violation.is_some();
            let mut merged = SpecState {
                state: right.state,
                events: right.events,
                trace: right.trace,
                violation: left.violation.or(right.violation),
                tape: left.tape,
                lossy: false,
            };
            if let Some(ltape) = &mut merged.tape {
                for (letter, desc) in &tape.events {
                    ltape.push(*letter, desc);
                }
                ltape.dropped += tape.dropped;
            }
            if self.enforcing && fresh {
                let reason = merged
                    .violation
                    .clone()
                    .unwrap_or_else(|| "violated".to_string());
                return Outcome::abort(merged, self.name.clone(), reason);
            }
            return Outcome::Continue(merged);
        }
        // Conservative merge: the left state has moved (or was itself
        // lossy), and the shard's full event sequence is gone. Keep the
        // authoritative left DFA fields, account the shard's events, and
        // surface its violation; mark the result lossy.
        let fresh = left.violation.is_none() && right.violation.is_some();
        let mut acc = left;
        acc.events += right.events.saturating_sub(tape.origin_events);
        acc.lossy = true;
        if acc.violation.is_none() {
            acc.violation = right.violation;
        }
        if let Some(ltape) = &mut acc.tape {
            // The enclosing join can no longer replay exactly either.
            ltape.dropped += tape.events.len() as u64 + tape.dropped;
        }
        if self.enforcing && fresh {
            let reason = acc
                .violation
                .clone()
                .unwrap_or_else(|| "violated".to_string());
            return Outcome::abort(acc, self.name.clone(), reason);
        }
        Outcome::Continue(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::error::EvalError;
    use monsem_monitor::machine::eval_monitored;
    use monsem_syntax::parse_expr;

    #[test]
    fn observing_spec_preserves_the_answer_and_records_the_violation() {
        let prog = parse_expr("{a}:1 + {b}:2").unwrap();
        let m = SpecMonitor::new("no-b", "never(post(b))").unwrap();
        let (v, s) = eval_monitored(&prog, &m).unwrap();
        assert_eq!(v, Value::Int(3));
        assert!(s.violation.is_some(), "violation recorded: {s:?}");
        assert!(m.render_state(&s).contains("VIOLATED"));
    }

    #[test]
    fn enforcing_spec_aborts_naming_the_spec() {
        let prog = parse_expr("{a}:1 + {b}:2").unwrap();
        let m = SpecMonitor::new("no-b", "never(post(b))")
            .unwrap()
            .enforcing();
        let err = eval_monitored(&prog, &m).unwrap_err();
        match err {
            EvalError::MonitorAbort { monitor, reason } => {
                assert_eq!(monitor, "no-b");
                assert!(reason.contains("no-b"), "{reason}");
                assert!(reason.contains("post b"), "{reason}");
            }
            other => panic!("expected MonitorAbort, got {other:?}"),
        }
    }

    #[test]
    fn satisfied_spec_accepts_at_finish() {
        let prog = parse_expr("{a}:1 + {b}:2").unwrap();
        let m = SpecMonitor::new("sees-b", "eventually(post(b))").unwrap();
        let (_, s) = eval_monitored(&prog, &m).unwrap();
        let done = m.finish(&s).unwrap();
        assert!(done.violation.is_none());
    }

    #[test]
    fn unsatisfied_eventually_fails_at_finish() {
        let prog = parse_expr("{a}:1 + {a}:2").unwrap();
        let m = SpecMonitor::new("sees-b", "eventually(post(b))").unwrap();
        let (_, s) = eval_monitored(&prog, &m).unwrap();
        let err = m.finish(&s).unwrap_err();
        assert!(err.contains("unsatisfied"), "{err}");
    }

    #[test]
    fn namespaces_partition_events() {
        let prog = parse_expr("{ns/a}:1 + {b}:2").unwrap();
        // Watching namespace `ns`, the anonymous {b} is foreign: no
        // violation. The same spec over the anonymous namespace sees it.
        let scoped = SpecMonitor::new("no-b", "never(post(b))")
            .unwrap()
            .in_namespace(Namespace::new("ns"));
        let (_, s) = eval_monitored(&prog, &scoped).unwrap();
        assert!(s.violation.is_none());
        let anon = SpecMonitor::new("no-b", "never(post(b))").unwrap();
        let (_, s) = eval_monitored(&prog, &anon).unwrap();
        assert!(s.violation.is_some());
    }

    #[test]
    fn value_predicates_see_post_values() {
        let prog = parse_expr("letrec f = lambda x. {p}:x in f 5").unwrap();
        let ok = SpecMonitor::new("pos", "always(post(p) => value > 0)").unwrap();
        let (_, s) = eval_monitored(&prog, &ok).unwrap();
        assert!(s.violation.is_none());
        let bad = SpecMonitor::new("neg", "always(post(p) => value < 0)").unwrap();
        let (_, s) = eval_monitored(&prog, &bad).unwrap();
        assert!(s.violation.is_some());
    }

    #[test]
    fn irrelevant_hooks_are_invisible() {
        // A post-only spec: pre hooks must not count as events.
        let prog = parse_expr("{a}:({a}:1)").unwrap();
        let m = SpecMonitor::new("posts", "always(post(a) => value >= 0)").unwrap();
        let (_, s) = eval_monitored(&prog, &m).unwrap();
        assert_eq!(s.events, 2, "only the two post events are observed");
        let ann = Annotation::label("a");
        assert!(!m.accepts_event(&ann, HookPhase::Pre));
        assert!(m.accepts_event(&ann, HookPhase::Post));
    }

    #[test]
    fn parallel_spec_run_matches_sequential_bit_for_bit() {
        let prog = parse_expr(
            "letrec f = lambda x. {p}:(x * x) in par(f 2, f 3, f 4, f 5) ++ par(f 6, f 7)",
        )
        .unwrap();
        let m = SpecMonitor::new("pos", "always(post(p) => value > 0)").unwrap();
        let seq = eval_monitored(&prog, &m).unwrap();
        let par = monsem_monitor::eval_parallel(&prog, &m).unwrap();
        assert_eq!(seq, par, "answer and final spec state agree");
        assert_eq!(par.1.events, 6);
        assert!(par.1.tape.is_none(), "the root state records no tape");
    }

    #[test]
    fn parallel_violation_is_the_sequential_violation() {
        let prog = parse_expr("par({a}:1, {b}:2, {a}:3)").unwrap();
        let m = SpecMonitor::new("no-b", "never(post(b))").unwrap();
        let seq = eval_monitored(&prog, &m).unwrap();
        let par = monsem_monitor::eval_parallel(&prog, &m).unwrap();
        assert_eq!(seq, par);
        assert!(par.1.violation.as_deref().unwrap().contains("post b"));
    }

    #[test]
    fn enforcing_spec_aborts_a_shard() {
        let prog = parse_expr("par({a}:1, {b}:2, {a}:3)").unwrap();
        let m = SpecMonitor::new("no-b", "never(post(b))")
            .unwrap()
            .enforcing();
        match monsem_monitor::eval_parallel(&prog, &m).unwrap_err() {
            EvalError::MonitorAbort { monitor, .. } => assert_eq!(monitor, "no-b"),
            other => panic!("expected MonitorAbort, got {other:?}"),
        }
    }

    #[test]
    fn split_and_merge_obey_the_laws() {
        let m = SpecMonitor::new("pos", "always(post(p) => value > 0)").unwrap();
        // Build a mid-run state by observing one event.
        let sigma = match m.advance(
            m.initial_state(),
            {
                let aut = m.automaton();
                let alphabet = aut.alphabet();
                alphabet.post_letter(
                    alphabet.name_class(&monsem_syntax::Ident::new("p")),
                    alphabet.classify_value(&Value::Int(4)),
                )
            },
            || "post p = 4".to_string(),
        ) {
            Outcome::Continue(s) => s,
            Outcome::Abort { .. } => unreachable!(),
        };
        // split is a right identity for merge.
        assert_eq!(m.merge(sigma.clone(), m.split(&sigma)), sigma);
        // Associativity over shard tapes.
        let shard = |descs: &[i64]| {
            let mut s = m.split(&sigma);
            for v in descs {
                let aut = m.automaton();
                let alphabet = aut.alphabet();
                let letter = alphabet.post_letter(
                    alphabet.name_class(&monsem_syntax::Ident::new("p")),
                    alphabet.classify_value(&Value::Int(*v)),
                );
                s = match m.advance(s, letter, || format!("post p = {v}")) {
                    Outcome::Continue(s) => s,
                    Outcome::Abort { .. } => unreachable!(),
                };
            }
            s
        };
        let (a, b, c) = (shard(&[1, 2]), shard(&[-3]), shard(&[4]));
        assert_eq!(
            m.merge(m.merge(a.clone(), b.clone()), c.clone()),
            m.merge(a, m.merge(b, c))
        );
    }

    fn post_p_letter(m: &SpecMonitor, v: i64) -> u32 {
        let aut = m.automaton();
        let alphabet = aut.alphabet();
        alphabet.post_letter(
            alphabet.name_class(&monsem_syntax::Ident::new("p")),
            alphabet.classify_value(&Value::Int(v)),
        )
    }

    #[test]
    fn shard_tape_memory_is_bounded() {
        // Regression: a long-running shard must not retain O(n) replay
        // tape. A million events leave exactly `cap` retained entries.
        let m = SpecMonitor::new("pos", "always(post(p) => value > 0)")
            .unwrap()
            .replay_cap(64);
        let letter = post_p_letter(&m, 7);
        let mut s = m.split(&m.initial_state());
        const N: u64 = 1_000_000;
        for _ in 0..N {
            s = match m.advance(s, letter, || "post p = 7".to_string()) {
                Outcome::Continue(s) => s,
                Outcome::Abort { .. } => unreachable!(),
            };
        }
        let tape = s.tape.as_ref().unwrap();
        assert_eq!(tape.events.len(), 64);
        assert_eq!(tape.dropped, N - 64);
        assert_eq!(s.events, N);
    }

    #[test]
    fn truncated_shard_merges_exactly_into_an_unmoved_fork_point() {
        // Left never moved past the fork point, so the shard's own DFA
        // fields are adopted wholesale even though its tape overflowed.
        let m = SpecMonitor::new("pos", "always(post(p) => value > 0)")
            .unwrap()
            .replay_cap(4);
        let good = post_p_letter(&m, 7);
        let bad = post_p_letter(&m, -7);
        let sigma = m.initial_state();
        let mut shard = m.split(&sigma);
        for i in 0..10 {
            let letter = if i == 8 { bad } else { good };
            shard = match m.advance(shard, letter, || format!("post p = #{i}")) {
                Outcome::Continue(s) => s,
                Outcome::Abort { .. } => unreachable!(),
            };
        }
        let shard_state = shard.state;
        let merged = m.merge(sigma, shard);
        assert_eq!(merged.events, 10);
        assert_eq!(merged.state, shard_state, "shard DFA state adopted");
        assert!(merged.violation.is_some(), "shard violation surfaced");
        assert!(!merged.lossy, "adoption is exact, not lossy");
    }

    #[test]
    fn truncated_shard_merges_conservatively_into_a_moved_fork_point() {
        let m = SpecMonitor::new("pos", "always(post(p) => value > 0)")
            .unwrap()
            .replay_cap(4);
        let good = post_p_letter(&m, 7);
        let bad = post_p_letter(&m, -7);
        let sigma = m.initial_state();
        // The left accumulator has already absorbed an earlier shard.
        let left = match m.advance(sigma.clone(), good, || "post p = 7".to_string()) {
            Outcome::Continue(s) => s,
            Outcome::Abort { .. } => unreachable!(),
        };
        let mut shard = m.split(&sigma);
        for i in 0..10 {
            let letter = if i == 8 { bad } else { good };
            shard = match m.advance(shard, letter, || format!("post p = #{i}")) {
                Outcome::Continue(s) => s,
                Outcome::Abort { .. } => unreachable!(),
            };
        }
        let merged = m.merge(left, shard);
        assert_eq!(merged.events, 1 + 10, "shard events still accounted");
        assert!(merged.lossy, "truncated merge into a moved state is lossy");
        assert!(merged.violation.is_some(), "shard violation preserved");
        assert!(m.render_state(&merged).contains("VIOLATED"));
    }

    #[test]
    fn check_tape_matches_the_live_run() {
        use monsem_monitor::{record_monitored, MemorySink, SharedSink};
        let prog = parse_expr("{a}:1 + {b}:2").unwrap();
        let m = SpecMonitor::new("no-b", "never(post(b))").unwrap();
        let mem = MemorySink::new();
        let sink = SharedSink::new(mem.clone());
        let (v, s) = record_monitored(&prog, m.clone(), &sink).unwrap();
        let tape = mem.take();
        assert_eq!(v, Value::Int(3));
        let check = m.check_tape(tape.iter());
        assert_eq!(check.state.violation, s.violation);
        assert!(matches!(check.outcome, TapeOutcome::Violated(_)));
        // The earliest violation is the `post b` event's step index.
        let step = check.earliest_violation.unwrap();
        let ev = tape.iter().find(|e| e.step == step).unwrap();
        assert_eq!(ev.name, "b");
        assert_eq!(ev.phase, TapePhase::Post);
    }

    #[test]
    fn check_tape_reports_satisfied_and_pending() {
        use monsem_monitor::{record_monitored, MemorySink, SharedSink};
        let prog = parse_expr("{a}:1 + {b}:2").unwrap();
        let m = SpecMonitor::new("sees-b", "eventually(post(b))").unwrap();
        let mem = MemorySink::new();
        let sink = SharedSink::new(mem.clone());
        record_monitored(&prog, m.clone(), &sink).unwrap();
        let tape = mem.take();
        assert_eq!(m.check_tape(tape.iter()).outcome, TapeOutcome::Satisfied);
        // Without the `done` marker the trace is merely an open prefix.
        let open: Vec<_> = tape
            .iter()
            .filter(|e| e.phase != TapePhase::Done)
            .cloned()
            .collect();
        assert_eq!(m.check_tape(open.iter()).outcome, TapeOutcome::Pending);
        // An unsatisfied `eventually` at `done` has no violating event.
        let unsat = SpecMonitor::new("sees-c", "eventually(post(c))").unwrap();
        let check = unsat.check_tape(tape.iter());
        assert!(matches!(check.outcome, TapeOutcome::Violated(_)));
        assert_eq!(check.earliest_violation, None);
    }

    #[test]
    fn trace_ring_is_bounded() {
        let prog = parse_expr(
            "letrec count = lambda x. if (x = 0) then {z}:0 else {l}:(count (x - 1)) in count 50",
        )
        .unwrap();
        let m = SpecMonitor::new("nonneg", "always(post(l) => value >= 0)")
            .unwrap()
            .trace_cap(4);
        let (_, s) = eval_monitored(&prog, &m).unwrap();
        assert_eq!(s.trace.len(), 4);
        assert_eq!(s.events, 50, "one observed event per {{l}} post");
        assert!(s.violation.is_none());
    }
}
