//! Brzozowski derivatives over an abstract, finite event alphabet.
//!
//! Trace expressions are lowered to [`Re`], an extended regular expression
//! whose leaves are *letter sets* — bit sets over the finite abstract
//! alphabet built in [`automaton`](crate::automaton). Compilation is then
//! textbook Brzozowski: the derivative `∂ₐ r` describes the traces that may
//! follow after reading `a`, and iterating derivatives over all letters
//! yields a DFA whose states are regular expressions.
//!
//! Termination relies on the smart constructors normalizing modulo
//! associativity, commutativity and idempotence (the Owens–Reppy–Turon
//! recipe): `or`/`and` chains are flattened, sorted and deduplicated,
//! double complements cancel, and `ε`/`∅` units collapse — so every spec
//! reaches finitely many dissimilar derivatives.

use std::collections::HashMap;
use std::sync::Arc;

/// A set of abstract letters, as a fixed-width bit set.
///
/// All sets flowing into one compilation share the same alphabet width;
/// set operations assume (and in debug builds check) matching widths.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LetterSet {
    /// Number of letters in the alphabet.
    width: u32,
    bits: Vec<u64>,
}

impl LetterSet {
    /// The empty set over an alphabet of `width` letters.
    pub fn empty(width: u32) -> Self {
        LetterSet {
            width,
            bits: vec![0; width.div_ceil(64) as usize],
        }
    }

    /// The full set over an alphabet of `width` letters.
    pub fn full(width: u32) -> Self {
        let mut s = Self::empty(width);
        for l in 0..width {
            s.insert(l);
        }
        s
    }

    /// Adds letter `l`.
    pub fn insert(&mut self, l: u32) {
        debug_assert!(l < self.width);
        self.bits[(l / 64) as usize] |= 1 << (l % 64);
    }

    /// Whether letter `l` is in the set.
    pub fn contains(&self, l: u32) -> bool {
        debug_assert!(l < self.width);
        self.bits[(l / 64) as usize] & (1 << (l % 64)) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Whether the set contains every letter of the alphabet.
    pub fn is_full(&self) -> bool {
        (0..self.width).all(|l| self.contains(l))
    }

    /// The number of letters in the alphabet (not in the set).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Union, in place.
    pub fn union_with(&mut self, other: &LetterSet) {
        debug_assert_eq!(self.width, other.width);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Intersection, in place.
    pub fn intersect_with(&mut self, other: &LetterSet) {
        debug_assert_eq!(self.width, other.width);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= b;
        }
    }

    /// Complement with respect to the alphabet, in place.
    pub fn complement(&mut self) {
        let width = self.width;
        for w in self.bits.iter_mut() {
            *w = !*w;
        }
        // Mask the tail beyond `width`.
        let tail = width % 64;
        if tail != 0 {
            if let Some(last) = self.bits.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// An extended regular expression over [`LetterSet`] leaves.
///
/// `Ord`/`Hash` give the smart constructors a canonical order for ACI
/// normalization and the compiler a key for its derivative cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Re {
    /// `∅` — no trace.
    Empty,
    /// `ε` — the empty trace.
    Eps,
    /// One event drawn from a (non-empty) letter set.
    Class(LetterSet),
    /// Concatenation.
    Cat(Arc<Re>, Arc<Re>),
    /// Union.
    Or(Arc<Re>, Arc<Re>),
    /// Intersection.
    And(Arc<Re>, Arc<Re>),
    /// Complement.
    Not(Arc<Re>),
    /// Kleene star.
    Star(Arc<Re>),
}

/// `ε` (shared).
pub fn eps() -> Arc<Re> {
    Arc::new(Re::Eps)
}

/// `∅` (shared).
pub fn empty() -> Arc<Re> {
    Arc::new(Re::Empty)
}

/// The universal expression `!∅` (every trace).
pub fn universal() -> Arc<Re> {
    Arc::new(Re::Not(empty()))
}

fn is_universal(r: &Re) -> bool {
    matches!(r, Re::Not(inner) if matches!(**inner, Re::Empty))
}

/// A single-event class; `Class(∅)` collapses to `∅`.
pub fn class(s: LetterSet) -> Arc<Re> {
    if s.is_empty() {
        empty()
    } else {
        Arc::new(Re::Class(s))
    }
}

/// Concatenation with `ε`/`∅` units: `∅·r = r·∅ = ∅`, `ε·r = r·ε = r`.
/// Right-associates nested `Cat`s so equal concatenations are equal terms.
pub fn cat(a: Arc<Re>, b: Arc<Re>) -> Arc<Re> {
    match (&*a, &*b) {
        (Re::Empty, _) | (_, Re::Empty) => empty(),
        (Re::Eps, _) => b,
        (_, Re::Eps) => a,
        (Re::Cat(x, y), _) => cat(x.clone(), cat(y.clone(), b)),
        _ => Arc::new(Re::Cat(a, b)),
    }
}

fn flatten_or(r: &Arc<Re>, out: &mut Vec<Arc<Re>>) {
    match &**r {
        Re::Or(a, b) => {
            flatten_or(a, out);
            flatten_or(b, out);
        }
        _ => out.push(r.clone()),
    }
}

fn flatten_and(r: &Arc<Re>, out: &mut Vec<Arc<Re>>) {
    match &**r {
        Re::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        _ => out.push(r.clone()),
    }
}

/// Union, normalized: flattened, sorted, deduplicated; `∅` is the unit,
/// the universal expression absorbs, adjacent letter classes merge.
pub fn or(a: Arc<Re>, b: Arc<Re>) -> Arc<Re> {
    let mut terms = Vec::new();
    flatten_or(&a, &mut terms);
    flatten_or(&b, &mut terms);
    // Merge all Class leaves into one set; drop ∅; detect the absorber.
    let mut merged: Option<LetterSet> = None;
    let mut rest: Vec<Arc<Re>> = Vec::new();
    for t in terms {
        match &*t {
            Re::Empty => {}
            Re::Class(s) => match &mut merged {
                Some(m) => m.union_with(s),
                None => merged = Some(s.clone()),
            },
            _ if is_universal(&t) => return universal(),
            _ => rest.push(t),
        }
    }
    if let Some(m) = merged {
        rest.push(class(m));
    }
    rest.sort();
    rest.dedup();
    match rest.len() {
        0 => empty(),
        _ => {
            let mut it = rest.into_iter().rev();
            let last = it.next().expect("non-empty");
            it.fold(last, |acc, t| Arc::new(Re::Or(t, acc)))
        }
    }
}

/// Intersection, normalized: flattened, sorted, deduplicated; the
/// universal expression is the unit, `∅` absorbs, letter classes meet.
pub fn and(a: Arc<Re>, b: Arc<Re>) -> Arc<Re> {
    let mut terms = Vec::new();
    flatten_and(&a, &mut terms);
    flatten_and(&b, &mut terms);
    let mut merged: Option<LetterSet> = None;
    let mut rest: Vec<Arc<Re>> = Vec::new();
    for t in terms {
        match &*t {
            Re::Empty => return empty(),
            Re::Class(s) => match &mut merged {
                Some(m) => m.intersect_with(s),
                None => merged = Some(s.clone()),
            },
            _ if is_universal(&t) => {}
            _ => rest.push(t),
        }
    }
    if let Some(m) = merged {
        if m.is_empty() {
            return empty();
        }
        rest.push(class(m));
    }
    rest.sort();
    rest.dedup();
    match rest.len() {
        0 => universal(),
        _ => {
            let mut it = rest.into_iter().rev();
            let last = it.next().expect("non-empty");
            it.fold(last, |acc, t| Arc::new(Re::And(t, acc)))
        }
    }
}

/// Complement: `!!r = r`.
pub fn not(r: Arc<Re>) -> Arc<Re> {
    match &*r {
        Re::Not(inner) => inner.clone(),
        _ => Arc::new(Re::Not(r)),
    }
}

/// Kleene star: `∅* = ε* = ε`, `(r*)* = r*`.
pub fn star(r: Arc<Re>) -> Arc<Re> {
    match &*r {
        Re::Empty | Re::Eps => eps(),
        Re::Star(_) => r,
        _ => Arc::new(Re::Star(r)),
    }
}

/// Whether `r` accepts the empty trace (`ν(r) = ε`).
pub fn nullable(r: &Re) -> bool {
    match r {
        Re::Empty | Re::Class(_) => false,
        Re::Eps | Re::Star(_) => true,
        Re::Cat(a, b) | Re::And(a, b) => nullable(a) && nullable(b),
        Re::Or(a, b) => nullable(a) || nullable(b),
        Re::Not(a) => !nullable(a),
    }
}

/// The Brzozowski derivative `∂ₐ r` with respect to letter `a`.
pub fn deriv(r: &Arc<Re>, a: u32) -> Arc<Re> {
    match &**r {
        Re::Empty | Re::Eps => empty(),
        Re::Class(s) => {
            if s.contains(a) {
                eps()
            } else {
                empty()
            }
        }
        Re::Cat(x, y) => {
            let head = cat(deriv(x, a), y.clone());
            if nullable(x) {
                or(head, deriv(y, a))
            } else {
                head
            }
        }
        Re::Or(x, y) => or(deriv(x, a), deriv(y, a)),
        Re::And(x, y) => and(deriv(x, a), deriv(y, a)),
        Re::Not(x) => not(deriv(x, a)),
        Re::Star(x) => cat(deriv(x, a), r.clone()),
    }
}

/// Reference semantics: whether `word` is in the language of `re`, decided
/// by direct structural recursion on split points (no derivatives, no
/// automaton). Exponential without memoization, polynomial with it —
/// exactly the naive matcher the property tests race the DFA against.
pub fn naive_accepts(re: &Arc<Re>, word: &[u32]) -> bool {
    let mut memo = HashMap::new();
    naive(re, word, 0, word.len(), &mut memo)
}

type MemoKey = (usize, usize, usize);

fn naive(
    re: &Arc<Re>,
    word: &[u32],
    i: usize,
    j: usize,
    memo: &mut HashMap<MemoKey, bool>,
) -> bool {
    let key = (Arc::as_ptr(re) as usize, i, j);
    if let Some(&hit) = memo.get(&key) {
        return hit;
    }
    let ans = match &**re {
        Re::Empty => false,
        Re::Eps => i == j,
        Re::Class(s) => j == i + 1 && s.contains(word[i]),
        Re::Cat(a, b) => (i..=j).any(|m| naive(a, word, i, m, memo) && naive(b, word, m, j, memo)),
        Re::Or(a, b) => naive(a, word, i, j, memo) || naive(b, word, i, j, memo),
        Re::And(a, b) => naive(a, word, i, j, memo) && naive(b, word, i, j, memo),
        Re::Not(a) => !naive(a, word, i, j, memo),
        Re::Star(a) => {
            i == j || (i + 1..=j).any(|m| naive(a, word, i, m, memo) && naive(re, word, m, j, memo))
        }
    };
    memo.insert(key, ans);
    ans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn letter(width: u32, l: u32) -> Arc<Re> {
        let mut s = LetterSet::empty(width);
        s.insert(l);
        class(s)
    }

    #[test]
    fn letter_sets_behave() {
        let mut s = LetterSet::empty(70);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(69);
        assert!(s.contains(69) && !s.contains(68));
        s.complement();
        assert!(!s.contains(69) && s.contains(68));
        assert!(LetterSet::full(70).is_full());
    }

    #[test]
    fn smart_constructors_normalize() {
        let a = letter(4, 0);
        let b = letter(4, 1);
        assert_eq!(or(a.clone(), a.clone()), a.clone() /* idempotent */);
        assert_eq!(or(a.clone(), b.clone()), or(b.clone(), a.clone()));
        assert_eq!(cat(eps(), a.clone()), a);
        assert_eq!(cat(empty(), b.clone()), empty());
        assert_eq!(not(not(b.clone())), b);
        assert_eq!(star(star(letter(4, 2))), star(letter(4, 2)));
        assert_eq!(and(universal(), b.clone()), b);
        assert_eq!(or(universal(), b), universal());
    }

    #[test]
    fn adjacent_classes_merge_under_or() {
        let merged = or(letter(4, 0), letter(4, 1));
        match &*merged {
            Re::Class(s) => assert!(s.contains(0) && s.contains(1) && !s.contains(2)),
            other => panic!("expected a merged class, got {other:?}"),
        }
    }

    #[test]
    fn derivative_of_a_star_chain() {
        // (ab)* over alphabet {a=0, b=1}
        let ab = cat(letter(2, 0), letter(2, 1));
        let re = star(ab);
        assert!(nullable(&re));
        let d = deriv(&re, 0);
        assert!(!nullable(&d));
        let dd = deriv(&d, 1);
        assert!(nullable(&dd));
        assert_eq!(dd, re, "∂b∂a (ab)* returns to the start state");
    }

    #[test]
    fn naive_matcher_on_small_cases() {
        let ab = cat(letter(2, 0), letter(2, 1));
        let re = star(ab);
        assert!(naive_accepts(&re, &[]));
        assert!(naive_accepts(&re, &[0, 1, 0, 1]));
        assert!(!naive_accepts(&re, &[0, 1, 0]));
        let no_b = not(cat(universal(), cat(letter(2, 1), universal())));
        assert!(naive_accepts(&no_b, &[0, 0]));
        assert!(!naive_accepts(&no_b, &[0, 1]));
    }
}
