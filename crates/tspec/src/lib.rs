//! `monsem-tspec` — a temporal specification language compiled to
//! automaton monitors.
//!
//! This crate closes the gap between *declarative* trace properties and
//! the operational [`Monitor`](monsem_monitor::Monitor) interface of the
//! rest of the workspace. A specification is written in a small surface
//! syntax over monitor events — regular expressions extended with
//! intersection, complement, and past-time temporal sugar
//! (`always`, `never`, `eventually`, `until`, `release`, `respond`) —
//! and compiled via
//! Brzozowski derivatives into a deterministic automaton whose
//! transition function becomes the monitor's hook.
//!
//! # The (MSyn, MAlg, MFun) reading
//!
//! The paper factors every monitor into a syntax of monitoring
//! annotations, an algebra of monitor states, and an interpretation
//! function. The compiled specification instantiates that trinity
//! directly:
//!
//! | Paper component | Here |
//! |-----------------|------|
//! | **MSyn** — what can be said | the spec grammar ([`ast::SpecExpr`] over [`ast::Pred`] event predicates) |
//! | **MAlg** — the state space | a DFA state index plus a bounded match trace ([`SpecState`]) |
//! | **MFun** — the state transform per event | the compiled transition table ([`Automaton::step`]) |
//!
//! Because **MFun** is a table lookup rather than a formula
//! interpreter, a specification monitor adds a constant, small cost per
//! observed event, and the partial evaluator can residualize the lookup
//! away entirely.
//!
//! # Surface syntax
//!
//! Events are `pre(name)`, `post(name)`, `at(name)` (either phase),
//! and the synthetic end-of-trace marker `done`; `_` matches any name.
//! Post events carry the observed value, constrained with
//! `value <op> n` comparisons or the `unsorted` structural predicate.
//! Predicates combine with `and`, `or`, `not`, `=>`; expressions with
//! `;` (sequence), `|` (union), `&` (intersection), `!` (complement),
//! `*` `+` `?` `{n}` (repetition), and the temporal sugar forms.
//!
//! ```
//! use monsem_tspec::SpecMonitor;
//!
//! // Every factorial result must be positive.
//! let m = SpecMonitor::new("fac-pos", "always(post(fac) => value >= 1)")
//!     .unwrap()
//!     .enforcing();
//! assert!(m.is_enforcing());
//! ```
//!
//! Violations surface through the ordinary
//! [`Outcome::Abort`](monsem_monitor::Outcome) channel, so an enforcing
//! spec composes with `Guarded`, `MonitorStack`, and sessions unchanged,
//! and a *non-enforcing* spec is answer-preserving in the sense of
//! Theorem 7.7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod automaton;
pub mod deriv;
pub mod lexer;
pub mod monitor;
pub mod parser;

use std::fmt;
use std::sync::Arc;

pub use ast::{Atom, CmpOp, NamePat, Pred, SpecExpr};
pub use automaton::{Alphabet, Automaton, CompileOptions, Phase, MAX_LETTERS, MAX_STATES};
pub use monitor::{
    ShardTape, SpecMonitor, SpecState, TapeCheck, TapeOutcome, DEFAULT_REPLAY_CAP,
    DEFAULT_TRACE_CAP,
};
pub use parser::{parse_pred_atom_tokens, parse_pred_tokens, parse_spec};

/// What category of failure a [`SpecError`] reports.
///
/// Resource-limit overflows are structured (they carry the observed size
/// and the cap that was exceeded) so callers can react programmatically —
/// e.g. retry with a larger [`CompileOptions::max_states`] — instead of
/// string-matching the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecErrorKind {
    /// A lexical or syntactic error in the spec source.
    Syntax,
    /// The derivative closure needed more DFA states than the cap allows.
    StateLimit {
        /// How many states had been created when the cap was hit.
        states: usize,
        /// The cap in force ([`MAX_STATES`] unless overridden).
        limit: usize,
    },
    /// The abstract alphabet exceeded the letter cap.
    AlphabetLimit {
        /// The alphabet width the spec would need.
        letters: u32,
        /// The cap in force ([`MAX_LETTERS`]).
        limit: u32,
    },
}

/// An error produced while lexing, parsing, or compiling a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset into the source where the error was detected. For
    /// compilation errors (which have no single source location) this is
    /// the start of the spec.
    pub offset: usize,
    /// Structured classification of the failure.
    pub kind: SpecErrorKind,
}

impl SpecError {
    /// A lexical/syntactic error at a byte offset.
    pub fn syntax(message: impl Into<String>, offset: usize) -> SpecError {
        SpecError {
            message: message.into(),
            offset,
            kind: SpecErrorKind::Syntax,
        }
    }

    /// A state-cap overflow during DFA compilation.
    pub fn state_limit(states: usize, limit: usize) -> SpecError {
        SpecError {
            message: format!(
                "spec automaton exceeds {limit} states (reached {states}); simplify the spec"
            ),
            offset: 0,
            kind: SpecErrorKind::StateLimit { states, limit },
        }
    }

    /// A letter-cap overflow while building the abstract alphabet.
    pub fn alphabet_limit(letters: u32, limit: u32) -> SpecError {
        SpecError {
            message: format!("spec alphabet has {letters} letters (limit {limit})"),
            offset: 0,
            kind: SpecErrorKind::AlphabetLimit { letters, limit },
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for SpecError {}

/// A parsed and compiled specification: source text, AST, and automaton.
///
/// A `Spec` is immutable and cheap to share; [`SpecMonitor`] holds one
/// behind an [`Arc`], so cloning a monitor does not recompile anything.
#[derive(Debug, Clone)]
pub struct Spec {
    source: String,
    ast: SpecExpr,
    automaton: Arc<Automaton>,
}

impl Spec {
    /// Parses and compiles `src`.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on lexical, syntactic, or compilation
    /// failure (e.g. exceeding the [`MAX_STATES`] bound).
    pub fn parse(src: &str) -> Result<Spec, SpecError> {
        let ast = parser::parse_spec(src)?;
        let automaton = Automaton::compile(&ast)?;
        Ok(Spec {
            source: src.to_string(),
            ast,
            automaton: Arc::new(automaton),
        })
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed (desugared) specification expression.
    pub fn ast(&self) -> &SpecExpr {
        &self.ast
    }

    /// The compiled automaton.
    pub fn automaton(&self) -> &Arc<Automaton> {
        &self.automaton
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parse_roundtrip() {
        let spec = Spec::parse("always(post(fac) => value >= 1)").unwrap();
        assert_eq!(spec.source(), "always(post(fac) => value >= 1)");
        assert!(spec.automaton().num_states() >= 1);
    }

    #[test]
    fn spec_errors_have_offsets() {
        let err = Spec::parse("always(").unwrap_err();
        assert!(err.to_string().contains("at byte"));
    }
}
