//! Tokenizer for the specification surface syntax.

use crate::SpecError;

/// A lexical token, tagged with its byte offset for error reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `?`
    Question,
    /// `!`
    Bang,
    /// `|`
    Pipe,
    /// `&`
    Amp,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `-` (only valid immediately before an integer literal)
    Minus,
    /// `/` (used by the stream spec surface; no temporal-spec production
    /// consumes it)
    Slash,
    /// `=>`
    Implies,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A token with its starting byte offset in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Byte offset where the token starts.
    pub offset: usize,
}

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns a [`SpecError`] on unknown characters or malformed integers.
pub fn lex(src: &str) -> Result<Vec<Spanned>, SpecError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        let tok = match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
                continue;
            }
            '#' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            '(' => {
                i += 1;
                Tok::LParen
            }
            ')' => {
                i += 1;
                Tok::RParen
            }
            '[' => {
                i += 1;
                Tok::LBracket
            }
            ']' => {
                i += 1;
                Tok::RBracket
            }
            '{' => {
                i += 1;
                Tok::LBrace
            }
            '}' => {
                i += 1;
                Tok::RBrace
            }
            '*' => {
                i += 1;
                Tok::Star
            }
            '+' => {
                i += 1;
                Tok::Plus
            }
            '?' => {
                i += 1;
                Tok::Question
            }
            '|' => {
                i += 1;
                Tok::Pipe
            }
            '&' => {
                i += 1;
                Tok::Amp
            }
            ';' => {
                i += 1;
                Tok::Semi
            }
            ',' => {
                i += 1;
                Tok::Comma
            }
            '-' => {
                i += 1;
                Tok::Minus
            }
            '/' => {
                i += 1;
                Tok::Slash
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Ne
                } else {
                    i += 1;
                    Tok::Bang
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    i += 2;
                    Tok::Implies
                } else {
                    i += 1;
                    Tok::Eq
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Le
                } else {
                    i += 1;
                    Tok::Lt
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Tok::Ge
                } else {
                    i += 1;
                    Tok::Gt
                }
            }
            '0'..='9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n: i64 = text.parse().map_err(|_| {
                    SpecError::syntax(format!("integer literal `{text}` out of range"), start)
                })?;
                Tok::Int(n)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                // Identifier characters mirror the object language's label
                // syntax: `null?`, `f'` and friends are legal names.
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' || b == '?' || b == '\'' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                Tok::Ident(src[start..i].to_string())
            }
            other => {
                return Err(SpecError::syntax(
                    format!("unexpected character `{other}`"),
                    start,
                ))
            }
        };
        toks.push(Spanned { tok, offset: start });
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_operators_and_idents() {
        let toks = lex("always([post(fac) => value >= -1])").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|s| &s.tok).collect();
        assert!(matches!(kinds[0], Tok::Ident(s) if s == "always"));
        assert!(kinds.contains(&&Tok::Implies));
        assert!(kinds.contains(&&Tok::Ge));
        assert!(kinds.contains(&&Tok::Minus));
        assert!(kinds.contains(&&Tok::Int(1)));
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let toks = lex("# header\n  [done]  # trailing\n").unwrap();
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn rejects_garbage() {
        let err = lex("[@]").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.offset, 1);
    }
}
