//! Recursive-descent parser for temporal specifications.
//!
//! Grammar (lowest precedence first):
//!
//! ```text
//! expr    := isect ( '|' isect )*
//! isect   := cat ( '&' cat )*
//! cat     := prefix ( ';' prefix )*
//! prefix  := '!' prefix | postfix
//! postfix := primary ( '*' | '+' | '?' | '{' INT '}' )*
//! primary := '(' expr ')' | '[' pred ']' | 'any' | 'none' | 'empty'
//!          | 'always' '(' pred ')' | 'never' '(' pred ')'
//!          | 'eventually' '(' pred ')'
//!          | 'until' '(' pred ',' pred ')' | 'release' '(' pred ',' pred ')'
//!          | 'respond' '(' pred ',' pred ',' INT ')'
//!          | patom                      -- bare atoms are sugar for [atom]
//!
//! pred    := orp ( '=>' pred )?        -- implication, right-associative
//! orp     := andp ( 'or' andp )*
//! andp    := notp ( 'and' notp )*
//! notp    := 'not' notp | '(' pred ')' | patom
//! patom   := 'true' | 'false' | 'done' | 'unsorted'
//!          | 'pre' '(' namepat ')' | 'post' '(' namepat ')'
//!          | 'at' '(' namepat ')' | 'value' cmp int
//! namepat := IDENT | '_'
//! ```
//!
//! Temporal sugar expands here:
//!
//! * `always(p)`     ⇒ `[p or done]*` — the synthetic end-of-trace marker
//!   is exempt, so `always` ranges over hook events only
//! * `never(p)`      ⇒ `[not p]*`
//! * `eventually(p)` ⇒ `any* ; [p] ; any*`
//! * `until(p, q)`   ⇒ `[p and not q]* ; [q] ; any*` — strong until: `p`
//!   holds at every event strictly before the first `q` event, and `q`
//!   must eventually occur.  A trace that ends (hits `done`) before any
//!   `q` event violates the spec.
//! * `release(p, q)` ⇒ `!([not p and q]* ; [not q and not done] ; any*)` —
//!   the LTL dual of until: `q` holds up to and *including* the first
//!   event where `p` holds (`p` releases `q`).  If `p` never holds, `q`
//!   must hold at every hook event; like `always`, the synthetic `done`
//!   marker is exempt, so a trace may end without `p` ever occurring.
//! * `respond(p, q, k)` ⇒ `!(any* ; [p and not q] ; [not q]{k} ; any*)` —
//!   every `p` event must be answered by a `q` event within `k` events.
//!   The synthetic `done` event counts against the window, so a trace that
//!   *ends* unanswered more than `k − 1` events after `p` also violates.

use crate::ast::{Atom, CmpOp, NamePat, Pred, SpecExpr};
use crate::lexer::{lex, Spanned, Tok};
use crate::SpecError;
use monsem_syntax::Ident;

/// Largest allowed bound in `r{n}` and `respond(_, _, n)` — repeats expand
/// to `n` concatenated copies before compilation.
pub const MAX_REPEAT: u32 = 255;

/// Parses a specification source into a trace expression.
///
/// # Errors
///
/// Lexical or syntactic errors, with the byte offset of the offending
/// token.
pub fn parse_spec(src: &str) -> Result<SpecExpr, SpecError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        end: src.len(),
    };
    let expr = p.expr()?;
    if let Some(t) = p.peek() {
        return Err(p.err_at(t.offset, "unexpected trailing input"));
    }
    Ok(expr)
}

/// Parses one event predicate (the `pred` production) from a pre-lexed
/// token stream, starting at `*pos` and leaving `*pos` on the first
/// unconsumed token. `src_len` anchors end-of-input error offsets.
///
/// This is the embedding surface for `monsem-stream`, whose spec grammar
/// hosts tspec predicates inside aggregate arguments and deadline
/// declarations.
///
/// # Errors
///
/// Syntax errors with the offending token's byte offset.
pub fn parse_pred_tokens(
    toks: &[Spanned],
    pos: &mut usize,
    src_len: usize,
) -> Result<Pred, SpecError> {
    let mut p = Parser {
        toks: toks.to_vec(),
        pos: *pos,
        end: src_len,
    };
    let pred = p.pred()?;
    *pos = p.pos;
    Ok(pred)
}

/// Parses a single atomic event predicate (the `patom` production:
/// `pre(f)`, `post(f)`, `at(f)`, `value ⋈ n`, `done`, `unsorted`,
/// `true`, `false`) from a pre-lexed token stream. Unlike
/// [`parse_pred_tokens`] it does not consume `and`/`or`/`not`
/// connectives, so a host grammar (trigger conditions in
/// `monsem-stream`) can own the boolean structure while delegating the
/// event atoms here.
///
/// # Errors
///
/// As for [`parse_pred_tokens`].
pub fn parse_pred_atom_tokens(
    toks: &[Spanned],
    pos: &mut usize,
    src_len: usize,
) -> Result<Atom, SpecError> {
    let mut p = Parser {
        toks: toks.to_vec(),
        pos: *pos,
        end: src_len,
    };
    let atom = p.patom()?;
    *pos = p.pos;
    Ok(atom)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek().map(|s| &s.tok) == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), SpecError> {
        if self.eat(&tok) {
            Ok(())
        } else {
            Err(self.err_here(&format!("expected {what}")))
        }
    }

    fn err_here(&self, message: &str) -> SpecError {
        let offset = self.peek().map(|s| s.offset).unwrap_or(self.end);
        SpecError::syntax(message, offset)
    }

    fn err_at(&self, offset: usize, message: &str) -> SpecError {
        SpecError::syntax(message, offset)
    }

    // ---- trace expressions ------------------------------------------------

    fn expr(&mut self) -> Result<SpecExpr, SpecError> {
        let mut lhs = self.isect()?;
        while self.eat(&Tok::Pipe) {
            let rhs = self.isect()?;
            lhs = SpecExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn isect(&mut self) -> Result<SpecExpr, SpecError> {
        let mut lhs = self.cat()?;
        while self.eat(&Tok::Amp) {
            let rhs = self.cat()?;
            lhs = SpecExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cat(&mut self) -> Result<SpecExpr, SpecError> {
        let mut lhs = self.prefix()?;
        while self.eat(&Tok::Semi) {
            let rhs = self.prefix()?;
            lhs = SpecExpr::Cat(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn prefix(&mut self) -> Result<SpecExpr, SpecError> {
        if self.eat(&Tok::Bang) {
            let inner = self.prefix()?;
            return Ok(SpecExpr::Not(Box::new(inner)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<SpecExpr, SpecError> {
        let mut e = self.primary()?;
        loop {
            e = if self.eat(&Tok::Star) {
                SpecExpr::Star(Box::new(e))
            } else if self.eat(&Tok::Plus) {
                SpecExpr::Plus(Box::new(e))
            } else if self.eat(&Tok::Question) {
                SpecExpr::Opt(Box::new(e))
            } else if self.eat(&Tok::LBrace) {
                let n = self.int_bound()?;
                self.expect(Tok::RBrace, "`}` after repeat bound")?;
                SpecExpr::Repeat(Box::new(e), n)
            } else {
                return Ok(e);
            };
        }
    }

    fn int_bound(&mut self) -> Result<u32, SpecError> {
        match self.bump() {
            Some(Spanned {
                tok: Tok::Int(n),
                offset,
            }) => {
                if n < 0 || n > MAX_REPEAT as i64 {
                    Err(self.err_at(offset, &format!("repeat bound must be 0..={MAX_REPEAT}")))
                } else {
                    Ok(n as u32)
                }
            }
            Some(Spanned { offset, .. }) => Err(self.err_at(offset, "expected a repeat bound")),
            None => Err(self.err_here("expected a repeat bound")),
        }
    }

    fn primary(&mut self) -> Result<SpecExpr, SpecError> {
        let Some(t) = self.peek().cloned() else {
            return Err(self.err_here("expected a trace expression"));
        };
        match &t.tok {
            Tok::LParen => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::LBracket => {
                self.pos += 1;
                let p = self.pred()?;
                self.expect(Tok::RBracket, "`]` after event predicate")?;
                Ok(SpecExpr::Event(p))
            }
            Tok::Ident(word) => match word.as_str() {
                "any" => {
                    self.pos += 1;
                    Ok(SpecExpr::Any)
                }
                "none" => {
                    self.pos += 1;
                    Ok(SpecExpr::Empty)
                }
                "empty" => {
                    self.pos += 1;
                    Ok(SpecExpr::Eps)
                }
                "always" => {
                    self.pos += 1;
                    self.expect(Tok::LParen, "`(` after `always`")?;
                    let p = self.pred()?;
                    self.expect(Tok::RParen, "`)`")?;
                    // `done` is exempt: `always` constrains hook events,
                    // not the end-of-trace marker.
                    Ok(SpecExpr::Star(Box::new(SpecExpr::Event(Pred::Or(
                        Box::new(p),
                        Box::new(Pred::Atom(Atom::Done)),
                    )))))
                }
                "never" => {
                    self.pos += 1;
                    self.expect(Tok::LParen, "`(` after `never`")?;
                    let p = self.pred()?;
                    self.expect(Tok::RParen, "`)`")?;
                    Ok(SpecExpr::Star(Box::new(SpecExpr::Event(Pred::Not(
                        Box::new(p),
                    )))))
                }
                "eventually" => {
                    self.pos += 1;
                    self.expect(Tok::LParen, "`(` after `eventually`")?;
                    let p = self.pred()?;
                    self.expect(Tok::RParen, "`)`")?;
                    Ok(SpecExpr::Cat(
                        Box::new(SpecExpr::Star(Box::new(SpecExpr::Any))),
                        Box::new(SpecExpr::Cat(
                            Box::new(SpecExpr::Event(p)),
                            Box::new(SpecExpr::Star(Box::new(SpecExpr::Any))),
                        )),
                    ))
                }
                "until" => {
                    self.pos += 1;
                    self.expect(Tok::LParen, "`(` after `until`")?;
                    let p = self.pred()?;
                    self.expect(Tok::Comma, "`,` between `until` arguments")?;
                    let q = self.pred()?;
                    self.expect(Tok::RParen, "`)`")?;
                    // `[p and not q]* ; [q] ; any*` — strong until.
                    Ok(SpecExpr::Cat(
                        Box::new(SpecExpr::Star(Box::new(SpecExpr::Event(Pred::And(
                            Box::new(p),
                            Box::new(Pred::Not(Box::new(q.clone()))),
                        ))))),
                        Box::new(SpecExpr::Cat(
                            Box::new(SpecExpr::Event(q)),
                            Box::new(SpecExpr::Star(Box::new(SpecExpr::Any))),
                        )),
                    ))
                }
                "release" => {
                    self.pos += 1;
                    self.expect(Tok::LParen, "`(` after `release`")?;
                    let p = self.pred()?;
                    self.expect(Tok::Comma, "`,` between `release` arguments")?;
                    let q = self.pred()?;
                    self.expect(Tok::RParen, "`)`")?;
                    // `!([not p and q]* ; [not q and not done] ; any*)` —
                    // a violation is a `not q` hook event reached while no
                    // earlier event released the obligation (`p` held) or
                    // already violated it (`q` failed).  `done` is exempt.
                    let bad = SpecExpr::Cat(
                        Box::new(SpecExpr::Star(Box::new(SpecExpr::Event(Pred::And(
                            Box::new(Pred::Not(Box::new(p))),
                            Box::new(q.clone()),
                        ))))),
                        Box::new(SpecExpr::Cat(
                            Box::new(SpecExpr::Event(Pred::And(
                                Box::new(Pred::Not(Box::new(q))),
                                Box::new(Pred::Not(Box::new(Pred::Atom(Atom::Done)))),
                            ))),
                            Box::new(SpecExpr::Star(Box::new(SpecExpr::Any))),
                        )),
                    );
                    Ok(SpecExpr::Not(Box::new(bad)))
                }
                "respond" => {
                    self.pos += 1;
                    self.expect(Tok::LParen, "`(` after `respond`")?;
                    let p = self.pred()?;
                    self.expect(Tok::Comma, "`,` between `respond` arguments")?;
                    let q = self.pred()?;
                    self.expect(Tok::Comma, "`,` between `respond` arguments")?;
                    let k = self.int_bound()?;
                    self.expect(Tok::RParen, "`)`")?;
                    let not_q = || Pred::Not(Box::new(q.clone()));
                    let anystar = || SpecExpr::Star(Box::new(SpecExpr::Any));
                    // `! ( any* ; [p and not q] ; [not q]{k} ; any* )`
                    let bad = SpecExpr::Cat(
                        Box::new(anystar()),
                        Box::new(SpecExpr::Cat(
                            Box::new(SpecExpr::Event(Pred::And(Box::new(p), Box::new(not_q())))),
                            Box::new(SpecExpr::Cat(
                                Box::new(SpecExpr::Repeat(Box::new(SpecExpr::Event(not_q())), k)),
                                Box::new(anystar()),
                            )),
                        )),
                    );
                    Ok(SpecExpr::Not(Box::new(bad)))
                }
                _ => {
                    // A bare atomic predicate is sugar for `[atom]`.
                    let a = self.patom()?;
                    Ok(SpecExpr::Event(Pred::Atom(a)))
                }
            },
            _ => Err(self.err_at(t.offset, "expected a trace expression")),
        }
    }

    // ---- event predicates -------------------------------------------------

    fn pred(&mut self) -> Result<Pred, SpecError> {
        let lhs = self.orp()?;
        if self.eat(&Tok::Implies) {
            let rhs = self.pred()?;
            return Ok(lhs.implies(rhs));
        }
        Ok(lhs)
    }

    fn orp(&mut self) -> Result<Pred, SpecError> {
        let mut lhs = self.andp()?;
        loop {
            match self.peek() {
                Some(Spanned {
                    tok: Tok::Ident(w), ..
                }) if w == "or" => {
                    self.pos += 1;
                    let rhs = self.andp()?;
                    lhs = Pred::Or(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn andp(&mut self) -> Result<Pred, SpecError> {
        let mut lhs = self.notp()?;
        loop {
            match self.peek() {
                Some(Spanned {
                    tok: Tok::Ident(w), ..
                }) if w == "and" => {
                    self.pos += 1;
                    let rhs = self.notp()?;
                    lhs = Pred::And(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn notp(&mut self) -> Result<Pred, SpecError> {
        match self.peek() {
            Some(Spanned {
                tok: Tok::Ident(w), ..
            }) if w == "not" => {
                self.pos += 1;
                let inner = self.notp()?;
                Ok(Pred::Not(Box::new(inner)))
            }
            Some(Spanned {
                tok: Tok::LParen, ..
            }) => {
                self.pos += 1;
                let p = self.pred()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(p)
            }
            _ => Ok(Pred::Atom(self.patom()?)),
        }
    }

    fn patom(&mut self) -> Result<Atom, SpecError> {
        let Some(t) = self.bump() else {
            return Err(self.err_here("expected an event predicate"));
        };
        let Tok::Ident(word) = &t.tok else {
            return Err(self.err_at(t.offset, "expected an event predicate"));
        };
        match word.as_str() {
            "true" => Ok(Atom::True),
            "false" => Ok(Atom::False),
            "done" => Ok(Atom::Done),
            "unsorted" => Ok(Atom::Unsorted),
            "pre" => Ok(Atom::Pre(self.namepat()?)),
            "post" => Ok(Atom::Post(self.namepat()?)),
            "at" => Ok(Atom::At(self.namepat()?)),
            "value" => {
                let op = match self.bump() {
                    Some(Spanned { tok: Tok::Eq, .. }) => CmpOp::Eq,
                    Some(Spanned { tok: Tok::Ne, .. }) => CmpOp::Ne,
                    Some(Spanned { tok: Tok::Lt, .. }) => CmpOp::Lt,
                    Some(Spanned { tok: Tok::Le, .. }) => CmpOp::Le,
                    Some(Spanned { tok: Tok::Gt, .. }) => CmpOp::Gt,
                    Some(Spanned { tok: Tok::Ge, .. }) => CmpOp::Ge,
                    Some(Spanned { offset, .. }) => {
                        return Err(self.err_at(offset, "expected a comparison after `value`"))
                    }
                    None => return Err(self.err_here("expected a comparison after `value`")),
                };
                let neg = self.eat(&Tok::Minus);
                match self.bump() {
                    Some(Spanned {
                        tok: Tok::Int(n), ..
                    }) => Ok(Atom::Value(op, if neg { -n } else { n })),
                    Some(Spanned { offset, .. }) => {
                        Err(self.err_at(offset, "expected an integer after the comparison"))
                    }
                    None => Err(self.err_here("expected an integer after the comparison")),
                }
            }
            other => Err(self.err_at(
                t.offset,
                &format!("unknown event predicate `{other}` (expected pre/post/at/done/value/unsorted/true/false)"),
            )),
        }
    }

    fn namepat(&mut self) -> Result<NamePat, SpecError> {
        self.expect(Tok::LParen, "`(`")?;
        let pat = match self.bump() {
            Some(Spanned {
                tok: Tok::Ident(w), ..
            }) => {
                if w == "_" {
                    NamePat::Any
                } else {
                    NamePat::Name(Ident::new(&w))
                }
            }
            Some(Spanned { offset, .. }) => {
                return Err(self.err_at(offset, "expected an annotation name or `_`"))
            }
            None => return Err(self.err_here("expected an annotation name or `_`")),
        };
        self.expect(Tok::RParen, "`)`")?;
        Ok(pat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_example() {
        let e = parse_spec("always(post(fac) => value >= 1)").unwrap();
        let SpecExpr::Star(inner) = e else {
            panic!("always should desugar to a star");
        };
        assert!(matches!(*inner, SpecExpr::Event(_)));
    }

    #[test]
    fn precedence_cat_binds_tighter_than_or() {
        let e = parse_spec("done | done ; done").unwrap();
        assert!(matches!(e, SpecExpr::Or(_, _)));
    }

    #[test]
    fn bare_atoms_are_events() {
        let e = parse_spec("pre(f) ; post(f)").unwrap();
        assert!(matches!(e, SpecExpr::Cat(_, _)));
    }

    #[test]
    fn respond_desugars_to_a_complement() {
        let e = parse_spec("respond(pre(req), post(ack), 3)").unwrap();
        assert!(matches!(e, SpecExpr::Not(_)));
    }

    #[test]
    fn until_desugars_to_a_guarded_prefix() {
        let e = parse_spec("until(pre(req), post(ack))").unwrap();
        let SpecExpr::Cat(star, rest) = e else {
            panic!("until should desugar to a concatenation");
        };
        assert!(matches!(*star, SpecExpr::Star(_)));
        assert!(matches!(*rest, SpecExpr::Cat(_, _)));
    }

    #[test]
    fn release_desugars_to_a_complement() {
        let e = parse_spec("release(post(init), post(ok))").unwrap();
        assert!(matches!(e, SpecExpr::Not(_)));
    }

    #[test]
    fn until_and_release_demand_two_arguments() {
        assert!(parse_spec("until(pre(a))").is_err());
        assert!(parse_spec("release(pre(a))").is_err());
    }

    #[test]
    fn reports_offsets() {
        let err = parse_spec("always(post(fac) => )").unwrap_err();
        assert_eq!(err.offset, 20);
        let err = parse_spec("[pre(f)] extra").unwrap_err();
        assert!(err.message.contains("unexpected trailing input"));
        assert_eq!(err.offset, 9);
        let err = parse_spec("[before(f)]").unwrap_err();
        assert!(err.message.contains("unknown event predicate"));
    }

    #[test]
    fn rejects_oversized_repeats() {
        let err = parse_spec("any{9999}").unwrap_err();
        assert!(err.message.contains("repeat bound"));
    }
}
