//! Alphabet abstraction and DFA compilation.
//!
//! Event predicates range over an unbounded concrete event space (any
//! annotation name × any [`Value`]). Compilation first quotients that space
//! into a finite **abstract alphabet** whose letters are indistinguishable
//! by every predicate in the spec:
//!
//! * *name classes* — one per annotation name mentioned in the spec, plus
//!   one `OTHER` class for every unmentioned name;
//! * *value classes* — one per non-empty region of the integer line cut at
//!   the constants compared against (`… < c₁ < … < c₂ < …`), plus an
//!   `unsorted-list` class when the spec uses `unsorted`, plus one `OTHER`
//!   class for all remaining values;
//! * letters: `pre(nameclass)`, `post(nameclass, valueclass)`, and the
//!   synthetic `done`.
//!
//! Every abstract letter is realizable by a concrete event (each integer
//! region keeps a concrete representative), so the dead-state analysis on
//! the compiled DFA is exact: a state is **dead** iff no continuation of
//! concrete events can ever reach acceptance again, which is precisely the
//! "violation" judgement the monitor adapter reports.
//!
//! The DFA itself is built by memoized Brzozowski iteration: a worklist of
//! normalized derivatives with a hash-consing cache mapping each
//! expression to its state number.

use crate::ast::{Atom, NamePat, Pred, SpecExpr};
use crate::deriv::{
    and, cat, class, deriv, empty, eps, naive_accepts, not, nullable, or, star, LetterSet, Re,
};
use crate::SpecError;
use monsem_core::Value;
use monsem_syntax::Ident;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Ceiling on DFA states — a safety valve, far above any reasonable spec.
pub const MAX_STATES: usize = 4_096;

/// Ceiling on abstract letters.
pub const MAX_LETTERS: u32 = 4_096;

/// Hook phase of an abstract letter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// An `updPre` hook event.
    Pre,
    /// An `updPost` hook event.
    Post,
    /// The synthetic end-of-trace event.
    Done,
}

/// The representative of a value class (used to decide predicates on
/// abstract letters; every class is concretely realizable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueRep {
    /// Any value no predicate distinguishes.
    Other,
    /// An integer region, by a concrete member.
    Int(i64),
    /// A definitely-unsorted list.
    Unsorted,
}

/// Mirrors `monsem_monitors::demon::is_sorted` (the Figure 8 demon's
/// trigger): a value is *unsorted* iff it is a list with an adjacent pair
/// of integers in decreasing order. The canonical predicate lives in
/// `monsem_monitor::tape` so event tapes abstract values identically.
fn value_is_unsorted(v: &Value) -> bool {
    monsem_monitor::tape::value_is_unsorted(v)
}

/// The finite abstract alphabet of a spec.
#[derive(Debug, Clone)]
pub struct Alphabet {
    /// Annotation names mentioned by the spec, in first-mention order.
    names: Vec<Ident>,
    name_index: HashMap<Ident, usize>,
    /// Sorted, deduplicated comparison constants.
    consts: Vec<i64>,
    /// Value-class representatives; class 0 is always `Other`.
    value_reps: Vec<ValueRep>,
    /// Integer region id (`0..=2k`) → value class, for non-empty regions.
    region_class: Vec<usize>,
    /// Class of definitely-unsorted lists, if the spec uses `unsorted`.
    unsorted_class: Option<usize>,
}

impl Alphabet {
    /// Builds the alphabet for a spec by scanning its predicates.
    pub fn build(spec: &SpecExpr) -> Result<Alphabet, SpecError> {
        let mut names: Vec<Ident> = Vec::new();
        let mut name_index = HashMap::new();
        let mut consts: Vec<i64> = Vec::new();
        let mut unsorted = false;
        spec.visit_preds(&mut |p: &Pred| {
            p.visit_atoms(&mut |a: &Atom| match a {
                Atom::Pre(NamePat::Name(id))
                | Atom::Post(NamePat::Name(id))
                | Atom::At(NamePat::Name(id))
                    if !name_index.contains_key(id) =>
                {
                    name_index.insert(id.clone(), names.len());
                    names.push(id.clone());
                }
                Atom::Value(_, c) => consts.push(*c),
                Atom::Unsorted => unsorted = true,
                _ => {}
            });
        });
        consts.sort_unstable();
        consts.dedup();

        // Cut the integer line at the constants: region 2i+1 = {cᵢ},
        // region 2i = (cᵢ₋₁, cᵢ) (with open ends at 0 and 2k). Only
        // non-empty regions become classes, each with a concrete
        // representative, so every abstract letter is realizable.
        let k = consts.len();
        let mut value_reps = vec![ValueRep::Other];
        let mut region_class = vec![usize::MAX; 2 * k + 1];
        if k > 0 {
            for region in 0..=(2 * k) {
                let rep: Option<i64> = if region % 2 == 1 {
                    Some(consts[region / 2])
                } else if region == 0 {
                    consts[0].checked_sub(1)
                } else if region == 2 * k {
                    consts[k - 1].checked_add(1)
                } else {
                    let lo = consts[region / 2 - 1];
                    let hi = consts[region / 2];
                    // Non-empty open interval (lo, hi) needs hi − lo ≥ 2.
                    if (hi as i128) - (lo as i128) >= 2 {
                        Some(lo + 1)
                    } else {
                        None
                    }
                };
                if let Some(r) = rep {
                    region_class[region] = value_reps.len();
                    value_reps.push(ValueRep::Int(r));
                }
            }
        }
        let unsorted_class = if unsorted {
            value_reps.push(ValueRep::Unsorted);
            Some(value_reps.len() - 1)
        } else {
            None
        };

        let alphabet = Alphabet {
            names,
            name_index,
            consts,
            value_reps,
            region_class,
            unsorted_class,
        };
        if alphabet.width() > MAX_LETTERS {
            return Err(SpecError::alphabet_limit(alphabet.width(), MAX_LETTERS));
        }
        Ok(alphabet)
    }

    /// Number of name classes (mentioned names + `OTHER`).
    pub fn name_classes(&self) -> usize {
        self.names.len() + 1
    }

    /// Number of value classes.
    pub fn value_classes(&self) -> usize {
        self.value_reps.len()
    }

    /// Total number of abstract letters.
    pub fn width(&self) -> u32 {
        let n = self.name_classes() as u32;
        let v = self.value_classes() as u32;
        n + n * v + 1
    }

    /// The name class of a concrete annotation name.
    pub fn name_class(&self, name: &Ident) -> usize {
        self.name_index
            .get(name)
            .copied()
            .unwrap_or(self.names.len())
    }

    /// The value class of a concrete observed value.
    pub fn classify_value(&self, v: &Value) -> usize {
        match v {
            Value::Int(n) if !self.consts.is_empty() => {
                let i = self.consts.partition_point(|c| c < n);
                let region = if i < self.consts.len() && self.consts[i] == *n {
                    2 * i + 1
                } else {
                    2 * i
                };
                let class = self.region_class[region];
                debug_assert_ne!(class, usize::MAX, "a concrete int inhabits its region");
                class
            }
            v => match self.unsorted_class {
                Some(class) if value_is_unsorted(v) => class,
                _ => 0,
            },
        }
    }

    /// The value class of a *described* value, as carried on an event
    /// tape. Agrees with [`Alphabet::classify_value`] on every concrete
    /// value `v` when the description is `ValueDesc::of(v)`: the
    /// description preserves exactly the inputs the abstraction reads
    /// (the integer itself, and list unsortedness).
    pub fn classify_desc(&self, desc: &monsem_monitor::tape::ValueDesc) -> usize {
        match desc.int {
            Some(n) if !self.consts.is_empty() => {
                let i = self.consts.partition_point(|c| *c < n);
                let region = if i < self.consts.len() && self.consts[i] == n {
                    2 * i + 1
                } else {
                    2 * i
                };
                let class = self.region_class[region];
                debug_assert_ne!(class, usize::MAX, "a concrete int inhabits its region");
                class
            }
            _ => match self.unsorted_class {
                Some(class) if desc.unsorted => class,
                _ => 0,
            },
        }
    }

    /// The sorted, deduplicated comparison constants that cut the
    /// integer line into value regions. Empty when the spec compares no
    /// values.
    pub fn consts(&self) -> &[i64] {
        &self.consts
    }

    /// The value class of integer region `r`, or `None` when the region
    /// is empty (and thus never inhabited by a concrete integer). With
    /// `k = consts().len()`, region `2i+1` is the singleton `{cᵢ}` and
    /// region `2i` the open interval below `c₀`, between `cᵢ₋₁` and
    /// `cᵢ`, or above `cₖ₋₁`. Level-3 code generation walks regions in
    /// order to residualize [`Alphabet::classify_value`] as comparisons.
    pub fn int_region_class(&self, region: usize) -> Option<usize> {
        self.region_class
            .get(region)
            .copied()
            .filter(|&c| c != usize::MAX)
    }

    /// The value class of definitely-unsorted lists, when the spec uses
    /// the `unsorted` predicate.
    pub fn unsorted_value_class(&self) -> Option<usize> {
        self.unsorted_class
    }

    /// The `pre` letter for a name class.
    pub fn pre_letter(&self, nc: usize) -> u32 {
        debug_assert!(nc < self.name_classes());
        nc as u32
    }

    /// The `post` letter for a name class and value class.
    pub fn post_letter(&self, nc: usize, vc: usize) -> u32 {
        debug_assert!(nc < self.name_classes() && vc < self.value_classes());
        (self.name_classes() + nc * self.value_classes() + vc) as u32
    }

    /// The synthetic `done` letter.
    pub fn done_letter(&self) -> u32 {
        self.width() - 1
    }

    /// Decomposes a letter into phase, name class and value class.
    pub fn decode(&self, letter: u32) -> (Phase, usize, usize) {
        let n = self.name_classes();
        let v = self.value_classes();
        let l = letter as usize;
        if l < n {
            (Phase::Pre, l, 0)
        } else if l < n + n * v {
            let idx = l - n;
            (Phase::Post, idx / v, idx % v)
        } else {
            (Phase::Done, 0, 0)
        }
    }

    /// A printable description of a letter (diagnostics and tests).
    pub fn describe(&self, letter: u32) -> String {
        let (phase, nc, vc) = self.decode(letter);
        let name = |nc: usize| -> String {
            self.names
                .get(nc)
                .map(|i| i.as_str().to_string())
                .unwrap_or_else(|| "<other>".to_string())
        };
        match phase {
            Phase::Pre => format!("pre({})", name(nc)),
            Phase::Done => "done".to_string(),
            Phase::Post => {
                let rep = match self.value_reps[vc] {
                    ValueRep::Other => "<other>".to_string(),
                    ValueRep::Int(n) => format!("≈{n}"),
                    ValueRep::Unsorted => "unsorted-list".to_string(),
                };
                format!("post({}) = {rep}", name(nc))
            }
        }
    }

    fn name_matches(&self, pat: &NamePat, nc: usize) -> bool {
        match pat {
            NamePat::Any => true,
            NamePat::Name(id) => self.name_index.get(id) == Some(&nc),
        }
    }

    fn eval_atom(&self, atom: &Atom, phase: Phase, nc: usize, vc: usize) -> bool {
        match atom {
            Atom::True => true,
            Atom::False => false,
            Atom::Done => phase == Phase::Done,
            Atom::Pre(pat) => phase == Phase::Pre && self.name_matches(pat, nc),
            Atom::Post(pat) => phase == Phase::Post && self.name_matches(pat, nc),
            Atom::At(pat) => phase != Phase::Done && self.name_matches(pat, nc),
            Atom::Value(op, c) => {
                phase == Phase::Post
                    && matches!(self.value_reps[vc], ValueRep::Int(n) if op.holds(n, *c))
            }
            Atom::Unsorted => phase == Phase::Post && self.value_reps[vc] == ValueRep::Unsorted,
        }
    }

    fn eval_pred(&self, pred: &Pred, phase: Phase, nc: usize, vc: usize) -> bool {
        match pred {
            Pred::Atom(a) => self.eval_atom(a, phase, nc, vc),
            Pred::Not(p) => !self.eval_pred(p, phase, nc, vc),
            Pred::And(p, q) => self.eval_pred(p, phase, nc, vc) && self.eval_pred(q, phase, nc, vc),
            Pred::Or(p, q) => self.eval_pred(p, phase, nc, vc) || self.eval_pred(q, phase, nc, vc),
        }
    }

    /// The set of abstract letters satisfying `pred`.
    pub fn pred_to_set(&self, pred: &Pred) -> LetterSet {
        let mut set = LetterSet::empty(self.width());
        for letter in 0..self.width() {
            let (phase, nc, vc) = self.decode(letter);
            if self.eval_pred(pred, phase, nc, vc) {
                set.insert(letter);
            }
        }
        set
    }

    /// Lowers a trace expression to a regular expression over this
    /// alphabet.
    pub fn lower(&self, spec: &SpecExpr) -> Arc<Re> {
        match spec {
            SpecExpr::Empty => empty(),
            SpecExpr::Eps => eps(),
            SpecExpr::Any => class(LetterSet::full(self.width())),
            SpecExpr::Event(p) => class(self.pred_to_set(p)),
            SpecExpr::Cat(a, b) => cat(self.lower(a), self.lower(b)),
            SpecExpr::Or(a, b) => or(self.lower(a), self.lower(b)),
            SpecExpr::And(a, b) => and(self.lower(a), self.lower(b)),
            SpecExpr::Not(r) => not(self.lower(r)),
            SpecExpr::Star(r) => star(self.lower(r)),
            SpecExpr::Plus(r) => {
                let inner = self.lower(r);
                cat(inner.clone(), star(inner))
            }
            SpecExpr::Opt(r) => or(eps(), self.lower(r)),
            SpecExpr::Repeat(r, n) => {
                let inner = self.lower(r);
                (0..*n).fold(eps(), |acc, _| cat(acc, inner.clone()))
            }
        }
    }
}

/// Knobs for [`Automaton::compile_with`].
///
/// The defaults (used by [`Automaton::compile`]) give the smallest table:
/// Hopcroft minimization followed by letter-class compression. The flags
/// exist so tests can compare the optimized automaton against the plain
/// ACI-deduped derivative DFA, and so the state cap can be pinned at a
/// boundary.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Ceiling on derivative-closure states (default [`MAX_STATES`]).
    pub max_states: usize,
    /// Merge language-equivalent states (Hopcroft partition refinement).
    pub minimize: bool,
    /// Merge letters with identical transition columns into classes.
    pub compress_letters: bool,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            max_states: MAX_STATES,
            minimize: true,
            compress_letters: true,
        }
    }
}

/// A compiled deterministic automaton over the abstract alphabet.
///
/// This is the spec's **MAlg** and **MFun** in tabular form: states are
/// normalized derivatives of the spec expression — deduplicated *by
/// language* via Hopcroft minimization, not just by ACI-normal form —
/// the transition table is total, and the dead/nullable analyses drive
/// the monitor adapter's verdicts.
///
/// The table is **letter-class compressed**: letters whose transition
/// columns agree everywhere share a class, so storage is
/// `states × classes` plus a `letter → class` map rather than
/// `states × letters`.
#[derive(Debug, Clone)]
pub struct Automaton {
    alphabet: Alphabet,
    /// The lowered start expression (state 0) — kept for the property
    /// tests' naive-matcher oracle.
    re: Arc<Re>,
    /// States in the raw derivative closure, before minimization.
    raw_states: u32,
    nstates: u32,
    /// Number of letter equivalence classes.
    nclasses: u32,
    /// Letter → class map, `width` entries.
    letter_class: Vec<u32>,
    /// Row-major transition table: `table[s * nclasses + letter_class[l]]`.
    table: Vec<u32>,
    nullable: Vec<bool>,
    /// `dead[s]` — no word leads from `s` to a nullable state.
    dead: Vec<bool>,
    /// `relevant[letter]` — some state moves on this letter.
    relevant: Vec<bool>,
}

/// Groups equal columns of a row-major `nstates × nclasses` table whose
/// letters are pre-mapped through `letter_class`. Returns the refined
/// `letter → class` map and the compressed table.
fn compress_columns(
    nstates: usize,
    nclasses: usize,
    table: &[u32],
    letter_class: &[u32],
) -> (Vec<u32>, Vec<u32>) {
    let mut class_of_column: HashMap<Vec<u32>, u32> = HashMap::new();
    let mut old_to_new: Vec<u32> = vec![u32::MAX; nclasses];
    let mut columns: Vec<Vec<u32>> = Vec::new();
    for c in 0..nclasses {
        let column: Vec<u32> = (0..nstates).map(|s| table[s * nclasses + c]).collect();
        let next = columns.len() as u32;
        let id = *class_of_column.entry(column.clone()).or_insert_with(|| {
            columns.push(column);
            next
        });
        old_to_new[c] = id;
    }
    let new_nclasses = columns.len();
    let mut new_table = vec![0u32; nstates * new_nclasses];
    for (id, column) in columns.iter().enumerate() {
        for (s, &t) in column.iter().enumerate() {
            new_table[s * new_nclasses + id] = t;
        }
    }
    let new_letter_class: Vec<u32> = letter_class
        .iter()
        .map(|&c| old_to_new[c as usize])
        .collect();
    (new_letter_class, new_table)
}

/// Hopcroft's partition-refinement minimization over a total DFA given as
/// an `nstates × nclasses` table. Returns `(block_count, state → block)`
/// with blocks renumbered so the block containing state 0 is block 0 and
/// blocks are ordered by their least member (deterministic output).
fn hopcroft(
    nstates: usize,
    nclasses: usize,
    table: &[u32],
    accepting: &[bool],
) -> (usize, Vec<u32>) {
    // Refinable partition: `elems` is a permutation of the states grouped
    // by block; each block is the range `start[b] .. start[b] + len[b]`
    // with marked elements swapped to the front.
    let mut elems: Vec<u32> = (0..nstates as u32).collect();
    let mut loc: Vec<u32> = (0..nstates as u32).collect();
    let mut blk: Vec<u32> = vec![0; nstates];
    let mut start: Vec<u32> = vec![0];
    let mut len: Vec<u32> = vec![nstates as u32];
    let mut marked: Vec<u32> = vec![0];
    let mut touched: Vec<u32> = Vec::new();

    let mark = |s: u32,
                elems: &mut [u32],
                loc: &mut [u32],
                blk: &[u32],
                start: &[u32],
                marked: &mut [u32],
                touched: &mut Vec<u32>| {
        let b = blk[s as usize] as usize;
        let pos = loc[s as usize];
        let front = start[b] + marked[b];
        if pos < front {
            return; // already marked
        }
        let other = elems[front as usize];
        elems[front as usize] = s;
        elems[pos as usize] = other;
        loc[s as usize] = front;
        loc[other as usize] = pos;
        if marked[b] == 0 {
            touched.push(b as u32);
        }
        marked[b] += 1;
    };

    // Per-class preimage lists in CSR form: `pre_flat[c]` holds, grouped
    // by target state via `pre_off[c]`, every source state mapping there.
    // Total size equals the table itself, so this never dominates.
    let mut pre_off: Vec<Vec<u32>> = Vec::with_capacity(nclasses);
    let mut pre_flat: Vec<Vec<u32>> = Vec::with_capacity(nclasses);
    for c in 0..nclasses {
        let mut counts = vec![0u32; nstates + 1];
        for s in 0..nstates {
            counts[table[s * nclasses + c] as usize + 1] += 1;
        }
        for t in 0..nstates {
            counts[t + 1] += counts[t];
        }
        let mut flat = vec![0u32; nstates];
        let mut cursor = counts.clone();
        for s in 0..nstates {
            let t = table[s * nclasses + c] as usize;
            flat[cursor[t] as usize] = s as u32;
            cursor[t] += 1;
        }
        pre_off.push(counts);
        pre_flat.push(flat);
    }

    // Initial partition: split by acceptance.
    for s in 0..nstates as u32 {
        if accepting[s as usize] {
            mark(
                s,
                &mut elems,
                &mut loc,
                &blk,
                &start,
                &mut marked,
                &mut touched,
            );
        }
    }
    let split = |elems: &[u32],
                 blk: &mut [u32],
                 start: &mut Vec<u32>,
                 len: &mut Vec<u32>,
                 marked: &mut Vec<u32>,
                 touched: &mut Vec<u32>|
     -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for &b in touched.iter() {
            let b = b as usize;
            let m = marked[b];
            marked[b] = 0;
            if m == len[b] {
                continue; // every member marked — no split
            }
            // New block = the marked prefix; the old block keeps the rest.
            let nb = start.len() as u32;
            start.push(start[b]);
            len.push(m);
            marked.push(0);
            start[b] += m;
            len[b] -= m;
            for i in start[nb as usize]..start[nb as usize] + m {
                blk[elems[i as usize] as usize] = nb;
            }
            out.push((b as u32, nb));
        }
        touched.clear();
        out
    };

    let mut worklist: Vec<(u32, u32)> = Vec::new();
    let mut in_w: HashSet<(u32, u32)> = HashSet::new();
    split(
        &elems,
        &mut blk,
        &mut start,
        &mut len,
        &mut marked,
        &mut touched,
    );
    // Seed the worklist with every (block, class) pair of the initial
    // partition — the textbook "smaller half" refinement then keeps the
    // total work near O(states · classes · log states).
    for b in 0..start.len() as u32 {
        for c in 0..nclasses as u32 {
            worklist.push((b, c));
            in_w.insert((b, c));
        }
    }

    let mut members_buf: Vec<u32> = Vec::new();
    let mut pre_buf: Vec<u32> = Vec::new();
    while let Some((a, c)) = worklist.pop() {
        in_w.remove(&(a, c));
        if len[a as usize] == 0 {
            continue;
        }
        let a = a as usize;
        members_buf.clear();
        members_buf.extend_from_slice(&elems[start[a] as usize..(start[a] + len[a]) as usize]);
        pre_buf.clear();
        let off = &pre_off[c as usize];
        let flat = &pre_flat[c as usize];
        for &t in &members_buf {
            pre_buf
                .extend_from_slice(&flat[off[t as usize] as usize..off[t as usize + 1] as usize]);
        }
        for &s in &pre_buf {
            mark(
                s,
                &mut elems,
                &mut loc,
                &blk,
                &start,
                &mut marked,
                &mut touched,
            );
        }
        for (old, new) in split(
            &elems,
            &mut blk,
            &mut start,
            &mut len,
            &mut marked,
            &mut touched,
        ) {
            for d in 0..nclasses as u32 {
                if in_w.contains(&(old, d)) {
                    worklist.push((new, d));
                    in_w.insert((new, d));
                } else {
                    let pick = if len[old as usize] <= len[new as usize] {
                        old
                    } else {
                        new
                    };
                    worklist.push((pick, d));
                    in_w.insert((pick, d));
                }
            }
        }
    }

    // Renumber blocks by least member so state 0's block becomes 0 and
    // the numbering is independent of refinement order.
    let nblocks = start.len();
    let mut least = vec![u32::MAX; nblocks];
    for s in 0..nstates as u32 {
        let b = blk[s as usize] as usize;
        if s < least[b] {
            least[b] = s;
        }
    }
    let mut order: Vec<u32> = (0..nblocks as u32).collect();
    order.sort_by_key(|&b| least[b as usize]);
    let mut renumber = vec![0u32; nblocks];
    for (new, &old) in order.iter().enumerate() {
        renumber[old as usize] = new as u32;
    }
    let block_of: Vec<u32> = blk.iter().map(|&b| renumber[b as usize]).collect();
    (nblocks, block_of)
}

impl Automaton {
    /// Compiles a parsed spec to a minimized, letter-compressed DFA.
    ///
    /// # Errors
    ///
    /// If the alphabet or state space exceeds the (generous) safety caps.
    pub fn compile(spec: &SpecExpr) -> Result<Automaton, SpecError> {
        Automaton::compile_with(spec, CompileOptions::default())
    }

    /// Compiles with explicit [`CompileOptions`].
    ///
    /// The pipeline is: Brzozowski derivative closure (ACI-deduped), then
    /// letter-column grouping, then Hopcroft minimization over the grouped
    /// table, then a second column grouping (minimization can merge more
    /// columns), then dead-state reverse reachability and letter-relevance
    /// recomputed **on the minimized automaton** — so earliest-violation
    /// semantics survive minimization exactly (dead states are absorbing
    /// and all merge into one sink).
    ///
    /// # Errors
    ///
    /// If the alphabet exceeds [`MAX_LETTERS`] or the derivative closure
    /// exceeds `opts.max_states`.
    pub fn compile_with(spec: &SpecExpr, opts: CompileOptions) -> Result<Automaton, SpecError> {
        let alphabet = Alphabet::build(spec)?;
        let start = alphabet.lower(spec);
        let width = alphabet.width() as usize;

        // Memoized derivative closure: the cache maps each normalized
        // expression to its state number; the worklist explores letters.
        let mut cache: HashMap<Arc<Re>, u32> = HashMap::new();
        let mut states: Vec<Arc<Re>> = Vec::new();
        let mut raw_table: Vec<u32> = Vec::new();
        cache.insert(start.clone(), 0);
        states.push(start.clone());
        let mut next_unexplored = 0usize;
        while next_unexplored < states.len() {
            let s = states[next_unexplored].clone();
            next_unexplored += 1;
            for letter in 0..width as u32 {
                let d = deriv(&s, letter);
                let id = match cache.get(&d) {
                    Some(&id) => id,
                    None => {
                        let id = states.len() as u32;
                        if states.len() >= opts.max_states {
                            return Err(SpecError::state_limit(states.len(), opts.max_states));
                        }
                        cache.insert(d.clone(), id);
                        states.push(d);
                        id
                    }
                };
                raw_table.push(id);
            }
        }

        let raw_states = states.len();
        let raw_nullable: Vec<bool> = states.iter().map(|s| nullable(s)).collect();

        // Letter-class compression, pass 1 — before minimization, so the
        // Hopcroft preimage structures scale with classes, not letters.
        let identity: Vec<u32> = (0..width as u32).collect();
        let (mut letter_class, mut table) =
            compress_columns(raw_states, width, &raw_table, &identity);
        let mut nclasses = (table.len() / raw_states.max(1)).max(1);
        let mut nstates = raw_states;
        let mut nullable = raw_nullable.clone();

        if opts.minimize {
            let (nblocks, block_of) = hopcroft(nstates, nclasses, &table, &nullable);
            if nblocks < nstates {
                // Representative rows: blocks agree on every transition's
                // *target block*, so any member works.
                let mut min_table = vec![0u32; nblocks * nclasses];
                let mut min_nullable = vec![false; nblocks];
                let mut seen = vec![false; nblocks];
                for s in 0..nstates {
                    let b = block_of[s] as usize;
                    if seen[b] {
                        continue;
                    }
                    seen[b] = true;
                    min_nullable[b] = nullable[s];
                    for c in 0..nclasses {
                        min_table[b * nclasses + c] = block_of[table[s * nclasses + c] as usize];
                    }
                }
                nstates = nblocks;
                table = min_table;
                nullable = min_nullable;
                // Pass 2: merged states can make more columns coincide.
                let (lc, t) = compress_columns(nstates, nclasses, &table, &letter_class);
                nclasses = t.len() / nstates;
                letter_class = lc;
                table = t;
            }
        }

        if !opts.compress_letters {
            // Expand back to one column per letter (tests compare sizes).
            let mut full = vec![0u32; nstates * width];
            for s in 0..nstates {
                for (l, &c) in letter_class.iter().enumerate() {
                    full[s * width + l] = table[s * nclasses + c as usize];
                }
            }
            table = full;
            letter_class = (0..width as u32).collect();
            nclasses = width;
        }

        // Dead-state analysis on the final automaton: reverse
        // reachability from nullable states.
        let mut alive = nullable.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for s in 0..nstates {
                if alive[s] {
                    continue;
                }
                if table[s * nclasses..(s + 1) * nclasses]
                    .iter()
                    .any(|&t| alive[t as usize])
                {
                    alive[s] = true;
                    changed = true;
                }
            }
        }
        let dead: Vec<bool> = alive.iter().map(|a| !a).collect();

        let relevant: Vec<bool> = (0..width)
            .map(|l| {
                let c = letter_class[l] as usize;
                (0..nstates).any(|s| table[s * nclasses + c] != s as u32)
            })
            .collect();

        Ok(Automaton {
            alphabet,
            re: start,
            raw_states: raw_states as u32,
            nstates: nstates as u32,
            nclasses: nclasses as u32,
            letter_class,
            table,
            nullable,
            dead,
            relevant,
        })
    }

    /// The abstract alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The lowered start expression (for oracle comparisons).
    pub fn start_expr(&self) -> &Arc<Re> {
        &self.re
    }

    /// Number of DFA states (after minimization).
    pub fn num_states(&self) -> u32 {
        self.nstates
    }

    /// Number of states in the raw derivative closure, before Hopcroft
    /// minimization merged language-equivalent ones.
    pub fn raw_states(&self) -> u32 {
        self.raw_states
    }

    /// Number of letter equivalence classes (table columns).
    pub fn num_letter_classes(&self) -> u32 {
        self.nclasses
    }

    /// The equivalence class of a letter.
    pub fn letter_class(&self, letter: u32) -> u32 {
        self.letter_class[letter as usize]
    }

    /// Total transition-table cells: `states × classes`.
    pub fn table_cells(&self) -> usize {
        self.table.len()
    }

    /// The start state.
    pub fn start(&self) -> u32 {
        0
    }

    /// One transition.
    pub fn step(&self, state: u32, letter: u32) -> u32 {
        let c = self.letter_class[letter as usize] as usize;
        self.table[state as usize * self.nclasses as usize + c]
    }

    /// One transition addressed by letter *class* (level-3 codegen steps
    /// the table by class, not by letter).
    pub fn step_class(&self, state: u32, class: u32) -> u32 {
        self.table[state as usize * self.nclasses as usize + class as usize]
    }

    /// Whether `state` accepts the empty continuation.
    pub fn is_nullable(&self, state: u32) -> bool {
        self.nullable[state as usize]
    }

    /// Whether `state` is dead: no continuation reaches acceptance.
    pub fn is_dead(&self, state: u32) -> bool {
        self.dead[state as usize]
    }

    /// Whether any state moves on `letter`; irrelevant letters are
    /// universal self-loops and may be skipped without observing them.
    pub fn letter_relevant(&self, letter: u32) -> bool {
        self.relevant[letter as usize]
    }

    /// Whether the `pre` hook at name class `nc` can move any state.
    pub fn pre_relevant(&self, nc: usize) -> bool {
        self.letter_relevant(self.alphabet.pre_letter(nc))
    }

    /// Whether any `post` hook at name class `nc` can move any state.
    pub fn post_relevant(&self, nc: usize) -> bool {
        (0..self.alphabet.value_classes())
            .any(|vc| self.letter_relevant(self.alphabet.post_letter(nc, vc)))
    }

    /// Whether an event carrying this letter is *observed* by the monitor
    /// adapter (recorded in the trace and counted).
    ///
    /// The gate is per hook phase × name class — exactly the granularity
    /// of [`Monitor::accepts_event`](monsem_monitor::Monitor::accepts_event)
    /// — so monitor state evolves identically whether or not a machine
    /// skips the hooks that hint rules out.
    pub fn letter_observed(&self, letter: u32) -> bool {
        match self.alphabet.decode(letter) {
            (Phase::Pre, nc, _) => self.pre_relevant(nc),
            (Phase::Post, nc, _) => self.post_relevant(nc),
            (Phase::Done, _, _) => self.letter_relevant(letter),
        }
    }

    /// Runs the DFA over a whole word and reports acceptance — the
    /// compiled counterpart of [`naive_accepts`].
    pub fn accepts_word(&self, word: &[u32]) -> bool {
        let mut s = self.start();
        for &l in word {
            s = self.step(s, l);
        }
        self.is_nullable(s)
    }

    /// The oracle: direct structural matching on the start expression.
    pub fn naive_word(&self, word: &[u32]) -> bool {
        naive_accepts(&self.re, word)
    }

    // ---- state-region queries (tiered specialization) -------------------

    /// All states reachable from the start state — the universe a tiered
    /// compiler may ever need to cover. (Every table state is reachable
    /// by construction, so this is simply `0..num_states()`.)
    pub fn reachable(&self) -> Vec<u32> {
        (0..self.nstates).collect()
    }

    /// The transition closure of `seeds`: the smallest superset of the
    /// seed states closed under [`Automaton::step`] over every letter.
    /// A residual compiled for a closed region can never be escaped, so
    /// its guards reduce to the entry check.
    ///
    /// States out of range are ignored; the result is sorted and deduped.
    pub fn closure(&self, seeds: &[u32]) -> Vec<u32> {
        let n = self.nstates as usize;
        let mut member = vec![false; n];
        let mut work: Vec<u32> = Vec::new();
        for &s in seeds {
            if (s as usize) < n && !member[s as usize] {
                member[s as usize] = true;
                work.push(s);
            }
        }
        while let Some(s) = work.pop() {
            for c in 0..self.nclasses {
                let t = self.step_class(s, c);
                if !member[t as usize] {
                    member[t as usize] = true;
                    work.push(t);
                }
            }
        }
        (0..self.nstates).filter(|&s| member[s as usize]).collect()
    }

    /// Whether `region` is closed under the transition function: no
    /// letter can move a region state to a state outside the region.
    /// A guard protecting a residual compiled for a closed region can
    /// never fire mid-run.
    pub fn is_closed(&self, region: &[u32]) -> bool {
        let n = self.nstates as usize;
        let mut member = vec![false; n];
        for &s in region {
            if (s as usize) < n {
                member[s as usize] = true;
            }
        }
        region
            .iter()
            .filter(|&&s| (s as usize) < n)
            .all(|&s| (0..self.nclasses).all(|c| member[self.step_class(s, c) as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spec;

    fn compile(src: &str) -> Automaton {
        Automaton::compile(&parse_spec(src).unwrap()).unwrap()
    }

    #[test]
    fn alphabet_of_the_issue_example() {
        let ast = parse_spec("always(post(fac) => value >= 1)").unwrap();
        let a = Alphabet::build(&ast).unwrap();
        // Names: fac + OTHER. Values: OTHER, (−∞,1), {1}, (1,∞).
        assert_eq!(a.name_classes(), 2);
        assert_eq!(a.value_classes(), 4);
        assert_eq!(
            a.classify_value(&Value::Int(0)),
            a.classify_value(&Value::Int(-7))
        );
        assert_ne!(
            a.classify_value(&Value::Int(1)),
            a.classify_value(&Value::Int(2))
        );
        assert_eq!(a.classify_value(&Value::Bool(true)), 0);
    }

    #[test]
    fn empty_integer_regions_are_not_classes() {
        let ast = parse_spec("always(value = 0 or value = 1)").unwrap();
        let a = Alphabet::build(&ast).unwrap();
        // Regions: (−∞,0), {0}, (0,1) = ∅, {1}, (1,∞) → 4 int classes.
        assert_eq!(a.value_classes(), 1 + 4);
    }

    #[test]
    fn issue_example_flags_small_values_as_dead() {
        let aut = compile("always(post(fac) => value >= 1)");
        let a = aut.alphabet();
        let nc = a.name_class(&Ident::new("fac"));
        let bad = a.post_letter(nc, a.classify_value(&Value::Int(0)));
        let good = a.post_letter(nc, a.classify_value(&Value::Int(3)));
        let s = aut.start();
        assert!(aut.is_dead(aut.step(s, bad)));
        assert!(!aut.is_dead(aut.step(s, good)));
        assert!(aut.is_nullable(aut.step(s, good)));
    }

    #[test]
    fn irrelevant_letters_self_loop_everywhere() {
        let aut = compile("always(post(fac) => value >= 1)");
        let a = aut.alphabet();
        let other_nc = a.name_class(&Ident::new("unmentioned"));
        // `pre` letters never matter to this spec: `post(fac) => …` is
        // vacuously true of them, so they are universal self-loops.
        assert!(!aut.pre_relevant(other_nc));
        assert!(!aut.pre_relevant(a.name_class(&Ident::new("fac"))));
        // An unmentioned name's post letters are also irrelevant.
        assert!(!aut.post_relevant(other_nc));
        assert!(aut.post_relevant(a.name_class(&Ident::new("fac"))));
    }

    #[test]
    fn dfa_agrees_with_oracle_on_a_hand_word() {
        let aut = compile("eventually(post(f))");
        let a = aut.alphabet();
        let f = a.name_class(&Ident::new("f"));
        let hit = a.post_letter(f, 0);
        let miss = a.pre_letter(f);
        let done = a.done_letter();
        for word in [
            vec![],
            vec![miss, done],
            vec![miss, hit, done],
            vec![hit],
            vec![done, hit],
        ] {
            assert_eq!(aut.accepts_word(&word), aut.naive_word(&word), "{word:?}");
        }
    }

    #[test]
    fn state_region_queries_report_closure_and_closedness() {
        let aut = compile("always(post(fac) => value >= 1)");
        let all = aut.reachable();
        assert_eq!(all.len(), aut.num_states() as usize);
        // The closure of the start state is the whole reachable set and
        // is closed; the start state alone is not (the dead state is
        // reachable from it but not in the singleton region).
        let closed = aut.closure(&[aut.start()]);
        assert_eq!(closed, all);
        assert!(aut.is_closed(&closed));
        assert!(!aut.is_closed(&[aut.start()]));
        // A dead state self-loops on everything: a closed singleton.
        let a = aut.alphabet();
        let nc = a.name_class(&Ident::new("fac"));
        let dead = aut.step(
            aut.start(),
            a.post_letter(nc, a.classify_value(&Value::Int(0))),
        );
        assert!(aut.is_closed(&[dead]));
        assert_eq!(aut.closure(&[dead]), vec![dead]);
        // Out-of-range seeds are ignored rather than panicking.
        assert_eq!(aut.closure(&[999]), Vec::<u32>::new());
        assert!(aut.is_closed(&[]));
    }

    #[test]
    fn state_explosion_is_reported_not_suffered() {
        // A tower of repeats forces more derivative states than the cap.
        let src = "any{200} ; any{200} ; any{200} ; any{200} ; any{200} ; \
                   any{200} ; any{200} ; any{200} ; any{200} ; any{200} ; \
                   any{200} ; any{200} ; any{200} ; any{200} ; any{200} ; \
                   any{200} ; any{200} ; any{200} ; any{200} ; any{200} ; \
                   any{200} ; any{200}";
        let err = Automaton::compile(&parse_spec(src).unwrap()).unwrap_err();
        assert!(err.message.contains("states"));
        assert!(matches!(
            err.kind,
            crate::SpecErrorKind::StateLimit {
                limit: MAX_STATES,
                ..
            }
        ));
    }

    #[test]
    fn state_cap_boundary_is_exact() {
        // A closure that needs exactly `n` states compiles at cap `n` and
        // reports a structured StateLimit at cap `n − 1` — no panic.
        let ast = parse_spec("any{3}").unwrap();
        let n = Automaton::compile(&ast).unwrap().raw_states() as usize;
        assert!(n > 2, "repeat spec should need several derivative states");
        let at_cap = Automaton::compile_with(
            &ast,
            CompileOptions {
                max_states: n,
                ..CompileOptions::default()
            },
        );
        assert!(at_cap.is_ok());
        let err = Automaton::compile_with(
            &ast,
            CompileOptions {
                max_states: n - 1,
                ..CompileOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(
            err.kind,
            crate::SpecErrorKind::StateLimit {
                states: n - 1,
                limit: n - 1
            }
        );
    }

    /// Compiles with every optimization off: the raw ACI-deduped
    /// derivative DFA with one column per letter.
    fn compile_raw(src: &str) -> Automaton {
        Automaton::compile_with(
            &parse_spec(src).unwrap(),
            CompileOptions {
                minimize: false,
                compress_letters: false,
                ..CompileOptions::default()
            },
        )
        .unwrap()
    }

    const SPECS: &[&str] = &[
        "always(post(fac) => value >= 1)",
        "eventually(post(f))",
        "never(post(_) and value < 0)",
        "respond(pre(req), post(ack), 3)",
        "(at(a) ; at(b))* & !(any{5})",
        "always(post(sort) => not unsorted)",
        "at(a)? ; at(b){2} ; eventually(done)",
    ];

    #[test]
    fn minimized_tables_never_larger_and_agree_on_words() {
        for src in SPECS {
            let opt = compile(src);
            let raw = compile_raw(src);
            assert!(
                opt.num_states() <= raw.num_states(),
                "{src}: {} > {} states",
                opt.num_states(),
                raw.num_states()
            );
            assert!(
                opt.table_cells() <= raw.table_cells(),
                "{src}: {} > {} cells",
                opt.table_cells(),
                raw.table_cells()
            );
            assert_eq!(opt.raw_states(), raw.num_states(), "{src}");
            // Exhaustive short words: acceptance, deadness of the reached
            // state, and observation gating all agree letter-for-letter.
            let width = opt.alphabet().width();
            assert_eq!(width, raw.alphabet().width());
            let mut words: Vec<Vec<u32>> = vec![vec![]];
            for _ in 0..3 {
                let mut next = Vec::new();
                for w in &words {
                    for l in 0..width {
                        let mut w2 = w.clone();
                        w2.push(l);
                        next.push(w2);
                    }
                }
                words.extend(next);
                if words.len() > 6000 {
                    break;
                }
            }
            for w in &words {
                assert_eq!(opt.accepts_word(w), raw.accepts_word(w), "{src} {w:?}");
                let (mut so, mut sr) = (opt.start(), raw.start());
                for &l in w {
                    so = opt.step(so, l);
                    sr = raw.step(sr, l);
                }
                assert_eq!(opt.is_dead(so), raw.is_dead(sr), "{src} {w:?}");
                assert_eq!(opt.is_nullable(so), raw.is_nullable(sr), "{src} {w:?}");
            }
        }
    }

    #[test]
    fn letter_classes_partition_the_alphabet() {
        for src in SPECS {
            let aut = compile(src);
            let width = aut.alphabet().width();
            assert!(aut.num_letter_classes() <= width);
            for l in 0..width {
                assert!(aut.letter_class(l) < aut.num_letter_classes());
                // Stepping by letter and by its class agree by definition.
                for s in 0..aut.num_states() {
                    assert_eq!(aut.step(s, l), aut.step_class(s, aut.letter_class(l)));
                }
            }
        }
    }

    #[test]
    fn minimization_merges_language_equivalent_derivatives() {
        // `at(a){2} | at(a);at(a)` denotes one language; ACI normal form
        // alone keeps the two branches distinct mid-parse, but the
        // minimized DFA must be as small as the DFA of either branch.
        let merged = compile("(at(a) ; at(a)) | at(a){2}");
        let single = compile("at(a){2}");
        assert_eq!(merged.num_states(), single.num_states());
    }
}
