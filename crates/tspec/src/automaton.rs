//! Alphabet abstraction and DFA compilation.
//!
//! Event predicates range over an unbounded concrete event space (any
//! annotation name × any [`Value`]). Compilation first quotients that space
//! into a finite **abstract alphabet** whose letters are indistinguishable
//! by every predicate in the spec:
//!
//! * *name classes* — one per annotation name mentioned in the spec, plus
//!   one `OTHER` class for every unmentioned name;
//! * *value classes* — one per non-empty region of the integer line cut at
//!   the constants compared against (`… < c₁ < … < c₂ < …`), plus an
//!   `unsorted-list` class when the spec uses `unsorted`, plus one `OTHER`
//!   class for all remaining values;
//! * letters: `pre(nameclass)`, `post(nameclass, valueclass)`, and the
//!   synthetic `done`.
//!
//! Every abstract letter is realizable by a concrete event (each integer
//! region keeps a concrete representative), so the dead-state analysis on
//! the compiled DFA is exact: a state is **dead** iff no continuation of
//! concrete events can ever reach acceptance again, which is precisely the
//! "violation" judgement the monitor adapter reports.
//!
//! The DFA itself is built by memoized Brzozowski iteration: a worklist of
//! normalized derivatives with a hash-consing cache mapping each
//! expression to its state number.

use crate::ast::{Atom, NamePat, Pred, SpecExpr};
use crate::deriv::{
    and, cat, class, deriv, empty, eps, naive_accepts, not, nullable, or, star, LetterSet, Re,
};
use crate::SpecError;
use monsem_core::Value;
use monsem_syntax::Ident;
use std::collections::HashMap;
use std::sync::Arc;

/// Ceiling on DFA states — a safety valve, far above any reasonable spec.
pub const MAX_STATES: usize = 4_096;

/// Ceiling on abstract letters.
pub const MAX_LETTERS: u32 = 4_096;

/// Hook phase of an abstract letter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// An `updPre` hook event.
    Pre,
    /// An `updPost` hook event.
    Post,
    /// The synthetic end-of-trace event.
    Done,
}

/// The representative of a value class (used to decide predicates on
/// abstract letters; every class is concretely realizable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueRep {
    /// Any value no predicate distinguishes.
    Other,
    /// An integer region, by a concrete member.
    Int(i64),
    /// A definitely-unsorted list.
    Unsorted,
}

/// Mirrors `monsem_monitors::demon::is_sorted` (the Figure 8 demon's
/// trigger): a value is *unsorted* iff it is a list with an adjacent pair
/// of integers in decreasing order. Duplicated here because the toolbox
/// crate depends on this one.
fn value_is_unsorted(v: &Value) -> bool {
    let Some(items) = v.iter_list() else {
        return false;
    };
    items.windows(2).any(|w| match (w[0], w[1]) {
        (Value::Int(a), Value::Int(b)) => a > b,
        _ => false,
    })
}

/// The finite abstract alphabet of a spec.
#[derive(Debug, Clone)]
pub struct Alphabet {
    /// Annotation names mentioned by the spec, in first-mention order.
    names: Vec<Ident>,
    name_index: HashMap<Ident, usize>,
    /// Sorted, deduplicated comparison constants.
    consts: Vec<i64>,
    /// Value-class representatives; class 0 is always `Other`.
    value_reps: Vec<ValueRep>,
    /// Integer region id (`0..=2k`) → value class, for non-empty regions.
    region_class: Vec<usize>,
    /// Class of definitely-unsorted lists, if the spec uses `unsorted`.
    unsorted_class: Option<usize>,
}

impl Alphabet {
    /// Builds the alphabet for a spec by scanning its predicates.
    pub fn build(spec: &SpecExpr) -> Result<Alphabet, SpecError> {
        let mut names: Vec<Ident> = Vec::new();
        let mut name_index = HashMap::new();
        let mut consts: Vec<i64> = Vec::new();
        let mut unsorted = false;
        spec.visit_preds(&mut |p: &Pred| {
            p.visit_atoms(&mut |a: &Atom| match a {
                Atom::Pre(NamePat::Name(id))
                | Atom::Post(NamePat::Name(id))
                | Atom::At(NamePat::Name(id))
                    if !name_index.contains_key(id) =>
                {
                    name_index.insert(id.clone(), names.len());
                    names.push(id.clone());
                }
                Atom::Value(_, c) => consts.push(*c),
                Atom::Unsorted => unsorted = true,
                _ => {}
            });
        });
        consts.sort_unstable();
        consts.dedup();

        // Cut the integer line at the constants: region 2i+1 = {cᵢ},
        // region 2i = (cᵢ₋₁, cᵢ) (with open ends at 0 and 2k). Only
        // non-empty regions become classes, each with a concrete
        // representative, so every abstract letter is realizable.
        let k = consts.len();
        let mut value_reps = vec![ValueRep::Other];
        let mut region_class = vec![usize::MAX; 2 * k + 1];
        if k > 0 {
            for region in 0..=(2 * k) {
                let rep: Option<i64> = if region % 2 == 1 {
                    Some(consts[region / 2])
                } else if region == 0 {
                    consts[0].checked_sub(1)
                } else if region == 2 * k {
                    consts[k - 1].checked_add(1)
                } else {
                    let lo = consts[region / 2 - 1];
                    let hi = consts[region / 2];
                    // Non-empty open interval (lo, hi) needs hi − lo ≥ 2.
                    if (hi as i128) - (lo as i128) >= 2 {
                        Some(lo + 1)
                    } else {
                        None
                    }
                };
                if let Some(r) = rep {
                    region_class[region] = value_reps.len();
                    value_reps.push(ValueRep::Int(r));
                }
            }
        }
        let unsorted_class = if unsorted {
            value_reps.push(ValueRep::Unsorted);
            Some(value_reps.len() - 1)
        } else {
            None
        };

        let alphabet = Alphabet {
            names,
            name_index,
            consts,
            value_reps,
            region_class,
            unsorted_class,
        };
        if alphabet.width() > MAX_LETTERS {
            return Err(SpecError {
                message: format!(
                    "spec alphabet has {} letters (limit {MAX_LETTERS})",
                    alphabet.width()
                ),
                offset: 0,
            });
        }
        Ok(alphabet)
    }

    /// Number of name classes (mentioned names + `OTHER`).
    pub fn name_classes(&self) -> usize {
        self.names.len() + 1
    }

    /// Number of value classes.
    pub fn value_classes(&self) -> usize {
        self.value_reps.len()
    }

    /// Total number of abstract letters.
    pub fn width(&self) -> u32 {
        let n = self.name_classes() as u32;
        let v = self.value_classes() as u32;
        n + n * v + 1
    }

    /// The name class of a concrete annotation name.
    pub fn name_class(&self, name: &Ident) -> usize {
        self.name_index
            .get(name)
            .copied()
            .unwrap_or(self.names.len())
    }

    /// The value class of a concrete observed value.
    pub fn classify_value(&self, v: &Value) -> usize {
        match v {
            Value::Int(n) if !self.consts.is_empty() => {
                let i = self.consts.partition_point(|c| c < n);
                let region = if i < self.consts.len() && self.consts[i] == *n {
                    2 * i + 1
                } else {
                    2 * i
                };
                let class = self.region_class[region];
                debug_assert_ne!(class, usize::MAX, "a concrete int inhabits its region");
                class
            }
            v => match self.unsorted_class {
                Some(class) if value_is_unsorted(v) => class,
                _ => 0,
            },
        }
    }

    /// The `pre` letter for a name class.
    pub fn pre_letter(&self, nc: usize) -> u32 {
        debug_assert!(nc < self.name_classes());
        nc as u32
    }

    /// The `post` letter for a name class and value class.
    pub fn post_letter(&self, nc: usize, vc: usize) -> u32 {
        debug_assert!(nc < self.name_classes() && vc < self.value_classes());
        (self.name_classes() + nc * self.value_classes() + vc) as u32
    }

    /// The synthetic `done` letter.
    pub fn done_letter(&self) -> u32 {
        self.width() - 1
    }

    /// Decomposes a letter into phase, name class and value class.
    pub fn decode(&self, letter: u32) -> (Phase, usize, usize) {
        let n = self.name_classes();
        let v = self.value_classes();
        let l = letter as usize;
        if l < n {
            (Phase::Pre, l, 0)
        } else if l < n + n * v {
            let idx = l - n;
            (Phase::Post, idx / v, idx % v)
        } else {
            (Phase::Done, 0, 0)
        }
    }

    /// A printable description of a letter (diagnostics and tests).
    pub fn describe(&self, letter: u32) -> String {
        let (phase, nc, vc) = self.decode(letter);
        let name = |nc: usize| -> String {
            self.names
                .get(nc)
                .map(|i| i.as_str().to_string())
                .unwrap_or_else(|| "<other>".to_string())
        };
        match phase {
            Phase::Pre => format!("pre({})", name(nc)),
            Phase::Done => "done".to_string(),
            Phase::Post => {
                let rep = match self.value_reps[vc] {
                    ValueRep::Other => "<other>".to_string(),
                    ValueRep::Int(n) => format!("≈{n}"),
                    ValueRep::Unsorted => "unsorted-list".to_string(),
                };
                format!("post({}) = {rep}", name(nc))
            }
        }
    }

    fn name_matches(&self, pat: &NamePat, nc: usize) -> bool {
        match pat {
            NamePat::Any => true,
            NamePat::Name(id) => self.name_index.get(id) == Some(&nc),
        }
    }

    fn eval_atom(&self, atom: &Atom, phase: Phase, nc: usize, vc: usize) -> bool {
        match atom {
            Atom::True => true,
            Atom::False => false,
            Atom::Done => phase == Phase::Done,
            Atom::Pre(pat) => phase == Phase::Pre && self.name_matches(pat, nc),
            Atom::Post(pat) => phase == Phase::Post && self.name_matches(pat, nc),
            Atom::At(pat) => phase != Phase::Done && self.name_matches(pat, nc),
            Atom::Value(op, c) => {
                phase == Phase::Post
                    && matches!(self.value_reps[vc], ValueRep::Int(n) if op.holds(n, *c))
            }
            Atom::Unsorted => phase == Phase::Post && self.value_reps[vc] == ValueRep::Unsorted,
        }
    }

    fn eval_pred(&self, pred: &Pred, phase: Phase, nc: usize, vc: usize) -> bool {
        match pred {
            Pred::Atom(a) => self.eval_atom(a, phase, nc, vc),
            Pred::Not(p) => !self.eval_pred(p, phase, nc, vc),
            Pred::And(p, q) => self.eval_pred(p, phase, nc, vc) && self.eval_pred(q, phase, nc, vc),
            Pred::Or(p, q) => self.eval_pred(p, phase, nc, vc) || self.eval_pred(q, phase, nc, vc),
        }
    }

    /// The set of abstract letters satisfying `pred`.
    pub fn pred_to_set(&self, pred: &Pred) -> LetterSet {
        let mut set = LetterSet::empty(self.width());
        for letter in 0..self.width() {
            let (phase, nc, vc) = self.decode(letter);
            if self.eval_pred(pred, phase, nc, vc) {
                set.insert(letter);
            }
        }
        set
    }

    /// Lowers a trace expression to a regular expression over this
    /// alphabet.
    pub fn lower(&self, spec: &SpecExpr) -> Arc<Re> {
        match spec {
            SpecExpr::Empty => empty(),
            SpecExpr::Eps => eps(),
            SpecExpr::Any => class(LetterSet::full(self.width())),
            SpecExpr::Event(p) => class(self.pred_to_set(p)),
            SpecExpr::Cat(a, b) => cat(self.lower(a), self.lower(b)),
            SpecExpr::Or(a, b) => or(self.lower(a), self.lower(b)),
            SpecExpr::And(a, b) => and(self.lower(a), self.lower(b)),
            SpecExpr::Not(r) => not(self.lower(r)),
            SpecExpr::Star(r) => star(self.lower(r)),
            SpecExpr::Plus(r) => {
                let inner = self.lower(r);
                cat(inner.clone(), star(inner))
            }
            SpecExpr::Opt(r) => or(eps(), self.lower(r)),
            SpecExpr::Repeat(r, n) => {
                let inner = self.lower(r);
                (0..*n).fold(eps(), |acc, _| cat(acc, inner.clone()))
            }
        }
    }
}

/// A compiled deterministic automaton over the abstract alphabet.
///
/// This is the spec's **MAlg** and **MFun** in tabular form: states are
/// normalized derivatives of the spec expression, the transition table is
/// total, and the dead/nullable analyses drive the monitor adapter's
/// verdicts.
#[derive(Debug, Clone)]
pub struct Automaton {
    alphabet: Alphabet,
    /// The lowered start expression (state 0) — kept for the property
    /// tests' naive-matcher oracle.
    re: Arc<Re>,
    nstates: u32,
    /// Row-major transition table: `table[s * width + letter]`.
    table: Vec<u32>,
    nullable: Vec<bool>,
    /// `dead[s]` — no word leads from `s` to a nullable state.
    dead: Vec<bool>,
    /// `relevant[letter]` — some state moves on this letter.
    relevant: Vec<bool>,
}

impl Automaton {
    /// Compiles a parsed spec to a DFA.
    ///
    /// # Errors
    ///
    /// If the alphabet or state space exceeds the (generous) safety caps.
    pub fn compile(spec: &SpecExpr) -> Result<Automaton, SpecError> {
        let alphabet = Alphabet::build(spec)?;
        let start = alphabet.lower(spec);
        let width = alphabet.width() as usize;

        // Memoized derivative closure: the cache maps each normalized
        // expression to its state number; the worklist explores letters.
        let mut cache: HashMap<Arc<Re>, u32> = HashMap::new();
        let mut states: Vec<Arc<Re>> = Vec::new();
        let mut table: Vec<u32> = Vec::new();
        cache.insert(start.clone(), 0);
        states.push(start.clone());
        let mut next_unexplored = 0usize;
        while next_unexplored < states.len() {
            let s = states[next_unexplored].clone();
            next_unexplored += 1;
            for letter in 0..width as u32 {
                let d = deriv(&s, letter);
                let id = match cache.get(&d) {
                    Some(&id) => id,
                    None => {
                        let id = states.len() as u32;
                        if states.len() >= MAX_STATES {
                            return Err(SpecError {
                                message: format!(
                                    "spec automaton exceeds {MAX_STATES} states; simplify the spec"
                                ),
                                offset: 0,
                            });
                        }
                        cache.insert(d.clone(), id);
                        states.push(d);
                        id
                    }
                };
                table.push(id);
            }
        }

        let nstates = states.len() as u32;
        let nullable: Vec<bool> = states.iter().map(|s| nullable(s)).collect();

        // Dead-state analysis: reverse reachability from nullable states.
        let mut alive = nullable.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for s in 0..nstates as usize {
                if alive[s] {
                    continue;
                }
                if table[s * width..(s + 1) * width]
                    .iter()
                    .any(|&t| alive[t as usize])
                {
                    alive[s] = true;
                    changed = true;
                }
            }
        }
        let dead: Vec<bool> = alive.iter().map(|a| !a).collect();

        let relevant: Vec<bool> = (0..width)
            .map(|l| (0..nstates as usize).any(|s| table[s * width + l] != s as u32))
            .collect();

        Ok(Automaton {
            alphabet,
            re: start,
            nstates,
            table,
            nullable,
            dead,
            relevant,
        })
    }

    /// The abstract alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The lowered start expression (for oracle comparisons).
    pub fn start_expr(&self) -> &Arc<Re> {
        &self.re
    }

    /// Number of DFA states.
    pub fn num_states(&self) -> u32 {
        self.nstates
    }

    /// The start state.
    pub fn start(&self) -> u32 {
        0
    }

    /// One transition.
    pub fn step(&self, state: u32, letter: u32) -> u32 {
        self.table[state as usize * self.alphabet.width() as usize + letter as usize]
    }

    /// Whether `state` accepts the empty continuation.
    pub fn is_nullable(&self, state: u32) -> bool {
        self.nullable[state as usize]
    }

    /// Whether `state` is dead: no continuation reaches acceptance.
    pub fn is_dead(&self, state: u32) -> bool {
        self.dead[state as usize]
    }

    /// Whether any state moves on `letter`; irrelevant letters are
    /// universal self-loops and may be skipped without observing them.
    pub fn letter_relevant(&self, letter: u32) -> bool {
        self.relevant[letter as usize]
    }

    /// Whether the `pre` hook at name class `nc` can move any state.
    pub fn pre_relevant(&self, nc: usize) -> bool {
        self.letter_relevant(self.alphabet.pre_letter(nc))
    }

    /// Whether any `post` hook at name class `nc` can move any state.
    pub fn post_relevant(&self, nc: usize) -> bool {
        (0..self.alphabet.value_classes())
            .any(|vc| self.letter_relevant(self.alphabet.post_letter(nc, vc)))
    }

    /// Whether an event carrying this letter is *observed* by the monitor
    /// adapter (recorded in the trace and counted).
    ///
    /// The gate is per hook phase × name class — exactly the granularity
    /// of [`Monitor::accepts_event`](monsem_monitor::Monitor::accepts_event)
    /// — so monitor state evolves identically whether or not a machine
    /// skips the hooks that hint rules out.
    pub fn letter_observed(&self, letter: u32) -> bool {
        match self.alphabet.decode(letter) {
            (Phase::Pre, nc, _) => self.pre_relevant(nc),
            (Phase::Post, nc, _) => self.post_relevant(nc),
            (Phase::Done, _, _) => self.letter_relevant(letter),
        }
    }

    /// Runs the DFA over a whole word and reports acceptance — the
    /// compiled counterpart of [`naive_accepts`].
    pub fn accepts_word(&self, word: &[u32]) -> bool {
        let mut s = self.start();
        for &l in word {
            s = self.step(s, l);
        }
        self.is_nullable(s)
    }

    /// The oracle: direct structural matching on the start expression.
    pub fn naive_word(&self, word: &[u32]) -> bool {
        naive_accepts(&self.re, word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_spec;

    fn compile(src: &str) -> Automaton {
        Automaton::compile(&parse_spec(src).unwrap()).unwrap()
    }

    #[test]
    fn alphabet_of_the_issue_example() {
        let ast = parse_spec("always(post(fac) => value >= 1)").unwrap();
        let a = Alphabet::build(&ast).unwrap();
        // Names: fac + OTHER. Values: OTHER, (−∞,1), {1}, (1,∞).
        assert_eq!(a.name_classes(), 2);
        assert_eq!(a.value_classes(), 4);
        assert_eq!(
            a.classify_value(&Value::Int(0)),
            a.classify_value(&Value::Int(-7))
        );
        assert_ne!(
            a.classify_value(&Value::Int(1)),
            a.classify_value(&Value::Int(2))
        );
        assert_eq!(a.classify_value(&Value::Bool(true)), 0);
    }

    #[test]
    fn empty_integer_regions_are_not_classes() {
        let ast = parse_spec("always(value = 0 or value = 1)").unwrap();
        let a = Alphabet::build(&ast).unwrap();
        // Regions: (−∞,0), {0}, (0,1) = ∅, {1}, (1,∞) → 4 int classes.
        assert_eq!(a.value_classes(), 1 + 4);
    }

    #[test]
    fn issue_example_flags_small_values_as_dead() {
        let aut = compile("always(post(fac) => value >= 1)");
        let a = aut.alphabet();
        let nc = a.name_class(&Ident::new("fac"));
        let bad = a.post_letter(nc, a.classify_value(&Value::Int(0)));
        let good = a.post_letter(nc, a.classify_value(&Value::Int(3)));
        let s = aut.start();
        assert!(aut.is_dead(aut.step(s, bad)));
        assert!(!aut.is_dead(aut.step(s, good)));
        assert!(aut.is_nullable(aut.step(s, good)));
    }

    #[test]
    fn irrelevant_letters_self_loop_everywhere() {
        let aut = compile("always(post(fac) => value >= 1)");
        let a = aut.alphabet();
        let other_nc = a.name_class(&Ident::new("unmentioned"));
        // `pre` letters never matter to this spec: `post(fac) => …` is
        // vacuously true of them, so they are universal self-loops.
        assert!(!aut.pre_relevant(other_nc));
        assert!(!aut.pre_relevant(a.name_class(&Ident::new("fac"))));
        // An unmentioned name's post letters are also irrelevant.
        assert!(!aut.post_relevant(other_nc));
        assert!(aut.post_relevant(a.name_class(&Ident::new("fac"))));
    }

    #[test]
    fn dfa_agrees_with_oracle_on_a_hand_word() {
        let aut = compile("eventually(post(f))");
        let a = aut.alphabet();
        let f = a.name_class(&Ident::new("f"));
        let hit = a.post_letter(f, 0);
        let miss = a.pre_letter(f);
        let done = a.done_letter();
        for word in [
            vec![],
            vec![miss, done],
            vec![miss, hit, done],
            vec![hit],
            vec![done, hit],
        ] {
            assert_eq!(aut.accepts_word(&word), aut.naive_word(&word), "{word:?}");
        }
    }

    #[test]
    fn state_explosion_is_reported_not_suffered() {
        // A tower of repeats forces more derivative states than the cap.
        let src = "any{200} ; any{200} ; any{200} ; any{200} ; any{200} ; \
                   any{200} ; any{200} ; any{200} ; any{200} ; any{200} ; \
                   any{200} ; any{200} ; any{200} ; any{200} ; any{200} ; \
                   any{200} ; any{200} ; any{200} ; any{200} ; any{200} ; \
                   any{200} ; any{200}";
        let err = Automaton::compile(&parse_spec(src).unwrap()).unwrap_err();
        assert!(err.message.contains("states"));
    }
}
