//! A space profiler (toolbox extension): the sizes of the values flowing
//! through annotated program points.
//!
//! "Size" is the number of value nodes (list cells count one per element,
//! scalars one; functions count as one opaque node). Per label the
//! monitor keeps the maximum and the running total — enough to spot the
//! point that materializes the big intermediate structure.

use monsem_core::value::Value;
use monsem_monitor::scope::Scope;
use monsem_monitor::Monitor;
use monsem_syntax::{AnnKind, Annotation, Expr, Ident, Namespace};
use std::collections::BTreeMap;

/// The number of value nodes, iterative along cons tails so long lists
/// are safe to measure.
pub fn value_size(v: &Value) -> u64 {
    let mut total = 0u64;
    let mut cur = v;
    loop {
        match cur {
            Value::Pair(h, t) => {
                total += 1 + value_size(h);
                cur = t;
            }
            _ => return total + 1,
        }
    }
}

/// Per-label size statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeStats {
    /// Largest value observed.
    pub max: u64,
    /// Sum over all observations.
    pub total: u64,
    /// Number of observations.
    pub observations: u64,
}

/// Sizes per label.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sizes(BTreeMap<Ident, SizeStats>);

impl Sizes {
    /// The statistics for a label.
    pub fn stats(&self, label: &str) -> SizeStats {
        self.0.get(&Ident::new(label)).copied().unwrap_or_default()
    }

    /// The label with the largest observed value, if any fired.
    pub fn heaviest(&self) -> Option<(&Ident, SizeStats)> {
        self.0
            .iter()
            .max_by_key(|(_, s)| s.max)
            .map(|(l, s)| (l, *s))
    }
}

/// The space profiler monitor.
#[derive(Debug, Clone, Default)]
pub struct SpaceProfiler {
    namespace: Namespace,
}

impl SpaceProfiler {
    /// Measures anonymous-namespace labels.
    pub fn new() -> Self {
        SpaceProfiler::default()
    }

    /// Restricts to one namespace.
    pub fn in_namespace(namespace: Namespace) -> Self {
        SpaceProfiler { namespace }
    }
}

impl Monitor for SpaceProfiler {
    type State = Sizes;

    fn name(&self) -> &str {
        "space-profiler"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace && matches!(ann.kind, AnnKind::Label(_))
    }

    fn initial_state(&self) -> Sizes {
        Sizes::default()
    }

    fn post(
        &self,
        ann: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        value: &Value,
        mut s: Sizes,
    ) -> Sizes {
        let size = value_size(value);
        let entry = s.0.entry(ann.name().clone()).or_default();
        entry.max = entry.max.max(size);
        entry.total += size;
        entry.observations += 1;
        s
    }

    fn render_state(&self, s: &Sizes) -> String {
        s.0.iter()
            .map(|(l, st)| {
                format!(
                    "{l}: max {} nodes, avg {:.1} over {} values",
                    st.max,
                    st.total as f64 / st.observations.max(1) as f64,
                    st.observations
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_monitor::machine::eval_monitored;
    use monsem_syntax::parse_expr;

    #[test]
    fn value_size_counts_nodes() {
        assert_eq!(value_size(&Value::Int(1)), 1);
        assert_eq!(value_size(&Value::list([Value::Int(1), Value::Int(2)])), 5);
        assert_eq!(
            value_size(&Value::pair(Value::list([Value::Int(1)]), Value::Int(2))),
            5
        );
    }

    #[test]
    fn spots_the_point_that_builds_the_big_list() {
        let e = parse_expr(
            "letrec build = lambda i. if i = 0 then [] else i : (build (i - 1)) in \
             {small}:(1 + 1) + length ({big}:(build 50))",
        )
        .unwrap();
        let (_, sizes) = eval_monitored(&e, &SpaceProfiler::new()).unwrap();
        assert_eq!(sizes.stats("small").max, 1);
        assert_eq!(sizes.stats("big").max, 101); // 50 cells + 50 ints + nil
        let (heaviest, _) = sizes.heaviest().unwrap();
        assert_eq!(heaviest.as_str(), "big");
    }

    #[test]
    fn accumulates_across_recursive_observations() {
        let e = parse_expr(
            "letrec build = lambda i. if i = 0 then [] else i : {cell}:(build (i - 1)) in \
             build 3",
        )
        .unwrap();
        let (_, sizes) = eval_monitored(&e, &SpaceProfiler::new()).unwrap();
        let s = sizes.stats("cell");
        assert_eq!(s.observations, 3);
        assert_eq!(s.max, 5); // the two-element tail [2, 1]
    }
}
