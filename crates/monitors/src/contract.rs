//! Contract monitoring with predicates written in `L_λ` itself.
//!
//! The §8 demon fires on a predicate coded in the *host* language; this
//! monitor lets the predicate be an *object-language* function
//! `lambda v. <bool>` — the programmer states contracts in the language
//! they are debugging. At each `{contract/name}:` point the monitor runs
//! the registered predicate on the produced value in a fuel-bounded
//! sub-evaluation; `false` (or a failing predicate) is recorded as a
//! violation.
//!
//! The sub-evaluation happens entirely inside the monitor state
//! transformer, so Theorem 7.7 still applies: contracts observe, they
//! never change the program (a *failing* contract is reported, not
//! raised).

use monsem_core::error::EvalError;
use monsem_core::machine::{eval_with, EvalOptions};
use monsem_core::value::Value;
use monsem_core::Env;
use monsem_monitor::scope::Scope;
use monsem_monitor::{Monitor, Outcome};
use monsem_syntax::{parse_expr, AnnKind, Annotation, Expr, Ident, Namespace};
use std::collections::BTreeMap;
use std::sync::Arc;

/// What became of one contract check.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The predicate returned `true`.
    Held,
    /// The predicate returned `false` for this rendered value.
    Violated(String),
    /// The predicate itself failed (type error, fuel, …).
    PredicateFailed(EvalError),
}

/// Accumulated results per contract name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContractReport {
    checks: BTreeMap<Ident, Vec<Verdict>>,
    /// Annotated points with no registered contract.
    pub unknown: Vec<Ident>,
}

impl ContractReport {
    /// All verdicts for one contract, in evaluation order.
    pub fn verdicts(&self, name: &str) -> &[Verdict] {
        self.checks
            .get(&Ident::new(name))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The violations (and predicate failures) across all contracts.
    pub fn violations(&self) -> Vec<(&Ident, &Verdict)> {
        self.checks
            .iter()
            .flat_map(|(n, vs)| {
                vs.iter()
                    .filter(|v| !matches!(v, Verdict::Held))
                    .map(move |v| (n, v))
            })
            .collect()
    }

    /// Whether every check held.
    pub fn all_held(&self) -> bool {
        self.violations().is_empty() && self.unknown.is_empty()
    }
}

/// The contract monitor: a table of named object-language predicates.
///
/// Contracts *observe* by default: a violation is recorded in the
/// [`ContractReport`] and the run continues. [`ContractMonitor::enforcing`]
/// upgrades violations to [`Outcome::Abort`] verdicts, stopping the run
/// with [`EvalError::MonitorAbort`] at the first failed check.
pub struct ContractMonitor {
    namespace: Namespace,
    predicates: BTreeMap<Ident, Value>,
    fuel: u64,
    enforcing: bool,
}

impl std::fmt::Debug for ContractMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContractMonitor")
            .field("contracts", &self.predicates.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl Default for ContractMonitor {
    fn default() -> Self {
        ContractMonitor::new()
    }
}

impl ContractMonitor {
    /// An empty table on the `contract/` namespace.
    pub fn new() -> Self {
        ContractMonitor {
            namespace: Namespace::new("contract"),
            predicates: BTreeMap::new(),
            fuel: 1_000_000,
            enforcing: false,
        }
    }

    /// Makes contract violations abort evaluation instead of only being
    /// recorded. Predicate failures and unregistered points still only
    /// report — enforcement is reserved for a definite `false`.
    pub fn enforcing(mut self) -> Self {
        self.enforcing = true;
        self
    }

    /// Restricts to another namespace.
    pub fn in_namespace(mut self, namespace: Namespace) -> Self {
        self.namespace = namespace;
        self
    }

    /// Bounds each predicate sub-evaluation (default: 10⁶ steps).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Registers `name` with a predicate expression `lambda v. <bool>`
    /// (parsed and evaluated to a function value now).
    ///
    /// # Errors
    ///
    /// Parse or evaluation errors in the predicate source.
    pub fn contract(
        mut self,
        name: impl Into<Ident>,
        predicate_src: &str,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let pred_expr = parse_expr(predicate_src)?;
        let pred_value = eval_with(
            &pred_expr,
            &Env::empty(),
            &EvalOptions::with_fuel(self.fuel),
        )?;
        self.predicates.insert(name.into(), pred_value);
        Ok(self)
    }

    fn check(&self, name: &Ident, value: &Value) -> Option<Verdict> {
        let pred = self.predicates.get(name)?;
        // Apply the predicate closure to the value: `p v` with both bound
        // in a scratch environment.
        let env = Env::empty()
            .extend(Ident::new("contract-pred"), pred.clone())
            .extend(Ident::new("contract-value"), value.clone());
        let call: Expr = Expr::App(
            Arc::new(Expr::var("contract-pred")),
            Arc::new(Expr::var("contract-value")),
        );
        Some(
            match eval_with(&call, &env, &EvalOptions::with_fuel(self.fuel)) {
                Ok(Value::Bool(true)) => Verdict::Held,
                Ok(Value::Bool(false)) => Verdict::Violated(value.to_string()),
                Ok(other) => {
                    Verdict::PredicateFailed(EvalError::NonBooleanCondition(other.to_string()))
                }
                Err(e) => Verdict::PredicateFailed(e),
            },
        )
    }
}

impl Monitor for ContractMonitor {
    type State = ContractReport;

    fn name(&self) -> &str {
        "contracts"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace && matches!(ann.kind, AnnKind::Label(_))
    }

    fn initial_state(&self) -> ContractReport {
        ContractReport::default()
    }

    fn post(
        &self,
        ann: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        value: &Value,
        mut s: ContractReport,
    ) -> ContractReport {
        let name = ann.name().clone();
        match self.check(&name, value) {
            Some(verdict) => s.checks.entry(name).or_default().push(verdict),
            None => {
                if !s.unknown.contains(&name) {
                    s.unknown.push(name);
                }
            }
        }
        s
    }

    fn try_post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        s: ContractReport,
    ) -> Outcome<ContractReport> {
        let s = self.post(ann, expr, scope, value, s);
        if self.enforcing {
            if let Some(Verdict::Violated(v)) = s.verdicts(ann.name().as_str()).last() {
                let reason = format!("contract `{}` violated by {v}", ann.name());
                return Outcome::abort(s, "contracts", reason);
            }
        }
        Outcome::Continue(s)
    }

    fn render_state(&self, s: &ContractReport) -> String {
        if s.all_held() {
            let n: usize = s.checks.values().map(Vec::len).sum();
            return format!("all contracts held ({n} checks)");
        }
        let mut lines = Vec::new();
        for (name, verdict) in s.violations() {
            match verdict {
                Verdict::Violated(v) => lines.push(format!("{name} violated by {v}")),
                Verdict::PredicateFailed(e) => lines.push(format!("{name}: predicate failed: {e}")),
                Verdict::Held => {}
            }
        }
        for name in &s.unknown {
            lines.push(format!("{name}: no contract registered"));
        }
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_monitor::machine::eval_monitored;

    #[test]
    fn object_language_contracts_check_values() {
        let monitor = ContractMonitor::new()
            .contract("positive", "lambda v. v > 0")
            .unwrap()
            .contract(
                "sorted",
                "letrec go = lambda l. if null? l then true else if null? (tl l) then true \
                 else if (hd l) <= (hd (tl l)) then go (tl l) else false in go",
            )
            .unwrap();
        let prog = parse_expr("{contract/positive}:(3 - 1) + length ({contract/sorted}:[1, 2, 3])")
            .unwrap();
        let (v, report) = eval_monitored(&prog, &monitor).unwrap();
        assert_eq!(v, Value::Int(5));
        assert!(report.all_held(), "{report:?}");
        assert_eq!(report.verdicts("positive"), &[Verdict::Held]);
    }

    #[test]
    fn violations_carry_the_offending_value() {
        let monitor = ContractMonitor::new()
            .contract("positive", "lambda v. v > 0")
            .unwrap();
        let prog = parse_expr("{contract/positive}:(1 - 5)").unwrap();
        let (v, report) = eval_monitored(&prog, &monitor).unwrap();
        // The answer is untouched: contracts observe, they don't enforce.
        assert_eq!(v, Value::Int(-4));
        assert_eq!(
            report.verdicts("positive"),
            &[Verdict::Violated("-4".into())]
        );
        assert!(monitor
            .render_state(&report)
            .contains("positive violated by -4"));
    }

    #[test]
    fn predicate_failures_are_reported_not_raised() {
        let monitor = ContractMonitor::new()
            .contract("broken", "lambda v. v + 1")
            .unwrap();
        let prog = parse_expr("{contract/broken}:true").unwrap();
        let (v, report) = eval_monitored(&prog, &monitor).unwrap();
        assert_eq!(v, Value::Bool(true));
        assert!(matches!(
            report.verdicts("broken"),
            [Verdict::PredicateFailed(_)]
        ));
    }

    #[test]
    fn enforcing_contracts_abort_at_the_first_violation() {
        let monitor = ContractMonitor::new()
            .contract("positive", "lambda v. v > 0")
            .unwrap()
            .enforcing();
        let prog = parse_expr("{contract/positive}:(1 - 5) + {contract/positive}:7").unwrap();
        assert_eq!(
            eval_monitored(&prog, &monitor).unwrap_err(),
            EvalError::MonitorAbort {
                monitor: "contracts".into(),
                reason: "contract `positive` violated by -4".into(),
            }
        );
    }

    #[test]
    fn enforcing_contracts_still_only_report_predicate_failures() {
        let monitor = ContractMonitor::new()
            .contract("broken", "lambda v. v + 1")
            .unwrap()
            .enforcing();
        let prog = parse_expr("{contract/broken}:true").unwrap();
        let (v, report) = eval_monitored(&prog, &monitor).unwrap();
        assert_eq!(v, Value::Bool(true));
        assert!(matches!(
            report.verdicts("broken"),
            [Verdict::PredicateFailed(_)]
        ));
    }

    #[test]
    fn unregistered_points_are_flagged() {
        let monitor = ContractMonitor::new();
        let prog = parse_expr("{contract/ghost}:1").unwrap();
        let (_, report) = eval_monitored(&prog, &monitor).unwrap();
        assert_eq!(report.unknown, vec![Ident::new("ghost")]);
        assert!(!report.all_held());
    }

    #[test]
    fn nonterminating_predicates_are_cut_off() {
        let monitor = ContractMonitor::new()
            .with_fuel(10_000)
            .contract("loop", "letrec f = lambda v. f v in f")
            .unwrap();
        let prog = parse_expr("{contract/loop}:1").unwrap();
        let (_, report) = eval_monitored(&prog, &monitor).unwrap();
        assert!(matches!(
            report.verdicts("loop"),
            [Verdict::PredicateFailed(EvalError::FuelExhausted)]
        ));
    }
}
