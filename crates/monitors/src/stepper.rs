//! A stepper — one of the §9.2 toolbox monitors.
//!
//! Records a numbered, ordered log of every monitored evaluation event
//! (entering and leaving annotated program points) together with the
//! expression text and, on exit, the produced value. A front end can
//! replay the log one event at a time; the deterministic log *is* the
//! stepping session (the interactive variant is [`crate::debugger`]).

use monsem_core::Value;
use monsem_monitor::scope::Scope;
use monsem_monitor::Monitor;
use monsem_syntax::{Annotation, Expr, Namespace};
use std::rc::Rc;

/// One step event.
#[derive(Debug, Clone, PartialEq)]
pub enum StepEvent {
    /// About to evaluate the annotated expression.
    Enter {
        /// Step number (0-based, shared across enter/leave).
        step: u64,
        /// The annotation's label or function name.
        point: String,
        /// The expression, pretty-printed.
        expr: String,
    },
    /// Finished evaluating it.
    Leave {
        /// Step number.
        step: u64,
        /// The annotation's label or function name.
        point: String,
        /// The produced value, rendered.
        value: String,
    },
}

/// Stepper state: the event log (persistent, O(1) to extend) and the next
/// step number.
#[derive(Debug, Clone, Default)]
pub struct StepLog {
    events: Option<Rc<Node>>,
    next: u64,
    open: Vec<u64>,
}

#[derive(Debug)]
struct Node {
    event: StepEvent,
    prev: Option<Rc<Node>>,
}

impl StepLog {
    fn enter(&self, point: String, expr: String) -> StepLog {
        let event = StepEvent::Enter {
            step: self.next,
            point,
            expr,
        };
        let mut open = self.open.clone();
        open.push(self.next);
        StepLog {
            events: Some(Rc::new(Node {
                event,
                prev: self.events.clone(),
            })),
            next: self.next + 1,
            open,
        }
    }

    fn leave(&self, point: String, value: String) -> StepLog {
        let mut open = self.open.clone();
        let step = open.pop().unwrap_or(0);
        let event = StepEvent::Leave { step, point, value };
        StepLog {
            events: Some(Rc::new(Node {
                event,
                prev: self.events.clone(),
            })),
            next: self.next,
            open,
        }
    }

    /// The events, oldest first.
    pub fn events(&self) -> Vec<StepEvent> {
        let mut out = Vec::new();
        let mut cur = &self.events;
        while let Some(node) = cur.as_deref() {
            out.push(node.event.clone());
            cur = &node.prev;
        }
        out.reverse();
        out
    }

    /// Number of enter events recorded.
    pub fn steps(&self) -> u64 {
        self.next
    }
}

/// The stepper monitor: log everything, in order.
#[derive(Debug, Clone, Default)]
pub struct Stepper {
    namespace: Namespace,
}

impl Stepper {
    /// A stepper on the anonymous namespace.
    pub fn new() -> Self {
        Stepper::default()
    }

    /// Restricts to one namespace.
    pub fn in_namespace(namespace: Namespace) -> Self {
        Stepper { namespace }
    }
}

impl Monitor for Stepper {
    type State = StepLog;

    fn name(&self) -> &str {
        "stepper"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace
    }

    fn initial_state(&self) -> StepLog {
        StepLog::default()
    }

    fn pre(&self, ann: &Annotation, expr: &Expr, _: &Scope<'_>, s: StepLog) -> StepLog {
        s.enter(ann.name().to_string(), expr.to_string())
    }

    fn post(
        &self,
        ann: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        value: &Value,
        s: StepLog,
    ) -> StepLog {
        s.leave(ann.name().to_string(), value.to_string())
    }

    fn render_state(&self, s: &StepLog) -> String {
        s.events()
            .iter()
            .map(|e| match e {
                StepEvent::Enter { step, point, expr } => {
                    format!("step {step}: enter {point}: {expr}")
                }
                StepEvent::Leave { step, point, value } => {
                    format!("step {step}: leave {point} = {value}")
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_monitor::machine::eval_monitored;
    use monsem_syntax::parse_expr;

    #[test]
    fn logs_enter_and_leave_in_order() {
        let e = parse_expr("{outer}:({inner}:1 + 2)").unwrap();
        let (_, log) = eval_monitored(&e, &Stepper::new()).unwrap();
        let events = log.events();
        assert_eq!(events.len(), 4);
        assert!(matches!(&events[0], StepEvent::Enter { step: 0, point, .. } if point == "outer"));
        assert!(matches!(&events[1], StepEvent::Enter { step: 1, point, .. } if point == "inner"));
        assert!(
            matches!(&events[2], StepEvent::Leave { step: 1, point, value }
            if point == "inner" && value == "1")
        );
        assert!(
            matches!(&events[3], StepEvent::Leave { step: 0, point, value }
            if point == "outer" && value == "3")
        );
        assert_eq!(log.steps(), 2);
    }

    #[test]
    fn render_is_one_line_per_event() {
        let e = parse_expr("{p}:42").unwrap();
        let (_, log) = eval_monitored(&e, &Stepper::new()).unwrap();
        assert_eq!(
            Stepper::new().render_state(&log),
            "step 0: enter p: 42\nstep 0: leave p = 42"
        );
    }

    #[test]
    fn captures_expression_text() {
        let e = parse_expr("{p}:(1 + 2)").unwrap();
        let (_, log) = eval_monitored(&e, &Stepper::new()).unwrap();
        assert!(matches!(&log.events()[0], StepEvent::Enter { expr, .. } if expr == "1 + 2"));
    }
}
