//! The monitor toolbox — §8 of *Monitoring Semantics* and the §9.2
//! "extendable toolbox of monitors".
//!
//! Each monitor here is a complete specification in the Definition 5.1
//! sense — monitor syntax (which annotations it accepts), monitor algebra
//! (its state type) and monitoring functions — implemented against the
//! [`monsem_monitor::Monitor`] trait:
//!
//! | paper | module | state |
//! |---|---|---|
//! | Figure 4 (§5) A/B profiler | [`profiler::AbProfiler`] | `⟨countA, countB⟩` |
//! | Figure 6 profiler | [`profiler::Profiler`] | counter environment `Ide → ℕ` |
//! | Figure 7 fancy tracer | [`tracer::Tracer`] | output channel × indent level |
//! | Figure 8 demon | [`demon::UnsortedDemon`] | name set `{Ide}` |
//! | Figure 9 collecting monitor | [`collecting::Collecting`] | `Ide → {V}` |
//! | §8 "any semantic event" remark | [`demon::PredicateDemon`] | name set |
//! | §9.2 stepper | [`stepper::Stepper`] | numbered event log |
//! | §9.2 interactive debugger à la dbx | [`debugger::Debugger`] | command stream × transcript |
//! | extensions | [`coverage::Coverage`], [`watch::Watchpoint`], [`timing::TimeProfiler`], [`logger::EventLogger`], [`callgraph::CallGraph`], [`memo::MemoScout`], [`replay::Recorder`]/[`replay::Replay`], [`space::SpaceProfiler`] | |
//! | temporal specifications | [`SpecMonitor`] (re-exported from `monsem-tspec`) | DFA state × match trace |
//! | fault injection (tests the fault model itself) | [`faulty::FaultyMonitor`] | event count |
//!
//! The [`toolbox`] module packages each as a boxed constructor for use
//! with the `&` composition operator and the
//! [`Session`](monsem_monitor::session::Session) environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod collecting;
pub mod contract;
pub mod coverage;
pub mod debugger;
pub mod demon;
pub mod faulty;
pub mod logger;
pub mod memo;
pub mod profiler;
pub mod replay;
pub mod space;
pub mod stepper;
pub mod timing;
pub mod toolbox;
pub mod tracer;
pub mod watch;

pub use callgraph::CallGraph;
pub use collecting::Collecting;
pub use contract::ContractMonitor;
pub use coverage::Coverage;
pub use debugger::{Command, Debugger};
pub use demon::{PredicateDemon, UnsortedDemon};
pub use faulty::{FaultMode, FaultyMonitor};
pub use memo::MemoScout;
pub use profiler::{AbProfiler, Profiler};
pub use replay::{Recorder, Replay};
pub use space::SpaceProfiler;
pub use stepper::Stepper;
pub use timing::TimeProfiler;
pub use tracer::Tracer;

pub use monsem_tspec::{SpecMonitor, SpecState};
