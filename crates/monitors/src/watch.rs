//! A watchpoint monitor (toolbox extension; the Magpie variable-event
//! demon of §8 generalized to "record every change").
//!
//! At every accepted annotation the monitor samples a named variable in
//! the current [`Scope`] and records a transition whenever the observed
//! value differs from the previous sample. Under the imperative language
//! module this watches mutation through the store.

use monsem_core::Value;
use monsem_monitor::scope::Scope;
use monsem_monitor::Monitor;
use monsem_syntax::{Annotation, Expr, Ident, Namespace};

/// The observation history of a watched variable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WatchLog {
    /// Each entry is (annotation label, value observed). Only *changes*
    /// are recorded (including the first observation).
    pub transitions: Vec<(String, Value)>,
    last: Option<Value>,
}

/// Watches one variable.
#[derive(Debug, Clone)]
pub struct Watchpoint {
    variable: Ident,
    namespace: Namespace,
}

impl Watchpoint {
    /// Watches `variable` at anonymous-namespace annotations.
    pub fn new(variable: impl Into<Ident>) -> Self {
        Watchpoint {
            variable: variable.into(),
            namespace: Namespace::anonymous(),
        }
    }

    /// Restricts to one namespace.
    pub fn in_namespace(mut self, namespace: Namespace) -> Self {
        self.namespace = namespace;
        self
    }

    fn sample(&self, ann: &Annotation, scope: &Scope<'_>, mut s: WatchLog) -> WatchLog {
        if let Some(v) = scope.lookup(&self.variable) {
            if s.last.as_ref() != Some(&v) {
                s.transitions.push((ann.name().to_string(), v.clone()));
                s.last = Some(v);
            }
        }
        s
    }
}

impl Monitor for Watchpoint {
    type State = WatchLog;

    fn name(&self) -> &str {
        "watchpoint"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace
    }

    fn initial_state(&self) -> WatchLog {
        WatchLog::default()
    }

    fn pre(&self, ann: &Annotation, _: &Expr, scope: &Scope<'_>, s: WatchLog) -> WatchLog {
        self.sample(ann, scope, s)
    }

    fn post(
        &self,
        ann: &Annotation,
        _: &Expr,
        scope: &Scope<'_>,
        _: &Value,
        s: WatchLog,
    ) -> WatchLog {
        self.sample(ann, scope, s)
    }

    fn render_state(&self, s: &WatchLog) -> String {
        s.transitions
            .iter()
            .map(|(at, v)| format!("{} = {v} (at {{{at}}})", self.variable))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_monitor::imperative::eval_monitored_imperative;
    use monsem_monitor::machine::eval_monitored;
    use monsem_syntax::parse_expr;

    #[test]
    fn watches_mutation_in_the_imperative_module() {
        let e = parse_expr("let x = 0 in while x < 3 do {w}:(x := x + 1) end; x").unwrap();
        let (_, log) = eval_monitored_imperative(&e, &Watchpoint::new("x")).unwrap();
        let values: Vec<&Value> = log.transitions.iter().map(|(_, v)| v).collect();
        assert_eq!(
            values,
            vec![
                &Value::Int(0),
                &Value::Int(1),
                &Value::Int(2),
                &Value::Int(3)
            ]
        );
    }

    #[test]
    fn unchanged_samples_are_not_recorded() {
        let e = parse_expr("let x = 5 in {a}:1 + {b}:2 + {c}:x").unwrap();
        let (_, log) = eval_monitored(&e, &Watchpoint::new("x")).unwrap();
        assert_eq!(log.transitions.len(), 1, "{log:?}");
        assert_eq!(log.transitions[0].1, Value::Int(5));
    }

    #[test]
    fn rebinding_in_pure_code_is_visible() {
        let e = parse_expr("let x = 1 in {outer}:(let x = 2 in {inner}:x) + {back}:x").unwrap();
        let (_, log) = eval_monitored(&e, &Watchpoint::new("x")).unwrap();
        let values: Vec<i64> = log
            .transitions
            .iter()
            .map(|(_, v)| match v {
                Value::Int(n) => *n,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(values, vec![1, 2, 1]);
    }
}
