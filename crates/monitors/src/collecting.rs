//! The collecting monitor (§8, Figure 9) — a collecting interpretation à
//! la Hudak & Young: "what are all possible values to which an expression
//! might evaluate during program execution?"
//!
//! Monitor state: an *interpretations environment* `MS = Ide → {V}`. The
//! post-monitoring function is `σ[x ↦ σ(x) ∪ {v}]`.

use monsem_core::Value;
use monsem_monitor::scope::Scope;
use monsem_monitor::{MergeMonitor, Monitor};
use monsem_syntax::{AnnKind, Annotation, Expr, Ident, Namespace};
use std::collections::BTreeMap;

/// The interpretations environment `Ide → {V}`.
///
/// Values are kept insertion-ordered and deduplicated structurally (the
/// paper's sets; `Value` is not `Ord`, so a vector-backed set is used).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Interpretations(BTreeMap<Ident, Vec<Value>>);

impl Interpretations {
    /// The values observed for `x`, in first-seen order.
    pub fn values_of(&self, x: &Ident) -> &[Value] {
        self.0.get(x).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `σ[x ↦ σ(x) ∪ {v}]`.
    pub fn insert(mut self, x: &Ident, v: &Value) -> Self {
        let set = self.0.entry(x.clone()).or_default();
        if !set.iter().any(|seen| seen == v) {
            set.push(v.clone());
        }
        self
    }

    /// Tagged names in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Ident, &[Value])> {
        self.0.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Number of tagged names observed.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no tagged expression was evaluated.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The Figure 9 collecting monitor: each expression of interest is tagged
/// with a name; the monitor accumulates the set of values produced there.
///
/// For the paper's `fac 3` program the final state is
/// `[test ↦ {true, false}, n ↦ {1, 2, 3}]`.
///
/// ```
/// use monsem_monitor::machine::eval_monitored;
/// use monsem_monitors::Collecting;
/// use monsem_core::Value;
/// use monsem_syntax::{parse_expr, Ident};
/// let prog = parse_expr("letrec f = lambda x. {v}:(x * x) in f 2 + f 3")?;
/// let (_, seen) = eval_monitored(&prog, &Collecting::new())?;
/// assert_eq!(seen.values_of(&Ident::new("v")), &[Value::Int(9), Value::Int(4)]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Collecting {
    namespace: Namespace,
}

impl Collecting {
    /// A collecting monitor on anonymous-namespace labels.
    pub fn new() -> Self {
        Collecting::default()
    }

    /// Restricts to one namespace (for cascades, §6).
    pub fn in_namespace(namespace: Namespace) -> Self {
        Collecting { namespace }
    }
}

impl Monitor for Collecting {
    type State = Interpretations;

    fn name(&self) -> &str {
        "collecting"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace && matches!(ann.kind, AnnKind::Label(_))
    }

    fn initial_state(&self) -> Interpretations {
        Interpretations::default()
    }

    fn post(
        &self,
        ann: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        value: &Value,
        s: Interpretations,
    ) -> Interpretations {
        s.insert(ann.name(), value)
    }

    fn render_state(&self, s: &Interpretations) -> String {
        let body = s
            .iter()
            .map(|(x, vs)| {
                let set = vs
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("{x} ↦ {{{set}}}")
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!("[{body}]")
    }
}

/// Interpretation environments merge per key by ordered, deduplicating
/// append — the first-seen order of a concatenation is associative, and
/// appending an empty environment changes nothing, so the laws hold.
/// (`Value` is not `Send`, so this monitor satisfies the *laws* and works
/// under [`Compose`](monsem_monitor::Compose) forwarding, but cannot ride
/// the thread-scoped parallel machine itself.)
impl MergeMonitor for Collecting {
    fn split(&self, _: &Interpretations) -> Interpretations {
        Interpretations::default()
    }

    fn merge(&self, mut left: Interpretations, right: Interpretations) -> Interpretations {
        for (x, vs) in right.0 {
            for v in vs {
                left = left.insert(&x, &v);
            }
        }
        left
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::programs;
    use monsem_monitor::machine::eval_monitored;
    use monsem_syntax::parse_expr;

    #[test]
    fn section8_collecting_example() {
        let (v, s) = eval_monitored(&programs::collecting_fac(3), &Collecting::new()).unwrap();
        assert_eq!(v, Value::Int(6));
        assert_eq!(
            s.values_of(&Ident::new("test")),
            &[Value::Bool(false), Value::Bool(true)]
        );
        // The argument-first application order (Fig. 2) reaches the
        // innermost call's `n` first, so insertion order is 1, 2, 3 — the
        // paper reports the same *set* {1, 2, 3}.
        assert_eq!(
            s.values_of(&Ident::new("n")),
            &[Value::Int(1), Value::Int(2), Value::Int(3)]
        );
        let rendered = Collecting::new().render_state(&s);
        assert_eq!(rendered, "[n ↦ {1, 2, 3}, test ↦ {false, true}]");
    }

    #[test]
    fn duplicate_values_are_collected_once() {
        let e = parse_expr("letrec f = lambda x. {v}:(x * 0) in f 1 + f 2 + f 3").unwrap();
        let (_, s) = eval_monitored(&e, &Collecting::new()).unwrap();
        assert_eq!(s.values_of(&Ident::new("v")), &[Value::Int(0)]);
    }

    #[test]
    fn collects_structured_values() {
        let e = parse_expr("{l}:(1 : []) ++ {l}:(2 : [])").unwrap();
        let (_, s) = eval_monitored(&e, &Collecting::new()).unwrap();
        assert_eq!(
            s.values_of(&Ident::new("l")),
            &[Value::list([Value::Int(2)]), Value::list([Value::Int(1)])]
        );
    }

    #[test]
    fn empty_when_no_tags_fire() {
        let e = parse_expr("if false then {dead}:1 else 2").unwrap();
        let (_, s) = eval_monitored(&e, &Collecting::new()).unwrap();
        assert!(s.is_empty());
    }
}
