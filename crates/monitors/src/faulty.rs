//! Fault injection — a monitor that misbehaves on demand.
//!
//! The fault model (verdicts, budgets, quarantine — see
//! [`monsem_monitor::fault`]) needs an adversary to test against.
//! [`FaultyMonitor`] counts the semantic events it sees (one `pre` and one
//! `post` per accepted annotation) and, on the *N*th, does one of three
//! bad things:
//!
//! * [`FaultMode::Panic`] — panics, exercising
//!   [`FaultPolicy::Quarantine`](monsem_monitor::FaultPolicy) /
//!   `Fatal` handling;
//! * [`FaultMode::Abort`] — returns an
//!   [`Outcome::Abort`] verdict, exercising
//!   [`EvalError::MonitorAbort`](monsem_core::error::EvalError::MonitorAbort)
//!   propagation;
//! * [`FaultMode::Busy`] — spins for a bounded wall-clock duration,
//!   exercising [`Budget::with_wall`](monsem_monitor::Budget::with_wall)
//!   (a stand-in for divergence: real divergence cannot be preempted from
//!   safe code, so the "diverging" monitor burns a configurable slice of
//!   time instead).
//!
//! Before and after the fault the monitor is the counting monitor — pure,
//! total, and squarely inside Theorem 7.7 — so any observable difference
//! in a quarantined run is attributable to the injected fault alone.

use monsem_core::Value;
use monsem_monitor::scope::Scope;
use monsem_monitor::{MergeMonitor, Monitor, Outcome};
use monsem_syntax::{Annotation, Expr};
use std::time::{Duration, Instant};

/// What the monitor does when its trigger event arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultMode {
    /// Panic with a message naming the event number.
    Panic,
    /// Return an abort verdict with this reason.
    Abort(String),
    /// Spin (without yielding a fault) for this long — long enough to
    /// trip a wall-clock [`Budget`](monsem_monitor::Budget).
    Busy(Duration),
}

/// A monitor that behaves like a pure event counter until its `fire_at`th
/// event, then injects the configured fault exactly once.
///
/// ```
/// use monsem_monitor::machine::eval_monitored_with;
/// use monsem_monitor::{FaultPolicy, Guarded, Health, Monitor};
/// use monsem_core::machine::EvalOptions;
/// use monsem_core::{Env, Value};
/// use monsem_monitors::{FaultMode, FaultyMonitor};
/// use monsem_syntax::parse_expr;
///
/// let prog = parse_expr("{a}:1 + {b}:2")?;
/// let bomb = FaultyMonitor::new(2, FaultMode::Panic);
/// let guarded = Guarded::new(bomb).policy(FaultPolicy::Quarantine);
/// let (v, s) =
///     eval_monitored_with(&prog, &Env::empty(), &guarded, guarded.initial_state(), &EvalOptions::default())?;
/// assert_eq!(v, Value::Int(3)); // the answer survives the fault
/// assert!(matches!(s.health, Health::Quarantined(_)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaultyMonitor {
    name: String,
    fire_at: u64,
    mode: FaultMode,
}

impl FaultyMonitor {
    /// A monitor that injects `mode` on the `fire_at`th event (1-based;
    /// `fire_at = 0` never fires).
    pub fn new(fire_at: u64, mode: FaultMode) -> Self {
        FaultyMonitor {
            name: "faulty".into(),
            fire_at,
            mode,
        }
    }

    /// Renames the monitor (useful when stacking several).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    fn step(&self, seen: u64) -> Outcome<u64> {
        let seen = seen + 1;
        if seen == self.fire_at {
            match &self.mode {
                FaultMode::Panic => panic!("{}: injected panic at event {seen}", self.name),
                FaultMode::Abort(reason) => {
                    return Outcome::abort(seen, self.name.clone(), reason.clone())
                }
                FaultMode::Busy(d) => {
                    let start = Instant::now();
                    while start.elapsed() < *d {
                        std::hint::spin_loop();
                    }
                }
            }
        }
        Outcome::Continue(seen)
    }
}

impl Monitor for FaultyMonitor {
    /// Events seen so far.
    type State = u64;

    fn name(&self) -> &str {
        &self.name
    }

    fn initial_state(&self) -> u64 {
        0
    }

    fn try_pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, seen: u64) -> Outcome<u64> {
        self.step(seen)
    }

    fn try_post(
        &self,
        _: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        _: &Value,
        seen: u64,
    ) -> Outcome<u64> {
        self.step(seen)
    }

    fn render_state(&self, seen: &u64) -> String {
        format!("{seen} events")
    }
}

/// Event counts sum at the join. Note that `fire_at` then counts *per
/// shard* under fork-join (each shard's counter restarts at zero), which
/// is exactly what the adversarial tests want: the bomb goes off inside a
/// worker thread.
impl MergeMonitor for FaultyMonitor {
    fn split(&self, _: &u64) -> u64 {
        0
    }

    fn merge(&self, left: u64, right: u64) -> u64 {
        left + right
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::error::EvalError;
    use monsem_core::machine::EvalOptions;
    use monsem_core::{Env, Value};
    use monsem_monitor::machine::{eval_monitored, eval_monitored_with};
    use monsem_monitor::{Budget, FaultPolicy, Guarded, Health};
    use monsem_syntax::parse_expr;

    #[test]
    fn abort_mode_fires_on_the_nth_event() {
        // Events: pre(a)=1, post(a)=2, pre(b)=3 — fire_at 3 aborts in b's pre.
        let m = FaultyMonitor::new(3, FaultMode::Abort("third event".into()));
        let e = parse_expr("{a}:1 + {b}:2").unwrap();
        assert_eq!(
            eval_monitored(&e, &m).unwrap_err(),
            EvalError::MonitorAbort {
                monitor: "faulty".into(),
                reason: "third event".into(),
            }
        );
    }

    #[test]
    fn zero_never_fires() {
        let m = FaultyMonitor::new(0, FaultMode::Panic);
        let e = parse_expr("{a}:1 + {b}:2").unwrap();
        let (v, seen) = eval_monitored(&e, &m).unwrap();
        assert_eq!(v, Value::Int(3));
        assert_eq!(seen, 4);
    }

    #[test]
    fn panic_mode_is_quarantinable() {
        let bomb = FaultyMonitor::new(1, FaultMode::Panic);
        let guarded = Guarded::new(bomb).policy(FaultPolicy::Quarantine);
        let e = parse_expr("{a}:(20 + 22)").unwrap();
        let (v, s) = eval_monitored_with(
            &e,
            &Env::empty(),
            &guarded,
            guarded.initial_state(),
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(v, Value::Int(42));
        assert!(matches!(s.health, Health::Quarantined(_)), "{:?}", s.health);
    }

    #[test]
    fn busy_mode_trips_a_wall_budget() {
        let slow = FaultyMonitor::new(1, FaultMode::Busy(Duration::from_millis(20)));
        let guarded =
            Guarded::new(slow).budget(Budget::unlimited().with_wall(Duration::from_millis(1)));
        let e = parse_expr("{a}:(20 + 22)").unwrap();
        let (v, s) = eval_monitored_with(
            &e,
            &Env::empty(),
            &guarded,
            guarded.initial_state(),
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(v, Value::Int(42));
        assert!(matches!(s.health, Health::OverBudget(_)), "{:?}", s.health);
    }
}
