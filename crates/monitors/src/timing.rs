//! A wall-clock time profiler (toolbox extension).
//!
//! Accumulates, per label, the wall-clock time spent between the pre- and
//! post-events of annotated expressions (inclusive of callees, like the
//! paper's interpreter-level measurements in §9.1). The monitor state
//! carries `Instant`s, which is sound: monitor state never feeds back into
//! evaluation, so nondeterministic contents cannot perturb the answer.

use monsem_core::Value;
use monsem_monitor::scope::Scope;
use monsem_monitor::{MergeMonitor, Monitor};
use monsem_syntax::{AnnKind, Annotation, Expr, Ident, Namespace};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Accumulated inclusive times per label, plus the stack of open timers.
#[derive(Debug, Clone, Default)]
pub struct Timings {
    totals: BTreeMap<Ident, (Duration, u64)>,
    open: Vec<(Ident, Instant)>,
}

impl Timings {
    /// Total inclusive time attributed to `label`.
    pub fn total(&self, label: &Ident) -> Duration {
        self.totals.get(label).map(|(d, _)| *d).unwrap_or_default()
    }

    /// How many times `label` completed.
    pub fn count(&self, label: &Ident) -> u64 {
        self.totals.get(label).map(|(_, n)| *n).unwrap_or(0)
    }

    /// Labels with at least one completed timing.
    pub fn labels(&self) -> impl Iterator<Item = &Ident> {
        self.totals.keys()
    }
}

/// The time profiler.
#[derive(Debug, Clone, Default)]
pub struct TimeProfiler {
    namespace: Namespace,
}

impl TimeProfiler {
    /// Times anonymous-namespace labels.
    pub fn new() -> Self {
        TimeProfiler::default()
    }

    /// Restricts to one namespace.
    pub fn in_namespace(namespace: Namespace) -> Self {
        TimeProfiler { namespace }
    }
}

impl Monitor for TimeProfiler {
    type State = Timings;

    fn name(&self) -> &str {
        "time-profiler"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace && matches!(ann.kind, AnnKind::Label(_))
    }

    fn initial_state(&self) -> Timings {
        Timings::default()
    }

    fn pre(&self, ann: &Annotation, _: &Expr, _: &Scope<'_>, mut s: Timings) -> Timings {
        s.open.push((ann.name().clone(), Instant::now()));
        s
    }

    fn post(
        &self,
        ann: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        _: &Value,
        mut s: Timings,
    ) -> Timings {
        // Post events unnest strictly, so the matching timer is on top.
        if let Some((label, started)) = s.open.pop() {
            debug_assert_eq!(&label, ann.name());
            let entry = s.totals.entry(label).or_insert((Duration::ZERO, 0));
            entry.0 += started.elapsed();
            entry.1 += 1;
        }
        s
    }

    fn render_state(&self, s: &Timings) -> String {
        s.totals
            .iter()
            .map(|(l, (d, n))| format!("{l}: {:?} over {n} activations", d))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Shards inherit the open-timer stack (timers opened before the fork
/// stay open across it; bracketing guarantees a shard never pops them)
/// and accumulate their own totals from zero; the join sums durations and
/// activation counts per label and keeps the left stack. Activation
/// counts merge exactly; wall-clock totals are additive by construction,
/// though their *values* are nondeterministic — which is sound here, as
/// monitor state never feeds back into evaluation.
impl MergeMonitor for TimeProfiler {
    fn split(&self, s: &Timings) -> Timings {
        Timings {
            totals: BTreeMap::new(),
            open: s.open.clone(),
        }
    }

    fn merge(&self, mut left: Timings, right: Timings) -> Timings {
        for (label, (d, n)) in right.totals {
            let entry = left.totals.entry(label).or_insert((Duration::ZERO, 0));
            entry.0 += d;
            entry.1 += n;
        }
        left
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::programs;
    use monsem_monitor::machine::eval_monitored;

    #[test]
    fn counts_activations_and_accumulates_time() {
        let (_, t) = eval_monitored(&programs::fac_mul_profiled(5), &TimeProfiler::new()).unwrap();
        assert_eq!(t.count(&Ident::new("fac")), 6);
        assert_eq!(t.count(&Ident::new("mul")), 5);
        assert!(
            t.total(&Ident::new("fac")) >= t.total(&Ident::new("mul")),
            "outer activations include inner ones"
        );
        assert!(t.open.is_empty());
    }

    #[test]
    fn render_names_every_label() {
        let (_, t) = eval_monitored(&programs::fac_mul_profiled(2), &TimeProfiler::new()).unwrap();
        let shown = TimeProfiler::new().render_state(&t);
        assert!(shown.contains("fac:"));
        assert!(shown.contains("mul:"));
    }
}
