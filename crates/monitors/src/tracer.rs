//! The fancy tracer of Figure 7.
//!
//! Monitor syntax: function headers `{f(x₁, …, xₙ)}:` on function bodies
//! (see [`trace_functions`](monsem_syntax::points::trace_functions)).
//! Monitor state: an output channel (a stream of lines) and a trace-level
//! indicator. The pre-monitoring function prints
//! `[F receives (v₁ … vₙ)]` at the current indentation and increments the
//! level; the post-monitoring function prints `[F returns v]` one level
//! out, reproducing the paper's indented transcript:
//!
//! ```text
//! [FAC receives (3)]
//! |    [FAC receives (2)]
//! |    |    [FAC receives (1)]
//! ...
//! |    [FAC returns 2]
//! |    [MUL receives (3 2)]
//! |    [MUL returns 6]
//! [FAC returns 6]
//! ```

use monsem_monitor::scope::Scope;
use monsem_monitor::Monitor;
use monsem_syntax::{AnnKind, Annotation, Expr, Namespace};
use std::rc::Rc;

/// The output channel: a persistent stream of rendered lines.
///
/// `addStream`/`initStream` from Figure 7, with structural sharing so that
/// cloning the monitor state (which the semantics does freely) is O(1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OutChan(Option<Rc<ChanNode>>);

#[derive(Debug, PartialEq)]
struct ChanNode {
    line: String,
    prev: OutChan,
}

impl OutChan {
    /// `initStream` — the empty channel.
    pub fn init() -> Self {
        OutChan::default()
    }

    /// `addStream` — appends a line.
    pub fn add(&self, line: String) -> Self {
        OutChan(Some(Rc::new(ChanNode {
            line,
            prev: self.clone(),
        })))
    }

    /// The lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = self;
        while let Some(node) = cur.0.as_deref() {
            out.push(node.line.clone());
            cur = &node.prev;
        }
        out.reverse();
        out
    }

    /// Renders the whole channel.
    pub fn render(&self) -> String {
        self.lines().join("\n")
    }
}

/// Tracer state: output channel × trace level (Figure 7's `MS = OutChan × ℕ`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TracerState {
    /// The output channel.
    pub chan: OutChan,
    /// Current nesting level.
    pub level: u64,
}

/// The Figure 7 tracer.
///
/// ```
/// use monsem_monitor::{machine::eval_monitored, Monitor};
/// use monsem_monitors::Tracer;
/// use monsem_syntax::parse_expr;
/// let prog = parse_expr("letrec id = lambda x. {id(x)}:x in id 7")?;
/// let tracer = Tracer::new();
/// let (answer, state) = eval_monitored(&prog, &tracer)?;
/// assert_eq!(answer.to_string(), "7");
/// assert_eq!(tracer.render_state(&state), "[ID receives (7)]\n[ID returns 7]");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    namespace: Namespace,
}

impl Tracer {
    /// A tracer for header annotations in the anonymous namespace.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// A tracer listening on a specific namespace (for cascades, §6).
    pub fn in_namespace(namespace: Namespace) -> Self {
        Tracer { namespace }
    }

    /// `indent n o` — the paper indents with one `|` per open level.
    fn indent(level: u64) -> String {
        "|    ".repeat(level as usize)
    }
}

impl Monitor for Tracer {
    type State = TracerState;

    fn name(&self) -> &str {
        "tracer"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace && matches!(ann.kind, AnnKind::FunHeader { .. })
    }

    fn initial_state(&self) -> TracerState {
        TracerState::default()
    }

    fn pre(&self, ann: &Annotation, _: &Expr, scope: &Scope<'_>, s: TracerState) -> TracerState {
        let AnnKind::FunHeader { name, params } = &ann.kind else {
            return s;
        };
        let args = params
            .iter()
            .map(|p| scope.render(p))
            .collect::<Vec<_>>()
            .join(" ");
        let line = format!(
            "{}[{} receives ({args})]",
            Tracer::indent(s.level),
            name.as_str().to_uppercase()
        );
        TracerState {
            chan: s.chan.add(line),
            level: s.level + 1,
        }
    }

    fn post(
        &self,
        ann: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        value: &monsem_core::Value,
        s: TracerState,
    ) -> TracerState {
        let AnnKind::FunHeader { name, .. } = &ann.kind else {
            return s;
        };
        let level = s.level.saturating_sub(1);
        let line = format!(
            "{}[{} returns {value}]",
            Tracer::indent(level),
            name.as_str().to_uppercase()
        );
        TracerState {
            chan: s.chan.add(line),
            level,
        }
    }

    fn render_state(&self, s: &TracerState) -> String {
        s.chan.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::{programs, Value};
    use monsem_monitor::machine::eval_monitored;

    /// The §8 transcript for `fac 3` via `mul`, in our rendering.
    pub const FAC3_TRANSCRIPT: &str = "\
[FAC receives (3)]
|    [FAC receives (2)]
|    |    [FAC receives (1)]
|    |    |    [FAC receives (0)]
|    |    |    [FAC returns 1]
|    |    |    [MUL receives (1 1)]
|    |    |    [MUL returns 1]
|    |    [FAC returns 1]
|    |    [MUL receives (2 1)]
|    |    [MUL returns 2]
|    [FAC returns 2]
|    [MUL receives (3 2)]
|    [MUL returns 6]
[FAC returns 6]";

    #[test]
    fn reproduces_the_section8_transcript() {
        let (v, s) = eval_monitored(&programs::fac_mul_traced(3), &Tracer::new()).unwrap();
        assert_eq!(v, Value::Int(6));
        assert_eq!(s.chan.render(), FAC3_TRANSCRIPT);
        assert_eq!(s.level, 0, "every receives was matched by a returns");
    }

    #[test]
    fn out_chan_preserves_order_and_shares_structure() {
        let c = OutChan::init().add("a".into()).add("b".into());
        let c2 = c.add("c".into());
        assert_eq!(c.lines(), vec!["a", "b"]);
        assert_eq!(c2.lines(), vec!["a", "b", "c"]);
    }

    #[test]
    fn tracer_ignores_bare_labels() {
        let (_, s) = eval_monitored(&programs::fac_mul_profiled(3), &Tracer::new()).unwrap();
        assert_eq!(s, TracerState::default());
    }

    #[test]
    fn nesting_level_reflects_recursion_depth() {
        let (_, s) = eval_monitored(&programs::fac_mul_traced(2), &Tracer::new()).unwrap();
        let lines = s.chan.lines();
        assert!(lines[0].starts_with("[FAC"));
        assert!(lines[1].starts_with("|    [FAC"));
        assert!(lines[2].starts_with("|    |    [FAC"));
    }
}
