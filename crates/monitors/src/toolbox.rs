//! Boxed constructors for the §9.2 toolbox, for use with the `&`
//! composition operator and [`Session`](monsem_monitor::session::Session):
//!
//! ```
//! use monsem_monitors::toolbox::{profile, trace};
//! use monsem_monitor::session::{evaluate, LanguageModule};
//! use monsem_syntax::parse_expr;
//!
//! let prog = parse_expr(
//!     "letrec mul = lambda x. lambda y. {mul(x, y)}:(x*y) in \
//!      letrec fac = lambda x. {fac}:(mul x 1) in fac 3",
//! )?;
//! let report = evaluate(profile() & trace(), LanguageModule::Strict, &prog)?;
//! assert_eq!(report.answer.to_string(), "3");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Label-shaped and header-shaped annotations are disjoint syntaxes, so a
//! profiler and a tracer compose without namespaces; same-shaped monitors
//! need distinct namespaces (§6).

use crate::collecting::Collecting;
use crate::coverage::Coverage;
use crate::debugger::{Command, Debugger};
use crate::demon::{PredicateDemon, UnsortedDemon};
use crate::logger::EventLogger;
use crate::profiler::Profiler;
use crate::stepper::Stepper;
use crate::timing::TimeProfiler;
use crate::tracer::Tracer;
use crate::watch::Watchpoint;
use crate::SpecMonitor;
use monsem_core::Value;
use monsem_monitor::compose::boxed;
use monsem_monitor::DynMonitor;
use monsem_syntax::{Ident, Namespace};

/// The Figure 6 profiler on bare labels.
pub fn profile() -> Box<dyn DynMonitor> {
    boxed(Profiler::new())
}

/// The Figure 7 tracer on function headers.
pub fn trace() -> Box<dyn DynMonitor> {
    boxed(Tracer::new())
}

/// The Figure 9 collecting monitor, namespaced to `collect/`.
pub fn collect() -> Box<dyn DynMonitor> {
    boxed(Collecting::in_namespace(Namespace::new("collect")))
}

/// The Figure 8 unsorted-list demon, namespaced to `demon/`.
pub fn demon_unsorted() -> Box<dyn DynMonitor> {
    boxed(
        PredicateDemon::new("unsorted-demon", |v| !crate::demon::is_sorted(v))
            .in_namespace(Namespace::new("demon")),
    )
}

/// A demon for an arbitrary semantic event, namespaced to `demon/`.
pub fn demon(name: &str, trigger: impl Fn(&Value) -> bool + 'static) -> Box<dyn DynMonitor> {
    boxed(PredicateDemon::new(name, trigger).in_namespace(Namespace::new("demon")))
}

/// The anonymous-namespace unsorted demon (as in the paper's §8 example,
/// where it is the only monitor).
pub fn demon_unsorted_anon() -> Box<dyn DynMonitor> {
    boxed(UnsortedDemon::new())
}

/// A scripted dbx-style debugger on `bp/` labels.
pub fn debug(script: Vec<Command>) -> Box<dyn DynMonitor> {
    boxed(Debugger::with_script(script).in_namespace(Namespace::new("bp")))
}

/// A stepper on `step/` annotations.
pub fn step() -> Box<dyn DynMonitor> {
    boxed(Stepper::in_namespace(Namespace::new("step")))
}

/// Coverage of `cov/` labels.
pub fn coverage() -> Box<dyn DynMonitor> {
    boxed(Coverage::in_namespace(Namespace::new("cov")))
}

/// A watchpoint on `watch/` annotations.
pub fn watch(variable: impl Into<Ident>) -> Box<dyn DynMonitor> {
    boxed(Watchpoint::new(variable).in_namespace(Namespace::new("watch")))
}

/// A wall-clock profiler on `time/` labels.
pub fn time() -> Box<dyn DynMonitor> {
    boxed(TimeProfiler::in_namespace(Namespace::new("time")))
}

/// A raw event log on `log/` annotations.
pub fn log() -> Box<dyn DynMonitor> {
    boxed(EventLogger::in_namespace(Namespace::new("log")))
}

/// A dynamic call graph over `graph/` function headers.
pub fn call_graph() -> Box<dyn DynMonitor> {
    boxed(crate::callgraph::CallGraph::in_namespace(Namespace::new(
        "graph",
    )))
}

/// A memoization-opportunity report over `memo/` function headers.
pub fn memo_scout() -> Box<dyn DynMonitor> {
    boxed(crate::memo::MemoScout::in_namespace(Namespace::new("memo")))
}

/// A space profiler over `space/` labels.
pub fn space() -> Box<dyn DynMonitor> {
    boxed(crate::space::SpaceProfiler::in_namespace(Namespace::new(
        "space",
    )))
}

/// An *observing* temporal-specification monitor compiled from `src`
/// (see `monsem-tspec` for the spec grammar), namespaced to `spec/` so
/// it composes disjointly with the rest of the toolbox. Use
/// [`SpecMonitor::new`] + [`SpecMonitor::enforcing`] directly if the
/// spec should abort on violation or watch another namespace; this
/// constructor records violations without changing the answer.
///
/// # Panics
///
/// Panics if `src` fails to parse or compile — toolbox constructors are
/// for specs known at build time. Use [`SpecMonitor::new`] to handle the
/// error.
pub fn temporal(name: &str, src: &str) -> Box<dyn DynMonitor> {
    match SpecMonitor::new(name, src) {
        Ok(m) => boxed(m.in_namespace(Namespace::new("spec"))),
        Err(e) => panic!("invalid temporal spec `{name}`: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::programs;
    use monsem_monitor::session::{evaluate, LanguageModule};
    use monsem_monitor::Monitor;

    #[test]
    fn profile_and_trace_compose_on_the_section8_program() {
        // One program carrying both monitors' annotations: labels for the
        // profiler, headers for the tracer.
        let prog = monsem_syntax::parse_expr(
            "letrec mul = lambda x. lambda y. {mul(x, y)}:({mul}:(x*y)) in \
             letrec fac = lambda x. {fac(x)}:({fac}:if (x=0) then 1 else mul x (fac (x-1))) \
             in fac 3",
        )
        .unwrap();
        let report = evaluate(profile() & trace(), LanguageModule::Strict, &prog).unwrap();
        assert_eq!(report.answer, Value::Int(6));
        assert_eq!(report.rendered_of("profiler"), Some("[fac ↦ 4, mul ↦ 3]"));
        assert!(report
            .rendered_of("tracer")
            .unwrap()
            .contains("[FAC receives (3)]"));
    }

    #[test]
    fn three_way_cascade_with_disjoint_namespaces() {
        let prog = monsem_syntax::parse_expr(
            "letrec f = lambda x. {f}:({collect/v}:({demon/d}:(x : []))) in f 1 ++ f 2",
        )
        .unwrap();
        let stack = profile() & collect() & demon_unsorted();
        let report = evaluate(stack, LanguageModule::Strict, &prog).unwrap();
        assert_eq!(report.answer, Value::list([Value::Int(1), Value::Int(2)]));
        assert_eq!(report.rendered_of("profiler"), Some("[f ↦ 2]"));
        assert!(report.rendered_of("collecting").unwrap().contains("v ↦"));
        assert_eq!(report.rendered_of("unsorted-demon"), Some("{}"));
    }

    #[test]
    fn every_toolbox_monitor_is_constructible_and_sound() {
        let prog = programs::fac_ab(4);
        let tools = profile()
            & trace()
            & collect()
            & demon_unsorted()
            & debug(vec![])
            & step()
            & coverage()
            & watch("x")
            & time()
            & log()
            & call_graph()
            & memo_scout();
        let n = tools.len();
        assert_eq!(n, 12);
        let report = evaluate(tools, LanguageModule::Strict, &prog).unwrap();
        assert_eq!(report.answer, Value::Int(24));
        assert_eq!(report.entries.len(), n);
    }

    #[test]
    fn demon_constructor_takes_arbitrary_triggers() {
        let prog = monsem_syntax::parse_expr("{demon/z}:(3 - 3)").unwrap();
        let d = demon("zero", |v| matches!(v, Value::Int(0)));
        let report = evaluate(
            monsem_monitor::MonitorStack::single(d),
            LanguageModule::Strict,
            &prog,
        )
        .unwrap();
        assert_eq!(report.rendered_of("zero"), Some("{z}"));
    }

    #[test]
    fn temporal_composes_with_the_classic_toolbox() {
        let prog = monsem_syntax::parse_expr(
            "letrec f = lambda x. {f}:({spec/f}:(x * 2)) in f 1 + f 2 + f 3",
        )
        .unwrap();
        let stack = profile() & temporal("doubles", "always(post(f) => value >= 2)");
        let report = evaluate(stack, LanguageModule::Strict, &prog).unwrap();
        assert_eq!(report.answer, Value::Int(12));
        assert_eq!(report.rendered_of("profiler"), Some("[f ↦ 3]"));
        let spec = report.rendered_of("doubles").unwrap();
        assert!(spec.contains("3 events"), "rendered: {spec}");
        assert!(!spec.contains("VIOLATED"), "rendered: {spec}");
    }

    #[test]
    fn label_and_header_syntaxes_are_disjoint_without_namespaces() {
        let p = Profiler::new();
        let t = Tracer::new();
        let label = monsem_syntax::Annotation::label("x");
        let header = monsem_syntax::Annotation::fun_header("x", vec![]);
        assert!(Monitor::accepts(&p, &label) && !Monitor::accepts(&p, &header));
        assert!(Monitor::accepts(&t, &header) && !Monitor::accepts(&t, &label));
    }
}
