//! A coverage monitor (toolbox extension).
//!
//! Counts how many times each labelled program point is *reached*; a
//! report against the program's full label set then lists the points that
//! never executed. This is the profiler algebra put to a different
//! question — a small demonstration of how cheaply new tools arise from
//! monitor specifications.

use monsem_monitor::scope::Scope;
use monsem_monitor::{MergeMonitor, Monitor};
use monsem_syntax::{AnnKind, Annotation, Expr, Ident, Namespace};
use std::collections::BTreeMap;

/// Hit counts per label.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hits(BTreeMap<Ident, u64>);

impl Hits {
    /// Times the label was reached.
    pub fn hits(&self, label: &Ident) -> u64 {
        self.0.get(label).copied().unwrap_or(0)
    }

    /// Labels reached at least once.
    pub fn covered(&self) -> impl Iterator<Item = &Ident> {
        self.0.keys()
    }
}

/// The coverage monitor.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    namespace: Namespace,
}

impl Coverage {
    /// Coverage of anonymous-namespace labels.
    pub fn new() -> Self {
        Coverage::default()
    }

    /// Restricts to one namespace.
    pub fn in_namespace(namespace: Namespace) -> Self {
        Coverage { namespace }
    }

    /// The labels of `program` (in this monitor's namespace) that `hits`
    /// never reached.
    pub fn uncovered(&self, program: &Expr, hits: &Hits) -> Vec<Ident> {
        let mut missing = Vec::new();
        for ann in program.annotations() {
            if self.accepts(ann) {
                let label = ann.name();
                if hits.hits(label) == 0 && !missing.contains(label) {
                    missing.push(label.clone());
                }
            }
        }
        missing
    }
}

impl Monitor for Coverage {
    type State = Hits;

    fn name(&self) -> &str {
        "coverage"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace && matches!(ann.kind, AnnKind::Label(_))
    }

    fn initial_state(&self) -> Hits {
        Hits::default()
    }

    fn pre(&self, ann: &Annotation, _: &Expr, _: &Scope<'_>, mut s: Hits) -> Hits {
        *s.0.entry(ann.name().clone()).or_insert(0) += 1;
        s
    }

    fn render_state(&self, s: &Hits) -> String {
        s.0.iter()
            .map(|(l, n)| format!("{l}: {n}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Hit counts merge by pointwise addition, exactly like the profiler's
/// counter environment; a label never reached is its identity 0.
impl MergeMonitor for Coverage {
    fn split(&self, _: &Hits) -> Hits {
        Hits::default()
    }

    fn merge(&self, mut left: Hits, right: Hits) -> Hits {
        for (label, n) in right.0 {
            *left.0.entry(label).or_insert(0) += n;
        }
        left
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_monitor::machine::eval_monitored;
    use monsem_syntax::parse_expr;

    #[test]
    fn dead_branches_are_reported_uncovered() {
        let e = parse_expr("if true then {live}:1 else {dead}:2").unwrap();
        let cov = Coverage::new();
        let (_, hits) = eval_monitored(&e, &cov).unwrap();
        assert_eq!(hits.hits(&Ident::new("live")), 1);
        assert_eq!(hits.hits(&Ident::new("dead")), 0);
        assert_eq!(cov.uncovered(&e, &hits), vec![Ident::new("dead")]);
    }

    #[test]
    fn full_coverage_reports_nothing() {
        let e = parse_expr("{a}:1 + {b}:2").unwrap();
        let cov = Coverage::new();
        let (_, hits) = eval_monitored(&e, &cov).unwrap();
        assert!(cov.uncovered(&e, &hits).is_empty());
        assert_eq!(cov.render_state(&hits), "a: 1, b: 1");
    }
}
