//! A dynamic call-graph monitor (toolbox extension).
//!
//! Uses the same `{f(x…)}:` header annotations as the Figure 7 tracer,
//! but instead of printing, it accumulates the *call multigraph*: how
//! many times each caller invoked each callee. The bracketing guarantee
//! of pre/post events (§4.3) makes the caller stack exact.

use monsem_core::Value;
use monsem_monitor::scope::Scope;
use monsem_monitor::{MergeMonitor, Monitor};
use monsem_syntax::{AnnKind, Annotation, Expr, Ident, Namespace};
use std::collections::BTreeMap;

/// The accumulated call graph plus the active call stack.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallGraphState {
    /// `(caller, callee) → count`; the root pseudo-caller is `None`.
    pub edges: BTreeMap<(Option<Ident>, Ident), u64>,
    stack: Vec<Ident>,
}

impl CallGraphState {
    /// Calls from `caller` (`None` for top level) to `callee`.
    pub fn calls(&self, caller: Option<&str>, callee: &str) -> u64 {
        self.edges
            .get(&(caller.map(Ident::new), Ident::new(callee)))
            .copied()
            .unwrap_or(0)
    }

    /// Total number of monitored calls.
    pub fn total_calls(&self) -> u64 {
        self.edges.values().sum()
    }

    /// Deepest nesting reached is not tracked; the *current* depth is —
    /// zero again once evaluation finishes.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

/// The call-graph monitor.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    namespace: Namespace,
}

impl CallGraph {
    /// A call-graph monitor on anonymous-namespace headers.
    pub fn new() -> Self {
        CallGraph::default()
    }

    /// Restricts to one namespace.
    pub fn in_namespace(namespace: Namespace) -> Self {
        CallGraph { namespace }
    }
}

impl Monitor for CallGraph {
    type State = CallGraphState;

    fn name(&self) -> &str {
        "call-graph"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace && matches!(ann.kind, AnnKind::FunHeader { .. })
    }

    fn initial_state(&self) -> CallGraphState {
        CallGraphState::default()
    }

    fn pre(
        &self,
        ann: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        mut s: CallGraphState,
    ) -> CallGraphState {
        let callee = ann.name().clone();
        let caller = s.stack.last().cloned();
        *s.edges.entry((caller, callee.clone())).or_insert(0) += 1;
        s.stack.push(callee);
        s
    }

    fn post(
        &self,
        _: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        _: &Value,
        mut s: CallGraphState,
    ) -> CallGraphState {
        s.stack.pop();
        s
    }

    fn render_state(&self, s: &CallGraphState) -> String {
        s.edges
            .iter()
            .map(|((caller, callee), n)| {
                let from = caller.as_ref().map(Ident::as_str).unwrap_or("<top>");
                format!("{from} → {callee}: {n}")
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Shards inherit the *caller stack* at the fork point (so calls made
/// inside a shard are attributed to the function that forked) but start
/// with no edges of their own; the join sums edge multisets and keeps the
/// left stack. Pre/post events bracket within a shard, so a shard's stack
/// returns to the fork depth by its end — discarding it at the join loses
/// nothing, which is what makes `split` a merge identity.
impl MergeMonitor for CallGraph {
    fn split(&self, s: &CallGraphState) -> CallGraphState {
        CallGraphState {
            edges: BTreeMap::new(),
            stack: s.stack.clone(),
        }
    }

    fn merge(&self, mut left: CallGraphState, right: CallGraphState) -> CallGraphState {
        for (edge, n) in right.edges {
            *left.edges.entry(edge).or_insert(0) += n;
        }
        left
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::programs;
    use monsem_monitor::machine::eval_monitored;

    #[test]
    fn builds_the_fac_mul_call_graph() {
        let (_, g) = eval_monitored(&programs::fac_mul_traced(3), &CallGraph::new()).unwrap();
        assert_eq!(g.calls(None, "fac"), 1, "{g:?}");
        assert_eq!(g.calls(Some("fac"), "fac"), 3);
        assert_eq!(g.calls(Some("fac"), "mul"), 3);
        assert_eq!(g.calls(None, "mul"), 0);
        assert_eq!(g.total_calls(), 7);
        assert_eq!(g.depth(), 0, "stack unwound completely");
    }

    #[test]
    fn render_lists_edges() {
        let (_, g) = eval_monitored(&programs::fac_mul_traced(2), &CallGraph::new()).unwrap();
        let shown = CallGraph::new().render_state(&g);
        assert!(shown.contains("<top> → fac: 1"));
        assert!(shown.contains("fac → mul: 2"));
    }

    #[test]
    fn mutual_recursion_edges() {
        let prog = monsem_syntax::parse_expr(
            "letrec even = lambda n. {even(n)}:if n = 0 then true else odd (n - 1) \
             and odd = lambda n. {odd(n)}:if n = 0 then false else even (n - 1) \
             in even 4",
        )
        .unwrap();
        let (_, g) = eval_monitored(&prog, &CallGraph::new()).unwrap();
        assert_eq!(g.calls(Some("even"), "odd"), 2);
        assert_eq!(g.calls(Some("odd"), "even"), 2);
        assert_eq!(g.calls(None, "even"), 1);
    }
}
