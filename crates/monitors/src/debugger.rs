//! A scripted interactive debugger à la dbx (§9.2).
//!
//! §8 notes the framework "can also support interactive monitors (e.g.
//! symbolic debuggers, steppers) by providing an input as well as an
//! output stream to and from the monitor". That is exactly this monitor's
//! state: a *command stream* (the input) and a *transcript* (the output).
//! Running a program under the debugger is deterministic — a session is a
//! pure function of the program and the script — which makes debugger
//! sessions unit-testable.
//!
//! Execution stops at every accepted annotation ("breakpoint"); commands
//! are consumed from the script until a [`Command::Continue`] (or the
//! script runs dry, which continues implicitly).

use monsem_core::Value;
use monsem_monitor::scope::Scope;
use monsem_monitor::Monitor;
use monsem_syntax::{AnnKind, Annotation, Expr, Ident, Namespace};
use std::collections::BTreeSet;

/// Debugger commands — the input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Print a variable's current value.
    Print(Ident),
    /// Show where execution is stopped (breakpoint label and expression).
    Where,
    /// Report this breakpoint's return value when it completes.
    Finish,
    /// Resume execution until the next breakpoint.
    Continue,
    /// Ignore all further breakpoints.
    Disable,
}

/// The debugger session state: remaining input, transcript so far, and
/// bookkeeping.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DebugSession {
    script: Vec<Command>,
    cursor: usize,
    /// The output stream.
    pub transcript: Vec<String>,
    enabled: bool,
    watching_returns: BTreeSet<Ident>,
}

impl DebugSession {
    fn say(&mut self, line: String) {
        self.transcript.push(line);
    }

    fn next_command(&mut self) -> Option<Command> {
        let c = self.script.get(self.cursor).cloned();
        if c.is_some() {
            self.cursor += 1;
        }
        c
    }
}

/// The scripted debugger monitor.
#[derive(Debug, Clone)]
pub struct Debugger {
    namespace: Namespace,
    script: Vec<Command>,
}

impl Debugger {
    /// A debugger that stops at anonymous-namespace labels, driven by
    /// `script`.
    pub fn with_script(script: Vec<Command>) -> Self {
        Debugger {
            namespace: Namespace::anonymous(),
            script,
        }
    }

    /// Restricts breakpoints to one namespace.
    pub fn in_namespace(mut self, namespace: Namespace) -> Self {
        self.namespace = namespace;
        self
    }
}

impl Monitor for Debugger {
    type State = DebugSession;

    fn name(&self) -> &str {
        "debugger"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace && matches!(ann.kind, AnnKind::Label(_))
    }

    fn initial_state(&self) -> DebugSession {
        DebugSession {
            script: self.script.clone(),
            cursor: 0,
            transcript: Vec::new(),
            enabled: true,
            watching_returns: BTreeSet::new(),
        }
    }

    fn pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        mut s: DebugSession,
    ) -> DebugSession {
        if !s.enabled {
            return s;
        }
        let label = ann.name().clone();
        s.say(format!("stopped at {{{label}}}"));
        loop {
            match s.next_command() {
                Some(Command::Print(x)) => {
                    let shown = scope.render(&x);
                    s.say(format!("{x} = {shown}"));
                }
                Some(Command::Where) => {
                    s.say(format!("at {{{label}}}: {expr}"));
                }
                Some(Command::Finish) => {
                    s.watching_returns.insert(label.clone());
                }
                Some(Command::Continue) => break,
                Some(Command::Disable) => {
                    s.say("breakpoints disabled".to_string());
                    s.enabled = false;
                    break;
                }
                None => {
                    s.say("(script exhausted — continuing)".to_string());
                    s.enabled = false;
                    break;
                }
            }
        }
        s
    }

    fn post(
        &self,
        ann: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        value: &Value,
        mut s: DebugSession,
    ) -> DebugSession {
        if s.watching_returns.contains(ann.name()) {
            s.say(format!("{{{}}} returned {value}", ann.name()));
        }
        s
    }

    fn render_state(&self, s: &DebugSession) -> String {
        s.transcript.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_monitor::machine::eval_monitored;
    use monsem_syntax::parse_expr;

    const PROG: &str = "letrec fac = lambda x. {fac}:if x = 0 then 1 else x * (fac (x - 1)) \
                        in fac 2";

    #[test]
    fn scripted_session_is_deterministic_and_testable() {
        let script = vec![
            Command::Where,
            Command::Print(Ident::new("x")),
            Command::Finish,
            Command::Continue,
            Command::Print(Ident::new("x")),
            Command::Continue,
            Command::Disable,
        ];
        let dbg = Debugger::with_script(script);
        let e = parse_expr(PROG).unwrap();
        let (v, s) = eval_monitored(&e, &dbg).unwrap();
        assert_eq!(v, Value::Int(2));
        assert_eq!(
            s.transcript,
            vec![
                "stopped at {fac}",
                "at {fac}: if x = 0 then 1 else x * fac (x - 1)",
                "x = 2",
                "stopped at {fac}",
                "x = 1",
                "stopped at {fac}",
                "breakpoints disabled",
                "{fac} returned 1",
                "{fac} returned 1",
                "{fac} returned 2",
            ]
        );
    }

    #[test]
    fn exhausted_script_continues_silently_after_notice() {
        let dbg = Debugger::with_script(vec![Command::Continue]);
        let e = parse_expr(PROG).unwrap();
        let (_, s) = eval_monitored(&e, &dbg).unwrap();
        // First breakpoint consumed the only Continue; the second prints
        // the exhaustion notice and disables.
        assert_eq!(
            s.transcript,
            vec![
                "stopped at {fac}",
                "stopped at {fac}",
                "(script exhausted — continuing)",
            ]
        );
    }

    #[test]
    fn debugging_never_changes_the_answer() {
        let e = parse_expr(PROG).unwrap();
        let plain = monsem_core::machine::eval(&e).unwrap();
        for script in [
            vec![],
            vec![Command::Disable],
            vec![
                Command::Where,
                Command::Continue,
                Command::Continue,
                Command::Continue,
            ],
        ] {
            let (v, _) = eval_monitored(&e, &Debugger::with_script(script)).unwrap();
            assert_eq!(v, plain);
        }
    }
}
