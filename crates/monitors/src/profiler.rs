//! Profilers.
//!
//! * [`AbProfiler`] — the §5 example (Figure 4): a pair of counters, one
//!   for annotation `{A}` and one for `{B}`.
//! * [`Profiler`] — the §8 profiler (Figure 6): a *counter environment*
//!   `ρ_c ∈ CEnv = Ide → ℕ`; the pre-monitoring function increments the
//!   counter of the function named by the annotation, the post-monitoring
//!   function does nothing.

use monsem_monitor::scope::Scope;
use monsem_monitor::{MergeMonitor, Monitor};
use monsem_syntax::{AnnKind, Annotation, Expr, Ident, Namespace};
use std::collections::BTreeMap;

/// The Figure 4 state: how many times `{A}` / `{B}` were evaluated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbCounts {
    /// Evaluations of expressions annotated `{A}`.
    pub a: u64,
    /// Evaluations of expressions annotated `{B}`.
    pub b: u64,
}

/// The §5 profiler: counts evaluations of expressions annotated `{A}` or
/// `{B}`.
///
/// For the paper's `fac 5` program the final state is `σ = ⟨1, 5⟩`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AbProfiler;

impl Monitor for AbProfiler {
    type State = AbCounts;

    fn name(&self) -> &str {
        "ab-profiler"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        matches!(&ann.kind, AnnKind::Label(l) if matches!(l.as_str(), "A" | "B"))
    }

    fn initial_state(&self) -> AbCounts {
        AbCounts::default()
    }

    fn pre(&self, ann: &Annotation, _: &Expr, _: &Scope<'_>, mut s: AbCounts) -> AbCounts {
        match ann.name().as_str() {
            "A" => s.a += 1,
            "B" => s.b += 1,
            _ => {}
        }
        s
    }

    fn render_state(&self, s: &AbCounts) -> String {
        format!("⟨{}, {}⟩", s.a, s.b)
    }
}

/// Counter pairs form a commutative monoid under pointwise addition, so
/// shards start from zero and the join sums — the textbook instance of
/// the split/merge laws.
impl MergeMonitor for AbProfiler {
    fn split(&self, _: &AbCounts) -> AbCounts {
        AbCounts::default()
    }

    fn merge(&self, mut left: AbCounts, right: AbCounts) -> AbCounts {
        left.a += right.a;
        left.b += right.b;
        left
    }
}

/// The counter environment `CEnv = Ide → ℕ` of Figure 6, with the
/// operations the paper lists.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterEnv(BTreeMap<Ident, u64>);

impl CounterEnv {
    /// `initEnv` — every counter at ⊥ (zero / absent).
    pub fn init() -> Self {
        CounterEnv::default()
    }

    /// `ρ_c(f)` — environment lookup (0 when the function was never used).
    pub fn count(&self, f: &Ident) -> u64 {
        self.0.get(f).copied().unwrap_or(0)
    }

    /// `incCtr ⟦f⟧ ρ_c = ρ_c[f ↦ n]` where `n = ρ_c(f)+1` or 1.
    pub fn inc(mut self, f: &Ident) -> Self {
        *self.0.entry(f.clone()).or_insert(0) += 1;
        self
    }

    /// Counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Ident, u64)> {
        self.0.iter().map(|(k, v)| (k, *v))
    }

    /// Number of distinct counted names.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing was counted.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The §8 profiler (Figure 6): counts how many times each named function's
/// body is evaluated. Function bodies are annotated `{f}:` with the
/// function's name (see
/// [`profile_functions`](monsem_syntax::points::profile_functions)).
///
/// For the paper's `fac 3` program the final state is
/// `[fac ↦ 4, mul ↦ 3]`.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    namespace: Namespace,
}

impl Profiler {
    /// A profiler for bare-label annotations in the anonymous namespace.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// A profiler listening on a specific namespace (for cascades, §6).
    pub fn in_namespace(namespace: Namespace) -> Self {
        Profiler { namespace }
    }
}

impl Monitor for Profiler {
    type State = CounterEnv;

    fn name(&self) -> &str {
        "profiler"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace && matches!(ann.kind, AnnKind::Label(_))
    }

    fn initial_state(&self) -> CounterEnv {
        CounterEnv::init()
    }

    fn pre(&self, ann: &Annotation, _: &Expr, _: &Scope<'_>, s: CounterEnv) -> CounterEnv {
        s.inc(ann.name())
    }

    fn render_state(&self, s: &CounterEnv) -> String {
        let body = s
            .iter()
            .map(|(f, n)| format!("{f} ↦ {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!("[{body}]")
    }
}

/// Counter environments merge by pointwise addition: a counter absent from
/// one side is its identity 0, so `merge` unions the key sets and sums.
impl MergeMonitor for Profiler {
    fn split(&self, _: &CounterEnv) -> CounterEnv {
        CounterEnv::init()
    }

    fn merge(&self, mut left: CounterEnv, right: CounterEnv) -> CounterEnv {
        for (f, n) in right.0 {
            *left.0.entry(f).or_insert(0) += n;
        }
        left
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::{programs, Value};
    use monsem_monitor::machine::eval_monitored;
    use monsem_syntax::parse_expr;

    #[test]
    fn section5_example_yields_1_and_5() {
        let (v, s) = eval_monitored(&programs::fac_ab(5), &AbProfiler).unwrap();
        assert_eq!(v, Value::Int(120));
        assert_eq!(s, AbCounts { a: 1, b: 5 });
        assert_eq!(AbProfiler.render_state(&s), "⟨1, 5⟩");
    }

    #[test]
    fn section8_example_yields_fac4_mul3() {
        let (v, s) = eval_monitored(&programs::fac_mul_profiled(3), &Profiler::new()).unwrap();
        assert_eq!(v, Value::Int(6));
        assert_eq!(s.count(&Ident::new("fac")), 4);
        assert_eq!(s.count(&Ident::new("mul")), 3);
        assert_eq!(Profiler::new().render_state(&s), "[fac ↦ 4, mul ↦ 3]");
    }

    #[test]
    fn ab_profiler_ignores_other_labels() {
        let e = parse_expr("{A}:({C}:1 + {B}:2)").unwrap();
        let (_, s) = eval_monitored(&e, &AbProfiler).unwrap();
        assert_eq!(s, AbCounts { a: 1, b: 1 });
    }

    #[test]
    fn profiler_ignores_function_headers() {
        // The §8 tracer's annotations must not disturb a profiler in the
        // same cascade: header annotations are not labels.
        let (_, s) = eval_monitored(&programs::fac_mul_traced(3), &Profiler::new()).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn namespaced_profiler_listens_only_to_its_namespace() {
        let e = parse_expr("{p/f}:({f}:1)").unwrap();
        let p = Profiler::in_namespace(Namespace::new("p"));
        let (_, s) = eval_monitored(&e, &p).unwrap();
        assert_eq!(s.count(&Ident::new("f")), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn parallel_profile_matches_sequential() {
        let prog = parse_expr(
            "letrec fac = lambda x. {fac}:(if x = 0 then 1 else x * fac (x - 1)) \
             in par(fac 5, fac 6, fac 7, fac 4)",
        )
        .unwrap();
        let seq = eval_monitored(&prog, &Profiler::new()).unwrap();
        let par = monsem_monitor::eval_parallel(&prog, &Profiler::new()).unwrap();
        assert_eq!(seq, par);
        assert_eq!(par.1.count(&Ident::new("fac")), 6 + 7 + 8 + 5);
    }

    #[test]
    fn ab_merge_laws_hold_on_samples() {
        let m = AbProfiler;
        let (x, y, z) = (
            AbCounts { a: 1, b: 2 },
            AbCounts { a: 3, b: 0 },
            AbCounts { a: 0, b: 7 },
        );
        assert_eq!(m.merge(m.merge(x, y), z), m.merge(x, m.merge(y, z)));
        assert_eq!(m.merge(x, m.split(&x)), x);
    }

    #[test]
    fn counter_env_operations_match_figure6() {
        let f = Ident::new("f");
        let env = CounterEnv::init();
        assert_eq!(env.count(&f), 0);
        let env = env.inc(&f).inc(&f);
        assert_eq!(env.count(&f), 2);
    }
}
