//! Record/replay monitoring — regression detection as a monitor pair.
//!
//! [`Recorder`] captures the full monitoring-event tape of a run (the §2
//! "linear ordering on program execution" made concrete). [`Replay`]
//! checks a later run against a recorded tape and reports the **first
//! divergence** — which program point fired differently, or produced a
//! different value. Because monitors cannot change behaviour (§7), taping
//! a run is always safe; replaying turns any monitored program into its
//! own regression test.

use monsem_core::Value;
use monsem_monitor::scope::Scope;
use monsem_monitor::Monitor;
use monsem_syntax::{Annotation, Expr, Namespace};
use std::rc::Rc;

/// One taped event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TapeEvent {
    /// Entered the annotated point.
    Pre(String),
    /// Left it with the rendered value.
    Post(String, String),
}

/// An immutable event tape.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tape(Rc<Vec<TapeEvent>>);

impl Tape {
    /// The recorded events, in order.
    pub fn events(&self) -> &[TapeEvent] {
        &self.0
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Records every accepted event into a [`Tape`].
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    namespace: Namespace,
}

impl Recorder {
    /// Records anonymous-namespace annotations.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Restricts to one namespace.
    pub fn in_namespace(namespace: Namespace) -> Self {
        Recorder { namespace }
    }
}

impl Monitor for Recorder {
    type State = Vec<TapeEvent>;

    fn name(&self) -> &str {
        "recorder"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace
    }

    fn initial_state(&self) -> Vec<TapeEvent> {
        Vec::new()
    }

    fn pre(
        &self,
        ann: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        mut s: Vec<TapeEvent>,
    ) -> Vec<TapeEvent> {
        s.push(TapeEvent::Pre(ann.name().to_string()));
        s
    }

    fn post(
        &self,
        ann: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        value: &Value,
        mut s: Vec<TapeEvent>,
    ) -> Vec<TapeEvent> {
        s.push(TapeEvent::Post(ann.name().to_string(), value.to_string()));
        s
    }

    fn render_state(&self, s: &Vec<TapeEvent>) -> String {
        format!("{} events recorded", s.len())
    }
}

/// Turns a recorder's final state into a replayable tape.
pub fn tape_of(events: Vec<TapeEvent>) -> Tape {
    Tape(Rc::new(events))
}

/// The replay verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayState {
    /// How many events matched so far.
    pub matched: usize,
    /// The first divergence, if any: (position, expected, actual).
    pub divergence: Option<(usize, Option<TapeEvent>, TapeEvent)>,
}

impl ReplayState {
    /// Whether the run has followed the tape so far (and, at the end of a
    /// run, whether it matched completely — combine with
    /// [`ReplayState::complete`]).
    pub fn on_track(&self) -> bool {
        self.divergence.is_none()
    }

    /// Whether the whole tape was consumed.
    pub fn complete(&self, tape: &Tape) -> bool {
        self.on_track() && self.matched == tape.len()
    }
}

/// Checks a run against a recorded tape.
#[derive(Debug, Clone)]
pub struct Replay {
    tape: Tape,
    namespace: Namespace,
}

impl Replay {
    /// Replays against `tape` (anonymous namespace).
    pub fn new(tape: Tape) -> Self {
        Replay {
            tape,
            namespace: Namespace::anonymous(),
        }
    }

    /// Restricts to one namespace.
    pub fn in_namespace(mut self, namespace: Namespace) -> Self {
        self.namespace = namespace;
        self
    }

    fn check(&self, actual: TapeEvent, mut s: ReplayState) -> ReplayState {
        if s.divergence.is_some() {
            return s;
        }
        let expected = self.tape.events().get(s.matched).cloned();
        if expected.as_ref() == Some(&actual) {
            s.matched += 1;
        } else {
            s.divergence = Some((s.matched, expected, actual));
        }
        s
    }
}

impl Monitor for Replay {
    type State = ReplayState;

    fn name(&self) -> &str {
        "replay"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace
    }

    fn initial_state(&self) -> ReplayState {
        ReplayState {
            matched: 0,
            divergence: None,
        }
    }

    fn pre(&self, ann: &Annotation, _: &Expr, _: &Scope<'_>, s: ReplayState) -> ReplayState {
        self.check(TapeEvent::Pre(ann.name().to_string()), s)
    }

    fn post(
        &self,
        ann: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        value: &Value,
        s: ReplayState,
    ) -> ReplayState {
        self.check(
            TapeEvent::Post(ann.name().to_string(), value.to_string()),
            s,
        )
    }

    fn render_state(&self, s: &ReplayState) -> String {
        match &s.divergence {
            None => format!("on tape ({} events matched)", s.matched),
            Some((at, expected, actual)) => {
                format!("diverged at event {at}: expected {expected:?}, got {actual:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::programs;
    use monsem_monitor::machine::eval_monitored;
    use monsem_syntax::parse_expr;

    #[test]
    fn identical_runs_replay_completely() {
        let prog = programs::fac_ab(5);
        let (_, events) = eval_monitored(&prog, &Recorder::new()).unwrap();
        let tape = tape_of(events);
        assert_eq!(tape.len(), 12); // {A} once + {B} five times, pre+post

        let replay = Replay::new(tape.clone());
        let (v, verdict) = eval_monitored(&prog, &replay).unwrap();
        assert_eq!(v.to_string(), "120");
        assert!(verdict.complete(&tape), "{}", replay.render_state(&verdict));
    }

    #[test]
    fn a_behavioural_change_is_pinpointed() {
        let original = programs::fac_ab(5);
        let (_, events) = eval_monitored(&original, &Recorder::new()).unwrap();
        let tape = tape_of(events);

        // The "regression": same shape, different base case value.
        let changed = parse_expr(
            "letrec fac = lambda x. if (x = 0) then {A}:2 else {B}:(x * (fac (x - 1))) in fac 5",
        )
        .unwrap();
        let replay = Replay::new(tape);
        let (_, verdict) = eval_monitored(&changed, &replay).unwrap();
        let (at, expected, actual) = verdict.divergence.expect("must diverge");
        assert_eq!(expected, Some(TapeEvent::Post("A".into(), "1".into())));
        assert_eq!(actual, TapeEvent::Post("A".into(), "2".into()));
        // Events 0..at matched: the divergence is at A's post event.
        assert!(at > 0);
    }

    #[test]
    fn extra_events_diverge_too() {
        let short = parse_expr("{p}:1").unwrap();
        let long = parse_expr("{p}:1; {p}:1").unwrap();
        let (_, events) = eval_monitored(&short, &Recorder::new()).unwrap();
        let replay = Replay::new(tape_of(events));
        let (_, verdict) = eval_monitored(&long, &replay).unwrap();
        assert!(!verdict.on_track());
        let (_, expected, _) = verdict.divergence.unwrap();
        assert_eq!(expected, None, "tape exhausted, run kept going");
    }
}
