//! A raw event logger (toolbox extension).
//!
//! Records every pre/post event at accepted annotations: phase, label,
//! pretty-printed expression and (on post) the produced value. This is
//! the "assembly language" of monitors — several of the fancier tools are
//! refinements of it, and the test suites use it to pin down event
//! ordering.

use monsem_core::Value;
use monsem_monitor::scope::Scope;
use monsem_monitor::Monitor;
use monsem_syntax::{Annotation, Expr, Namespace};

/// Which side of the evaluation the event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Before evaluation (`M_pre`).
    Pre,
    /// After evaluation (`M_post`).
    Post,
}

/// One logged event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Pre or post.
    pub phase: Phase,
    /// The annotation's label or function name.
    pub point: String,
    /// The produced value (post events only), rendered.
    pub value: Option<String>,
}

/// The event logger.
#[derive(Debug, Clone, Default)]
pub struct EventLogger {
    namespace: Namespace,
}

impl EventLogger {
    /// Logs anonymous-namespace annotations.
    pub fn new() -> Self {
        EventLogger::default()
    }

    /// Restricts to one namespace.
    pub fn in_namespace(namespace: Namespace) -> Self {
        EventLogger { namespace }
    }
}

impl Monitor for EventLogger {
    type State = Vec<Event>;

    fn name(&self) -> &str {
        "event-logger"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace
    }

    fn initial_state(&self) -> Vec<Event> {
        Vec::new()
    }

    fn pre(&self, ann: &Annotation, _: &Expr, _: &Scope<'_>, mut s: Vec<Event>) -> Vec<Event> {
        s.push(Event {
            phase: Phase::Pre,
            point: ann.name().to_string(),
            value: None,
        });
        s
    }

    fn post(
        &self,
        ann: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        value: &Value,
        mut s: Vec<Event>,
    ) -> Vec<Event> {
        s.push(Event {
            phase: Phase::Post,
            point: ann.name().to_string(),
            value: Some(value.to_string()),
        });
        s
    }

    fn render_state(&self, s: &Vec<Event>) -> String {
        s.iter()
            .map(|e| match (&e.phase, &e.value) {
                (Phase::Pre, _) => format!("→ {}", e.point),
                (Phase::Post, Some(v)) => format!("← {} = {v}", e.point),
                (Phase::Post, None) => format!("← {}", e.point),
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_monitor::machine::eval_monitored;
    use monsem_syntax::parse_expr;

    #[test]
    fn events_bracket_properly() {
        let e = parse_expr("{a}:({b}:1 + {c}:2)").unwrap();
        let (_, log) = eval_monitored(&e, &EventLogger::new()).unwrap();
        let shape: Vec<(Phase, &str)> =
            log.iter().map(|ev| (ev.phase, ev.point.as_str())).collect();
        // Argument-first order: c before b, all inside a.
        assert_eq!(
            shape,
            vec![
                (Phase::Pre, "a"),
                (Phase::Pre, "c"),
                (Phase::Post, "c"),
                (Phase::Pre, "b"),
                (Phase::Post, "b"),
                (Phase::Post, "a"),
            ]
        );
    }

    #[test]
    fn render_uses_arrows() {
        let e = parse_expr("{p}:7").unwrap();
        let (_, log) = eval_monitored(&e, &EventLogger::new()).unwrap();
        assert_eq!(EventLogger::new().render_state(&log), "→ p\n← p = 7");
    }
}
