//! Event monitoring — demons (§8, Figure 8).
//!
//! Magpie-style demons fire when a semantic event occurs. The paper's
//! example checks for *unsorted lists*: program points are labelled, and
//! the post-monitoring function records the label whenever the value
//! produced there is an unsorted list. Our generalization
//! ([`PredicateDemon`]) takes any predicate over the produced value —
//! "our approach improves on Magpie in that it provides a mechanism to
//! specify demons for *any* semantic event".

use monsem_core::Value;
use monsem_monitor::scope::Scope;
use monsem_monitor::{Monitor, Outcome};
use monsem_syntax::{AnnKind, Annotation, Expr, Ident, Namespace};
use std::collections::BTreeSet;
use std::rc::Rc;

/// `sorted?` from Figure 8: integer lists in non-decreasing order.
/// Non-lists and non-integer elements count as sorted (the demon only
/// fires on a *definitely* unsorted list).
pub fn is_sorted(v: &Value) -> bool {
    let Some(items) = v.iter_list() else {
        return true;
    };
    items.windows(2).all(|w| match (w[0], w[1]) {
        (Value::Int(a), Value::Int(b)) => a <= b,
        _ => true,
    })
}

/// A demon firing on an arbitrary semantic event: it records the labels of
/// program points whose value satisfies `trigger`.
///
/// By default a demon *observes* — it records and the run continues, as
/// Theorem 7.7 requires of a pure monitor. [`PredicateDemon::enforcing`]
/// turns it into a checker that returns an
/// [`Outcome::Abort`] verdict the first time it fires, stopping
/// evaluation with [`EvalError::MonitorAbort`](monsem_core::error::EvalError::MonitorAbort).
#[derive(Clone)]
pub struct PredicateDemon {
    name: String,
    namespace: Namespace,
    trigger: Rc<dyn Fn(&Value) -> bool>,
    enforcing: bool,
}

impl std::fmt::Debug for PredicateDemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredicateDemon")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl PredicateDemon {
    /// A demon named `name` firing when `trigger` holds of the value
    /// produced at a labelled point.
    pub fn new(name: impl Into<String>, trigger: impl Fn(&Value) -> bool + 'static) -> Self {
        PredicateDemon {
            name: name.into(),
            namespace: Namespace::anonymous(),
            trigger: Rc::new(trigger),
            enforcing: false,
        }
    }

    /// Restricts the demon to one annotation namespace.
    pub fn in_namespace(mut self, namespace: Namespace) -> Self {
        self.namespace = namespace;
        self
    }

    /// Makes the demon abort evaluation (with the offending label as the
    /// reason) instead of merely recording when it fires.
    pub fn enforcing(mut self) -> Self {
        self.enforcing = true;
        self
    }
}

impl Monitor for PredicateDemon {
    type State = BTreeSet<Ident>;

    fn name(&self) -> &str {
        &self.name
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace && matches!(ann.kind, AnnKind::Label(_))
    }

    fn initial_state(&self) -> BTreeSet<Ident> {
        BTreeSet::new()
    }

    fn post(
        &self,
        ann: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        value: &Value,
        mut s: BTreeSet<Ident>,
    ) -> BTreeSet<Ident> {
        if (self.trigger)(value) {
            s.insert(ann.name().clone());
        }
        s
    }

    fn try_post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        s: BTreeSet<Ident>,
    ) -> Outcome<BTreeSet<Ident>> {
        let fired = (self.trigger)(value);
        let s = self.post(ann, expr, scope, value, s);
        if self.enforcing && fired {
            let reason = format!("demon fired at `{}`", ann.name());
            return Outcome::abort(s, self.name.clone(), reason);
        }
        Outcome::Continue(s)
    }

    fn render_state(&self, s: &BTreeSet<Ident>) -> String {
        let body = s.iter().map(|i| i.as_str()).collect::<Vec<_>>().join(", ");
        format!("{{{body}}}")
    }
}

/// The Figure 8 demon: reports the labels of program points that produced
/// unsorted lists. `M_pre` is the identity; `M_post` adds the label when
/// `sorted? v` fails.
///
/// ```
/// use monsem_monitor::machine::eval_monitored;
/// use monsem_monitors::UnsortedDemon;
/// use monsem_syntax::parse_expr;
/// let prog = parse_expr("{bad}:[3, 1] ++ {ok}:[1, 2]")?;
/// let (_, fired) = eval_monitored(&prog, &UnsortedDemon::new())?;
/// let names: Vec<&str> = fired.iter().map(|i| i.as_str()).collect();
/// assert_eq!(names, ["bad"]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct UnsortedDemon(PredicateDemon);

impl Default for UnsortedDemon {
    fn default() -> Self {
        UnsortedDemon::new()
    }
}

impl UnsortedDemon {
    /// The paper's unsorted-list demon.
    pub fn new() -> Self {
        UnsortedDemon(PredicateDemon::new("unsorted-demon", |v| !is_sorted(v)))
    }
}

impl Monitor for UnsortedDemon {
    type State = BTreeSet<Ident>;

    fn name(&self) -> &str {
        "unsorted-demon"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        self.0.accepts(ann)
    }

    fn initial_state(&self) -> BTreeSet<Ident> {
        self.0.initial_state()
    }

    fn post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        s: BTreeSet<Ident>,
    ) -> BTreeSet<Ident> {
        self.0.post(ann, expr, scope, value, s)
    }

    fn render_state(&self, s: &BTreeSet<Ident>) -> String {
        self.0.render_state(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::programs;
    use monsem_monitor::machine::eval_monitored;
    use monsem_syntax::parse_expr;

    #[test]
    fn section8_demon_reports_l1_and_l3() {
        let (_, s) = eval_monitored(&programs::inclist_demon(), &UnsortedDemon::new()).unwrap();
        let names: Vec<&str> = s.iter().map(|i| i.as_str()).collect();
        assert_eq!(names, vec!["l1", "l3"]);
        assert_eq!(UnsortedDemon::new().render_state(&s), "{l1, l3}");
    }

    #[test]
    fn sorted_predicate_matches_figure8() {
        assert!(is_sorted(&Value::list([
            Value::Int(1),
            Value::Int(2),
            Value::Int(2)
        ])));
        assert!(!is_sorted(&Value::list([Value::Int(2), Value::Int(1)])));
        assert!(is_sorted(&Value::Nil));
        assert!(is_sorted(&Value::Int(7)), "non-lists never trigger");
    }

    #[test]
    fn predicate_demon_fires_on_any_semantic_event() {
        // A demon for "negative intermediate result" — the §8 remark that
        // any event is expressible.
        let demon = PredicateDemon::new("negative", |v| matches!(v, Value::Int(n) if *n < 0));
        let e = parse_expr("{p1}:(1 - 5) + {p2}:(10 - 2)").unwrap();
        let (_, s) = eval_monitored(&e, &demon).unwrap();
        let names: Vec<&str> = s.iter().map(|i| i.as_str()).collect();
        assert_eq!(names, vec!["p1"]);
    }

    #[test]
    fn enforcing_demon_aborts_with_the_offending_label() {
        use monsem_core::error::EvalError;
        let demon =
            PredicateDemon::new("negative", |v| matches!(v, Value::Int(n) if *n < 0)).enforcing();
        let e = parse_expr("{p1}:(1 - 5) + {p2}:(10 - 2)").unwrap();
        assert_eq!(
            eval_monitored(&e, &demon).unwrap_err(),
            EvalError::MonitorAbort {
                monitor: "negative".into(),
                reason: "demon fired at `p1`".into(),
            }
        );
    }

    #[test]
    fn demon_is_silent_on_sorted_runs() {
        let e = parse_expr("letrec l = {ok}:[1, 2, 3] in l").unwrap();
        let (_, s) = eval_monitored(&e, &UnsortedDemon::new()).unwrap();
        assert!(s.is_empty());
    }
}
