//! A memoization-opportunity demon (toolbox extension).
//!
//! §8's point that demons can watch "*any* semantic event" includes
//! events about the *history* of evaluation: this monitor records, for
//! each `{f(x…)}:`-annotated function, how often each argument tuple
//! recurs. Functions repeatedly called with the same arguments are
//! memoization candidates — the classic `fib` diagnosis.

use monsem_monitor::scope::Scope;
use monsem_monitor::Monitor;
use monsem_syntax::{AnnKind, Annotation, Expr, Ident, Namespace};
use std::collections::BTreeMap;

/// Call counts per (function, rendered argument tuple).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallCounts(BTreeMap<(Ident, String), u64>);

impl CallCounts {
    /// Times `f` was called with exactly this rendered argument tuple.
    pub fn count(&self, f: &str, args: &str) -> u64 {
        self.0
            .get(&(Ident::new(f), args.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// The calls that happened more than once — the memoization report.
    pub fn repeated(&self) -> impl Iterator<Item = (&Ident, &str, u64)> {
        self.0
            .iter()
            .filter(|(_, n)| **n > 1)
            .map(|((f, a), n)| (f, a.as_str(), *n))
    }

    /// How many calls a perfect memo table would have saved.
    pub fn redundant_calls(&self) -> u64 {
        self.0.values().map(|n| n.saturating_sub(1)).sum()
    }
}

/// The memoization-opportunity monitor.
#[derive(Debug, Clone, Default)]
pub struct MemoScout {
    namespace: Namespace,
}

impl MemoScout {
    /// Watches anonymous-namespace function headers.
    pub fn new() -> Self {
        MemoScout::default()
    }

    /// Restricts to one namespace.
    pub fn in_namespace(namespace: Namespace) -> Self {
        MemoScout { namespace }
    }
}

impl Monitor for MemoScout {
    type State = CallCounts;

    fn name(&self) -> &str {
        "memo-scout"
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        ann.namespace == self.namespace && matches!(ann.kind, AnnKind::FunHeader { .. })
    }

    fn initial_state(&self) -> CallCounts {
        CallCounts::default()
    }

    fn pre(&self, ann: &Annotation, _: &Expr, scope: &Scope<'_>, mut s: CallCounts) -> CallCounts {
        let AnnKind::FunHeader { name, params } = &ann.kind else {
            return s;
        };
        let args = params
            .iter()
            .map(|p| scope.render(p))
            .collect::<Vec<_>>()
            .join(", ");
        *s.0.entry((name.clone(), args)).or_insert(0) += 1;
        s
    }

    fn render_state(&self, s: &CallCounts) -> String {
        let mut lines: Vec<String> = s
            .repeated()
            .map(|(f, args, n)| format!("{f}({args}) evaluated {n}×"))
            .collect();
        if lines.is_empty() {
            return "no repeated calls".into();
        }
        lines.push(format!(
            "memoization would save {} calls",
            s.redundant_calls()
        ));
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_monitor::machine::eval_monitored;
    use monsem_syntax::parse_expr;

    fn traced_fib(n: i64) -> monsem_syntax::Expr {
        parse_expr(&format!(
            "letrec fib = lambda n. {{fib(n)}}:if n < 2 then n else (fib (n-1)) + (fib (n-2)) \
             in fib {n}"
        ))
        .unwrap()
    }

    #[test]
    fn diagnoses_naive_fib() {
        let (_, counts) = eval_monitored(&traced_fib(8), &MemoScout::new()).unwrap();
        // fib 8 evaluates fib 1 twenty-one times.
        assert_eq!(counts.count("fib", "1"), 21);
        assert_eq!(counts.count("fib", "8"), 1);
        assert!(counts.redundant_calls() > 50);
        let report = MemoScout::new().render_state(&counts);
        assert!(report.contains("fib(1) evaluated 21×"), "{report}");
        assert!(report.contains("memoization would save"), "{report}");
    }

    #[test]
    fn silent_on_linear_recursion() {
        let prog = parse_expr(
            "letrec fac = lambda x. {fac(x)}:if x = 0 then 1 else x * (fac (x - 1)) in fac 6",
        )
        .unwrap();
        let (_, counts) = eval_monitored(&prog, &MemoScout::new()).unwrap();
        assert_eq!(counts.redundant_calls(), 0);
        assert_eq!(MemoScout::new().render_state(&counts), "no repeated calls");
    }
}
