//! Partial evaluation for monitoring semantics (§9.1, Figure 10).
//!
//! The paper treats the monitored interpreter `P̄ : Mon* × Prog × Input* →
//! (Ans × MS)` as a program to be specialized with Schism, at three
//! levels:
//!
//! 1. **× monitor specifications** → a *concrete monitor*: an interpreter
//!    instrumented with monitoring actions. In Rust this is
//!    monomorphization — `eval_monitored::<Tracer>` already has the
//!    monitor's actions statically dispatched — so level 1 is the
//!    monitored interpreter itself.
//! 2. **× source program** → an *instrumented program*: the interpretive
//!    overhead that depends only on the program text (name lookup, syntax
//!    dispatch, annotation dispatch) is gone. Two artifacts realize this
//!    level:
//!    * [`engine`] — a compiler from (annotated program, monitor) to
//!      closed code with de-Bruijn-resolved variables, annotations
//!      resolved at compile time, and monitor hooks embedded only where
//!      they will fire;
//!    * [`instrument()`] — a **source-to-source** instrumenter producing a
//!      plain `L_λ` *program* in state-passing style, with the monitoring
//!      actions embedded as ordinary code (the paper: "a program including
//!      extra code to perform the monitoring actions"). Being a program,
//!      it runs on any of the engines and can be pretty-printed and read.
//! 3. **× partial input** → a *specialized program*: [`specialize()`]
//!    implements a partial evaluator for `L_λ` (constant folding, static
//!    β-reduction, polyvariant unfolding of recursive calls with static
//!    arguments, with [`bta`] providing the supporting binding-time
//!    analysis), applicable to instrumented programs as to any other.
//!
//! [`specmon`] applies the level-2 move to `monsem-tspec` temporal
//! specifications: the automaton's alphabet dispatch (annotation name →
//! name class → abstract letter) is resolved per annotation site at
//! compile time, leaving only the transition-table lookup at run time.
//! [`instrument::spec_source_monitor`] completes the trajectory at
//! level 3: the minimized, letter-compressed DFA is compiled *into* the
//! program — the threaded monitor state is the DFA state integer, each
//! observable annotation site carries its transition inlined as a
//! comparison chain, dead sites emit no code, and no monitor object
//! exists at run time.
//!
//! [`pipeline`] packages the four artifact levels for the benchmarks that
//! reproduce the paper's measurements (tracer ≈ 11% slower than the
//! standard interpreter at level 1; the level-2 program ≈ 83–85% faster
//! than the interpreters; Figure 11's linear monitoring cost).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bta;
pub mod engine;
pub mod instrument;
pub mod pipeline;
pub mod simplify;
pub mod specialize;
pub mod specmon;
pub mod tiered;

pub use engine::{compile, compile_monitored, CompiledProgram, SiteCount, SiteStats};
pub use instrument::{
    instrument, instrument_spec, instrument_spec_region, spec_source_monitor,
    spec_source_monitor_region, spec_verdict, SourceMonitor,
};
pub use simplify::simplify;
pub use specialize::{specialize, SpecializeOptions};
pub use specmon::SpecializedSpec;
pub use tiered::{TierOutcome, TieredReport, TieredRun, TieredSession};
