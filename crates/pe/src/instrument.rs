//! Source-to-source instrumentation — the level-2 artifact of Figure 10
//! as an actual `L_λ` **program**.
//!
//! "Specializing the monitor … with respect to a source program would
//! produce an instrumented program; i.e. a program including extra code to
//! perform the monitoring actions." (§9.1)
//!
//! [`instrument`] performs that specialization as a state-passing
//! translation: the meaning `MS → (Ans × MS)` of the monitoring semantics
//! becomes the *type* of the translated program. Writing `⟨v, σ⟩` as the
//! cons pair `v : σ`, the translation `T⟦e⟧σ` produces, for a state
//! *expression* σ, an expression computing the pair:
//!
//! ```text
//! T⟦e⟧σ         = e : σ                         (e monitor-pure: no accepted
//!                                                annotation, no user call)
//! T⟦λx.e⟧σ      = (λx. λσ'. T⟦e⟧σ') : σ         (functions thread σ when applied)
//! T⟦e₁ e₂⟧σ     = let p₂ = T⟦e₂⟧σ in
//!                 let p₁ = T⟦e₁⟧(tl p₂) in (hd p₁) (hd p₂) (tl p₁)
//! T⟦{μ}:e⟧σ     = let p = T⟦e⟧(pre_μ σ) in (hd p) : (post_μ (hd p) (tl p))
//! ```
//!
//! Monitor-pure subexpressions — constants, variables, saturated
//! primitive applications, conditionals over such — are residualized
//! **verbatim**: they pay no pairing, no state threading, and no
//! administrative closures, so the overhead of the instrumented program
//! scales with its *monitoring activity*, not its size. The generic rules
//! only fire on the spine that actually carries events.
//!
//! The monitoring actions `pre_μ`/`post_μ` are ordinary `L_λ` code supplied
//! by a [`SourceMonitor`]; annotations the monitor does not accept vanish.
//! The result is a plain program: it runs on the standard evaluator (or
//! the compiled engine, or specialized further with respect to partial
//! input — level 3), pretty-prints, and re-parses.

use crate::specialize::{specialize, SpecializeOptions};
use monsem_syntax::{Annotation, Binding, Expr, Ident, Lambda};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A monitor specification whose monitoring functions are `L_λ` code.
///
/// * `initial` — the initial monitor state `σ₀`, as a closed expression;
/// * `pre(μ)` — `Some(λσ. σ')` when the monitor reacts to `μ`;
/// * `post(μ)` — `Some(λv. λσ. σ')` when the monitor post-processes `μ`;
/// * `prelude` — helper functions the actions may call, bound around the
///   whole instrumented program.
///
/// An annotation is *accepted* when `pre` or `post` returns `Some`.
pub struct SourceMonitor {
    /// Monitor name (diagnostics only).
    pub name: String,
    /// The initial state σ₀.
    pub initial: Expr,
    /// Helper bindings available to all monitoring actions.
    pub prelude: Vec<Binding>,
    /// Builds the pre-action `λσ. σ'` for an annotation.
    pub pre: Box<ActionBuilder>,
    /// Builds the post-action `λv. λσ. σ'` for an annotation.
    pub post: Box<ActionBuilder>,
}

/// Builds the monitoring action (as `L_λ` code) for an annotation, or
/// `None` when the monitor does not react to it.
pub type ActionBuilder = dyn Fn(&Annotation) -> Option<Expr>;

impl SourceMonitor {
    fn accepts(&self, ann: &Annotation) -> bool {
        (self.pre)(ann).is_some() || (self.post)(ann).is_some()
    }
}

/// A letrec-bound function proven monitor-pure and kept in its original,
/// unthreaded calling convention — the polyvariant half of the
/// translation: call paths that cannot observe events skip the pairing
/// protocol entirely.
struct PureFun {
    name: Ident,
    /// Curry arity: the number of leading lambdas. Saturated calls (and
    /// only those — enforced by [`uses_saturated`]) use the direct
    /// convention.
    arity: usize,
    /// Position of the binding in `Tr::bound`, so inner shadowing of the
    /// name is detected.
    bound_idx: usize,
}

struct Tr<'m> {
    monitor: &'m SourceMonitor,
    bound: Vec<Ident>,
    fresh: u64,
    used: BTreeSet<Ident>,
    pure_funs: Vec<PureFun>,
}

/// Whether every free occurrence of `name` in `e` is the head of an
/// application spine carrying at least `arity` arguments. Shadowed
/// occurrences are *not* exempted — the check is conservative, so a
/// same-named inner binder simply keeps the function threaded.
fn uses_saturated(name: &Ident, arity: usize, e: &Expr) -> bool {
    match e {
        Expr::Con(_) => true,
        Expr::Var(x) | Expr::VarAt(x, _) => x != name,
        Expr::App(..) => {
            let mut args: Vec<&Expr> = Vec::new();
            let mut cur = e;
            while let Expr::App(f, a) = cur {
                args.push(a);
                cur = f;
            }
            let head_ok = match cur {
                Expr::Var(x) | Expr::VarAt(x, _) if x == name => args.len() >= arity,
                other => uses_saturated(name, arity, other),
            };
            head_ok && args.iter().all(|a| uses_saturated(name, arity, a))
        }
        Expr::Lambda(l) => uses_saturated(name, arity, &l.body),
        Expr::If(c, t, f) => {
            uses_saturated(name, arity, c)
                && uses_saturated(name, arity, t)
                && uses_saturated(name, arity, f)
        }
        Expr::Let(_, v, b) => uses_saturated(name, arity, v) && uses_saturated(name, arity, b),
        Expr::Letrec(bs, b) => {
            bs.iter().all(|bi| uses_saturated(name, arity, &bi.value))
                && uses_saturated(name, arity, b)
        }
        Expr::Ann(_, inner) => uses_saturated(name, arity, inner),
        Expr::Seq(a, b) => uses_saturated(name, arity, a) && uses_saturated(name, arity, b),
        Expr::Assign(_, v) => uses_saturated(name, arity, v),
        Expr::While(c, b) => uses_saturated(name, arity, c) && uses_saturated(name, arity, b),
        Expr::Par(items) => items.iter().all(|i| uses_saturated(name, arity, i)),
    }
}

/// Curry arity of a lambda (number of leading lambdas) and the body
/// under them.
fn lambda_arity(l: &Lambda) -> (usize, &Expr) {
    let mut arity = 1;
    let mut body: &Expr = &l.body;
    while let Expr::Lambda(inner) = body {
        arity += 1;
        body = &inner.body;
    }
    (arity, body)
}

impl Tr<'_> {
    fn fresh(&mut self, base: &str) -> Ident {
        loop {
            self.fresh += 1;
            let candidate = Ident::new(format!("{base}_{}", self.fresh));
            if !self.used.contains(&candidate) {
                self.used.insert(candidate.clone());
                return candidate;
            }
        }
    }

    /// `v : σ`.
    fn pair(v: Expr, s: Expr) -> Expr {
        Expr::binop("cons", v, s)
    }

    fn hd(e: Expr) -> Expr {
        Expr::app(Expr::var("hd"), e)
    }

    fn tl(e: Expr) -> Expr {
        Expr::app(Expr::var("tl"), e)
    }

    /// Applies a monitoring action, turning a literal `λx. body` into
    /// `let x = arg in body` so each event costs no closure allocation.
    fn apply_action(f: Expr, arg: Expr) -> Expr {
        match f {
            Expr::Lambda(l) => Expr::let_(l.param.clone(), arg, (*l.body).clone()),
            other => Expr::app(other, arg),
        }
    }

    /// Applies a two-argument action (`λv. λσ. body`), inlining both
    /// lambdas as lets. Actions are closed except for their parameters
    /// and prelude names, so the substitution is capture-safe; both
    /// arguments are pure projections, so their evaluation order is
    /// unobservable.
    fn apply_action2(f: Expr, a1: Expr, a2: Expr) -> Expr {
        if let Expr::Lambda(outer) = &f {
            if let Expr::Lambda(inner) = &*outer.body {
                return Expr::let_(
                    outer.param.clone(),
                    a1,
                    Expr::let_(inner.param.clone(), a2, (*inner.body).clone()),
                );
            }
        }
        Expr::app(Tr::apply_action(f, a1), a2)
    }

    /// A first-class primitive reference, eta-expanded to the threading
    /// protocol: every function value in the translated world takes its
    /// argument, then the state, and returns a pair. E.g. arity 2:
    /// `λa₀. λσ₀. (λa₁. λσ₁. (p a₀ a₁) : σ₁) : σ₀`.
    fn prim_value(&mut self, name: &Ident, arity: usize) -> Expr {
        let params: Vec<Ident> = (0..arity).map(|i| self.fresh(&format!("a{i}"))).collect();
        let mut acc = params.iter().fold(Expr::Var(name.clone()), |f, p| {
            Expr::app(f, Expr::Var(p.clone()))
        });
        for p in params.iter().rev() {
            let sigma = self.fresh("s");
            acc = Expr::lam(
                p.clone(),
                Expr::lam(sigma.clone(), Tr::pair(acc, Expr::Var(sigma))),
            );
        }
        acc
    }

    /// If `e` is an application spine headed by an unshadowed primitive,
    /// returns the primitive's arity and the arguments in source order.
    fn prim_spine<'a>(&self, e: &'a Expr) -> Option<(Ident, usize, Vec<&'a Expr>)> {
        let mut args: Vec<&'a Expr> = Vec::new();
        let mut cur = e;
        while let Expr::App(f, a) = cur {
            args.push(a);
            cur = f;
        }
        match cur {
            Expr::Var(x) | Expr::VarAt(x, _) if !self.bound.contains(x) => {
                let p = monsem_core::prims::Prim::by_name(x.as_str())?;
                args.reverse();
                Some((x.clone(), p.arity(), args))
            }
            _ => None,
        }
    }

    /// If `e` is an application spine headed by a letrec function proven
    /// monitor-pure (and not shadowed by an inner binder), returns the
    /// function's name, arity, and the arguments in source order.
    fn pure_fun_spine<'a>(&self, e: &'a Expr) -> Option<(Ident, usize, Vec<&'a Expr>)> {
        let mut args: Vec<&'a Expr> = Vec::new();
        let mut cur = e;
        while let Expr::App(f, a) = cur {
            args.push(a);
            cur = f;
        }
        match cur {
            Expr::Var(x) | Expr::VarAt(x, _) => {
                let last = self.bound.iter().rposition(|n| n == x)?;
                let pf = self
                    .pure_funs
                    .iter()
                    .rev()
                    .find(|pf| pf.bound_idx == last && &pf.name == x)?;
                args.reverse();
                Some((pf.name.clone(), pf.arity, args))
            }
            _ => None,
        }
    }

    /// Whether `e` is *monitor-pure*: it fires no accepted annotation,
    /// calls no user function (whose translated body could), and its
    /// value is protocol-compatible — in particular it is not a bare or
    /// partially-applied primitive, whose raw closure would break the
    /// threading protocol if it escaped. Saturated calls to letrec
    /// functions proven monitor-pure count as pure. Monitor-pure code
    /// residualizes verbatim: same value, same errors, no state traffic.
    fn is_pure(&mut self, e: &Expr) -> bool {
        match e {
            Expr::Con(_) => true,
            // A bound variable holds an already-computed (protocol)
            // value; an unbound non-primitive is the same scope error in
            // either world. Unbound primitives are only pure as heads of
            // saturated applications (handled under `App`).
            Expr::Var(x) | Expr::VarAt(x, _) => {
                self.bound.contains(x) || monsem_core::prims::Prim::by_name(x.as_str()).is_none()
            }
            // A verbatim lambda would not follow the threading protocol.
            Expr::Lambda(_) => false,
            Expr::App(..) => match self.prim_spine(e) {
                Some((_, arity, args)) => {
                    args.len() == arity && args.into_iter().all(|a| self.is_pure(a))
                }
                None => match self.pure_fun_spine(e) {
                    Some((_, arity, args)) => {
                        args.len() == arity && args.into_iter().all(|a| self.is_pure(a))
                    }
                    None => false,
                },
            },
            Expr::If(c, t, f) => self.is_pure(c) && self.is_pure(t) && self.is_pure(f),
            Expr::Let(x, v, b) => {
                if !self.is_pure(v) {
                    return false;
                }
                self.bound.push(x.clone());
                let r = self.is_pure(b);
                self.bound.pop();
                r
            }
            Expr::Ann(ann, inner) => !self.monitor.accepts(ann) && self.is_pure(inner),
            Expr::Seq(a, b) => self.is_pure(a) && self.is_pure(b),
            Expr::Letrec(..) | Expr::Par(_) | Expr::Assign(..) | Expr::While(..) => false,
        }
    }

    /// Whether a monitor-pure expression can neither fail nor diverge, so
    /// it may be moved past other computations without reordering errors.
    fn is_atomic(&self, e: &Expr) -> bool {
        match e {
            Expr::Con(_) => true,
            Expr::Var(x) | Expr::VarAt(x, _) => self.bound.contains(x),
            _ => false,
        }
    }

    /// Passes the current state expression on, let-binding it first when
    /// the continuation would duplicate a non-trivial expression.
    fn with_state(&mut self, s: Expr, k: impl FnOnce(&mut Self, Expr) -> Expr) -> Expr {
        match s {
            Expr::Var(_) => k(self, s),
            other => {
                let st = self.fresh("st");
                let body = k(self, Expr::Var(st.clone()));
                Expr::let_(st, other, body)
            }
        }
    }

    /// T⟦e⟧σ — an expression computing the pair `v : σ'`, given the
    /// current state as the expression `s` (consumed exactly once on
    /// every control path).
    fn thread(&mut self, e: &Expr, s: Expr) -> Expr {
        if self.is_pure(e) {
            return Tr::pair(e.erase_annotations(), s);
        }
        match e {
            // Pure cases are handled above; what remains of Var is a
            // first-class primitive reference.
            Expr::Con(_) => Tr::pair(e.clone(), s),
            Expr::Var(x) | Expr::VarAt(x, _) => {
                match monsem_core::prims::Prim::by_name(x.as_str()) {
                    Some(p) if !self.bound.contains(x) => {
                        let v = self.prim_value(x, p.arity());
                        Tr::pair(v, s)
                    }
                    _ => Tr::pair(e.clone(), s),
                }
            }
            Expr::Lambda(l) => {
                self.bound.push(l.param.clone());
                let sigma = self.fresh("s");
                let body = self.thread(&l.body, Expr::Var(sigma.clone()));
                self.bound.pop();
                let f = Expr::Lambda(Lambda {
                    param: l.param.clone(),
                    body: Arc::new(Expr::lam(sigma, body)),
                });
                Tr::pair(f, s)
            }
            Expr::App(f, a) => self.thread_app(e, f, a, s),
            Expr::If(c, t, f) => {
                if self.is_pure(c) {
                    let cv = c.erase_annotations();
                    self.with_state(s, |tr, sv| {
                        let tt = tr.thread(t, sv.clone());
                        let tf = tr.thread(f, sv);
                        Expr::if_(cv, tt, tf)
                    })
                } else {
                    let tc = self.thread(c, s);
                    let p = self.fresh("p");
                    let tt = self.thread(t, Tr::tl(Expr::Var(p.clone())));
                    let tf = self.thread(f, Tr::tl(Expr::Var(p.clone())));
                    Expr::let_(p.clone(), tc, Expr::if_(Tr::hd(Expr::Var(p)), tt, tf))
                }
            }
            Expr::Let(x, v, b) => {
                if self.is_pure(v) {
                    let vv = v.erase_annotations();
                    self.bound.push(x.clone());
                    let tb = self.thread(b, s);
                    self.bound.pop();
                    Expr::let_(x.clone(), vv, tb)
                } else {
                    let tv = self.thread(v, s);
                    let p = self.fresh("p");
                    self.bound.push(x.clone());
                    let tb = self.thread(b, Tr::tl(Expr::Var(p.clone())));
                    self.bound.pop();
                    Expr::let_(
                        p.clone(),
                        tv,
                        Expr::let_(x.clone(), Tr::hd(Expr::Var(p)), tb),
                    )
                }
            }
            Expr::Letrec(bs, body) => self.thread_letrec(bs, body, s),
            Expr::Ann(ann, inner) => {
                if !self.monitor.accepts(ann) {
                    return self.thread(inner, s);
                }
                let pre = (self.monitor.pre)(ann);
                let post = (self.monitor.post)(ann);
                let entry = match pre {
                    Some(pre_fn) => Tr::apply_action(pre_fn, s),
                    None => s,
                };
                let ti = self.thread(inner, entry);
                let p = self.fresh("p");
                let result = match post {
                    // Literal `λv. λσ. body` action: destructure the pair
                    // once and inline the body — the common case costs two
                    // projections, no closure, no repeated `hd`.
                    Some(Expr::Lambda(outer)) if matches!(&*outer.body, Expr::Lambda(_)) => {
                        let Expr::Lambda(inner_lam) = &*outer.body else {
                            unreachable!()
                        };
                        Expr::let_(
                            outer.param.clone(),
                            Tr::hd(Expr::Var(p.clone())),
                            Expr::let_(
                                inner_lam.param.clone(),
                                Tr::tl(Expr::Var(p.clone())),
                                Tr::pair(Expr::Var(outer.param.clone()), (*inner_lam.body).clone()),
                            ),
                        )
                    }
                    Some(post_fn) => Tr::pair(
                        Tr::hd(Expr::Var(p.clone())),
                        Tr::apply_action2(
                            post_fn,
                            Tr::hd(Expr::Var(p.clone())),
                            Tr::tl(Expr::Var(p.clone())),
                        ),
                    ),
                    None => Expr::Var(p.clone()),
                };
                Expr::let_(p, ti, result)
            }
            Expr::Seq(a, b) => {
                if self.is_pure(a) {
                    let av = a.erase_annotations();
                    Expr::Seq(Arc::new(av), Arc::new(self.thread(b, s)))
                } else {
                    let ta = self.thread(a, s);
                    let p = self.fresh("p");
                    let tb = self.thread(b, Tr::tl(Expr::Var(p.clone())));
                    Expr::let_(p, ta, tb)
                }
            }
            Expr::Par(items) => {
                // The state-passing translation is inherently sequential,
                // so `par` gets its reference semantics: thread the state
                // through the elements left-to-right and pair the list of
                // their values with the final state.
                let mut state = s;
                let mut ps: Vec<Ident> = Vec::new();
                let mut wrappers: Vec<(Ident, Expr)> = Vec::new();
                for item in items {
                    let ti = self.thread(item, state);
                    let p = self.fresh("p");
                    state = Tr::tl(Expr::Var(p.clone()));
                    ps.push(p.clone());
                    wrappers.push((p, ti));
                }
                let list = ps.iter().rev().fold(Expr::nil(), |acc, p| {
                    Expr::binop("cons", Tr::hd(Expr::Var(p.clone())), acc)
                });
                let mut out = Tr::pair(list, state);
                for (p, ti) in wrappers.into_iter().rev() {
                    out = Expr::let_(p, ti, out);
                }
                out
            }
            Expr::Assign(..) | Expr::While(..) => {
                // The pure state-passing translation has no store; the
                // imperative module is monitored at the interpreter level.
                panic!("instrument: imperative constructs are not supported")
            }
        }
    }

    /// A saturated call to a head that keeps the direct (unthreaded)
    /// calling convention — a primitive or a monitor-pure letrec
    /// function. Only the arguments thread; the call itself pays no
    /// protocol. Arguments evaluate in the machine's right-to-left order.
    fn direct_call_spine(&mut self, head: Ident, args: &[&Expr], s: Expr) -> Expr {
        let mut state = s;
        let mut bindings: Vec<(Ident, Expr)> = Vec::new();
        let mut vals: Vec<Option<Expr>> = vec![None; args.len()];
        for (i, arg) in args.iter().enumerate().rev() {
            if self.is_atomic(arg) {
                vals[i] = Some((*arg).clone());
            } else if self.is_pure(arg) {
                let v = self.fresh("v");
                bindings.push((v.clone(), arg.erase_annotations()));
                vals[i] = Some(Expr::Var(v));
            } else {
                let tv = self.thread(arg, state);
                let p = self.fresh("p");
                state = Tr::tl(Expr::Var(p.clone()));
                vals[i] = Some(Tr::hd(Expr::Var(p.clone())));
                bindings.push((p, tv));
            }
        }
        let call = vals
            .into_iter()
            .map(Option::unwrap)
            .fold(Expr::Var(head), Expr::app);
        let mut out = Tr::pair(call, state);
        for (x, v) in bindings.into_iter().rev() {
            out = Expr::let_(x, v, out);
        }
        out
    }

    /// Applications. The machine evaluates the argument before the
    /// function, and the translation preserves that order exactly —
    /// non-atomic pure parts are let-bound in evaluation order so even
    /// *errors* surface in the same place as in the source program.
    fn thread_app(&mut self, whole: &Expr, f: &Expr, a: &Expr, s: Expr) -> Expr {
        // Saturated primitive spine with at least one impure argument:
        // the call itself needs no protocol, only the arguments thread.
        if let Some((name, arity, args)) = self.prim_spine(whole) {
            if args.len() == arity {
                return self.direct_call_spine(name, &args, s);
            }
        }
        // Likewise for a saturated call to a monitor-pure letrec
        // function: the callee residualizes in its original convention,
        // so the call site stays a plain application.
        if let Some((name, arity, args)) = self.pure_fun_spine(whole) {
            if args.len() == arity {
                let args: Vec<&Expr> = args;
                return self.direct_call_spine(name, &args, s);
            }
        }
        // Generic protocol call: argument first, then function.
        let (a_binding, a_val, state) = if self.is_atomic(a) {
            (None, a.clone(), s)
        } else if self.is_pure(a) {
            if self.is_pure(f) {
                // With a pure function the argument evaluates in place
                // (the machine's arg-then-function order is preserved and
                // nothing effectful can run before a potential error in
                // the argument), so no let is needed.
                (None, a.erase_annotations(), s)
            } else {
                let v = self.fresh("v");
                (Some((v.clone(), a.erase_annotations())), Expr::Var(v), s)
            }
        } else {
            let ta = self.thread(a, s);
            let p = self.fresh("p");
            (
                Some((p.clone(), ta)),
                Tr::hd(Expr::Var(p.clone())),
                Tr::tl(Expr::Var(p)),
            )
        };
        let mut out = if self.is_pure(f) {
            Expr::app(Expr::app(f.erase_annotations(), a_val), state)
        } else {
            let tf = self.thread(f, state);
            let p1 = self.fresh("p");
            Expr::let_(
                p1.clone(),
                tf,
                Expr::app(
                    Expr::app(Tr::hd(Expr::Var(p1.clone())), a_val),
                    Tr::tl(Expr::Var(p1)),
                ),
            )
        };
        if let Some((x, v)) = a_binding {
            out = Expr::let_(x, v, out);
        }
        out
    }

    fn thread_letrec(&mut self, bs: &[Binding], body: &Expr, s: Expr) -> Expr {
        // Mirror the LetrecPlan: value bindings thread the state in order,
        // lambda bindings become a residual letrec of translated
        // functions, annotated lambda bindings are rebound afterwards so
        // their events fire.
        let value_bindings: Vec<&Binding> =
            bs.iter().filter(|b| !b.value.is_lambda_like()).collect();
        let fun_bindings: Vec<(Ident, Lambda)> = bs
            .iter()
            .filter_map(|b| match b.value.strip_annotations() {
                Expr::Lambda(l) => Some((b.name.clone(), l.clone())),
                _ => None,
            })
            .collect();
        let annotated: Vec<&Binding> = bs
            .iter()
            .filter(|b| b.value.is_lambda_like() && matches!(&*b.value, Expr::Ann(..)))
            .collect();

        let base = self.bound.len();
        for b in bs {
            self.bound.push(b.name.clone());
        }

        // Polyvariant purity analysis: a letrec function is monitor-pure
        // when its body fires no events (a greatest fixpoint over the
        // mutually recursive candidates) AND every occurrence of its name
        // in the letrec's scope is a saturated call — so the original
        // calling convention never escapes as a value into the threaded
        // world. Pure functions residualize verbatim; call sites to them
        // stay plain applications with no pairing.
        let marker = self.pure_funs.len();
        let annotated_names: BTreeSet<&Ident> = annotated.iter().map(|b| &b.name).collect();
        for (name, l) in &fun_bindings {
            if annotated_names.contains(name) {
                continue;
            }
            let Some(i) = bs.iter().rposition(|b| &b.name == name) else {
                continue;
            };
            let (arity, _) = lambda_arity(l);
            let saturated = bs.iter().all(|b| uses_saturated(name, arity, &b.value))
                && uses_saturated(name, arity, body);
            if saturated {
                self.pure_funs.push(PureFun {
                    name: name.clone(),
                    arity,
                    bound_idx: base + i,
                });
            }
        }
        loop {
            let candidates: Vec<Ident> = self.pure_funs[marker..]
                .iter()
                .map(|pf| pf.name.clone())
                .collect();
            let mut dropped: Vec<Ident> = Vec::new();
            for name in &candidates {
                let (_, l) = fun_bindings
                    .iter()
                    .find(|(n, _)| n == name)
                    .expect("candidate has a binding");
                let mut params: Vec<Ident> = vec![l.param.clone()];
                let mut core: &Expr = &l.body;
                while let Expr::Lambda(inner) = core {
                    params.push(inner.param.clone());
                    core = &inner.body;
                }
                let core = core.clone();
                let n_params = params.len();
                self.bound.append(&mut params);
                let pure = self.is_pure(&core);
                self.bound.truncate(self.bound.len() - n_params);
                if !pure {
                    dropped.push(name.clone());
                }
            }
            if dropped.is_empty() {
                break;
            }
            self.pure_funs
                .retain(|pf| pf.bound_idx < base || !dropped.contains(&pf.name));
        }

        enum Wrapper {
            PureLet(Ident, Expr),
            PairLet(Ident, Ident, Expr),
            Funs(Vec<Binding>),
        }

        let mut state = s;
        let mut wrappers: Vec<Wrapper> = Vec::new();
        for b in &value_bindings {
            if self.is_pure(&b.value) {
                wrappers.push(Wrapper::PureLet(
                    b.name.clone(),
                    b.value.erase_annotations(),
                ));
            } else {
                let tv = self.thread(&b.value, state);
                let p = self.fresh("p");
                state = Tr::tl(Expr::Var(p.clone()));
                wrappers.push(Wrapper::PairLet(p, b.name.clone(), tv));
            }
        }
        let translated_funs: Vec<Binding> = fun_bindings
            .iter()
            .map(|(name, l)| {
                let keep_direct = self
                    .pure_funs
                    .iter()
                    .skip(marker)
                    .any(|pf| &pf.name == name);
                if keep_direct {
                    // Monitor-pure: keep the original calling convention.
                    // Unaccepted annotations in the body are erased; the
                    // purity check guarantees there are no accepted ones.
                    return Binding::new(name.clone(), Expr::Lambda(l.clone()).erase_annotations());
                }
                self.bound.push(l.param.clone());
                let sigma = self.fresh("s");
                let tb = self.thread(&l.body, Expr::Var(sigma.clone()));
                self.bound.pop();
                Binding::new(
                    name.clone(),
                    Expr::Lambda(Lambda {
                        param: l.param.clone(),
                        body: Arc::new(Expr::lam(sigma, tb)),
                    }),
                )
            })
            .collect();
        if !translated_funs.is_empty() {
            wrappers.push(Wrapper::Funs(translated_funs));
        }
        for b in &annotated {
            let tv = self.thread(&b.value, state);
            let p = self.fresh("p");
            state = Tr::tl(Expr::Var(p.clone()));
            wrappers.push(Wrapper::PairLet(p, b.name.clone(), tv));
        }
        let mut out = self.thread(body, state);

        self.pure_funs.truncate(marker);
        for _ in bs {
            self.bound.pop();
        }

        for w in wrappers.into_iter().rev() {
            out = match w {
                Wrapper::PureLet(name, v) => Expr::let_(name, v, out),
                Wrapper::PairLet(p, name, tv) => {
                    Expr::let_(p.clone(), tv, Expr::let_(name, Tr::hd(Expr::Var(p)), out))
                }
                Wrapper::Funs(funs) => Expr::Letrec(funs, Arc::new(out)),
            };
        }
        out
    }
}

/// Instruments `program` with `monitor`, yielding a plain `L_λ` program
/// that computes the cons pair `answer : final-monitor-state`.
///
/// # Panics
///
/// Panics on imperative constructs (`:=`, `while`), which the pure
/// state-passing translation does not model.
pub fn instrument(program: &Expr, monitor: &SourceMonitor) -> Expr {
    let mut used: BTreeSet<Ident> = BTreeSet::new();
    monsem_syntax::points::visit(program, |_, node| {
        if let Expr::Var(x) = node {
            used.insert(x.clone());
        }
    });
    // The translation's own projections use `hd`/`tl`/`cons`; a user
    // binding shadowing any primitive name would capture them, so rename
    // such binders apart first.
    let program = rename_prim_shadowers(program, &mut used);
    let mut tr = Tr {
        monitor,
        bound: Vec::new(),
        fresh: 0,
        used,
        pure_funs: Vec::new(),
    };
    let applied = tr.thread(&program, monitor.initial.clone());
    monitor.prelude.iter().rev().fold(applied, |acc, b| {
        Expr::Letrec(vec![b.clone()], Arc::new(acc))
    })
}

/// Instruments and then specializes the instrumented program — composing
/// level 2 with the level-3 machinery, which removes most of the pairing
/// and state-threading overhead for the unmonitored parts.
pub fn instrument_optimized(
    program: &Expr,
    monitor: &SourceMonitor,
    opts: &SpecializeOptions,
) -> Expr {
    specialize(&instrument(program, monitor), opts)
}

/// Alpha-renames every binder whose name collides with a primitive, so
/// the translation's generated projections cannot be captured.
fn rename_prim_shadowers(e: &Expr, used: &mut BTreeSet<Ident>) -> Expr {
    use monsem_core::prims::Prim;
    fn fresh(base: &Ident, used: &mut BTreeSet<Ident>) -> Ident {
        let mut n = 0u64;
        loop {
            n += 1;
            let candidate = Ident::new(format!("{}_r{}", base.as_str(), n));
            if used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }
    fn go(e: &Expr, map: &mut Vec<(Ident, Ident)>, used: &mut BTreeSet<Ident>) -> Expr {
        let rename_binder = |x: &Ident, used: &mut BTreeSet<Ident>| -> Ident {
            if Prim::by_name(x.as_str()).is_some() {
                fresh(x, used)
            } else {
                x.clone()
            }
        };
        match e {
            Expr::Con(_) => e.clone(),
            Expr::Var(x) | Expr::VarAt(x, _) => {
                match map.iter().rev().find(|(from, _)| from == x) {
                    Some((_, to)) => Expr::Var(to.clone()),
                    None => Expr::Var(x.clone()),
                }
            }
            Expr::Lambda(l) => {
                let p = rename_binder(&l.param, used);
                map.push((l.param.clone(), p.clone()));
                let body = go(&l.body, map, used);
                map.pop();
                Expr::Lambda(Lambda {
                    param: p,
                    body: Arc::new(body),
                })
            }
            Expr::If(c, t, f) => Expr::if_(go(c, map, used), go(t, map, used), go(f, map, used)),
            Expr::App(f, a) => Expr::app(go(f, map, used), go(a, map, used)),
            Expr::Let(x, v, b) => {
                let v2 = go(v, map, used);
                let x2 = rename_binder(x, used);
                map.push((x.clone(), x2.clone()));
                let b2 = go(b, map, used);
                map.pop();
                Expr::Let(x2, Arc::new(v2), Arc::new(b2))
            }
            Expr::Letrec(bs, body) => {
                let renamed: Vec<Ident> = bs.iter().map(|b| rename_binder(&b.name, used)).collect();
                for (b, r) in bs.iter().zip(&renamed) {
                    map.push((b.name.clone(), r.clone()));
                }
                let new_bs: Vec<Binding> = bs
                    .iter()
                    .zip(&renamed)
                    .map(|(b, r)| Binding {
                        name: r.clone(),
                        value: Arc::new(go(&b.value, map, used)),
                    })
                    .collect();
                let body2 = go(body, map, used);
                for _ in bs {
                    map.pop();
                }
                Expr::Letrec(new_bs, Arc::new(body2))
            }
            Expr::Ann(a, inner) => Expr::Ann(a.clone(), Arc::new(go(inner, map, used))),
            Expr::Seq(a, b) => Expr::Seq(Arc::new(go(a, map, used)), Arc::new(go(b, map, used))),
            Expr::Assign(x, v) => {
                let v2 = go(v, map, used);
                let x2 = match map.iter().rev().find(|(from, _)| from == x) {
                    Some((_, to)) => to.clone(),
                    None => x.clone(),
                };
                Expr::Assign(x2, Arc::new(v2))
            }
            Expr::While(c, b) => {
                Expr::While(Arc::new(go(c, map, used)), Arc::new(go(b, map, used)))
            }
            Expr::Par(items) => {
                Expr::Par(items.iter().map(|i| Arc::new(go(i, map, used))).collect())
            }
        }
    }
    go(e, &mut Vec::new(), used)
}

// ---------------------------------------------------------------------
// Ready-made source monitors
// ---------------------------------------------------------------------

/// A step counter: `MS = ℕ`, every label increments.
pub fn step_counter() -> SourceMonitor {
    SourceMonitor {
        name: "step-counter".into(),
        initial: Expr::int(0),
        prelude: Vec::new(),
        pre: Box::new(|ann| {
            matches!(ann.kind, monsem_syntax::AnnKind::Label(_)).then(|| {
                // λσ. σ + 1
                Expr::lam("sc", Expr::binop("+", Expr::var("sc"), Expr::int(1)))
            })
        }),
        post: Box::new(|_| None),
    }
}

/// The §5 profiler (Figure 4) as source code: `MS = ⟨countA, countB⟩`,
/// encoded as the pair `a : b`.
pub fn ab_profiler_source() -> SourceMonitor {
    fn bump(which: &'static str) -> impl Fn(&Annotation) -> Option<Expr> {
        move |ann: &Annotation| {
            (ann.name().as_str() == which).then(|| {
                let s = Expr::var("sigma");
                let hd = Expr::app(Expr::var("hd"), s.clone());
                let tl = Expr::app(Expr::var("tl"), s);
                if which == "A" {
                    Expr::lam(
                        "sigma",
                        Expr::binop("cons", Expr::binop("+", hd, Expr::int(1)), tl),
                    )
                } else {
                    Expr::lam(
                        "sigma",
                        Expr::binop("cons", hd, Expr::binop("+", tl, Expr::int(1))),
                    )
                }
            })
        }
    }
    SourceMonitor {
        name: "ab-profiler".into(),
        initial: Expr::binop("cons", Expr::int(0), Expr::int(0)),
        prelude: Vec::new(),
        pre: Box::new(move |ann| bump("A")(ann).or_else(|| bump("B")(ann))),
        post: Box::new(|_| None),
    }
}

/// The Figure 6 profiler as source code: `MS = CEnv`, a counter
/// environment encoded as an association list of `name : count` pairs.
/// `incCtr` is the prelude helper.
pub fn profiler_source() -> SourceMonitor {
    let inc_ctr = monsem_syntax::parse_expr(
        "lambda name. lambda env. \
           if null? env then ((name : 1) : []) \
           else if (hd (hd env)) = name \
                then ((name : ((tl (hd env)) + 1)) : (tl env)) \
                else (hd env) : (incCtr name (tl env))",
    )
    .expect("incCtr parses");
    SourceMonitor {
        name: "profiler".into(),
        initial: Expr::nil(),
        prelude: vec![Binding::new("incCtr", inc_ctr)],
        pre: Box::new(|ann| {
            if let monsem_syntax::AnnKind::Label(l) = &ann.kind {
                // λσ. incCtr "l" σ
                Some(Expr::lam(
                    "sigma",
                    Expr::app(
                        Expr::app(Expr::var("incCtr"), Expr::str(l.as_str())),
                        Expr::var("sigma"),
                    ),
                ))
            } else {
                None
            }
        }),
        post: Box::new(|_| None),
    }
}

/// The Figure 9 collecting monitor as source code: `MS = Ide → {V}`,
/// encoded as an association list `name : values-list`. Intended for
/// first-order tagged expressions (set membership uses `=`).
pub fn collecting_source() -> SourceMonitor {
    let member = monsem_syntax::parse_expr(
        "lambda x. lambda l. \
           if null? l then false else if (hd l) = x then true else member x (tl l)",
    )
    .expect("member parses");
    let add_val = monsem_syntax::parse_expr(
        "lambda name. lambda v. lambda env. \
           if null? env then ((name : (v : [])) : []) \
           else if (hd (hd env)) = name \
                then (if member v (tl (hd env)) \
                      then env \
                      else ((name : ((tl (hd env)) ++ (v : []))) : (tl env))) \
                else (hd env) : (addVal name v (tl env))",
    )
    .expect("addVal parses");
    SourceMonitor {
        name: "collecting".into(),
        initial: Expr::nil(),
        prelude: vec![
            Binding::new("member", member),
            Binding::new("addVal", add_val),
        ],
        pre: Box::new(|_| None),
        post: Box::new(|ann| {
            if let monsem_syntax::AnnKind::Label(l) = &ann.kind {
                // λv. λσ. addVal "l" v σ
                Some(Expr::lam_n(
                    ["v", "sigma"],
                    Expr::app(
                        Expr::app(
                            Expr::app(Expr::var("addVal"), Expr::str(l.as_str())),
                            Expr::var("v"),
                        ),
                        Expr::var("sigma"),
                    ),
                ))
            } else {
                None
            }
        }),
    }
}

// ---------------------------------------------------------------------
// Level 3: temporal specs compiled into the program
// ---------------------------------------------------------------------

/// Compiles a temporal-specification monitor into a [`SourceMonitor`] —
/// the paper's **level 3** for `monsem-tspec`.
///
/// The monitor state `MS` threaded by [`instrument`] becomes the bare
/// DFA state **integer**; each annotation site the automaton can observe
/// gets the transition function δ(·, letter) inlined as a comparison
/// chain over the (minimized) states that actually move on that letter.
/// Post sites whose spec compares values residualize
/// [`Alphabet::classify_value`](monsem_tspec::Alphabet::classify_value)
/// as integer comparisons against the cut constants (guarded by the
/// total `int?` primitive, so non-integer observations classify instead
/// of erroring), plus a structural `unsorted` check from the prelude
/// when the spec uses that predicate. Sites the automaton cannot observe
/// in either phase produce **no code at all** — the annotation vanishes
/// from the residual program, and no monitor object exists at run time.
///
/// The instrumented program computes `answer : final-state`; decode the
/// final state with [`spec_verdict`]. Because the DFA's dead states are
/// absorbing, `final-state` is dead **iff** the run violated the spec at
/// some event — the same earliest-violation judgement the interpreted
/// [`SpecMonitor`](monsem_tspec::SpecMonitor) reports (level 3 is
/// observing-style: a plain program has no abort channel, so enforcement
/// stays with levels 1 and 2).
pub fn spec_source_monitor(monitor: &monsem_tspec::SpecMonitor) -> SourceMonitor {
    spec_source_monitor_impl(monitor, None)
}

/// Like [`spec_source_monitor`], but the inlined transition chains cover
/// only the given `region` of DFA states — the profile-guided tiered
/// pipeline compiles just the states a hot site actually visits.
///
/// The threaded state keeps the invariant: σ ≥ 0 is a region state, σ < 0
/// is an **escape sentinel**. When a transition leaves the region, the
/// action produces `-(t+1)` where `t` is the state that would have been
/// entered; every subsequent action preserves the sentinel unchanged —
/// comparison chains only match (non-negative) region states, so a
/// negative σ falls through, and the escaping chains test `σ < 0` in
/// their fallthrough. A driver observing a negative final state knows
/// monitoring was incomplete from state `-(σ)-1` onward and must fall
/// back to an interpreted tier for the rest of the trace — and can
/// refine the region with the escaped-to state for the next compilation.
/// Letters under which the region is **closed** compile to the same
/// self-loop-elided chains as the full translation, so in-region events
/// cost exactly what the full translation costs — the escape machinery
/// sits entirely on the cold (region-leaving) paths.
///
/// The caller must ensure the automaton's start state is in `region`
/// (the entry guard of the tiered driver); states not in the region and
/// states out of range are simply never matched by the chains.
pub fn spec_source_monitor_region(
    monitor: &monsem_tspec::SpecMonitor,
    region: &[u32],
) -> SourceMonitor {
    spec_source_monitor_impl(monitor, Some(region.iter().copied().collect()))
}

fn spec_source_monitor_impl(
    monitor: &monsem_tspec::SpecMonitor,
    region: Option<BTreeSet<u32>>,
) -> SourceMonitor {
    use monsem_monitor::Monitor as _;
    use monsem_tspec::Automaton;

    /// A conditional that collapses when both branches are the same
    /// expression. The chain conditions are total in context (the state
    /// is an integer, value guards run under `int?`), so dropping the
    /// test is semantics-preserving; it prunes dispatch on value classes
    /// whose transitions agree.
    fn if_same(c: Expr, t: Expr, f: Expr) -> Expr {
        if t == f {
            t
        } else {
            Expr::if_(c, t, f)
        }
    }

    /// δ(·, letter) as residual code on the state variable: a comparison
    /// chain over the states that move; self-looping states fall through
    /// to the unchanged σ.
    ///
    /// With a region, the chain covers region states only. When the
    /// region is closed under this letter the shape is identical to the
    /// full chain (restricted to the region); otherwise every region
    /// state is matched explicitly and out-of-region targets become the
    /// escape sentinel `-(t+1)`, with the (unreachable, defensive)
    /// fallthrough also escaping.
    fn step_chain(
        aut: &Automaton,
        letter: u32,
        sigma: &str,
        region: Option<&BTreeSet<u32>>,
    ) -> Expr {
        match region {
            None => {
                let moves: Vec<(u32, u32)> = (0..aut.num_states())
                    .filter_map(|s| {
                        let t = aut.step(s, letter);
                        (t != s).then_some((s, t))
                    })
                    .collect();
                moves
                    .into_iter()
                    .rev()
                    .fold(Expr::var(sigma), |acc, (s, t)| {
                        Expr::if_(
                            Expr::binop("=", Expr::var(sigma), Expr::int(s as i64)),
                            Expr::int(t as i64),
                            acc,
                        )
                    })
            }
            Some(r) => {
                let closed = r.iter().all(|&s| r.contains(&aut.step(s, letter)));
                if closed {
                    r.iter()
                        .filter_map(|&s| {
                            let t = aut.step(s, letter);
                            (t != s).then_some((s, t))
                        })
                        .collect::<Vec<_>>()
                        .into_iter()
                        .rev()
                        .fold(Expr::var(sigma), |acc, (s, t)| {
                            Expr::if_(
                                Expr::binop("=", Expr::var(sigma), Expr::int(s as i64)),
                                Expr::int(t as i64),
                                acc,
                            )
                        })
                } else {
                    // The fallthrough sees σ < 0 (already escaped —
                    // region states are all matched above and can't be
                    // negative) and preserves it; a non-negative σ
                    // outside the region (which the entry guard and the
                    // sentinel invariant make unreachable) defensively
                    // escapes as `-σ-1`. Putting the `σ < 0` test here
                    // instead of guarding the whole action keeps the
                    // in-region path exactly as cheap as the full
                    // translation's.
                    let fallthrough = Expr::if_(
                        Expr::binop("<", Expr::var(sigma), Expr::int(0)),
                        Expr::var(sigma),
                        Expr::binop(
                            "-",
                            Expr::binop("-", Expr::int(0), Expr::var(sigma)),
                            Expr::int(1),
                        ),
                    );
                    r.iter().rev().fold(fallthrough, |acc, &s| {
                        let t = aut.step(s, letter);
                        let target = if r.contains(&t) {
                            Expr::int(t as i64)
                        } else {
                            Expr::int(-(t as i64) - 1)
                        };
                        Expr::if_(
                            Expr::binop("=", Expr::var(sigma), Expr::int(s as i64)),
                            target,
                            acc,
                        )
                    })
                }
            }
        }
    }

    let aut = monitor.automaton().clone();
    let namespace = monitor.namespace().clone();

    let pre_aut = aut.clone();
    let pre_ns = namespace.clone();
    let pre_region = region.clone();
    let pre = move |ann: &Annotation| -> Option<Expr> {
        if ann.namespace != pre_ns {
            return None;
        }
        let nc = pre_aut.alphabet().name_class(ann.name());
        if !pre_aut.pre_relevant(nc) {
            return None;
        }
        let letter = pre_aut.alphabet().pre_letter(nc);
        let chain = step_chain(&pre_aut, letter, "sigma", pre_region.as_ref());
        Some(Expr::lam("sigma", chain))
    };

    let post_aut = aut.clone();
    let post_region = region;
    let post = move |ann: &Annotation| -> Option<Expr> {
        if ann.namespace != namespace {
            return None;
        }
        let alphabet = post_aut.alphabet();
        let nc = alphabet.name_class(ann.name());
        if !post_aut.post_relevant(nc) {
            return None;
        }
        let e_class = |vc: usize| {
            step_chain(
                &post_aut,
                alphabet.post_letter(nc, vc),
                "sigma",
                post_region.as_ref(),
            )
        };
        // Mirror `classify_value`: non-integers (and everything, when no
        // constants cut the line) classify by the structural `unsorted`
        // test or fall into class 0.
        let non_int = match alphabet.unsorted_value_class() {
            Some(uc) => if_same(
                Expr::app(Expr::var("specUnsorted"), Expr::var("v")),
                e_class(uc),
                e_class(0),
            ),
            None => e_class(0),
        };
        let consts = alphabet.consts();
        let body = if consts.is_empty() {
            non_int
        } else {
            let k = consts.len();
            let e_region = |r: usize| match alphabet.int_region_class(r) {
                Some(vc) => e_class(vc),
                // Empty regions have no integer inhabitants; the guard
                // order below makes these branches unreachable.
                None => Expr::var("sigma"),
            };
            let mut chain = e_region(2 * k);
            for (i, &c) in consts.iter().enumerate().rev() {
                chain = if_same(
                    Expr::binop("=", Expr::var("v"), Expr::int(c)),
                    e_region(2 * i + 1),
                    chain,
                );
                chain = if_same(
                    Expr::binop("<", Expr::var("v"), Expr::int(c)),
                    e_region(2 * i),
                    chain,
                );
            }
            if_same(Expr::app(Expr::var("int?"), Expr::var("v")), chain, non_int)
        };
        Some(Expr::lam_n(["v", "sigma"], body))
    };

    // Structural `unsorted` as object-language code, used only when the
    // spec mentions the predicate: a value is unsorted iff it is a
    // *proper* list with an adjacent pair of integers in decreasing
    // order (`hd`/`tl` error on non-pairs, hence the total `pair?`
    // guards).
    let prelude = if aut.alphabet().unsorted_value_class().is_some() {
        let proper =
            monsem_syntax::parse_expr("lambda v. if pair? v then specProper (tl v) else null? v")
                .expect("specProper parses");
        let chk = monsem_syntax::parse_expr(
            "lambda v. \
               if pair? v \
               then (if pair? (tl v) \
                     then (if int? (hd v) \
                           then (if int? (hd (tl v)) \
                                 then (if (hd v) > (hd (tl v)) \
                                       then true \
                                       else specUnsChk (tl v)) \
                                 else specUnsChk (tl v)) \
                           else specUnsChk (tl v)) \
                     else false) \
               else false",
        )
        .expect("specUnsChk parses");
        let uns =
            monsem_syntax::parse_expr("lambda v. if specProper v then specUnsChk v else false")
                .expect("specUnsorted parses");
        vec![
            Binding::new("specProper", proper),
            Binding::new("specUnsChk", chk),
            Binding::new("specUnsorted", uns),
        ]
    } else {
        Vec::new()
    };

    SourceMonitor {
        name: monitor.name().to_string(),
        initial: Expr::int(aut.start() as i64),
        prelude,
        pre: Box::new(pre),
        post: Box::new(post),
    }
}

/// Instruments `program` so it monitors itself against `monitor`'s spec
/// — [`instrument`] ∘ [`spec_source_monitor`]. The result is a plain
/// `L_λ` program computing `answer : final-DFA-state`.
pub fn instrument_spec(program: &Expr, monitor: &monsem_tspec::SpecMonitor) -> Expr {
    instrument(program, &spec_source_monitor(monitor))
}

/// [`instrument`] ∘ [`spec_source_monitor_region`]: a self-monitoring
/// program whose inlined transitions cover only the given state region.
/// The result computes `answer : final-state` where a negative final
/// state is the escape sentinel `-(t+1)` (see
/// [`spec_source_monitor_region`]); non-negative final states carry the
/// same meaning as in [`instrument_spec`].
pub fn instrument_spec_region(
    program: &Expr,
    monitor: &monsem_tspec::SpecMonitor,
    region: &[u32],
) -> Expr {
    instrument(program, &spec_source_monitor_region(monitor, region))
}

/// Decodes the integer final state returned by a self-monitoring program
/// built with [`instrument_spec`].
///
/// # Errors
///
/// A description of the violation: either the run entered a dead state
/// (the spec was violated at some event — dead states are absorbing) or
/// the completed trace is not accepted.
pub fn spec_verdict(aut: &monsem_tspec::Automaton, state: u32) -> Result<(), String> {
    if aut.is_dead(state) {
        return Err(format!("trace violated the spec (dead state {state})"));
    }
    let end = aut.step(state, aut.alphabet().done_letter());
    if aut.is_nullable(end) {
        Ok(())
    } else {
        Err(format!("incomplete trace at end of run (state {state})"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::machine::eval;
    use monsem_core::{programs, Value};
    use monsem_monitor::machine::eval_monitored;
    use monsem_monitors::profiler::{AbProfiler, Profiler};
    use monsem_syntax::parse_expr;

    fn run_pair(e: &Expr) -> (Value, Value) {
        match eval(e).expect("instrumented program runs") {
            Value::Pair(v, s) => ((*v).clone(), (*s).clone()),
            other => panic!("instrumented program must return a pair, got {other}"),
        }
    }

    #[test]
    fn instrumented_ab_profiler_matches_the_monitored_interpreter() {
        let prog = programs::fac_ab(5);
        let instrumented = instrument(&prog, &ab_profiler_source());
        let (answer, state) = run_pair(&instrumented);
        let (expected_answer, counts) = eval_monitored(&prog, &AbProfiler).unwrap();
        assert_eq!(answer, expected_answer);
        assert_eq!(
            state,
            Value::pair(Value::Int(counts.a as i64), Value::Int(counts.b as i64))
        );
    }

    #[test]
    fn instrumented_profiler_reproduces_figure6_counts() {
        let prog = programs::fac_mul_profiled(3);
        let instrumented = instrument(&prog, &profiler_source());
        let (answer, state) = run_pair(&instrumented);
        assert_eq!(answer, Value::Int(6));
        let entries = state.iter_list().expect("assoc list");
        let shown: Vec<String> = entries.iter().map(|e| e.to_string()).collect();
        let (_, interp_counts) = eval_monitored(&prog, &Profiler::new()).unwrap();
        assert_eq!(interp_counts.count(&monsem_syntax::Ident::new("fac")), 4);
        assert_eq!(shown, vec!["(fac . 4)", "(mul . 3)"]);
    }

    #[test]
    fn instrumented_collecting_matches_figure9() {
        let prog = programs::collecting_fac(3);
        let instrumented = instrument(&prog, &collecting_source());
        let (answer, state) = run_pair(&instrumented);
        assert_eq!(answer, Value::Int(6));
        let entries = state.iter_list().expect("assoc list");
        let shown: Vec<String> = entries.iter().map(|e| e.to_string()).collect();
        // test collects {false,true}; n collects {1,2,3} (demand order);
        // each entry `name : values` is itself a proper list.
        assert_eq!(shown, vec!["[test, false, true]", "[n, 1, 2, 3]"]);
    }

    #[test]
    fn step_counter_counts_all_labels() {
        let prog = programs::fac_ab(5);
        let instrumented = instrument(&prog, &step_counter());
        let (answer, state) = run_pair(&instrumented);
        assert_eq!(answer, Value::Int(120));
        assert_eq!(state, Value::Int(6)); // {A} once, {B} five times
    }

    #[test]
    fn instrumented_program_is_printable_and_reparses() {
        let prog = programs::fac_ab(3);
        let instrumented = instrument(&prog, &step_counter());
        let printed = instrumented.to_string();
        let reparsed = parse_expr(&printed).expect("level-2 artifact is a program");
        assert_eq!(reparsed, instrumented);
    }

    #[test]
    fn unmonitored_annotations_vanish_from_the_instrumented_program() {
        let prog = parse_expr("{other(x)}:({A}:1 + 1)").unwrap();
        let instrumented = instrument(&prog, &ab_profiler_source());
        assert!(instrumented.annotations().is_empty());
        let (answer, state) = run_pair(&instrumented);
        assert_eq!(answer, Value::Int(2));
        assert_eq!(state, Value::pair(Value::Int(1), Value::Int(0)));
    }

    #[test]
    fn instrumented_program_runs_on_the_compiled_engine() {
        let prog = programs::fac_ab(5);
        let instrumented = instrument(&prog, &step_counter());
        let compiled = crate::engine::compile(&instrumented).unwrap();
        let v = compiled.run().unwrap();
        assert_eq!(v, Value::pair(Value::Int(120), Value::Int(6)));
    }

    #[test]
    fn instrumented_program_specializes_further() {
        let prog = programs::fac_ab(5);
        let optimized = instrument_optimized(&prog, &step_counter(), &SpecializeOptions::default());
        // fac 5 is fully static — even the monitor state computes away.
        assert_eq!(optimized, Expr::binop("cons", Expr::int(120), Expr::int(6)));
    }

    #[test]
    fn shadowed_primitive_names_are_respected() {
        // A user binding named `hd` must not be wrapped as the primitive.
        let prog = parse_expr("let hd = lambda x. 42 in hd [1, 2]").unwrap();
        let instrumented = instrument(&prog, &step_counter());
        let (answer, _) = run_pair(&instrumented);
        assert_eq!(answer, Value::Int(42));
    }

    #[test]
    fn higher_order_programs_instrument_correctly() {
        let prog = parse_expr(
            "let twice = lambda f. lambda x. f (f x) in twice (lambda n. {A}:(n + 1)) 40",
        )
        .unwrap();
        let instrumented = instrument(&prog, &ab_profiler_source());
        let (answer, state) = run_pair(&instrumented);
        assert_eq!(answer, Value::Int(42));
        assert_eq!(state, Value::pair(Value::Int(2), Value::Int(0)));
    }

    // ---- level 3: self-monitoring programs ----------------------------

    use monsem_tspec::SpecMonitor;

    fn fac_prog(n: i64) -> Expr {
        parse_expr(&format!(
            "letrec fac = lambda x. {{fac}}:(if x = 0 then 1 else x * (fac (x - 1))) in fac {n}"
        ))
        .unwrap()
    }

    fn letrec_binding(e: &Expr, name: &str) -> Option<Expr> {
        let mut found = None;
        monsem_syntax::points::visit(e, |_, node| {
            if let Expr::Letrec(bs, _) = node {
                for b in bs {
                    if b.name.as_str() == name {
                        found = Some((*b.value).clone());
                    }
                }
            }
        });
        found
    }

    #[test]
    fn pure_letrec_functions_keep_the_direct_convention() {
        let prog = parse_expr(
            "letrec add = lambda a. lambda b. a + b \
             and fac = lambda x. {fac}:(if x = 0 then 1 else add x (fac (x - 1))) \
             in fac 4",
        )
        .unwrap();
        let m = SpecMonitor::new("obs", "always(post(fac) => value >= 0)").unwrap();
        let instrumented = instrument_spec(&prog, &m);
        // `add` fires no events and every use is saturated, so its
        // binding survives verbatim — no state parameter, no pairing.
        assert_eq!(
            letrec_binding(&instrumented, "add"),
            Some(parse_expr("lambda a. lambda b. a + b").unwrap())
        );
        let (answer, state) = run_pair(&instrumented);
        let (expected, s_i) = eval_monitored(&prog, &m).unwrap();
        assert_eq!(answer, expected);
        assert_eq!(state, Value::Int(s_i.state as i64));
    }

    #[test]
    fn escaping_letrec_functions_stay_threaded() {
        // `inc` is monitor-pure but escapes as a bare value into `app`,
        // so it must keep the threading protocol.
        let prog = parse_expr(
            "letrec inc = lambda a. a + 1 \
             and app = lambda f. lambda x. {A}:(f x) \
             in app inc 5",
        )
        .unwrap();
        let instrumented = instrument(&prog, &ab_profiler_source());
        assert_ne!(
            letrec_binding(&instrumented, "inc"),
            Some(parse_expr("lambda a. a + 1").unwrap())
        );
        let (answer, state) = run_pair(&instrumented);
        assert_eq!(answer, Value::Int(6));
        assert_eq!(state, Value::pair(Value::Int(1), Value::Int(0)));
    }

    #[test]
    fn self_monitoring_program_tracks_the_interpreted_spec() {
        let prog = fac_prog(6);
        let m = SpecMonitor::new("pos", "always(post(fac) => value >= 1)").unwrap();
        let instrumented = instrument_spec(&prog, &m);
        let (answer, state) = run_pair(&instrumented);
        let (expected, s_i) = eval_monitored(&prog, &m).unwrap();
        assert_eq!(answer, expected);
        assert_eq!(state, Value::Int(s_i.state as i64));
        assert!(s_i.violation.is_none());
        assert!(spec_verdict(m.automaton(), s_i.state).is_ok());
    }

    #[test]
    fn violating_run_lands_in_a_dead_state() {
        let prog = parse_expr(
            "letrec count = lambda x. if x = 0 then {A}:0 else {A}:(count (x - 1)) in count 3",
        )
        .unwrap();
        let m = SpecMonitor::new("pos", "always(post(A) => value >= 1)").unwrap();
        let instrumented = instrument_spec(&prog, &m);
        let (_, state) = run_pair(&instrumented);
        let (_, s_i) = eval_monitored(&prog, &m).unwrap();
        assert_eq!(state, Value::Int(s_i.state as i64));
        assert!(s_i.violation.is_some());
        let Value::Int(s) = state else { unreachable!() };
        assert!(m.automaton().is_dead(s as u32));
        assert!(spec_verdict(m.automaton(), s as u32).is_err());
    }

    #[test]
    fn region_covering_all_states_matches_the_full_translation() {
        let prog = fac_prog(6);
        let m = SpecMonitor::new("pos", "always(post(fac) => value >= 1)").unwrap();
        let all: Vec<u32> = m.automaton().reachable();
        let instrumented = instrument_spec_region(&prog, &m, &all);
        let (answer, state) = run_pair(&instrumented);
        let (expected, s_i) = eval_monitored(&prog, &m).unwrap();
        assert_eq!(answer, expected);
        assert_eq!(state, Value::Int(s_i.state as i64));
    }

    #[test]
    fn leaving_the_region_produces_the_escape_sentinel() {
        let prog = parse_expr(
            "letrec count = lambda x. if x = 0 then {A}:0 else {A}:(count (x - 1)) in count 3",
        )
        .unwrap();
        let m = SpecMonitor::new("pos", "always(post(A) => value >= 1)").unwrap();
        let (_, s_i) = eval_monitored(&prog, &m).unwrap();
        let dead = s_i.state; // the violating run ends in the dead state
        assert!(m.automaton().is_dead(dead));
        // Compile only the non-dead states: the final transition leaves
        // the region and the run ends on the sentinel -(dead+1).
        let region: Vec<u32> = m
            .automaton()
            .reachable()
            .into_iter()
            .filter(|&s| s != dead)
            .collect();
        let instrumented = instrument_spec_region(&prog, &m, &region);
        let (_, state) = run_pair(&instrumented);
        assert_eq!(state, Value::Int(-(dead as i64) - 1));
    }

    #[test]
    fn dead_sites_emit_no_code_at_level_3() {
        let prog = parse_expr("{a}:({b}:1 + 1)").unwrap();
        let m = SpecMonitor::new("only-a", "always(post(a) => value >= 0)").unwrap();
        let sm = spec_source_monitor(&m);
        let instrumented = instrument(&prog, &sm);
        assert!(instrumented.annotations().is_empty());
        let (answer, _) = run_pair(&instrumented);
        assert_eq!(answer, Value::Int(2));
    }

    #[test]
    fn unsorted_specs_classify_structurally_in_residual_code() {
        let m = SpecMonitor::new("sorted", "never(post(mk) and unsorted)").unwrap();
        let cases = [
            ("{mk}:(1 : (3 : []))", false), // sorted proper list
            ("{mk}:(3 : (1 : []))", true),  // unsorted proper list
            ("{mk}:(3 : 2)", false),        // improper list: not unsorted
            ("{mk}:5", false),              // non-list
        ];
        for (src, violates) in cases {
            let prog = parse_expr(src).unwrap();
            let instrumented = instrument_spec(&prog, &m);
            let (_, state) = run_pair(&instrumented);
            let (_, s_i) = eval_monitored(&prog, &m).unwrap();
            assert_eq!(state, Value::Int(s_i.state as i64), "{src}");
            assert_eq!(s_i.violation.is_some(), violates, "{src}");
            let Value::Int(s) = state else { unreachable!() };
            assert_eq!(
                spec_verdict(m.automaton(), s as u32).is_err(),
                violates,
                "{src}"
            );
        }
    }

    #[test]
    fn self_monitoring_program_is_printable_and_compiled_runnable() {
        let prog = fac_prog(4);
        let m = SpecMonitor::new("pos", "always(post(fac) => value >= 1)").unwrap();
        let instrumented = instrument_spec(&prog, &m);
        let printed = instrumented.to_string();
        let reparsed = parse_expr(&printed).expect("level-3 artifact is a program");
        assert_eq!(reparsed, instrumented);
        let compiled = crate::engine::compile(&instrumented).unwrap();
        let v = compiled.run().unwrap();
        let (expected, s_i) = eval_monitored(&prog, &m).unwrap();
        assert_eq!(v, Value::pair(expected, Value::Int(s_i.state as i64)));
    }
}
