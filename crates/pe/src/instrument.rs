//! Source-to-source instrumentation — the level-2 artifact of Figure 10
//! as an actual `L_λ` **program**.
//!
//! "Specializing the monitor … with respect to a source program would
//! produce an instrumented program; i.e. a program including extra code to
//! perform the monitoring actions." (§9.1)
//!
//! [`instrument`] performs that specialization as a state-passing
//! translation: the meaning `MS → (Ans × MS)` of the monitoring semantics
//! becomes the *type* of the translated program. Writing `⟨v, σ⟩` as the
//! cons pair `v : σ`:
//!
//! ```text
//! T⟦k⟧          = λσ. k : σ
//! T⟦x⟧          = λσ. x : σ
//! T⟦λx.e⟧       = λσ. (λx. T⟦e⟧) : σ            (functions thread σ when applied)
//! T⟦e₁ e₂⟧      = λσ. let p₂ = T⟦e₂⟧ σ in
//!                     let p₁ = T⟦e₁⟧ (tl p₂) in (hd p₁) (hd p₂) (tl p₁)
//! T⟦{μ}:e⟧      = λσ. let p = T⟦e⟧ (pre_μ σ) in (hd p) : (post_μ (hd p) (tl p))
//! ```
//!
//! The monitoring actions `pre_μ`/`post_μ` are ordinary `L_λ` code supplied
//! by a [`SourceMonitor`]; annotations the monitor does not accept vanish.
//! The result is a plain program: it runs on the standard evaluator (or
//! the compiled engine, or specialized further with respect to partial
//! input — level 3), pretty-prints, and re-parses.

use crate::specialize::{specialize, SpecializeOptions};
use monsem_syntax::{Annotation, Binding, Expr, Ident, Lambda};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A monitor specification whose monitoring functions are `L_λ` code.
///
/// * `initial` — the initial monitor state `σ₀`, as a closed expression;
/// * `pre(μ)` — `Some(λσ. σ')` when the monitor reacts to `μ`;
/// * `post(μ)` — `Some(λv. λσ. σ')` when the monitor post-processes `μ`;
/// * `prelude` — helper functions the actions may call, bound around the
///   whole instrumented program.
///
/// An annotation is *accepted* when `pre` or `post` returns `Some`.
pub struct SourceMonitor {
    /// Monitor name (diagnostics only).
    pub name: String,
    /// The initial state σ₀.
    pub initial: Expr,
    /// Helper bindings available to all monitoring actions.
    pub prelude: Vec<Binding>,
    /// Builds the pre-action `λσ. σ'` for an annotation.
    pub pre: Box<ActionBuilder>,
    /// Builds the post-action `λv. λσ. σ'` for an annotation.
    pub post: Box<ActionBuilder>,
}

/// Builds the monitoring action (as `L_λ` code) for an annotation, or
/// `None` when the monitor does not react to it.
pub type ActionBuilder = dyn Fn(&Annotation) -> Option<Expr>;

impl SourceMonitor {
    fn accepts(&self, ann: &Annotation) -> bool {
        (self.pre)(ann).is_some() || (self.post)(ann).is_some()
    }
}

struct Tr<'m> {
    monitor: &'m SourceMonitor,
    bound: Vec<Ident>,
    fresh: u64,
    used: BTreeSet<Ident>,
}

impl Tr<'_> {
    fn fresh(&mut self, base: &str) -> Ident {
        loop {
            self.fresh += 1;
            let candidate = Ident::new(format!("{base}_{}", self.fresh));
            if !self.used.contains(&candidate) {
                self.used.insert(candidate.clone());
                return candidate;
            }
        }
    }

    /// `λσ. body(σ)` with a fresh σ.
    fn state_fn(&mut self, body: impl FnOnce(&mut Self, &Ident) -> Expr) -> Expr {
        let sigma = self.fresh("s");
        let b = body(self, &sigma);
        Expr::lam(sigma, b)
    }

    /// `v : σ`.
    fn pair(v: Expr, s: Expr) -> Expr {
        Expr::binop("cons", v, s)
    }

    fn hd(e: Expr) -> Expr {
        Expr::app(Expr::var("hd"), e)
    }

    fn tl(e: Expr) -> Expr {
        Expr::app(Expr::var("tl"), e)
    }

    /// The state-threading wrapper for a primitive of the given arity:
    /// each collected argument returns through the state, the final one
    /// computes. E.g. arity 2:
    /// `λσ. (λa. λσ₁. ((λb. λσ₂. ((p a b) : σ₂)) : σ₁)) : σ`.
    fn wrap_prim(&mut self, name: &Ident, arity: usize) -> Expr {
        let params: Vec<Ident> = (0..arity).map(|i| self.fresh(&format!("a{i}"))).collect();
        let call = params.iter().fold(Expr::Var(name.clone()), |f, p| {
            Expr::app(f, Expr::Var(p.clone()))
        });
        // Innermost: λσ. call : σ
        let mut acc = self.state_fn(|_, s| Tr::pair(call, Expr::Var(s.clone())));
        for p in params.iter().rev() {
            let lam = Expr::lam(p.clone(), acc);
            acc = self.state_fn(|_, s| Tr::pair(lam, Expr::Var(s.clone())));
        }
        acc
    }

    /// T⟦e⟧ — an expression of shape `λσ. v : σ'`.
    fn translate(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Con(_) => {
                let v = e.clone();
                self.state_fn(|_, s| Tr::pair(v, Expr::Var(s.clone())))
            }
            Expr::Var(x) | Expr::VarAt(x, _) => {
                if !self.bound.contains(x) {
                    if let Some(p) = monsem_core::prims::Prim::by_name(x.as_str()) {
                        return self.wrap_prim(x, p.arity());
                    }
                }
                let v = e.clone();
                self.state_fn(|_, s| Tr::pair(v, Expr::Var(s.clone())))
            }
            Expr::Lambda(l) => {
                self.bound.push(l.param.clone());
                let body = self.translate(&l.body);
                self.bound.pop();
                let f = Expr::Lambda(Lambda {
                    param: l.param.clone(),
                    body: Arc::new(body),
                });
                self.state_fn(|_, s| Tr::pair(f, Expr::Var(s.clone())))
            }
            Expr::App(f, a) => {
                let ta = self.translate(a);
                let tf = self.translate(f);
                self.state_fn(|tr, s| {
                    let p2 = tr.fresh("p");
                    let p1 = tr.fresh("p");
                    Expr::let_(
                        p2.clone(),
                        Expr::app(ta, Expr::Var(s.clone())),
                        Expr::let_(
                            p1.clone(),
                            Expr::app(tf, Tr::tl(Expr::Var(p2.clone()))),
                            Expr::app(
                                Expr::app(Tr::hd(Expr::Var(p1.clone())), Tr::hd(Expr::Var(p2))),
                                Tr::tl(Expr::Var(p1)),
                            ),
                        ),
                    )
                })
            }
            Expr::If(c, t, f) => {
                let tc = self.translate(c);
                let tt = self.translate(t);
                let tf = self.translate(f);
                self.state_fn(|tr, s| {
                    let p = tr.fresh("p");
                    Expr::let_(
                        p.clone(),
                        Expr::app(tc, Expr::Var(s.clone())),
                        Expr::if_(
                            Tr::hd(Expr::Var(p.clone())),
                            Expr::app(tt, Tr::tl(Expr::Var(p.clone()))),
                            Expr::app(tf, Tr::tl(Expr::Var(p))),
                        ),
                    )
                })
            }
            Expr::Let(x, v, b) => {
                let tv = self.translate(v);
                self.bound.push(x.clone());
                let tb = self.translate(b);
                self.bound.pop();
                self.state_fn(|tr, s| {
                    let p = tr.fresh("p");
                    Expr::let_(
                        p.clone(),
                        Expr::app(tv, Expr::Var(s.clone())),
                        Expr::let_(
                            x.clone(),
                            Tr::hd(Expr::Var(p.clone())),
                            Expr::app(tb, Tr::tl(Expr::Var(p))),
                        ),
                    )
                })
            }
            Expr::Letrec(bs, body) => self.translate_letrec(bs, body),
            Expr::Ann(ann, inner) => {
                if !self.monitor.accepts(ann) {
                    return self.translate(inner);
                }
                let pre = (self.monitor.pre)(ann);
                let post = (self.monitor.post)(ann);
                let ti = self.translate(inner);
                self.state_fn(|tr, s| {
                    let entry_state = match pre {
                        Some(pre_fn) => Expr::app(pre_fn, Expr::Var(s.clone())),
                        None => Expr::Var(s.clone()),
                    };
                    let p = tr.fresh("p");
                    let result = match post {
                        Some(post_fn) => Tr::pair(
                            Tr::hd(Expr::Var(p.clone())),
                            Expr::app(
                                Expr::app(post_fn, Tr::hd(Expr::Var(p.clone()))),
                                Tr::tl(Expr::Var(p.clone())),
                            ),
                        ),
                        None => Expr::Var(p.clone()),
                    };
                    Expr::let_(p, Expr::app(ti, entry_state), result)
                })
            }
            Expr::Seq(a, b) => {
                let ta = self.translate(a);
                let tb = self.translate(b);
                self.state_fn(|tr, s| {
                    let p = tr.fresh("p");
                    Expr::let_(
                        p.clone(),
                        Expr::app(ta, Expr::Var(s.clone())),
                        Expr::app(tb, Tr::tl(Expr::Var(p))),
                    )
                })
            }
            Expr::Par(items) => {
                // The state-passing translation is inherently sequential,
                // so `par` gets its reference semantics: thread the state
                // through the elements left-to-right and pair the list of
                // their values with the final state.
                let t_items: Vec<Expr> = items.iter().map(|i| self.translate(i)).collect();
                self.state_fn(|tr, s| {
                    let mut state: Expr = Expr::Var(s.clone());
                    let mut ps: Vec<Ident> = Vec::new();
                    let mut wrappers: Vec<Box<dyn FnOnce(Expr) -> Expr>> = Vec::new();
                    for ti in t_items {
                        let p = tr.fresh("p");
                        let prev_state = state;
                        state = Tr::tl(Expr::Var(p.clone()));
                        ps.push(p.clone());
                        wrappers.push(Box::new(move |inner| {
                            Expr::let_(p, Expr::app(ti, prev_state), inner)
                        }));
                    }
                    let list = ps.iter().rev().fold(Expr::nil(), |acc, p| {
                        Expr::binop("cons", Tr::hd(Expr::Var(p.clone())), acc)
                    });
                    let mut out = Tr::pair(list, state);
                    for w in wrappers.into_iter().rev() {
                        out = w(out);
                    }
                    out
                })
            }
            Expr::Assign(..) | Expr::While(..) => {
                // The pure state-passing translation has no store; the
                // imperative module is monitored at the interpreter level.
                panic!("instrument: imperative constructs are not supported")
            }
        }
    }

    fn translate_letrec(&mut self, bs: &[Binding], body: &Expr) -> Expr {
        // Mirror the LetrecPlan: value bindings thread the state in order,
        // lambda bindings become a residual letrec of translated
        // functions, annotated lambda bindings are rebound afterwards so
        // their events fire.
        let value_bindings: Vec<&Binding> =
            bs.iter().filter(|b| !b.value.is_lambda_like()).collect();
        let fun_bindings: Vec<(Ident, Lambda)> = bs
            .iter()
            .filter_map(|b| match b.value.strip_annotations() {
                Expr::Lambda(l) => Some((b.name.clone(), l.clone())),
                _ => None,
            })
            .collect();
        let annotated: Vec<&Binding> = bs
            .iter()
            .filter(|b| b.value.is_lambda_like() && matches!(&*b.value, Expr::Ann(..)))
            .collect();

        for b in bs {
            self.bound.push(b.name.clone());
        }

        let translated_values: Vec<(Ident, Expr)> = value_bindings
            .iter()
            .map(|b| (b.name.clone(), self.translate(&b.value)))
            .collect();
        let translated_funs: Vec<Binding> = fun_bindings
            .iter()
            .map(|(name, l)| {
                self.bound.push(l.param.clone());
                let tb = self.translate(&l.body);
                self.bound.pop();
                Binding::new(
                    name.clone(),
                    Expr::Lambda(Lambda {
                        param: l.param.clone(),
                        body: Arc::new(tb),
                    }),
                )
            })
            .collect();
        let translated_annotated: Vec<(Ident, Expr)> = annotated
            .iter()
            .map(|b| (b.name.clone(), self.translate(&b.value)))
            .collect();
        let t_body = self.translate(body);

        for _ in bs {
            self.bound.pop();
        }

        self.state_fn(|tr, s| {
            let mut state: Expr = Expr::Var(s.clone());
            let mut wrappers: Vec<Box<dyn FnOnce(Expr) -> Expr>> = Vec::new();
            for (name, tv) in translated_values {
                let p = tr.fresh("p");
                let prev_state = state;
                state = Tr::tl(Expr::Var(p.clone()));
                wrappers.push(Box::new(move |inner| {
                    Expr::let_(
                        p.clone(),
                        Expr::app(tv, prev_state),
                        Expr::let_(name, Tr::hd(Expr::Var(p)), inner),
                    )
                }));
            }
            if !translated_funs.is_empty() {
                let funs = translated_funs;
                wrappers.push(Box::new(move |inner| Expr::Letrec(funs, Arc::new(inner))));
            }
            for (name, tv) in translated_annotated {
                let p = tr.fresh("p");
                let prev_state = state;
                state = Tr::tl(Expr::Var(p.clone()));
                wrappers.push(Box::new(move |inner| {
                    Expr::let_(
                        p.clone(),
                        Expr::app(tv, prev_state),
                        Expr::let_(name, Tr::hd(Expr::Var(p)), inner),
                    )
                }));
            }
            let mut out = Expr::app(t_body, state);
            for w in wrappers.into_iter().rev() {
                out = w(out);
            }
            out
        })
    }
}

/// Instruments `program` with `monitor`, yielding a plain `L_λ` program
/// that computes the cons pair `answer : final-monitor-state`.
///
/// # Panics
///
/// Panics on imperative constructs (`:=`, `while`), which the pure
/// state-passing translation does not model.
pub fn instrument(program: &Expr, monitor: &SourceMonitor) -> Expr {
    let mut used: BTreeSet<Ident> = BTreeSet::new();
    monsem_syntax::points::visit(program, |_, node| {
        if let Expr::Var(x) = node {
            used.insert(x.clone());
        }
    });
    // The translation's own projections use `hd`/`tl`/`cons`; a user
    // binding shadowing any primitive name would capture them, so rename
    // such binders apart first.
    let program = rename_prim_shadowers(program, &mut used);
    let mut tr = Tr {
        monitor,
        bound: Vec::new(),
        fresh: 0,
        used,
    };
    let translated = tr.translate(&program);
    let applied = Expr::app(translated, monitor.initial.clone());
    monitor.prelude.iter().rev().fold(applied, |acc, b| {
        Expr::Letrec(vec![b.clone()], Arc::new(acc))
    })
}

/// Instruments and then specializes the instrumented program — composing
/// level 2 with the level-3 machinery, which removes most of the pairing
/// and state-threading overhead for the unmonitored parts.
pub fn instrument_optimized(
    program: &Expr,
    monitor: &SourceMonitor,
    opts: &SpecializeOptions,
) -> Expr {
    specialize(&instrument(program, monitor), opts)
}

/// Alpha-renames every binder whose name collides with a primitive, so
/// the translation's generated projections cannot be captured.
fn rename_prim_shadowers(e: &Expr, used: &mut BTreeSet<Ident>) -> Expr {
    use monsem_core::prims::Prim;
    fn fresh(base: &Ident, used: &mut BTreeSet<Ident>) -> Ident {
        let mut n = 0u64;
        loop {
            n += 1;
            let candidate = Ident::new(format!("{}_r{}", base.as_str(), n));
            if used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }
    fn go(e: &Expr, map: &mut Vec<(Ident, Ident)>, used: &mut BTreeSet<Ident>) -> Expr {
        let rename_binder = |x: &Ident, used: &mut BTreeSet<Ident>| -> Ident {
            if Prim::by_name(x.as_str()).is_some() {
                fresh(x, used)
            } else {
                x.clone()
            }
        };
        match e {
            Expr::Con(_) => e.clone(),
            Expr::Var(x) | Expr::VarAt(x, _) => {
                match map.iter().rev().find(|(from, _)| from == x) {
                    Some((_, to)) => Expr::Var(to.clone()),
                    None => Expr::Var(x.clone()),
                }
            }
            Expr::Lambda(l) => {
                let p = rename_binder(&l.param, used);
                map.push((l.param.clone(), p.clone()));
                let body = go(&l.body, map, used);
                map.pop();
                Expr::Lambda(Lambda {
                    param: p,
                    body: Arc::new(body),
                })
            }
            Expr::If(c, t, f) => Expr::if_(go(c, map, used), go(t, map, used), go(f, map, used)),
            Expr::App(f, a) => Expr::app(go(f, map, used), go(a, map, used)),
            Expr::Let(x, v, b) => {
                let v2 = go(v, map, used);
                let x2 = rename_binder(x, used);
                map.push((x.clone(), x2.clone()));
                let b2 = go(b, map, used);
                map.pop();
                Expr::Let(x2, Arc::new(v2), Arc::new(b2))
            }
            Expr::Letrec(bs, body) => {
                let renamed: Vec<Ident> = bs.iter().map(|b| rename_binder(&b.name, used)).collect();
                for (b, r) in bs.iter().zip(&renamed) {
                    map.push((b.name.clone(), r.clone()));
                }
                let new_bs: Vec<Binding> = bs
                    .iter()
                    .zip(&renamed)
                    .map(|(b, r)| Binding {
                        name: r.clone(),
                        value: Arc::new(go(&b.value, map, used)),
                    })
                    .collect();
                let body2 = go(body, map, used);
                for _ in bs {
                    map.pop();
                }
                Expr::Letrec(new_bs, Arc::new(body2))
            }
            Expr::Ann(a, inner) => Expr::Ann(a.clone(), Arc::new(go(inner, map, used))),
            Expr::Seq(a, b) => Expr::Seq(Arc::new(go(a, map, used)), Arc::new(go(b, map, used))),
            Expr::Assign(x, v) => {
                let v2 = go(v, map, used);
                let x2 = match map.iter().rev().find(|(from, _)| from == x) {
                    Some((_, to)) => to.clone(),
                    None => x.clone(),
                };
                Expr::Assign(x2, Arc::new(v2))
            }
            Expr::While(c, b) => {
                Expr::While(Arc::new(go(c, map, used)), Arc::new(go(b, map, used)))
            }
            Expr::Par(items) => {
                Expr::Par(items.iter().map(|i| Arc::new(go(i, map, used))).collect())
            }
        }
    }
    go(e, &mut Vec::new(), used)
}

// ---------------------------------------------------------------------
// Ready-made source monitors
// ---------------------------------------------------------------------

/// A step counter: `MS = ℕ`, every label increments.
pub fn step_counter() -> SourceMonitor {
    SourceMonitor {
        name: "step-counter".into(),
        initial: Expr::int(0),
        prelude: Vec::new(),
        pre: Box::new(|ann| {
            matches!(ann.kind, monsem_syntax::AnnKind::Label(_)).then(|| {
                // λσ. σ + 1
                Expr::lam("sc", Expr::binop("+", Expr::var("sc"), Expr::int(1)))
            })
        }),
        post: Box::new(|_| None),
    }
}

/// The §5 profiler (Figure 4) as source code: `MS = ⟨countA, countB⟩`,
/// encoded as the pair `a : b`.
pub fn ab_profiler_source() -> SourceMonitor {
    fn bump(which: &'static str) -> impl Fn(&Annotation) -> Option<Expr> {
        move |ann: &Annotation| {
            (ann.name().as_str() == which).then(|| {
                let s = Expr::var("sigma");
                let hd = Expr::app(Expr::var("hd"), s.clone());
                let tl = Expr::app(Expr::var("tl"), s);
                if which == "A" {
                    Expr::lam(
                        "sigma",
                        Expr::binop("cons", Expr::binop("+", hd, Expr::int(1)), tl),
                    )
                } else {
                    Expr::lam(
                        "sigma",
                        Expr::binop("cons", hd, Expr::binop("+", tl, Expr::int(1))),
                    )
                }
            })
        }
    }
    SourceMonitor {
        name: "ab-profiler".into(),
        initial: Expr::binop("cons", Expr::int(0), Expr::int(0)),
        prelude: Vec::new(),
        pre: Box::new(move |ann| bump("A")(ann).or_else(|| bump("B")(ann))),
        post: Box::new(|_| None),
    }
}

/// The Figure 6 profiler as source code: `MS = CEnv`, a counter
/// environment encoded as an association list of `name : count` pairs.
/// `incCtr` is the prelude helper.
pub fn profiler_source() -> SourceMonitor {
    let inc_ctr = monsem_syntax::parse_expr(
        "lambda name. lambda env. \
           if null? env then ((name : 1) : []) \
           else if (hd (hd env)) = name \
                then ((name : ((tl (hd env)) + 1)) : (tl env)) \
                else (hd env) : (incCtr name (tl env))",
    )
    .expect("incCtr parses");
    SourceMonitor {
        name: "profiler".into(),
        initial: Expr::nil(),
        prelude: vec![Binding::new("incCtr", inc_ctr)],
        pre: Box::new(|ann| {
            if let monsem_syntax::AnnKind::Label(l) = &ann.kind {
                // λσ. incCtr "l" σ
                Some(Expr::lam(
                    "sigma",
                    Expr::app(
                        Expr::app(Expr::var("incCtr"), Expr::str(l.as_str())),
                        Expr::var("sigma"),
                    ),
                ))
            } else {
                None
            }
        }),
        post: Box::new(|_| None),
    }
}

/// The Figure 9 collecting monitor as source code: `MS = Ide → {V}`,
/// encoded as an association list `name : values-list`. Intended for
/// first-order tagged expressions (set membership uses `=`).
pub fn collecting_source() -> SourceMonitor {
    let member = monsem_syntax::parse_expr(
        "lambda x. lambda l. \
           if null? l then false else if (hd l) = x then true else member x (tl l)",
    )
    .expect("member parses");
    let add_val = monsem_syntax::parse_expr(
        "lambda name. lambda v. lambda env. \
           if null? env then ((name : (v : [])) : []) \
           else if (hd (hd env)) = name \
                then (if member v (tl (hd env)) \
                      then env \
                      else ((name : ((tl (hd env)) ++ (v : []))) : (tl env))) \
                else (hd env) : (addVal name v (tl env))",
    )
    .expect("addVal parses");
    SourceMonitor {
        name: "collecting".into(),
        initial: Expr::nil(),
        prelude: vec![
            Binding::new("member", member),
            Binding::new("addVal", add_val),
        ],
        pre: Box::new(|_| None),
        post: Box::new(|ann| {
            if let monsem_syntax::AnnKind::Label(l) = &ann.kind {
                // λv. λσ. addVal "l" v σ
                Some(Expr::lam_n(
                    ["v", "sigma"],
                    Expr::app(
                        Expr::app(
                            Expr::app(Expr::var("addVal"), Expr::str(l.as_str())),
                            Expr::var("v"),
                        ),
                        Expr::var("sigma"),
                    ),
                ))
            } else {
                None
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::machine::eval;
    use monsem_core::{programs, Value};
    use monsem_monitor::machine::eval_monitored;
    use monsem_monitors::profiler::{AbProfiler, Profiler};
    use monsem_syntax::parse_expr;

    fn run_pair(e: &Expr) -> (Value, Value) {
        match eval(e).expect("instrumented program runs") {
            Value::Pair(v, s) => ((*v).clone(), (*s).clone()),
            other => panic!("instrumented program must return a pair, got {other}"),
        }
    }

    #[test]
    fn instrumented_ab_profiler_matches_the_monitored_interpreter() {
        let prog = programs::fac_ab(5);
        let instrumented = instrument(&prog, &ab_profiler_source());
        let (answer, state) = run_pair(&instrumented);
        let (expected_answer, counts) = eval_monitored(&prog, &AbProfiler).unwrap();
        assert_eq!(answer, expected_answer);
        assert_eq!(
            state,
            Value::pair(Value::Int(counts.a as i64), Value::Int(counts.b as i64))
        );
    }

    #[test]
    fn instrumented_profiler_reproduces_figure6_counts() {
        let prog = programs::fac_mul_profiled(3);
        let instrumented = instrument(&prog, &profiler_source());
        let (answer, state) = run_pair(&instrumented);
        assert_eq!(answer, Value::Int(6));
        let entries = state.iter_list().expect("assoc list");
        let shown: Vec<String> = entries.iter().map(|e| e.to_string()).collect();
        let (_, interp_counts) = eval_monitored(&prog, &Profiler::new()).unwrap();
        assert_eq!(interp_counts.count(&monsem_syntax::Ident::new("fac")), 4);
        assert_eq!(shown, vec!["(fac . 4)", "(mul . 3)"]);
    }

    #[test]
    fn instrumented_collecting_matches_figure9() {
        let prog = programs::collecting_fac(3);
        let instrumented = instrument(&prog, &collecting_source());
        let (answer, state) = run_pair(&instrumented);
        assert_eq!(answer, Value::Int(6));
        let entries = state.iter_list().expect("assoc list");
        let shown: Vec<String> = entries.iter().map(|e| e.to_string()).collect();
        // test collects {false,true}; n collects {1,2,3} (demand order);
        // each entry `name : values` is itself a proper list.
        assert_eq!(shown, vec!["[test, false, true]", "[n, 1, 2, 3]"]);
    }

    #[test]
    fn step_counter_counts_all_labels() {
        let prog = programs::fac_ab(5);
        let instrumented = instrument(&prog, &step_counter());
        let (answer, state) = run_pair(&instrumented);
        assert_eq!(answer, Value::Int(120));
        assert_eq!(state, Value::Int(6)); // {A} once, {B} five times
    }

    #[test]
    fn instrumented_program_is_printable_and_reparses() {
        let prog = programs::fac_ab(3);
        let instrumented = instrument(&prog, &step_counter());
        let printed = instrumented.to_string();
        let reparsed = parse_expr(&printed).expect("level-2 artifact is a program");
        assert_eq!(reparsed, instrumented);
    }

    #[test]
    fn unmonitored_annotations_vanish_from_the_instrumented_program() {
        let prog = parse_expr("{other(x)}:({A}:1 + 1)").unwrap();
        let instrumented = instrument(&prog, &ab_profiler_source());
        assert!(instrumented.annotations().is_empty());
        let (answer, state) = run_pair(&instrumented);
        assert_eq!(answer, Value::Int(2));
        assert_eq!(state, Value::pair(Value::Int(1), Value::Int(0)));
    }

    #[test]
    fn instrumented_program_runs_on_the_compiled_engine() {
        let prog = programs::fac_ab(5);
        let instrumented = instrument(&prog, &step_counter());
        let compiled = crate::engine::compile(&instrumented).unwrap();
        let v = compiled.run().unwrap();
        assert_eq!(v, Value::pair(Value::Int(120), Value::Int(6)));
    }

    #[test]
    fn instrumented_program_specializes_further() {
        let prog = programs::fac_ab(5);
        let optimized = instrument_optimized(&prog, &step_counter(), &SpecializeOptions::default());
        // fac 5 is fully static — even the monitor state computes away.
        assert_eq!(optimized, Expr::binop("cons", Expr::int(120), Expr::int(6)));
    }

    #[test]
    fn shadowed_primitive_names_are_respected() {
        // A user binding named `hd` must not be wrapped as the primitive.
        let prog = parse_expr("let hd = lambda x. 42 in hd [1, 2]").unwrap();
        let instrumented = instrument(&prog, &step_counter());
        let (answer, _) = run_pair(&instrumented);
        assert_eq!(answer, Value::Int(42));
    }

    #[test]
    fn higher_order_programs_instrument_correctly() {
        let prog = parse_expr(
            "let twice = lambda f. lambda x. f (f x) in twice (lambda n. {A}:(n + 1)) 40",
        )
        .unwrap();
        let instrumented = instrument(&prog, &ab_profiler_source());
        let (answer, state) = run_pair(&instrumented);
        assert_eq!(answer, Value::Int(42));
        assert_eq!(state, Value::pair(Value::Int(2), Value::Int(0)));
    }
}
