//! Residual-program cleanup — the "arity raising" / tupling-elimination
//! post-pass of a partial evaluator.
//!
//! The online specializer anchors effects by residualizing them in place,
//! which leaves instrumented programs with patterns like
//!
//! ```text
//! let p = (A : B) in … hd p … tl p …
//! ```
//!
//! This pass rewrites them into direct bindings
//! `let h = A in let t = B in … h … t …`, propagates trivial bindings,
//! folds projections of literal pairs, and β-reduces applications of
//! literal lambdas to trivial arguments — all semantics-preserving
//! (evaluation order and failure points are kept; only values that are
//! provably pure move or disappear). Iterated to a fixpoint, it turns the
//! level-3 output of `instrument → specialize` into readable straight-line
//! code.

use monsem_syntax::{Binding, Expr, Ident, Lambda};
use std::sync::Arc;

/// Expressions that terminate, have no effects, and cannot fail — safe to
/// drop, duplicate, or reorder.
fn trivial(e: &Expr) -> bool {
    matches!(e, Expr::Var(_) | Expr::Con(_) | Expr::Lambda(_))
}

/// Function-position expressions whose own evaluation is pure (cannot
/// fail, no effects): trivial expressions and under-applied primitives
/// over trivial arguments (e.g. `(+) x`, `cons h` — the *application*
/// may fail later, their construction cannot).
fn pure_function_position(e: &Expr) -> bool {
    fn prim_spine(e: &Expr, args: usize) -> bool {
        match e {
            Expr::Var(op) => match monsem_core::prims::Prim::by_name(op.as_str()) {
                Some(p) => args < p.arity(),
                None => false,
            },
            Expr::App(f, a) => trivial(a) && prim_spine(f, args + 1),
            _ => false,
        }
    }
    trivial(e) || prim_spine(e, 0)
}

/// Is `e` syntactically `cons a b`?
fn as_cons(e: &Expr) -> Option<(&Expr, &Expr)> {
    if let Expr::App(f, b) = e {
        if let Expr::App(g, a) = &**f {
            if let Expr::Var(op) = &**g {
                if op.as_str() == "cons" {
                    return Some((a, b));
                }
            }
        }
    }
    None
}

fn as_proj(e: &Expr) -> Option<(&str, &Expr)> {
    if let Expr::App(f, a) = e {
        if let Expr::Var(op) = &**f {
            if matches!(op.as_str(), "hd" | "tl") {
                return Some((op.as_str(), a));
            }
        }
    }
    None
}

/// How `x` occurs in `e`: only under `hd x` / `tl x`, or in other ways.
fn occurrences_only_projections(e: &Expr, x: &Ident) -> bool {
    fn go(e: &Expr, x: &Ident, shadowed: bool) -> bool {
        if shadowed {
            return true;
        }
        if let Some((_, arg)) = as_proj(e) {
            if matches!(arg, Expr::Var(v) if v == x) {
                return true;
            }
        }
        match e {
            Expr::Var(v) | Expr::VarAt(v, _) => v != x,
            Expr::Con(_) => true,
            Expr::Lambda(l) => go(&l.body, x, l.param == *x),
            Expr::If(a, b, c) => go(a, x, false) && go(b, x, false) && go(c, x, false),
            Expr::App(a, b) | Expr::Seq(a, b) | Expr::While(a, b) => {
                go(a, x, false) && go(b, x, false)
            }
            Expr::Let(v, val, body) => go(val, x, false) && go(body, x, v == x),
            Expr::Letrec(bs, body) => {
                let rebound = bs.iter().any(|b| b.name == *x);
                bs.iter().all(|b| go(&b.value, x, rebound)) && go(body, x, rebound)
            }
            Expr::Ann(_, inner) => go(inner, x, false),
            Expr::Assign(v, val) => v != x && go(val, x, false),
            Expr::Par(items) => items.iter().all(|i| go(i, x, false)),
        }
    }
    go(e, x, false)
}

/// Substitutes `replacement` for free occurrences of `x` (capture is not
/// an issue here: the specializer's fresh renaming guarantees binder
/// names are unique, and replacements are trivial expressions).
fn subst(e: &Expr, x: &Ident, replacement: &Expr) -> Expr {
    match e {
        Expr::Var(v) | Expr::VarAt(v, _) => {
            if v == x {
                replacement.clone()
            } else {
                e.clone()
            }
        }
        Expr::Con(_) => e.clone(),
        Expr::Lambda(l) => {
            if l.param == *x {
                e.clone()
            } else {
                Expr::Lambda(Lambda {
                    param: l.param.clone(),
                    body: Arc::new(subst(&l.body, x, replacement)),
                })
            }
        }
        Expr::If(a, b, c) => Expr::if_(
            subst(a, x, replacement),
            subst(b, x, replacement),
            subst(c, x, replacement),
        ),
        Expr::App(a, b) => Expr::app(subst(a, x, replacement), subst(b, x, replacement)),
        Expr::Let(v, val, body) => {
            let val = subst(val, x, replacement);
            if v == x {
                Expr::Let(v.clone(), Arc::new(val), body.clone())
            } else {
                Expr::let_(v.clone(), val, subst(body, x, replacement))
            }
        }
        Expr::Letrec(bs, body) => {
            if bs.iter().any(|b| b.name == *x) {
                return e.clone();
            }
            Expr::Letrec(
                bs.iter()
                    .map(|b| Binding {
                        name: b.name.clone(),
                        value: Arc::new(subst(&b.value, x, replacement)),
                    })
                    .collect(),
                Arc::new(subst(body, x, replacement)),
            )
        }
        Expr::Ann(a, inner) => Expr::Ann(a.clone(), Arc::new(subst(inner, x, replacement))),
        Expr::Seq(a, b) => Expr::Seq(
            Arc::new(subst(a, x, replacement)),
            Arc::new(subst(b, x, replacement)),
        ),
        Expr::Assign(v, val) => Expr::Assign(v.clone(), Arc::new(subst(val, x, replacement))),
        Expr::While(a, b) => Expr::While(
            Arc::new(subst(a, x, replacement)),
            Arc::new(subst(b, x, replacement)),
        ),
        Expr::Par(items) => Expr::Par(
            items
                .iter()
                .map(|i| Arc::new(subst(i, x, replacement)))
                .collect(),
        ),
    }
}

/// Replaces `hd x` / `tl x` with the given variables.
fn subst_projections(e: &Expr, x: &Ident, h: &Ident, t: &Ident) -> Expr {
    if let Some((op, arg)) = as_proj(e) {
        if matches!(arg, Expr::Var(v) if v == x) {
            return Expr::Var(if op == "hd" { h.clone() } else { t.clone() });
        }
    }
    match e {
        Expr::Var(_) | Expr::VarAt(..) | Expr::Con(_) => e.clone(),
        Expr::Lambda(l) => {
            if l.param == *x {
                e.clone()
            } else {
                Expr::Lambda(Lambda {
                    param: l.param.clone(),
                    body: Arc::new(subst_projections(&l.body, x, h, t)),
                })
            }
        }
        Expr::If(a, b, c) => Expr::if_(
            subst_projections(a, x, h, t),
            subst_projections(b, x, h, t),
            subst_projections(c, x, h, t),
        ),
        Expr::App(a, b) => Expr::app(subst_projections(a, x, h, t), subst_projections(b, x, h, t)),
        Expr::Let(v, val, body) => {
            let val = subst_projections(val, x, h, t);
            if v == x {
                Expr::Let(v.clone(), Arc::new(val), body.clone())
            } else {
                Expr::let_(v.clone(), val, subst_projections(body, x, h, t))
            }
        }
        Expr::Letrec(bs, body) => {
            if bs.iter().any(|b| b.name == *x) {
                return e.clone();
            }
            Expr::Letrec(
                bs.iter()
                    .map(|b| Binding {
                        name: b.name.clone(),
                        value: Arc::new(subst_projections(&b.value, x, h, t)),
                    })
                    .collect(),
                Arc::new(subst_projections(body, x, h, t)),
            )
        }
        Expr::Ann(a, inner) => Expr::Ann(a.clone(), Arc::new(subst_projections(inner, x, h, t))),
        Expr::Seq(a, b) => Expr::Seq(
            Arc::new(subst_projections(a, x, h, t)),
            Arc::new(subst_projections(b, x, h, t)),
        ),
        Expr::Assign(v, val) => Expr::Assign(v.clone(), Arc::new(subst_projections(val, x, h, t))),
        Expr::While(a, b) => Expr::While(
            Arc::new(subst_projections(a, x, h, t)),
            Arc::new(subst_projections(b, x, h, t)),
        ),
        Expr::Par(items) => Expr::Par(
            items
                .iter()
                .map(|i| Arc::new(subst_projections(i, x, h, t)))
                .collect(),
        ),
    }
}

fn count_free(e: &Expr, x: &Ident) -> usize {
    match e {
        Expr::Var(v) | Expr::VarAt(v, _) => usize::from(v == x),
        Expr::Con(_) => 0,
        Expr::Lambda(l) => {
            if l.param == *x {
                0
            } else {
                count_free(&l.body, x)
            }
        }
        Expr::If(a, b, c) => count_free(a, x) + count_free(b, x) + count_free(c, x),
        Expr::App(a, b) | Expr::Seq(a, b) | Expr::While(a, b) => {
            count_free(a, x) + count_free(b, x)
        }
        Expr::Let(v, val, body) => {
            count_free(val, x) + if v == x { 0 } else { count_free(body, x) }
        }
        Expr::Letrec(bs, body) => {
            if bs.iter().any(|b| b.name == *x) {
                0
            } else {
                bs.iter().map(|b| count_free(&b.value, x)).sum::<usize>() + count_free(body, x)
            }
        }
        Expr::Ann(_, inner) => count_free(inner, x),
        Expr::Assign(v, val) => usize::from(v == x) + count_free(val, x),
        Expr::Par(items) => items.iter().map(|i| count_free(i, x)).sum(),
    }
}

struct Simplifier {
    fresh: u64,
    changed: bool,
}

impl Simplifier {
    fn fresh(&mut self, base: &Ident) -> Ident {
        self.fresh += 1;
        Ident::new(format!("{}'{}", base.as_str(), self.fresh))
    }

    fn pass(&mut self, e: &Expr) -> Expr {
        // Bottom-up.
        let e = match e {
            Expr::Var(_) | Expr::VarAt(..) | Expr::Con(_) => e.clone(),
            Expr::Lambda(l) => Expr::Lambda(Lambda {
                param: l.param.clone(),
                body: Arc::new(self.pass(&l.body)),
            }),
            Expr::If(a, b, c) => Expr::if_(self.pass(a), self.pass(b), self.pass(c)),
            Expr::App(a, b) => Expr::app(self.pass(a), self.pass(b)),
            Expr::Let(x, v, b) => Expr::let_(x.clone(), self.pass(v), self.pass(b)),
            Expr::Letrec(bs, body) => Expr::Letrec(
                bs.iter()
                    .map(|b| Binding {
                        name: b.name.clone(),
                        value: Arc::new(self.pass(&b.value)),
                    })
                    .collect(),
                Arc::new(self.pass(body)),
            ),
            Expr::Ann(a, inner) => Expr::Ann(a.clone(), Arc::new(self.pass(inner))),
            Expr::Seq(a, b) => Expr::Seq(Arc::new(self.pass(a)), Arc::new(self.pass(b))),
            Expr::Assign(x, v) => Expr::Assign(x.clone(), Arc::new(self.pass(v))),
            Expr::While(a, b) => Expr::While(Arc::new(self.pass(a)), Arc::new(self.pass(b))),
            Expr::Par(items) => Expr::Par(items.iter().map(|i| Arc::new(self.pass(i))).collect()),
        };
        self.rewrite(e)
    }

    fn rewrite(&mut self, e: Expr) -> Expr {
        // hd (a : b) → a, tl (a : b) → b — when the discarded side is pure.
        if let Some((op, arg)) = as_proj(&e) {
            if let Some((a, b)) = as_cons(arg) {
                let (keep, drop) = if op == "hd" { (a, b) } else { (b, a) };
                if trivial(drop) {
                    self.changed = true;
                    return keep.clone();
                }
            }
        }

        // (λx. body) v → body[x := v] for trivial v (preserves order: v is
        // a value; for a single-use x any v would do, but trivial is safe
        // and enough in practice).
        if let Expr::App(f, a) = &e {
            if let Expr::Lambda(l) = &**f {
                if trivial(a) {
                    self.changed = true;
                    return subst(&l.body, &l.param, a);
                }
                // Otherwise name it: (λx.b) E → let x = E in b, which the
                // let rules below can continue to improve.
                self.changed = true;
                return Expr::let_(l.param.clone(), (**a).clone(), (*l.body).clone());
            }
        }

        // let x = (let y = A in B) in C → let y = A in let x = B in C
        // (binder names are globally unique after specialization, so no
        // capture; evaluation order A, B, C is unchanged).
        if let Expr::Let(x, v, body) = &e {
            if let Expr::Let(y, a, b) = &**v {
                self.changed = true;
                return Expr::let_(
                    y.clone(),
                    (**a).clone(),
                    Expr::let_(x.clone(), (**b).clone(), (**body).clone()),
                );
            }
        }

        // f (let y = A in B) → let y = A in f B, when f's own evaluation
        // is pure — the argument is evaluated first (Fig. 2), so the
        // order A, B, f is unchanged.
        if let Expr::App(f, a) = &e {
            if pure_function_position(f) {
                if let Expr::Let(y, va, b) = &**a {
                    self.changed = true;
                    return Expr::let_(
                        y.clone(),
                        (**va).clone(),
                        Expr::app((**f).clone(), (**b).clone()),
                    );
                }
            }
        }

        if let Expr::Let(x, v, body) = &e {
            // let x = trivial in body → body[x := trivial]
            if trivial(v) {
                self.changed = true;
                return subst(body, x, v);
            }
            // let x = v in x → v
            if matches!(&**body, Expr::Var(b) if b == x) {
                self.changed = true;
                return (**v).clone();
            }
            // Unused, pure binding → drop.
            if count_free(body, x) == 0 && trivial(v) {
                self.changed = true;
                return (**body).clone();
            }
            // let x = (A : B) in body, x used only as hd x / tl x
            //   → let h = A in let t = B in body[hd x→h, tl x→t]
            if let Some((a, b)) = as_cons(v) {
                if occurrences_only_projections(body, x) && count_free(body, x) > 0 {
                    self.changed = true;
                    let h = self.fresh(x);
                    let t = self.fresh(x);
                    let body2 = subst_projections(body, x, &h, &t);
                    return Expr::let_(h, a.clone(), Expr::let_(t, b.clone(), body2));
                }
            }
        }

        e
    }
}

/// Simplifies a residual program to a fixpoint (bounded at 32 passes; in
/// practice 3–5 suffice).
///
/// ```
/// use monsem_pe::simplify::simplify;
/// use monsem_syntax::parse_expr;
/// let e = parse_expr("let p = (a : b) in (hd p) + (tl p)")?;
/// assert_eq!(simplify(&e), parse_expr("a + b")?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simplify(e: &Expr) -> Expr {
    let mut s = Simplifier {
        fresh: 0,
        changed: true,
    };
    let mut cur = e.clone();
    let mut passes = 0;
    while s.changed && passes < 32 {
        s.changed = false;
        cur = s.pass(&cur);
        passes += 1;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::{instrument, instrument_optimized, step_counter};
    use crate::specialize::SpecializeOptions;
    use monsem_core::machine::eval;
    use monsem_core::{programs, Value};
    use monsem_syntax::parse_expr;

    #[test]
    fn projections_of_pairs_fold() {
        let e = parse_expr("hd (1 : 2)").unwrap();
        assert_eq!(simplify(&e), Expr::int(1));
        let e = parse_expr("tl (x : y)").unwrap();
        assert_eq!(simplify(&e), Expr::var("y"));
    }

    #[test]
    fn impure_sides_are_not_dropped() {
        let e = parse_expr("hd (1 : (2 / 0))").unwrap();
        // The failing tail must stay.
        assert_eq!(simplify(&e), e);
    }

    #[test]
    fn pair_lets_are_split() {
        let e = parse_expr("let p = (a : b) in (hd p) + (tl p)").unwrap();
        let simplified = simplify(&e);
        assert_eq!(simplified, parse_expr("a + b").unwrap());
    }

    #[test]
    fn trivial_bindings_are_inlined() {
        let e = parse_expr("let x = y in x + x").unwrap();
        assert_eq!(simplify(&e), parse_expr("y + y").unwrap());
    }

    #[test]
    fn beta_reduction_of_literal_lambdas() {
        let e = parse_expr("(lambda x. x * x) y").unwrap();
        assert_eq!(simplify(&e), parse_expr("y * y").unwrap());
        // Non-trivial arguments become lets, preserving evaluation order.
        let e = parse_expr("(lambda x. x * x) (f 1)").unwrap();
        assert_eq!(simplify(&e), parse_expr("let x = f 1 in x * x").unwrap());
    }

    #[test]
    fn cleans_level3_output_to_straight_line_code() {
        let program = parse_expr(
            "letrec pow = lambda b. lambda e. \
                {step}:if e = 0 then 1 else b * (pow b (e - 1)) \
             in pow base 4",
        )
        .unwrap();
        let optimized =
            instrument_optimized(&program, &step_counter(), &SpecializeOptions::default());
        let cleaned = simplify(&optimized);
        assert!(
            cleaned.size() < optimized.size(),
            "no improvement: {} vs {}",
            cleaned.size(),
            optimized.size()
        );
        // Still correct, for several bases.
        for base in [2i64, 7] {
            let run = Expr::let_("base", Expr::int(base), cleaned.clone());
            let v = eval(&run).unwrap();
            assert_eq!(v, Value::pair(Value::Int(base.pow(4)), Value::Int(5)),);
        }
    }

    #[test]
    fn preserves_instrumented_program_semantics() {
        for n in [3i64, 6] {
            let program = programs::fac_ab(n);
            let instrumented = instrument(&program, &step_counter());
            let cleaned = simplify(&instrumented);
            assert_eq!(eval(&cleaned), eval(&instrumented));
        }
    }
}
