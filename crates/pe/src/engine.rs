//! The compiled engine — level 1/2 of the Figure 10 pipeline.
//!
//! Specializing the monitored interpreter with respect to a program
//! removes the computation that depends only on the program text. This
//! compiler performs exactly those static computations, once, ahead of
//! time:
//!
//! * **environment lookup** — variable references are resolved to frame
//!   indices (de Bruijn style), so no name comparison happens at run time.
//!   This pass is deliberately *not* shared with `monsem_core::resolve`:
//!   that resolver targets the interpreted machines' environment layout
//!   (and must leave letrec value-bindings unaddressed, since their
//!   runtime frame shape is mode-dependent), whereas this compiler owns
//!   its frame discipline outright and can always produce an index. The
//!   two passes do share the interning layer — name comparisons here are
//!   O(1) symbol compares and primitives resolve through the dense
//!   symbol-indexed table — and pre-resolved `VarAt` trees compile
//!   unchanged (the address is simply recomputed against this engine's
//!   own layout);
//! * **syntax dispatch** — the `case e of …` of the valuation functional
//!   disappears into the structure of [`Code`];
//! * **annotation dispatch** — `{μ}:e` is resolved against the monitor's
//!   `accepts` at compile time: accepted annotations become embedded
//!   [`Code::Hook`]s, foreign ones vanish entirely. What remains at run
//!   time is precisely the *dynamic* monitoring activity, matching the
//!   paper's observation that the residual overhead "corresponds to the
//!   linear complexity of the tracer dynamic behavior" (Figure 11).
//!
//! Compiling with no monitor yields the standard engine (every annotation
//! erased), used as the fast baseline in the benchmarks.

use monsem_core::env::Env;
use monsem_core::error::EvalError;
use monsem_core::machine::{constant, EvalOptions, EvalStats};
use monsem_core::prims::Prim;
use monsem_core::value::{ExtValue, Value};
use monsem_monitor::scope::Scope;
use monsem_monitor::spec::{HookPhase, IdentityMonitor, Outcome};
use monsem_monitor::Monitor;
use monsem_syntax::{Annotation, Expr, Ident};
use std::fmt;
use std::rc::Rc;

/// Errors raised at compile time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The engine compiles the pure language only.
    Unsupported(&'static str),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unsupported(what) => {
                write!(f, "`{what}` is not supported by the compiled engine")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled lambda: the body plus the source parameter name (for
/// diagnostics and hook environments).
#[derive(Debug)]
pub struct CodeLambda {
    param: Ident,
    body: Rc<Code>,
}

impl CodeLambda {
    /// The source-level parameter name.
    pub fn param(&self) -> &Ident {
        &self.param
    }
}

/// Names of the frames in scope at a hook, innermost first — enough to
/// rebuild a name-based [`Env`] for the monitoring functions.
#[derive(Debug, Clone)]
enum FrameNames {
    Plain(Ident),
    Rec(Rc<Vec<Ident>>),
}

/// Compiled code.
#[derive(Debug)]
pub enum Code {
    /// A literal value.
    Const(Value),
    /// A plain frame `depth` levels up.
    Local(u32),
    /// Binding `index` of the rec frame `depth` levels up.
    RecRef(u32, u32),
    /// A primitive resolved at compile time.
    Prim(Prim),
    /// A free variable: always a runtime error when reached (kept so
    /// compiled programs fail exactly where interpreted ones do).
    Unbound(Ident),
    /// A lambda.
    Lambda(Rc<CodeLambda>),
    /// A conditional.
    If(Rc<Code>, Rc<Code>, Rc<Code>),
    /// An application (argument evaluated first, as in Figure 2).
    App(Rc<Code>, Rc<Code>),
    /// A fully applied unary primitive `p a` — the application spine is
    /// resolved at compile time, removing two machine transitions and a
    /// partial-application allocation.
    Prim1(Prim, Rc<Code>),
    /// A direct call to a rec-frame function: `f a` where `f` resolves to
    /// binding `index` of the rec frame `depth` levels up. The callee is
    /// entered without materializing a closure value.
    CallRec {
        /// Rec frame depth.
        depth: u32,
        /// Binding index within the frame.
        index: u32,
        /// The argument.
        arg: Rc<Code>,
    },
    /// A saturated curried call `(f a) b` where `f` resolves to a rec
    /// binding whose source is a two-level lambda (`λx. λy. …`). Both
    /// frames are pushed directly and the inner body entered — neither
    /// the callee closure nor the intermediate partial application is
    /// ever materialized. This is the calling convention of
    /// state-threading translations (every function takes its argument,
    /// then the monitor state), so instrumented programs call through
    /// here on the hot path.
    CallRec2 {
        /// Rec frame depth.
        depth: u32,
        /// Binding index within the frame.
        index: u32,
        /// The first (inner) argument.
        arg1: Rc<Code>,
        /// The second (outer) argument, evaluated first as in Figure 2.
        arg2: Rc<Code>,
    },
    /// A fully applied binary primitive `(p a) b`; operands evaluate in
    /// the paper's order (`b`, then `a`).
    Prim2(Prim, Rc<Code>, Rc<Code>),
    /// Evaluate a value, push it as a plain frame, continue with the body
    /// (`let` and `letrec` binding sequences).
    Bind(Rc<Code>, Rc<Code>),
    /// The fused destructuring prologue `let p = v in let h = hd p in
    /// let t = tl p in body`: evaluate `v`, push all three frames in one
    /// transition. This is the shape instrumented programs emit at every
    /// monitored site, so the pair round-trip costs one machine step.
    BindPair(Rc<Code>, Rc<Code>),
    /// Push a rec frame of mutually recursive lambdas, then continue.
    RecGroup(Rc<Vec<Rc<CodeLambda>>>, Rc<Code>),
    /// Evaluate and discard, then continue.
    Seq(Rc<Code>, Rc<Code>),
    /// `par(e₁, …, eₙ)`: elements left-to-right, yielding the list — the
    /// compiled engine is sequential, so this is the reference semantics.
    Par(Rc<Vec<Rc<Code>>>),
    /// A monitored program point: the annotation survived compile-time
    /// dispatch, with the scope names captured for the hook environment.
    Hook {
        /// The (accepted) annotation.
        ann: Annotation,
        /// The compile-time site index (position in
        /// [`CompiledProgram::sites`]) — the key of the tiered profiler's
        /// [`SiteStats`] table.
        site: u32,
        /// Scope names, innermost first.
        names: Rc<Vec<FrameNamesOpaque>>,
        /// Whether the monitor's pre hook fires here (its
        /// `accepts_event` verdict, resolved at compile time).
        pre: bool,
        /// Whether the post hook fires here.
        post: bool,
        /// The annotated code.
        body: Rc<Code>,
    },
}

/// Public opaque wrapper for hook frame names.
#[derive(Debug, Clone)]
pub struct FrameNamesOpaque(FrameNames);

/// A compiled program, runnable with or without a monitor.
#[derive(Debug)]
pub struct CompiledProgram {
    code: Rc<Code>,
    /// Number of hooks embedded at compile time.
    pub hooks: usize,
    /// Annotation of each embedded hook, indexed by its site id (the
    /// order the compiler met them). Empty for unmonitored compiles.
    sites: Vec<Annotation>,
}

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

enum CFrame {
    Plain(Ident),
    Rec {
        names: Rc<Vec<Ident>>,
        /// Whether each binding's source is a two-level curried lambda,
        /// making it a [`Code::CallRec2`] target.
        curried2: Vec<bool>,
    },
}

struct Compiler<'m, M> {
    monitor: Option<&'m M>,
    scope: Vec<CFrame>,
    hooks: usize,
    site_anns: Vec<Annotation>,
}

impl<M: Monitor> Compiler<'_, M> {
    /// Whether `name` is bound by an enclosing frame (and so shadows any
    /// primitive of the same name).
    fn is_locally_bound(&self, name: &Ident) -> bool {
        self.scope.iter().any(|f| match f {
            CFrame::Plain(n) => n == name,
            CFrame::Rec { names, .. } => names.iter().any(|n| n == name),
        })
    }

    fn resolve(&self, name: &Ident) -> Code {
        for (depth, frame) in self.scope.iter().rev().enumerate() {
            match frame {
                CFrame::Plain(n) => {
                    if n == name {
                        return Code::Local(depth as u32);
                    }
                }
                CFrame::Rec { names, .. } => {
                    if let Some(index) = names.iter().position(|n| n == name) {
                        return Code::RecRef(depth as u32, index as u32);
                    }
                }
            }
        }
        match Prim::by_ident(name) {
            Some(p) => Code::Prim(p),
            None => Code::Unbound(name.clone()),
        }
    }

    /// Resolves `name` to a rec binding known at compile time to be a
    /// two-level curried lambda (a [`Code::CallRec2`] target); `None` if
    /// it is shadowed, not rec-bound, or single-level.
    fn resolve_curried2(&self, name: &Ident) -> Option<(u32, u32)> {
        for (depth, frame) in self.scope.iter().rev().enumerate() {
            match frame {
                CFrame::Plain(n) => {
                    if n == name {
                        return None;
                    }
                }
                CFrame::Rec { names, curried2 } => {
                    if let Some(index) = names.iter().position(|n| n == name) {
                        return curried2[index].then_some((depth as u32, index as u32));
                    }
                }
            }
        }
        None
    }

    fn frame_names(&self) -> Rc<Vec<FrameNamesOpaque>> {
        Rc::new(
            self.scope
                .iter()
                .rev()
                .map(|f| {
                    FrameNamesOpaque(match f {
                        CFrame::Plain(n) => FrameNames::Plain(n.clone()),
                        CFrame::Rec { names, .. } => FrameNames::Rec(names.clone()),
                    })
                })
                .collect(),
        )
    }

    fn compile(&mut self, e: &Expr) -> Result<Code, CompileError> {
        Ok(match e {
            Expr::Con(c) => Code::Const(constant(c)),
            Expr::Var(x) | Expr::VarAt(x, _) => self.resolve(x),
            Expr::Lambda(l) => {
                self.scope.push(CFrame::Plain(l.param.clone()));
                let body = self.compile(&l.body)?;
                self.scope.pop();
                Code::Lambda(Rc::new(CodeLambda {
                    param: l.param.clone(),
                    body: Rc::new(body),
                }))
            }
            Expr::If(c, t, f) => Code::If(
                Rc::new(self.compile(c)?),
                Rc::new(self.compile(t)?),
                Rc::new(self.compile(f)?),
            ),
            Expr::App(f, a) => {
                // Specialize fully applied primitives: `(p a) b` and
                // `p a` — the static part of the interpreter's
                // application protocol disappears.
                if let Expr::App(g, x) = &**f {
                    if let Expr::Var(op) = &**g {
                        if !self.is_locally_bound(op) {
                            if let Some(p) = Prim::by_name(op.as_str()) {
                                if p.arity() == 2 {
                                    return Ok(Code::Prim2(
                                        p,
                                        Rc::new(self.compile(x)?),
                                        Rc::new(self.compile(a)?),
                                    ));
                                }
                            }
                        }
                        if let Some((depth, index)) = self.resolve_curried2(op) {
                            return Ok(Code::CallRec2 {
                                depth,
                                index,
                                arg1: Rc::new(self.compile(x)?),
                                arg2: Rc::new(self.compile(a)?),
                            });
                        }
                    }
                }
                if let Expr::Var(op) = &**f {
                    if !self.is_locally_bound(op) {
                        if let Some(p) = Prim::by_name(op.as_str()) {
                            if p.arity() == 1 {
                                return Ok(Code::Prim1(p, Rc::new(self.compile(a)?)));
                            }
                        }
                    }
                    if let Code::RecRef(depth, index) = self.resolve(op) {
                        return Ok(Code::CallRec {
                            depth,
                            index,
                            arg: Rc::new(self.compile(a)?),
                        });
                    }
                }
                Code::App(Rc::new(self.compile(f)?), Rc::new(self.compile(a)?))
            }
            Expr::Let(x, v, b) => {
                let value = self.compile(v)?;
                self.scope.push(CFrame::Plain(x.clone()));
                let body = self.compile(b)?;
                self.scope.pop();
                bind_code(value, body)
            }
            Expr::Letrec(bs, body) => {
                // Mirror the interpreters' LetrecPlan: value bindings
                // first, then the rec frame, then annotated lambda
                // bindings (for their monitoring events), then the body.
                let rec_sources: Vec<(Ident, &monsem_syntax::Lambda)> = bs
                    .iter()
                    .filter_map(|b| match b.value.strip_annotations() {
                        Expr::Lambda(l) => Some((b.name.clone(), l)),
                        _ => None,
                    })
                    .collect();
                let value_bindings: Vec<&monsem_syntax::Binding> =
                    bs.iter().filter(|b| !b.value.is_lambda_like()).collect();
                let annotated_bindings: Vec<&monsem_syntax::Binding> = bs
                    .iter()
                    .filter(|b| b.value.is_lambda_like() && matches!(&*b.value, Expr::Ann(..)))
                    .collect();
                let has_rec = !rec_sources.is_empty();

                // 1. Value bindings, each in the scope of its predecessors.
                let mut values = Vec::with_capacity(value_bindings.len());
                for b in &value_bindings {
                    values.push(self.compile(&b.value)?);
                    self.scope.push(CFrame::Plain(b.name.clone()));
                }

                // 2. The rec frame; its lambdas close over this scope.
                if has_rec {
                    let names: Rc<Vec<Ident>> =
                        Rc::new(rec_sources.iter().map(|(n, _)| n.clone()).collect());
                    let curried2 = rec_sources
                        .iter()
                        .map(|(_, l)| matches!(&*l.body, Expr::Lambda(_)))
                        .collect();
                    self.scope.push(CFrame::Rec { names, curried2 });
                }
                let mut rec_lambdas = Vec::with_capacity(rec_sources.len());
                for (_, l) in &rec_sources {
                    self.scope.push(CFrame::Plain(l.param.clone()));
                    let body = self.compile(&l.body)?;
                    self.scope.pop();
                    rec_lambdas.push(Rc::new(CodeLambda {
                        param: l.param.clone(),
                        body: Rc::new(body),
                    }));
                }

                // 3. Annotated lambda bindings (hooks fire at bind time).
                let mut annotated = Vec::with_capacity(annotated_bindings.len());
                for b in &annotated_bindings {
                    annotated.push(self.compile(&b.value)?);
                    self.scope.push(CFrame::Plain(b.name.clone()));
                }

                // 4. The body, then unwind and assemble inside-out.
                let mut chain = self.compile(body)?;
                for _ in &annotated_bindings {
                    self.scope.pop();
                }
                for value in annotated.into_iter().rev() {
                    chain = Code::Bind(Rc::new(value), Rc::new(chain));
                }
                if has_rec {
                    self.scope.pop();
                    chain = Code::RecGroup(Rc::new(rec_lambdas), Rc::new(chain));
                }
                for _ in &value_bindings {
                    self.scope.pop();
                }
                for value in values.into_iter().rev() {
                    chain = Code::Bind(Rc::new(value), Rc::new(chain));
                }
                chain
            }
            Expr::Ann(ann, inner) => {
                // Static event dispatch: `accepts_event` is resolved per
                // phase at compile time, so a post-only monitor pays
                // nothing at pre (and vice versa), and an annotation with
                // neither phase live vanishes like a foreign one.
                let (pre, post) = self
                    .monitor
                    .map(|m| {
                        (
                            m.accepts_event(ann, HookPhase::Pre),
                            m.accepts_event(ann, HookPhase::Post),
                        )
                    })
                    .unwrap_or((false, false));
                let accepted =
                    (pre || post) && self.monitor.map(|m| m.accepts(ann)).unwrap_or(false);
                if accepted {
                    self.hooks += 1;
                    let site = self.site_anns.len() as u32;
                    self.site_anns.push(ann.clone());
                    let names = self.frame_names();
                    let body = self.compile(inner)?;
                    Code::Hook {
                        ann: ann.clone(),
                        site,
                        names,
                        pre,
                        post,
                        body: Rc::new(body),
                    }
                } else {
                    // Static annotation dispatch: foreign annotations cost
                    // nothing at run time.
                    self.compile(inner)?
                }
            }
            Expr::Seq(a, b) => Code::Seq(Rc::new(self.compile(a)?), Rc::new(self.compile(b)?)),
            Expr::Par(items) => {
                let mut codes = Vec::with_capacity(items.len());
                for item in items {
                    codes.push(Rc::new(self.compile(item)?));
                }
                Code::Par(Rc::new(codes))
            }
            Expr::Assign(..) => return Err(CompileError::Unsupported("assignment")),
            Expr::While(..) => return Err(CompileError::Unsupported("while")),
        })
    }
}

/// Assembles a `let`, fusing the destructuring prologue
/// `let p = v in let h = hd p in let t = tl p in body` into
/// [`Code::BindPair`] when the projections target exactly the bindings
/// the pattern introduces.
fn bind_code(value: Code, body: Code) -> Code {
    if let Code::Bind(hd_v, rest1) = &body {
        if let Code::Prim1(Prim::Hd, hd_of) = &**hd_v {
            if matches!(&**hd_of, Code::Local(0)) {
                if let Code::Bind(tl_v, rest2) = &**rest1 {
                    if let Code::Prim1(Prim::Tl, tl_of) = &**tl_v {
                        if matches!(&**tl_of, Code::Local(1)) {
                            return Code::BindPair(Rc::new(value), rest2.clone());
                        }
                    }
                }
            }
        }
    }
    Code::Bind(Rc::new(value), Rc::new(body))
}

/// Compiles a program for standard execution: every annotation is erased
/// at compile time.
///
/// # Errors
///
/// [`CompileError::Unsupported`] on imperative constructs.
pub fn compile(e: &Expr) -> Result<CompiledProgram, CompileError> {
    let mut c: Compiler<'_, IdentityMonitor> = Compiler {
        monitor: None,
        scope: Vec::new(),
        hooks: 0,
        site_anns: Vec::new(),
    };
    let code = c.compile(e)?;
    Ok(CompiledProgram {
        code: Rc::new(code),
        hooks: 0,
        sites: Vec::new(),
    })
}

/// Compiles a program against a monitor: accepted annotations become
/// embedded hooks, everything else is erased. This is the instrumented
/// program of specialization level 2.
///
/// # Errors
///
/// [`CompileError::Unsupported`] on imperative constructs.
pub fn compile_monitored<M: Monitor>(
    e: &Expr,
    monitor: &M,
) -> Result<CompiledProgram, CompileError> {
    let mut c = Compiler {
        monitor: Some(monitor),
        scope: Vec::new(),
        hooks: 0,
        site_anns: Vec::new(),
    };
    let code = c.compile(e)?;
    let hooks = c.hooks;
    let sites = c.site_anns;
    Ok(CompiledProgram {
        code: Rc::new(code),
        hooks,
        sites,
    })
}

// ---------------------------------------------------------------------
// Site profiling (the tiered pipeline's cheap layer)
// ---------------------------------------------------------------------

/// Event counters for one annotation site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteCount {
    /// Pre-hook firings at this site.
    pub pre: u64,
    /// Post-hook firings at this site.
    pub post: u64,
}

impl SiteCount {
    /// Total hook firings at this site.
    pub fn total(&self) -> u64 {
        self.pre + self.post
    }
}

/// Per-site event counters, indexed by the compile-time site id — the
/// cheap profiling layer of the tiered pipeline. Updating a counter on
/// the [`Code::Hook`] path is one array index and one add, so a
/// profiled run costs next to nothing over a plain monitored run.
#[derive(Debug, Clone, Default)]
pub struct SiteStats {
    counts: Vec<SiteCount>,
}

impl SiteStats {
    /// A zeroed table sized for `program`'s embedded hooks.
    pub fn for_program(program: &CompiledProgram) -> SiteStats {
        SiteStats {
            counts: vec![SiteCount::default(); program.sites.len()],
        }
    }

    /// The per-site counters, indexed by site id.
    pub fn counts(&self) -> &[SiteCount] {
        &self.counts
    }

    /// Total events across all sites.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(SiteCount::total).sum()
    }

    /// Site ids whose total event count reached `threshold`.
    pub fn hot_sites(&self, threshold: u64) -> Vec<usize> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.total() >= threshold)
            .map(|(i, _)| i)
            .collect()
    }

    /// Resets every counter to zero, keeping the table size.
    pub fn reset(&mut self) {
        for c in &mut self.counts {
            *c = SiteCount::default();
        }
    }
}

/// A per-event callback the engine drives on hook firings. The default
/// [`NoProbe`] monomorphizes to nothing, so unprofiled runs pay zero.
trait SiteProbe {
    fn pre_event(&mut self, site: u32);
    fn post_event(&mut self, site: u32);
}

/// The zero-cost probe: unprofiled runs compile the callbacks away.
struct NoProbe;

impl SiteProbe for NoProbe {
    #[inline(always)]
    fn pre_event(&mut self, _site: u32) {}
    #[inline(always)]
    fn post_event(&mut self, _site: u32) {}
}

impl SiteProbe for SiteStats {
    #[inline(always)]
    fn pre_event(&mut self, site: u32) {
        if let Some(c) = self.counts.get_mut(site as usize) {
            c.pre += 1;
        }
    }

    #[inline(always)]
    fn post_event(&mut self, site: u32) {
        if let Some(c) = self.counts.get_mut(site as usize) {
            c.post += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// Runtime environments: persistent chains of plain and rec frames,
/// indexed positionally.
#[derive(Clone, Debug, Default)]
struct REnv(Option<Rc<RFrame>>);

#[derive(Debug)]
enum RFrame {
    Plain {
        value: Value,
        parent: REnv,
    },
    Rec {
        lambdas: Rc<Vec<Rc<CodeLambda>>>,
        parent: REnv,
    },
}

/// A compiled closure, stored in [`Value::Ext`].
#[derive(Debug)]
struct CompiledClosure {
    lambda: Rc<CodeLambda>,
    env: REnv,
}

const EXT_TAG: &str = "compiled-fn";

impl REnv {
    fn plain(&self, value: Value) -> REnv {
        REnv(Some(Rc::new(RFrame::Plain {
            value,
            parent: self.clone(),
        })))
    }

    fn rec(&self, lambdas: Rc<Vec<Rc<CodeLambda>>>) -> REnv {
        REnv(Some(Rc::new(RFrame::Rec {
            lambdas,
            parent: self.clone(),
        })))
    }

    fn frame(&self, depth: u32) -> &RFrame {
        let mut cur = self;
        let mut d = depth;
        loop {
            let frame = cur
                .0
                .as_deref()
                .expect("compiler-resolved depth is in range");
            if d == 0 {
                return frame;
            }
            d -= 1;
            cur = match frame {
                RFrame::Plain { parent, .. } | RFrame::Rec { parent, .. } => parent,
            };
        }
    }

    fn local(&self, depth: u32) -> Value {
        match self.frame(depth) {
            RFrame::Plain { value, .. } => value.clone(),
            RFrame::Rec { .. } => unreachable!("compiler never aims Local at a rec frame"),
        }
    }

    /// Resolves a rec-frame function for a direct call: the body and the
    /// environment rooted at the frame (no closure value is built).
    fn enter_rec(&self, depth: u32, index: u32) -> (Rc<Code>, REnv) {
        let mut cur = self;
        let mut d = depth;
        loop {
            let frame = cur
                .0
                .as_deref()
                .expect("compiler-resolved depth is in range");
            if d == 0 {
                match frame {
                    RFrame::Rec { lambdas, .. } => {
                        return (lambdas[index as usize].body.clone(), cur.clone());
                    }
                    RFrame::Plain { .. } => {
                        unreachable!("compiler never aims CallRec at a plain frame")
                    }
                }
            }
            d -= 1;
            cur = match frame {
                RFrame::Plain { parent, .. } | RFrame::Rec { parent, .. } => parent,
            };
        }
    }

    fn rec_ref(&self, depth: u32, index: u32) -> Value {
        let mut cur = self;
        let mut d = depth;
        loop {
            let frame = cur
                .0
                .as_deref()
                .expect("compiler-resolved depth is in range");
            if d == 0 {
                match frame {
                    RFrame::Rec { lambdas, .. } => {
                        let closure = CompiledClosure {
                            lambda: lambdas[index as usize].clone(),
                            env: cur.clone(),
                        };
                        return Value::Ext(ExtValue::new(EXT_TAG, closure));
                    }
                    RFrame::Plain { .. } => {
                        unreachable!("compiler never aims RecRef at a plain frame")
                    }
                }
            }
            d -= 1;
            cur = match frame {
                RFrame::Plain { parent, .. } | RFrame::Rec { parent, .. } => parent,
            };
        }
    }

    /// Rebuilds a name-based environment for monitor hooks.
    fn to_env(&self, names: &[FrameNamesOpaque]) -> Env {
        // Collect (outermost first) then extend inward so shadowing works.
        let mut pairs: Vec<(Ident, Value)> = Vec::new();
        let mut cur = self;
        for FrameNamesOpaque(fnames) in names {
            let frame = cur.0.as_deref().expect("names align with frames");
            match (fnames, frame) {
                (FrameNames::Plain(n), RFrame::Plain { value, parent }) => {
                    pairs.push((n.clone(), value.clone()));
                    cur = parent;
                }
                (FrameNames::Rec(ns), RFrame::Rec { lambdas, parent }) => {
                    for (i, n) in ns.iter().enumerate() {
                        let closure = CompiledClosure {
                            lambda: lambdas[i].clone(),
                            env: cur.clone(),
                        };
                        pairs.push((n.clone(), Value::Ext(ExtValue::new(EXT_TAG, closure))));
                    }
                    cur = parent;
                }
                _ => unreachable!("compiler keeps names and frames aligned"),
            }
        }
        let mut env = Env::empty();
        for (n, v) in pairs.into_iter().rev() {
            env = env.extend(n, v);
        }
        env
    }
}

#[derive(Debug)]
enum RtFrame {
    Arg {
        func: Rc<Code>,
        env: REnv,
    },
    Apply {
        arg: Value,
    },
    /// Second operand of a `Prim2` evaluated; evaluate the first next.
    Prim2First {
        p: Prim,
        first: Rc<Code>,
        env: REnv,
    },
    /// Both operands ready; apply.
    Prim2Apply {
        p: Prim,
        second: Value,
    },
    /// Operand of a `Prim1` evaluated; apply.
    Prim1Apply {
        p: Prim,
    },
    /// Argument of a direct rec call evaluated; enter the callee.
    EnterRec {
        depth: u32,
        index: u32,
        env: REnv,
    },
    /// Outer argument of a curried rec call evaluated; evaluate the
    /// inner argument next.
    CallRec2Second {
        depth: u32,
        index: u32,
        arg1: Rc<Code>,
        env: REnv,
    },
    /// Both arguments of a curried rec call ready; enter the inner body
    /// with both frames pushed.
    EnterRec2 {
        depth: u32,
        index: u32,
        second: Value,
        env: REnv,
    },
    Branch {
        then: Rc<Code>,
        els: Rc<Code>,
        env: REnv,
    },
    BindThen {
        body: Rc<Code>,
        env: REnv,
    },
    /// Value of a fused pair-destructuring `let` evaluated; push the
    /// pair and both projections as frames and continue with the body.
    BindPairThen {
        body: Rc<Code>,
        env: REnv,
    },
    Discard {
        second: Rc<Code>,
        env: REnv,
    },
    /// One `par` element evaluated; evaluate the next or finish the list.
    Par {
        items: Rc<Vec<Rc<Code>>>,
        done: Vec<Value>,
        env: REnv,
    },
    Post {
        ann: Annotation,
        site: u32,
        names: Rc<Vec<FrameNamesOpaque>>,
        env: REnv,
    },
}

enum RtState {
    Eval(Rc<Code>, REnv),
    Continue(Value),
}

/// Best-effort inline evaluation of operand subtrees that cannot touch
/// the monitor, the stack, or the environment: constants, local lookups,
/// and fully-applied primitives over such (all primitives are pure).
/// `Ok(None)` means the operand needs the general machine; errors
/// surface exactly as the machine would raise them, since sub-operands
/// are probed in the machine's evaluation order.
fn quick(code: &Code, env: &REnv) -> Result<Option<Value>, EvalError> {
    Ok(Some(match code {
        Code::Const(v) => v.clone(),
        Code::Local(d) => env.local(*d),
        Code::Prim1(p, a) => match quick(a, env)? {
            Some(av) => p.apply(&[av])?,
            None => return Ok(None),
        },
        Code::Prim2(p, a, b) => {
            let Some(bv) = quick(b, env)? else {
                return Ok(None);
            };
            match quick(a, env)? {
                Some(av) => p.apply(&[av, bv])?,
                None => return Ok(None),
            }
        }
        // Conditionals over quick operands — the shape of the inlined
        // DFA step chains instrumentation emits — run without touching
        // the machine at all.
        Code::If(c, t, f) => match quick(c, env)? {
            Some(Value::Bool(cond)) => match quick(if cond { t } else { f }, env)? {
                Some(v) => v,
                None => return Ok(None),
            },
            Some(other) => return Err(EvalError::NonBooleanCondition(other.to_string())),
            None => return Ok(None),
        },
        _ => return Ok(None),
    }))
}

impl CompiledProgram {
    /// Runs the program (no monitor state; hooks, if any, are ignored —
    /// compile without a monitor for the standard engine).
    ///
    /// # Errors
    ///
    /// Any [`EvalError`] the program provokes.
    pub fn run(&self) -> Result<Value, EvalError> {
        self.run_monitored(&IdentityMonitor, &EvalOptions::default())
            .map(|(v, ())| v)
    }

    /// Runs the program under a monitor, threading its state through the
    /// embedded hooks.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`] the program provokes, including
    /// [`EvalError::FuelExhausted`].
    pub fn run_monitored<M: Monitor>(
        &self,
        monitor: &M,
        options: &EvalOptions,
    ) -> Result<(Value, M::State), EvalError> {
        self.run_monitored_stats(monitor, options)
            .map(|(v, s, _)| (v, s))
    }

    /// Like [`CompiledProgram::run_monitored`], also reporting
    /// [`EvalStats`]. `stats.steps` counts *this engine's* transitions —
    /// fuel is decremented once per transition, exactly as in
    /// `monsem_core::machine`, but the compiled engine fuses work
    /// (`Prim1`/`Prim2`/`CallRec` are single transitions the interpreter
    /// spreads over several), so the same program legitimately takes fewer
    /// steps here. The differential test `tests/fuel_accounting.rs` pins
    /// down the invariant both engines share: fuel = steps succeeds,
    /// fuel = steps − 1 exhausts.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`] the program provokes, including
    /// [`EvalError::FuelExhausted`].
    pub fn run_monitored_stats<M: Monitor>(
        &self,
        monitor: &M,
        options: &EvalOptions,
    ) -> Result<(Value, M::State, EvalStats), EvalError> {
        self.run_probed(monitor, options, &mut NoProbe)
    }

    /// Like [`CompiledProgram::run_monitored`], additionally recording
    /// the pre-abstraction event stream to `sink` — the compiled-engine
    /// entry point for producing serializable tapes. The tape is closed
    /// with a `done` marker only when the run succeeds, matching
    /// `record_monitored` on the interpreter.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`] the program provokes, including
    /// [`EvalError::FuelExhausted`].
    pub fn run_monitored_taped<M: Monitor + Clone>(
        &self,
        monitor: &M,
        sink: &monsem_monitor::SharedSink,
        options: &EvalOptions,
    ) -> Result<(Value, M::State), EvalError> {
        let taping = monsem_monitor::Taping::new(monitor.clone(), sink.clone());
        let (value, state) = self.run_monitored(&taping, options)?;
        sink.record_done();
        Ok((value, state))
    }

    /// Like [`CompiledProgram::run_monitored`], additionally counting
    /// hook firings per annotation site into `stats` — the tiered
    /// pipeline's profiling layer. The counters accumulate, so one table
    /// can profile several runs.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`] the program provokes, including
    /// [`EvalError::FuelExhausted`].
    pub fn run_monitored_profiled<M: Monitor>(
        &self,
        monitor: &M,
        options: &EvalOptions,
        stats: &mut SiteStats,
    ) -> Result<(Value, M::State), EvalError> {
        self.run_probed(monitor, options, stats)
            .map(|(v, s, _)| (v, s))
    }

    /// Annotation of each embedded hook, indexed by site id.
    pub fn sites(&self) -> &[Annotation] {
        &self.sites
    }

    fn run_probed<M: Monitor, P: SiteProbe>(
        &self,
        monitor: &M,
        options: &EvalOptions,
        probe: &mut P,
    ) -> Result<(Value, M::State, EvalStats), EvalError> {
        let mut stack: Vec<RtFrame> = Vec::new();
        let mut state = RtState::Eval(self.code.clone(), REnv::default());
        let mut sigma = monitor.initial_state();
        let mut fuel = options.fuel;
        let mut stats = EvalStats::default();

        loop {
            if fuel == 0 {
                return Err(EvalError::FuelExhausted);
            }
            fuel -= 1;
            stats.steps += 1;
            stats.max_stack = stats.max_stack.max(stack.len());

            state = match state {
                RtState::Eval(code, env) => match &*code {
                    Code::Const(v) => RtState::Continue(v.clone()),
                    Code::Local(d) => RtState::Continue(env.local(*d)),
                    Code::RecRef(d, i) => RtState::Continue(env.rec_ref(*d, *i)),
                    Code::Prim(p) => RtState::Continue(Value::prim(*p)),
                    Code::Unbound(x) => return Err(EvalError::UnboundVariable(x.clone())),
                    Code::Lambda(l) => RtState::Continue(Value::Ext(ExtValue::new(
                        EXT_TAG,
                        CompiledClosure {
                            lambda: l.clone(),
                            env: env.clone(),
                        },
                    ))),
                    Code::If(c, t, f) => match quick(c, &env)? {
                        Some(Value::Bool(true)) => RtState::Eval(t.clone(), env),
                        Some(Value::Bool(false)) => RtState::Eval(f.clone(), env),
                        Some(other) => {
                            return Err(EvalError::NonBooleanCondition(other.to_string()))
                        }
                        None => {
                            stack.push(RtFrame::Branch {
                                then: t.clone(),
                                els: f.clone(),
                                env: env.clone(),
                            });
                            RtState::Eval(c.clone(), env)
                        }
                    },
                    Code::App(f, a) => {
                        stack.push(RtFrame::Arg {
                            func: f.clone(),
                            env: env.clone(),
                        });
                        RtState::Eval(a.clone(), env)
                    }
                    Code::Prim1(p, a) => match quick(a, &env)? {
                        Some(av) => RtState::Continue(p.apply(&[av])?),
                        None => {
                            stack.push(RtFrame::Prim1Apply { p: *p });
                            RtState::Eval(a.clone(), env)
                        }
                    },
                    Code::Prim2(p, a, b) => match quick(b, &env)? {
                        Some(bv) => match quick(a, &env)? {
                            Some(av) => RtState::Continue(p.apply(&[av, bv])?),
                            None => {
                                stack.push(RtFrame::Prim2Apply { p: *p, second: bv });
                                RtState::Eval(a.clone(), env)
                            }
                        },
                        None => {
                            stack.push(RtFrame::Prim2First {
                                p: *p,
                                first: a.clone(),
                                env: env.clone(),
                            });
                            RtState::Eval(b.clone(), env)
                        }
                    },
                    Code::CallRec { depth, index, arg } => match quick(arg, &env)? {
                        Some(av) => {
                            let (body, callee_env) = env.enter_rec(*depth, *index);
                            RtState::Eval(body, callee_env.plain(av))
                        }
                        None => {
                            stack.push(RtFrame::EnterRec {
                                depth: *depth,
                                index: *index,
                                env: env.clone(),
                            });
                            RtState::Eval(arg.clone(), env)
                        }
                    },
                    Code::CallRec2 {
                        depth,
                        index,
                        arg1,
                        arg2,
                    } => match quick(arg2, &env)? {
                        Some(bv) => match quick(arg1, &env)? {
                            Some(av) => {
                                let (body, callee_env) = env.enter_rec(*depth, *index);
                                match &*body {
                                    Code::Lambda(inner) => RtState::Eval(
                                        inner.body.clone(),
                                        callee_env.plain(av).plain(bv),
                                    ),
                                    _ => unreachable!(
                                        "compiler aims CallRec2 only at curried lambdas"
                                    ),
                                }
                            }
                            None => {
                                stack.push(RtFrame::EnterRec2 {
                                    depth: *depth,
                                    index: *index,
                                    second: bv,
                                    env: env.clone(),
                                });
                                RtState::Eval(arg1.clone(), env)
                            }
                        },
                        None => {
                            stack.push(RtFrame::CallRec2Second {
                                depth: *depth,
                                index: *index,
                                arg1: arg1.clone(),
                                env: env.clone(),
                            });
                            RtState::Eval(arg2.clone(), env)
                        }
                    },
                    Code::Bind(v, body) => match quick(v, &env)? {
                        Some(vv) => {
                            // A run of quick bindings (the destructuring
                            // prologues instrumentation emits) completes
                            // in this one transition.
                            let mut env2 = env.plain(vv);
                            let mut cur = body.clone();
                            while let Code::Bind(v2, b2) = &*cur {
                                match quick(v2, &env2)? {
                                    Some(vv2) => {
                                        env2 = env2.plain(vv2);
                                        cur = b2.clone();
                                    }
                                    None => break,
                                }
                            }
                            RtState::Eval(cur, env2)
                        }
                        None => {
                            stack.push(RtFrame::BindThen {
                                body: body.clone(),
                                env: env.clone(),
                            });
                            RtState::Eval(v.clone(), env)
                        }
                    },
                    Code::BindPair(v, body) => {
                        stack.push(RtFrame::BindPairThen {
                            body: body.clone(),
                            env: env.clone(),
                        });
                        RtState::Eval(v.clone(), env)
                    }
                    Code::RecGroup(lambdas, rest) => {
                        RtState::Eval(rest.clone(), env.rec(lambdas.clone()))
                    }
                    Code::Seq(a, b) => {
                        stack.push(RtFrame::Discard {
                            second: b.clone(),
                            env: env.clone(),
                        });
                        RtState::Eval(a.clone(), env)
                    }
                    Code::Par(items) => match items.first() {
                        None => RtState::Continue(Value::Nil),
                        Some(first) => {
                            let first = first.clone();
                            stack.push(RtFrame::Par {
                                items: items.clone(),
                                done: Vec::new(),
                                env: env.clone(),
                            });
                            RtState::Eval(first, env)
                        }
                    },
                    Code::Hook {
                        ann,
                        site,
                        names,
                        pre,
                        post,
                        body,
                    } => {
                        if *pre {
                            probe.pre_event(*site);
                            let hook_env = env.to_env(names);
                            sigma = match monitor.try_pre(
                                ann,
                                body_expr_placeholder(),
                                &Scope::pure(&hook_env),
                                sigma,
                            ) {
                                Outcome::Continue(s) => s,
                                Outcome::Abort {
                                    monitor, reason, ..
                                } => return Err(EvalError::MonitorAbort { monitor, reason }),
                            };
                        }
                        if *post {
                            stack.push(RtFrame::Post {
                                ann: ann.clone(),
                                site: *site,
                                names: names.clone(),
                                env: env.clone(),
                            });
                        }
                        RtState::Eval(body.clone(), env)
                    }
                },
                RtState::Continue(value) => match stack.pop() {
                    None => return Ok((value, sigma, stats)),
                    Some(RtFrame::Post {
                        ann,
                        site,
                        names,
                        env,
                    }) => {
                        probe.post_event(site);
                        let hook_env = env.to_env(&names);
                        sigma = match monitor.try_post(
                            &ann,
                            body_expr_placeholder(),
                            &Scope::pure(&hook_env),
                            &value,
                            sigma,
                        ) {
                            Outcome::Continue(s) => s,
                            Outcome::Abort {
                                monitor, reason, ..
                            } => return Err(EvalError::MonitorAbort { monitor, reason }),
                        };
                        RtState::Continue(value)
                    }
                    Some(RtFrame::Arg { func, env }) => {
                        stack.push(RtFrame::Apply { arg: value });
                        RtState::Eval(func, env)
                    }
                    Some(RtFrame::Prim2First { p, first, env }) => {
                        stack.push(RtFrame::Prim2Apply { p, second: value });
                        RtState::Eval(first, env)
                    }
                    Some(RtFrame::Prim2Apply { p, second }) => {
                        RtState::Continue(p.apply(&[value, second])?)
                    }
                    Some(RtFrame::Prim1Apply { p }) => RtState::Continue(p.apply(&[value])?),
                    Some(RtFrame::EnterRec { depth, index, env }) => {
                        let (body, callee_env) = env.enter_rec(depth, index);
                        RtState::Eval(body, callee_env.plain(value))
                    }
                    Some(RtFrame::CallRec2Second {
                        depth,
                        index,
                        arg1,
                        env,
                    }) => {
                        stack.push(RtFrame::EnterRec2 {
                            depth,
                            index,
                            second: value,
                            env: env.clone(),
                        });
                        RtState::Eval(arg1, env)
                    }
                    Some(RtFrame::EnterRec2 {
                        depth,
                        index,
                        second,
                        env,
                    }) => {
                        let (body, callee_env) = env.enter_rec(depth, index);
                        match &*body {
                            Code::Lambda(inner) => RtState::Eval(
                                inner.body.clone(),
                                callee_env.plain(value).plain(second),
                            ),
                            _ => unreachable!("compiler aims CallRec2 only at curried lambdas"),
                        }
                    }
                    Some(RtFrame::Apply { arg }) => match value {
                        Value::Ext(ext) => match ext.downcast::<CompiledClosure>() {
                            Some(c) => RtState::Eval(c.lambda.body.clone(), c.env.plain(arg)),
                            None => {
                                return Err(EvalError::NotAFunction(Value::Ext(ext).to_string()))
                            }
                        },
                        Value::Prim(p, collected) => {
                            let mut args = collected.as_ref().clone();
                            args.push(arg);
                            if args.len() == p.arity() {
                                RtState::Continue(p.apply(&args)?)
                            } else {
                                RtState::Continue(Value::Prim(p, Rc::new(args)))
                            }
                        }
                        other => return Err(EvalError::NotAFunction(other.to_string())),
                    },
                    Some(RtFrame::Branch { then, els, env }) => match value {
                        Value::Bool(true) => RtState::Eval(then, env),
                        Value::Bool(false) => RtState::Eval(els, env),
                        other => return Err(EvalError::NonBooleanCondition(other.to_string())),
                    },
                    Some(RtFrame::BindThen { body, env }) => RtState::Eval(body, env.plain(value)),
                    Some(RtFrame::BindPairThen { body, env }) => match &value {
                        Value::Pair(h, t) => {
                            let (h, t) = ((**h).clone(), (**t).clone());
                            RtState::Eval(body, env.plain(value).plain(h).plain(t))
                        }
                        // Reproduce exactly the error `hd` would raise.
                        _ => match Prim::Hd.apply(&[value]) {
                            Err(e) => return Err(e),
                            Ok(_) => unreachable!("hd rejects non-pairs"),
                        },
                    },
                    Some(RtFrame::Discard { second, env }) => RtState::Eval(second, env),
                    Some(RtFrame::Par {
                        items,
                        mut done,
                        env,
                    }) => {
                        done.push(value);
                        match items.get(done.len()) {
                            Some(next) => {
                                let next = next.clone();
                                stack.push(RtFrame::Par {
                                    items,
                                    done,
                                    env: env.clone(),
                                });
                                RtState::Eval(next, env)
                            }
                            None => RtState::Continue(Value::list(done)),
                        }
                    }
                },
            };
        }
    }
}

/// The hook's `S` argument. Compiled code no longer carries source
/// expressions; monitors that inspect the expression text should run on
/// an interpreter level. The placeholder keeps the `Monitor` interface
/// uniform.
fn body_expr_placeholder() -> &'static Expr {
    thread_local! {
        static PLACEHOLDER: &'static Expr = Box::leak(Box::new(Expr::var("compiled")));
    }
    PLACEHOLDER.with(|e| *e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::machine::eval;
    use monsem_core::programs;
    use monsem_monitor::machine::eval_monitored;
    use monsem_monitors::{Collecting, Profiler, Tracer};
    use monsem_syntax::parse_expr;

    fn run_compiled(src: &str) -> Result<Value, EvalError> {
        compile(&parse_expr(src).unwrap()).unwrap().run()
    }

    const PROGRAMS: &[&str] = &[
        "letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac 10",
        "letrec fib = lambda n. if n < 2 then n else (fib (n-1)) + (fib (n-2)) in fib 14",
        "let twice = lambda f. lambda x. f (f x) in twice (lambda n. n * 2) 5",
        "letrec sum = lambda l. if null? l then 0 else (hd l) + (sum (tl l)) in sum [1,2,3]",
        "letrec even = lambda n. if n = 0 then true else odd (n - 1) \
         and odd = lambda n. if n = 0 then false else even (n - 1) in even 9",
        "letrec a = 2 in letrec b = a * 3 in a + b",
        "letrec base = 10 and add = lambda x. x + base in add 5",
        "{root}:(letrec f = lambda x. {l}:(x + 1) in f 41)",
        "let inc = (+) 1 in inc 41",
        "par(1 + 2, 3 * 4, 0 - 5)",
        "hd par(letrec f = lambda x. x + 1 in f 9, 2)",
        "par()",
        "par(1, 1 / 0, nope)",
        "1; 2",
        "1 + true",
        "missing (1 / 0)",
        "hd []",
        "1 2",
        "if 3 then 1 else 2",
    ];

    #[test]
    fn compiled_engine_agrees_with_the_interpreter() {
        for src in PROGRAMS {
            let e = parse_expr(src).unwrap();
            assert_eq!(compile(&e).unwrap().run(), eval(&e), "program: {src}");
        }
    }

    #[test]
    fn unbound_variables_fail_only_when_reached() {
        assert_eq!(run_compiled("if true then 1 else nope"), Ok(Value::Int(1)));
        assert_eq!(
            run_compiled("if false then 1 else nope"),
            Err(EvalError::UnboundVariable(Ident::new("nope")))
        );
    }

    #[test]
    fn annotations_are_erased_by_the_standard_compile() {
        let e = programs::fac_ab(5);
        let p = compile(&e).unwrap();
        assert_eq!(p.hooks, 0);
        assert_eq!(p.run(), Ok(Value::Int(120)));
    }

    #[test]
    fn monitored_compile_embeds_only_accepted_hooks() {
        // The traced program has 2 header annotations; a profiler accepts
        // neither, a tracer both.
        let e = programs::fac_mul_traced(3);
        let with_tracer = compile_monitored(&e, &Tracer::new()).unwrap();
        assert_eq!(with_tracer.hooks, 2);
        let with_profiler = compile_monitored(&e, &Profiler::new()).unwrap();
        assert_eq!(with_profiler.hooks, 0);
    }

    #[test]
    fn site_profiling_counts_every_hook_firing_per_site() {
        // fac_mul_traced(3) has two traced sites; fac recurses 4 times
        // (3, 2, 1, 0), mul is applied 3 times.
        let e = programs::fac_mul_traced(3);
        let program = compile_monitored(&e, &Tracer::new()).unwrap();
        assert_eq!(program.sites().len(), 2);
        let mut stats = SiteStats::for_program(&program);
        let monitored = program
            .run_monitored(&Tracer::new(), &EvalOptions::default())
            .unwrap();
        let profiled = program
            .run_monitored_profiled(&Tracer::new(), &EvalOptions::default(), &mut stats)
            .unwrap();
        assert_eq!(monitored, profiled, "profiling must not perturb the run");
        let per_site: Vec<u64> = stats.counts().iter().map(SiteCount::total).collect();
        let mut sorted = per_site.clone();
        sorted.sort_unstable();
        // Tracer fires pre+post per event: 2·4 and 2·3 in site order.
        assert_eq!(sorted, vec![6, 8], "per-site totals: {per_site:?}");
        assert_eq!(stats.total(), 14);
        assert_eq!(
            stats.hot_sites(7),
            vec![per_site.iter().position(|&c| c == 8).unwrap()]
        );
        stats.reset();
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.counts().len(), 2);
    }

    #[test]
    fn compiled_profiler_matches_the_interpreted_profiler() {
        let e = programs::fac_mul_profiled(6);
        let interpreted = eval_monitored(&e, &Profiler::new()).unwrap();
        let compiled = compile_monitored(&e, &Profiler::new())
            .unwrap()
            .run_monitored(&Profiler::new(), &EvalOptions::default())
            .unwrap();
        assert_eq!(interpreted.0, compiled.0);
        assert_eq!(interpreted.1, compiled.1);
    }

    #[test]
    fn compiled_tracer_reproduces_the_section8_transcript() {
        let e = programs::fac_mul_traced(3);
        let interpreted = eval_monitored(&e, &Tracer::new()).unwrap();
        let compiled = compile_monitored(&e, &Tracer::new())
            .unwrap()
            .run_monitored(&Tracer::new(), &EvalOptions::default())
            .unwrap();
        assert_eq!(compiled.0, interpreted.0);
        assert_eq!(compiled.1.chan.render(), interpreted.1.chan.render());
    }

    #[test]
    fn compiled_collecting_matches_interpreted() {
        let e = programs::collecting_fac(4);
        let interpreted = eval_monitored(&e, &Collecting::new()).unwrap();
        let compiled = compile_monitored(&e, &Collecting::new())
            .unwrap()
            .run_monitored(&Collecting::new(), &EvalOptions::default())
            .unwrap();
        assert_eq!(compiled.1, interpreted.1);
    }

    #[test]
    fn hook_env_sees_letrec_functions_as_opaque_values() {
        let e = parse_expr("letrec f = lambda x. {fh(f, x)}:(x + 1) in f 1").unwrap();
        let t = Tracer::new();
        let (_, s) = compile_monitored(&e, &t)
            .unwrap()
            .run_monitored(&t, &EvalOptions::default())
            .unwrap();
        let line = &s.chan.lines()[0];
        assert!(line.contains("<compiled-fn> 1"), "{line}");
    }

    #[test]
    fn imperative_constructs_are_compile_errors() {
        let e = parse_expr("x := 1").unwrap();
        assert_eq!(
            compile(&e).unwrap_err(),
            CompileError::Unsupported("assignment")
        );
    }

    #[test]
    fn fuel_is_metered() {
        let e = parse_expr("letrec loop = lambda x. loop x in loop 0").unwrap();
        let p = compile(&e).unwrap();
        assert_eq!(
            p.run_monitored(&IdentityMonitor, &EvalOptions::with_fuel(5_000)),
            Err(EvalError::FuelExhausted)
        );
    }

    #[test]
    fn deep_recursion_is_stack_safe() {
        assert_eq!(
            run_compiled(
                "letrec count = lambda n. if n = 0 then 0 else count (n - 1) in count 200000"
            ),
            Ok(Value::Int(0))
        );
    }

    /// Post-hook monitor that vetoes any value above its bound.
    #[derive(Debug)]
    struct Cap(i64);
    impl Monitor for Cap {
        type State = ();
        fn name(&self) -> &str {
            "cap"
        }
        fn initial_state(&self) {}
        fn try_post(
            &self,
            _: &monsem_syntax::Annotation,
            _: &monsem_syntax::Expr,
            _: &monsem_monitor::scope::Scope<'_>,
            value: &Value,
            (): (),
        ) -> Outcome<()> {
            match value {
                Value::Int(n) if *n > self.0 => {
                    Outcome::abort((), "cap", format!("saw {n}, bound is {}", self.0))
                }
                _ => Outcome::Continue(()),
            }
        }
    }

    #[test]
    fn abort_verdict_stops_the_compiled_engine() {
        let e = parse_expr(
            "letrec fac = lambda x. {f}:(if x = 0 then 1 else x * (fac (x - 1))) in fac 5",
        )
        .unwrap();
        let cap = Cap(10);
        let err = compile_monitored(&e, &cap)
            .unwrap()
            .run_monitored(&cap, &EvalOptions::default())
            .unwrap_err();
        assert_eq!(
            err,
            EvalError::MonitorAbort {
                monitor: "cap".into(),
                reason: "saw 24, bound is 10".into(),
            }
        );
    }

    #[test]
    fn quarantined_panics_leave_the_compiled_answer_intact() {
        use monsem_monitor::{FaultPolicy, Guarded};
        #[derive(Debug)]
        struct Bomb;
        impl Monitor for Bomb {
            type State = ();
            fn name(&self) -> &str {
                "pe-bomb"
            }
            fn initial_state(&self) {}
            fn pre(
                &self,
                _: &monsem_syntax::Annotation,
                _: &monsem_syntax::Expr,
                _: &monsem_monitor::scope::Scope<'_>,
                (): (),
            ) {
                panic!("compiled boom");
            }
        }
        let e = programs::fac_ab(5);
        let guarded = Guarded::new(Bomb).policy(FaultPolicy::Quarantine);
        let (v, state) = compile_monitored(&e, &guarded)
            .unwrap()
            .run_monitored(&guarded, &EvalOptions::default())
            .unwrap();
        assert_eq!(v, Value::Int(120), "answer must match the standard run");
        assert!(matches!(
            state.health,
            monsem_monitor::Health::Quarantined(_)
        ));
    }

    #[test]
    fn stats_count_each_fuel_decrement() {
        let e = parse_expr("1 + 2").unwrap();
        let p = compile(&e).unwrap();
        let (v, (), stats) = p
            .run_monitored_stats(&IdentityMonitor, &EvalOptions::default())
            .unwrap();
        assert_eq!(v, Value::Int(3));
        assert!(stats.steps > 0);
        // fuel = steps succeeds; fuel = steps - 1 exhausts.
        assert!(p
            .run_monitored(&IdentityMonitor, &EvalOptions::with_fuel(stats.steps))
            .is_ok());
        assert_eq!(
            p.run_monitored(&IdentityMonitor, &EvalOptions::with_fuel(stats.steps - 1)),
            Err(EvalError::FuelExhausted)
        );
    }
}

#[cfg(test)]
mod stack_tests {
    use super::*;
    use monsem_monitor::compose::boxed;
    use monsem_monitor::MonitorStack;
    use monsem_monitors::profiler::Profiler;
    use monsem_monitors::tracer::Tracer;
    use monsem_syntax::parse_expr;

    #[test]
    fn compiled_engine_supports_dynamic_monitor_stacks() {
        let program = parse_expr(
            "letrec fac = lambda x. {fac(x)}:({fac}:if x = 0 then 1 else x * (fac (x - 1))) \
             in fac 4",
        )
        .unwrap();
        let stack: MonitorStack = boxed(Profiler::new()) & boxed(Tracer::new());
        let compiled = compile_monitored(&program, &stack).unwrap();
        assert_eq!(compiled.hooks, 2, "one label + one header survive");
        let (v, states) = compiled
            .run_monitored(&stack, &EvalOptions::default())
            .unwrap();
        assert_eq!(v, Value::Int(24));
        use monsem_monitor::Monitor;
        let rendered = stack.render_state(&states);
        assert!(rendered.contains("fac ↦ 5"), "{rendered}");
        assert!(rendered.contains("[FAC receives (4)]"), "{rendered}");
    }
}
