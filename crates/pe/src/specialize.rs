//! A partial evaluator for `L_λ` — the "standard partial evaluation
//! techniques" the paper applies with Schism (§9.1), here as an *online*
//! specializer.
//!
//! Given a program and (optionally) static values for some of its free
//! variables, [`specialize`] produces a *residual program*:
//!
//! * static computation is performed now: constant folding, static
//!   conditionals, β-reduction, polyvariant unfolding of recursive calls
//!   whose arguments are static (`pow b 20` unrolls to `b * b * … * 1`);
//! * dynamic computation is *residualized*: rebuilt as source code that
//!   performs it at run time, with evaluation order and run-time errors
//!   preserved (a folded expression is only dropped when its static
//!   evaluation succeeded; anything that might fail stays in the residue);
//! * monitoring annotations are barriers: `{μ}:e` always remains in the
//!   residue (with a specialized body), because erasing one would erase a
//!   monitoring event. The *static* part of monitoring disappears, the
//!   *dynamic* part stays — exactly the split §9.1 observes.
//!
//! Termination is enforced by an unfold budget plus a speculation bound:
//! under a dynamic conditional, recursive calls with dynamic arguments are
//! residualized rather than unfolded, so specializing `fac` with an
//! unknown argument yields `fac` back (constant-folded), not an infinite
//! unrolling.
//!
//! **Monovariance**: unlike Schism, the specializer does not generate
//! named variants per static-argument pattern; a recursive function
//! called with the same mixed static/dynamic pattern from several sites
//! is unfolded (and its residue duplicated) at each. Correctness is
//! unaffected; residual size can be larger than a polyvariant
//! specializer's.
//!
//! **Stack use**: unfolding recurses on the Rust stack, so the deepest
//! static call chain the specializer follows is bounded by
//! [`SpecializeOptions::max_unfolds`]. When specializing programs with
//! very deep static recursion, either lower the budget (the residue stays
//! correct — leftover work happens at run time) or give the thread a
//! larger stack.

use monsem_core::machine::constant;
use monsem_core::prims::Prim;
use monsem_core::value::Value;
use monsem_syntax::{Binding, Con, Expr, Ident, Lambda};
use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::Arc;

/// Tunables for the specializer.
#[derive(Debug, Clone)]
pub struct SpecializeOptions {
    /// Maximum number of function unfoldings (β-reductions of named or
    /// anonymous functions). When exhausted, calls are residualized.
    pub max_unfolds: u64,
    /// Maximum nesting of *dynamic* conditionals under which recursive
    /// calls with dynamic arguments are still unfolded. 0 is the sober
    /// default: unfold those only outside dynamic branches.
    pub max_speculation: u32,
}

impl Default for SpecializeOptions {
    fn default() -> Self {
        SpecializeOptions {
            max_unfolds: 10_000,
            max_speculation: 0,
        }
    }
}

/// Statistics reported by [`specialize_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecializeStats {
    /// Function unfoldings performed.
    pub unfolds: u64,
    /// Primitive applications folded at specialization time.
    pub folds: u64,
}

// ---------------------------------------------------------------------
// Specialization environments (rec frames as in the evaluators, so no
// reference cycles arise).
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct SEnv(Option<Rc<SNode>>);

#[derive(Debug)]
enum SNode {
    Plain {
        name: Ident,
        operand: Out,
        parent: SEnv,
    },
    Rec {
        defs: Rc<Vec<(Ident, Lambda)>>,
        parent: SEnv,
    },
}

// Environments bind names directly to specialization outcomes ([`Out`]);
// a dynamic binding is `Out::Dyn(Var(fresh))`.

#[derive(Debug)]
struct FunDef {
    /// `Some` when the function came from a `letrec` rec frame.
    rec_name: Option<Ident>,
    lambda: Lambda,
    env: SEnv,
    /// The rec group the function belongs to, if any.
    group: Option<Rc<Vec<(Ident, Lambda)>>>,
}

impl SEnv {
    fn empty() -> SEnv {
        SEnv(None)
    }

    fn plain(&self, name: Ident, operand: Out) -> SEnv {
        SEnv(Some(Rc::new(SNode::Plain {
            name,
            operand,
            parent: self.clone(),
        })))
    }

    fn rec(&self, defs: Rc<Vec<(Ident, Lambda)>>) -> SEnv {
        SEnv(Some(Rc::new(SNode::Rec {
            defs,
            parent: self.clone(),
        })))
    }

    fn lookup(&self, name: &Ident) -> Option<Out> {
        let mut cur = self;
        loop {
            match cur.0.as_deref() {
                Some(SNode::Plain {
                    name: n,
                    operand,
                    parent,
                }) => {
                    if n == name {
                        return Some(operand.clone());
                    }
                    cur = parent;
                }
                Some(SNode::Rec { defs, parent }) => {
                    if let Some((n, lam)) = defs.iter().find(|(n, _)| n == name) {
                        return Some(Out::Fun(Rc::new(FunDef {
                            rec_name: Some(n.clone()),
                            lambda: lam.clone(),
                            env: cur.clone(),
                            group: Some(defs.clone()),
                        })));
                    }
                    cur = parent;
                }
                None => return None,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Outcomes
// ---------------------------------------------------------------------

/// The result of specializing one expression.
#[derive(Debug, Clone)]
enum Out {
    /// Evaluated completely at specialization time (and did not fail).
    Known(Value),
    /// Residual code.
    Dyn(Expr),
    /// A known function value (kept symbolic so applications can unfold).
    Fun(Rc<FunDef>),
    /// A **partially static** cons cell: the structure is known now even
    /// though the components may be dynamic. `hd`/`tl` project it at
    /// specialization time — this is what lets the state-passing pairs of
    /// an instrumented program evaporate. Only built from *discardable*
    /// components (variables, literals, lambdas, other partially static
    /// data), so projecting away one side cannot lose an effect.
    Part(Rc<Out>, Rc<Out>),
    /// A primitive applied to fewer arguments than its arity, with
    /// possibly mixed static/dynamic arguments (all discardable).
    PrimApp(Prim, Vec<Out>),
}

struct Ctx {
    opts: SpecializeOptions,
    stats: SpecializeStats,
    fresh: u64,
    used_names: BTreeSet<Ident>,
    /// `Rc` identities of rec groups whose residual `letrec` is in scope.
    scopes: Vec<usize>,
    /// Nesting depth of dynamic conditionals currently being specialized.
    speculation: u32,
    /// Names that appear as assignment targets anywhere in the program
    /// (conservatively by name): their bindings must stay residual, since
    /// the imperative module gives them store cells.
    assigned: BTreeSet<Ident>,
}

impl Ctx {
    fn fresh(&mut self, base: &Ident) -> Ident {
        loop {
            self.fresh += 1;
            let candidate = Ident::new(format!("{}_{}", base.as_str(), self.fresh));
            if !self.used_names.contains(&candidate) {
                self.used_names.insert(candidate.clone());
                return candidate;
            }
        }
    }

    fn may_unfold(&self, recursive: bool, arg_known: bool) -> bool {
        self.stats.unfolds < self.opts.max_unfolds
            && (!recursive || arg_known || self.speculation <= self.opts.max_speculation)
    }
}

/// Renders a known value back into source syntax.
fn value_to_expr(v: &Value) -> Expr {
    match v {
        Value::Int(n) => Expr::int(*n),
        Value::Bool(b) => Expr::bool(*b),
        Value::Str(s) => Expr::Con(Con::Str(s.clone())),
        Value::Unit => Expr::Con(Con::Unit),
        Value::Nil => Expr::nil(),
        Value::Pair(..) => {
            // Iterative along tails (long list literals).
            let mut heads = Vec::new();
            let mut cur = v;
            while let Value::Pair(h, t) = cur {
                heads.push(value_to_expr(h));
                cur = t;
            }
            let mut out = value_to_expr(cur);
            for h in heads.into_iter().rev() {
                out = Expr::binop("cons", h, out);
            }
            out
        }
        Value::Prim(p, args) => args
            .iter()
            .fold(Expr::var(p.name()), |f, a| Expr::app(f, value_to_expr(a))),
        Value::Closure(_) | Value::Thunk(_) | Value::Loc(_) | Value::Ext(_) => {
            unreachable!("the specializer only produces first-order known values")
        }
    }
}

/// Residual expressions whose evaluation can be dropped or duplicated
/// freely: they terminate, have no effects, and cannot fail.
fn trivial_expr(e: &Expr) -> bool {
    matches!(e, Expr::Var(_) | Expr::Con(_) | Expr::Lambda(_))
}

/// Outcomes safe to embed into partially static structures (see
/// [`Out::Part`]).
fn discardable(out: &Out) -> bool {
    match out {
        Out::Known(_) | Out::Fun(_) => true,
        Out::Dyn(e) => trivial_expr(e),
        Out::Part(a, b) => discardable(a) && discardable(b),
        Out::PrimApp(_, args) => args.iter().all(discardable),
    }
}

impl Out {
    /// Forces an outcome into residual code.
    fn into_expr(self, ctx: &mut Ctx) -> Expr {
        match self {
            Out::Known(v) => value_to_expr(&v),
            Out::Dyn(e) => e,
            Out::Fun(def) => fun_to_expr(&def, ctx),
            Out::Part(h, t) => Expr::binop(
                "cons",
                (*h).clone().into_expr(ctx),
                (*t).clone().into_expr(ctx),
            ),
            Out::PrimApp(p, args) => args
                .into_iter()
                .fold(Expr::var(p.name()), |f, a| Expr::app(f, a.into_expr(ctx))),
        }
    }
}

/// Residualizes a function value: a variable reference when its `letrec`
/// is in residual scope, otherwise a freshly specialized lambda (wrapped
/// in its rec group's `letrec` if it is recursive).
fn fun_to_expr(def: &FunDef, ctx: &mut Ctx) -> Expr {
    if let (Some(name), Some(group)) = (&def.rec_name, &def.group) {
        let id = Rc::as_ptr(group) as usize;
        if ctx.scopes.contains(&id) {
            return Expr::Var(name.clone());
        }
        // The group is not in scope: re-emit it around a reference.
        let rec_env = def.env.clone();
        let bindings = residual_group(group, &rec_env, ctx);
        return Expr::Letrec(bindings, Arc::new(Expr::Var(name.clone())));
    }
    // Anonymous function: specialize generically under a fresh parameter.
    let p = ctx.fresh(&def.lambda.param);
    let env = def
        .env
        .plain(def.lambda.param.clone(), Out::Dyn(Expr::Var(p.clone())));
    let body = pe(&def.lambda.body, &env, ctx).into_expr(ctx);
    Expr::lam(p, body)
}

/// Generically specializes every binding of a rec group (bodies folded,
/// recursive calls residualized), producing residual `letrec` bindings.
fn residual_group(group: &Rc<Vec<(Ident, Lambda)>>, rec_env: &SEnv, ctx: &mut Ctx) -> Vec<Binding> {
    let id = Rc::as_ptr(group) as usize;
    ctx.scopes.push(id);
    let bindings = group
        .iter()
        .map(|(name, lam)| {
            let p = ctx.fresh(&lam.param);
            let env = rec_env.plain(lam.param.clone(), Out::Dyn(Expr::Var(p.clone())));
            let body = pe(&lam.body, &env, ctx).into_expr(ctx);
            Binding::new(name.clone(), Expr::lam(p, body))
        })
        .collect();
    ctx.scopes.pop();
    bindings
}

fn pe(e: &Expr, env: &SEnv, ctx: &mut Ctx) -> Out {
    match e {
        Expr::Con(c) => Out::Known(constant(c)),
        Expr::Var(x) | Expr::VarAt(x, _) => match env.lookup(x) {
            Some(out) => out,
            None => match Prim::by_name(x.as_str()) {
                Some(p) => Out::PrimApp(p, Vec::new()),
                // A dynamic input (or a genuinely unbound name — the
                // residual program fails exactly where the original does).
                None => Out::Dyn(Expr::Var(x.clone())),
            },
        },
        Expr::Lambda(l) => Out::Fun(Rc::new(FunDef {
            rec_name: None,
            lambda: l.clone(),
            env: env.clone(),
            group: None,
        })),
        Expr::If(c, t, f) => match pe(c, env, ctx) {
            Out::Known(Value::Bool(true)) => pe(t, env, ctx),
            Out::Known(Value::Bool(false)) => pe(f, env, ctx),
            // A statically non-boolean condition is a run-time error:
            // keep it (and its branches) in the residue.
            cond => {
                let cond_expr = cond.into_expr(ctx);
                ctx.speculation += 1;
                let t = pe(t, env, ctx).into_expr(ctx);
                let f = pe(f, env, ctx).into_expr(ctx);
                ctx.speculation -= 1;
                Out::Dyn(Expr::if_(cond_expr, t, f))
            }
        },
        Expr::App(fe, ae) => {
            // Figure 2 order: the argument is evaluated first; the
            // residual code preserves that via let-binding when needed.
            let arg = pe(ae, env, ctx);
            let func = pe(fe, env, ctx);
            apply(func, arg, ctx)
        }
        Expr::Let(x, v, b) => {
            let value = pe(v, env, ctx);
            bind_and_continue(x, value, b, env, ctx)
        }
        Expr::Letrec(bs, body) => pe_letrec(bs, body, env, ctx),
        Expr::Ann(a, inner) => {
            // Annotations are monitoring events: never fold them away.
            let inner = pe(inner, env, ctx).into_expr(ctx);
            Out::Dyn(Expr::Ann(a.clone(), Arc::new(inner)))
        }
        Expr::Seq(a, b) => {
            let first = pe(a, env, ctx);
            let second = pe(b, env, ctx);
            match first {
                // The first component evaluated statically (no error):
                // it can be dropped.
                Out::Known(_) | Out::Fun(_) | Out::Part(..) | Out::PrimApp(..) => second,
                Out::Dyn(ae) => {
                    let be = second.into_expr(ctx);
                    Out::Dyn(Expr::Seq(Arc::new(ae), Arc::new(be)))
                }
            }
        }
        Expr::Assign(x, v) => {
            let ve = pe(v, env, ctx).into_expr(ctx);
            // The target may have been renamed by specialization.
            let target = match env.lookup(x) {
                Some(Out::Dyn(Expr::Var(n))) => n,
                _ => x.clone(),
            };
            Out::Dyn(Expr::Assign(target, Arc::new(ve)))
        }
        Expr::While(c, b) => {
            // Loops are inherently dynamic here (the pure specializer has
            // no store model): residualize both parts.
            ctx.speculation += 1;
            let ce = pe(c, env, ctx).into_expr(ctx);
            let be = pe(b, env, ctx).into_expr(ctx);
            ctx.speculation -= 1;
            Out::Dyn(Expr::While(Arc::new(ce), Arc::new(be)))
        }
        Expr::Par(items) => {
            // `par` exists so a parallel runtime can shard it — folding it
            // away would erase the fork points, so each element is
            // specialized in place and the form residualizes.
            let elems: Vec<Arc<Expr>> = items
                .iter()
                .map(|i| Arc::new(pe(i, env, ctx).into_expr(ctx)))
                .collect();
            Out::Dyn(Expr::Par(elems))
        }
    }
}

/// Binds `x` to the outcome of its right-hand side and specializes `body`;
/// emits a residual `let` only when the value stayed dynamic.
fn bind_and_continue(x: &Ident, value: Out, body: &Expr, env: &SEnv, ctx: &mut Ctx) -> Out {
    // An assigned variable needs a real (store-backed) binding at run
    // time, whatever its initializer folded to.
    if ctx.assigned.contains(x) {
        let ve = value.into_expr(ctx);
        let fresh = ctx.fresh(x);
        let env = env.plain(x.clone(), Out::Dyn(Expr::Var(fresh.clone())));
        let out = pe(body, &env, ctx).into_expr(ctx);
        return Out::Dyn(Expr::let_(fresh, ve, out));
    }
    match value {
        Out::Dyn(ve) if !trivial_expr(&ve) => {
            let fresh = ctx.fresh(x);
            let env = env.plain(x.clone(), Out::Dyn(Expr::Var(fresh.clone())));
            let out = pe(body, &env, ctx).into_expr(ctx);
            Out::Dyn(Expr::let_(fresh, ve, out))
        }
        known_ish => {
            let env = env.plain(x.clone(), known_ish);
            pe(body, &env, ctx)
        }
    }
}

fn apply(func: Out, arg: Out, ctx: &mut Ctx) -> Out {
    match func {
        Out::Fun(def) => {
            let recursive = def.group.is_some();
            let arg_known = matches!(arg, Out::Known(_));
            if ctx.may_unfold(recursive, arg_known) {
                ctx.stats.unfolds += 1;
                return unfold(&def, arg, ctx);
            }
            // Residual call.
            let fe = fun_to_expr(&def, ctx);
            let ae = arg.into_expr(ctx);
            Out::Dyn(Expr::app(fe, ae))
        }
        Out::Known(Value::Prim(p, collected)) => {
            let outs: Vec<Out> = collected.iter().cloned().map(Out::Known).collect();
            apply_prim(p, outs, arg, ctx)
        }
        Out::PrimApp(p, outs) => apply_prim(p, outs, arg, ctx),
        Out::Known(other) => {
            // Applying a non-function: a run-time error, preserved.
            let ae = arg.into_expr(ctx);
            Out::Dyn(Expr::app(value_to_expr(&other), ae))
        }
        func @ (Out::Dyn(_) | Out::Part(..)) => {
            let ae = arg.into_expr(ctx);
            let fe = func.into_expr(ctx);
            Out::Dyn(Expr::app(fe, ae))
        }
    }
}

/// Applies a primitive to one more argument, folding what can be folded
/// and keeping partially static structure where possible.
fn apply_prim(p: Prim, mut outs: Vec<Out>, arg: Out, ctx: &mut Ctx) -> Out {
    // A non-trivial dynamic argument must stay where it is (its effects
    // anchor the evaluation order): residualize the application here.
    if matches!(&arg, Out::Dyn(e) if !trivial_expr(e)) {
        let ae = arg.into_expr(ctx);
        let fe = Out::PrimApp(p, outs).into_expr(ctx);
        return Out::Dyn(Expr::app(fe, ae));
    }
    outs.push(arg);
    if outs.len() < p.arity() {
        return Out::PrimApp(p, outs);
    }

    // Fully applied. All-static folds completely:
    if outs.iter().all(|o| matches!(o, Out::Known(_))) {
        let args: Vec<Value> = outs
            .iter()
            .map(|o| match o {
                Out::Known(v) => v.clone(),
                _ => unreachable!(),
            })
            .collect();
        return match p.apply(&args) {
            Ok(v) => {
                ctx.stats.folds += 1;
                Out::Known(v)
            }
            // The primitive fails on these inputs: leave the failing
            // application in the residue.
            Err(_) => Out::Dyn(
                args.iter()
                    .fold(Expr::var(p.name()), |f, a| Expr::app(f, value_to_expr(a))),
            ),
        };
    }

    // Partially static structure:
    match (p, outs.as_slice()) {
        (Prim::Cons, [h, t]) if discardable(h) && discardable(t) => {
            ctx.stats.folds += 1;
            Out::Part(Rc::new(h.clone()), Rc::new(t.clone()))
        }
        (Prim::Hd, [Out::Part(h, t)]) if discardable(t) => {
            ctx.stats.folds += 1;
            (**h).clone()
        }
        (Prim::Tl, [Out::Part(h, t)]) if discardable(h) => {
            ctx.stats.folds += 1;
            (**t).clone()
        }
        (Prim::IsNull, [Out::Part(h, t)]) if discardable(h) && discardable(t) => {
            ctx.stats.folds += 1;
            Out::Known(Value::Bool(false))
        }
        _ => {
            let mut fe = Expr::var(p.name());
            for o in outs {
                let ae = o.into_expr(ctx);
                fe = Expr::app(fe, ae);
            }
            Out::Dyn(fe)
        }
    }
}

/// β-reduces `def` applied to `arg`. A complex dynamic argument is
/// let-bound so it is neither duplicated nor reordered.
fn unfold(def: &FunDef, arg: Out, ctx: &mut Ctx) -> Out {
    // Assigned parameters need a real binding at run time (see
    // `bind_and_continue`).
    if ctx.assigned.contains(&def.lambda.param) {
        let ae = arg.into_expr(ctx);
        let fresh = ctx.fresh(&def.lambda.param);
        let env = def
            .env
            .plain(def.lambda.param.clone(), Out::Dyn(Expr::Var(fresh.clone())));
        let out = pe_in_group(def, &env, ctx).into_expr(ctx);
        return Out::Dyn(Expr::let_(fresh, ae, out));
    }
    match arg {
        Out::Dyn(ae) if !trivial_expr(&ae) => {
            // A complex dynamic argument is let-bound so it is neither
            // duplicated nor reordered.
            let fresh = ctx.fresh(&def.lambda.param);
            let env = def
                .env
                .plain(def.lambda.param.clone(), Out::Dyn(Expr::Var(fresh.clone())));
            let out = pe_in_group(def, &env, ctx).into_expr(ctx);
            Out::Dyn(Expr::let_(fresh, ae, out))
        }
        direct => {
            let env = def.env.plain(def.lambda.param.clone(), direct);
            pe_in_group(def, &env, ctx)
        }
    }
}

/// Specializes a function body. If the function belongs to a rec group
/// whose residual `letrec` is *not* in scope, residual recursive calls
/// inside must re-emit the group; marking the scope is only done by
/// `pe_letrec`/`residual_group`, so nothing to do here beyond recursing.
fn pe_in_group(def: &FunDef, env: &SEnv, ctx: &mut Ctx) -> Out {
    pe(&def.lambda.body, env, ctx)
}

fn pe_letrec(bs: &[Binding], body: &Expr, env: &SEnv, ctx: &mut Ctx) -> Out {
    let group: Vec<(Ident, Lambda)> = bs
        .iter()
        .filter_map(|b| match b.value.strip_annotations() {
            Expr::Lambda(l) => Some((b.name.clone(), l.clone())),
            _ => None,
        })
        .collect();
    let has_rec = !group.is_empty();
    let group = Rc::new(group);

    // 1. Value bindings first, in source order (the engines' LetrecPlan).
    let mut env = env.clone();
    let mut residual_values: Vec<(Ident, Expr)> = Vec::new();
    for b in bs {
        if b.value.is_lambda_like() {
            continue;
        }
        let out = pe(&b.value, &env, ctx);
        let force_residual =
            ctx.assigned.contains(&b.name) || matches!(&out, Out::Dyn(ve) if !trivial_expr(ve));
        if force_residual {
            let ve = out.into_expr(ctx);
            let fresh = ctx.fresh(&b.name);
            env = env.plain(b.name.clone(), Out::Dyn(Expr::Var(fresh.clone())));
            residual_values.push((fresh, ve));
        } else {
            env = env.plain(b.name.clone(), out);
        }
    }

    // 2. Rec frame on top, so recursive closures see the values.
    let env_after_rec = if has_rec {
        env.rec(group.clone())
    } else {
        env.clone()
    };
    let mut env = env_after_rec.clone();

    // 3. Annotated lambda bindings: their annotation is a monitoring
    // event, so the binding stays in the residue; recursion still goes
    // through the (stripped) rec group.
    let mut residual_annotated: Vec<(Ident, Expr)> = Vec::new();
    let group_id = Rc::as_ptr(&group) as usize;
    if has_rec {
        ctx.scopes.push(group_id);
    }
    for b in bs {
        if b.value.is_lambda_like() && matches!(&*b.value, Expr::Ann(..)) {
            let ve = pe(&b.value, &env, ctx).into_expr(ctx);
            let fresh = ctx.fresh(&b.name);
            env = env.plain(b.name.clone(), Out::Dyn(Expr::Var(fresh.clone())));
            residual_annotated.push((fresh, ve));
        }
    }

    let body_out = pe(body, &env, ctx);

    // Fully static result with nothing dynamic left: drop the letrec.
    if residual_values.is_empty()
        && residual_annotated.is_empty()
        && matches!(body_out, Out::Known(_))
    {
        if has_rec {
            ctx.scopes.pop();
        }
        return body_out;
    }

    let body_expr = body_out.into_expr(ctx);
    if has_rec {
        ctx.scopes.pop();
    }

    let mut bindings: Vec<Binding> = Vec::new();
    for (name, ve) in residual_values {
        bindings.push(Binding::new(name, ve));
    }
    if has_rec {
        let mut group_bindings = residual_group(&group, &env_after_rec, ctx);
        bindings.append(&mut group_bindings);
    }
    for (name, ve) in residual_annotated {
        bindings.push(Binding::new(name, ve));
    }

    // Prune function bindings the residue never mentions (pure, so safe).
    let result = Expr::Letrec(bindings, Arc::new(body_expr));
    Out::Dyn(prune_letrec(result))
}

/// Drops lambda bindings that the body (and the other kept bindings)
/// never reference. Value bindings are always kept (they may fail).
fn prune_letrec(e: Expr) -> Expr {
    let Expr::Letrec(bindings, body) = e else {
        return e;
    };
    let mut used: BTreeSet<Ident> = body.free_vars();
    for b in &bindings {
        if !b.value.is_lambda_like() {
            used.extend(b.value.free_vars());
        }
    }
    loop {
        let mut grew = false;
        for b in &bindings {
            if b.value.is_lambda_like() && used.contains(&b.name) {
                for v in b.value.free_vars() {
                    grew |= used.insert(v);
                }
            }
        }
        if !grew {
            break;
        }
    }
    let kept: Vec<Binding> = bindings
        .into_iter()
        .filter(|b| !b.value.is_lambda_like() || used.contains(&b.name))
        .collect();
    if kept.is_empty() {
        return (*body).clone();
    }
    Expr::Letrec(kept, body)
}

/// Specializes `program` with no static inputs.
///
/// ```
/// use monsem_pe::specialize::{specialize, SpecializeOptions};
/// use monsem_syntax::{parse_expr, Expr};
/// let e = parse_expr("let k = 6 * 7 in if k = 42 then win else 0")?;
/// let residual = specialize(&e, &SpecializeOptions::default());
/// assert_eq!(residual, Expr::var("win")); // only the dynamic input is left
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn specialize(program: &Expr, opts: &SpecializeOptions) -> Expr {
    specialize_with(program, &[], opts).0
}

/// Specializes `program` with the given static values for free variables
/// (the "partial input" of Figure 10, level 3). Returns the residual
/// program and statistics.
pub fn specialize_with(
    program: &Expr,
    static_inputs: &[(Ident, Value)],
    opts: &SpecializeOptions,
) -> (Expr, SpecializeStats) {
    let mut ctx = Ctx {
        opts: opts.clone(),
        stats: SpecializeStats::default(),
        fresh: 0,
        used_names: collect_idents(program),
        scopes: Vec::new(),
        speculation: 0,
        assigned: assigned_vars(program),
    };
    let mut env = SEnv::empty();
    for (name, value) in static_inputs {
        env = env.plain(name.clone(), Out::Known(value.clone()));
    }
    let out = pe(program, &env, &mut ctx);
    let expr = out.into_expr(&mut ctx);
    (expr, ctx.stats)
}

/// All assignment targets in the program, by name (a conservative
/// over-approximation under shadowing — it only costs folding).
fn assigned_vars(e: &Expr) -> BTreeSet<Ident> {
    let mut out = BTreeSet::new();
    monsem_syntax::points::visit(e, |_, node| {
        if let Expr::Assign(x, _) = node {
            out.insert(x.clone());
        }
    });
    out
}

fn collect_idents(e: &Expr) -> BTreeSet<Ident> {
    let mut out = BTreeSet::new();
    monsem_syntax::points::visit(e, |_, node| match node {
        Expr::Var(x) => {
            out.insert(x.clone());
        }
        Expr::Lambda(l) => {
            out.insert(l.param.clone());
        }
        Expr::Let(x, ..) | Expr::Assign(x, _) => {
            out.insert(x.clone());
        }
        Expr::Letrec(bs, _) => {
            for b in bs {
                out.insert(b.name.clone());
            }
        }
        _ => {}
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::machine::eval;
    use monsem_core::programs;
    use monsem_core::EvalError;
    use monsem_syntax::parse_expr;

    fn spec(src: &str) -> Expr {
        specialize(&parse_expr(src).unwrap(), &SpecializeOptions::default())
    }

    #[test]
    fn fully_static_programs_fold_to_literals() {
        assert_eq!(spec("1 + 2 * 3"), Expr::int(7));
        assert_eq!(
            spec("letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac 5"),
            Expr::int(120)
        );
        assert_eq!(spec("(lambda x. x + x) 21"), Expr::int(42));
        assert_eq!(spec("if 1 < 2 then 10 else 20"), Expr::int(10));
    }

    #[test]
    fn pow_with_static_exponent_unrolls_completely() {
        let e = parse_expr(
            "letrec pow = lambda b. lambda e. if e = 0 then 1 else b * (pow b (e - 1)) \
             in pow base 5",
        )
        .unwrap();
        let residual = specialize(&e, &SpecializeOptions::default());
        // No letrec, no conditional — just multiplications by `base`.
        let printed = residual.to_string();
        assert!(!printed.contains("letrec"), "{printed}");
        assert!(!printed.contains("if"), "{printed}");
        assert_eq!(printed.matches('*').count(), 5, "{printed}");
        // And it computes the right thing.
        let apply = Expr::let_("base", Expr::int(3), residual);
        assert_eq!(eval(&apply), Ok(Value::Int(243)));
    }

    #[test]
    fn dynamic_recursion_residualizes_the_function() {
        let residual =
            spec("letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac n");
        let printed = residual.to_string();
        assert!(printed.contains("letrec"), "{printed}");
        // Residual agrees with the original for every n.
        for n in 0..7 {
            let orig = parse_expr(&format!(
                "letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac {n}"
            ))
            .unwrap();
            let with_input = Expr::let_("n", Expr::int(n), residual.clone());
            assert_eq!(eval(&with_input), eval(&orig));
        }
    }

    #[test]
    fn static_inputs_drive_specialization() {
        let e = parse_expr(
            "letrec pow = lambda b. lambda e. if e = 0 then 1 else b * (pow b (e - 1)) \
             in pow base exp",
        )
        .unwrap();
        let (residual, stats) = specialize_with(
            &e,
            &[(Ident::new("exp"), Value::Int(8))],
            &SpecializeOptions::default(),
        );
        assert!(stats.unfolds >= 8);
        let run = Expr::let_("base", Expr::int(2), residual);
        assert_eq!(eval(&run), Ok(Value::Int(256)));
    }

    #[test]
    fn runtime_errors_are_preserved_not_hidden() {
        // Static division by zero must remain a runtime error.
        let r = spec("1 / 0");
        assert_eq!(eval(&r), Err(EvalError::DivisionByZero));
        // An erroring dead branch may survive, but the live branch folds.
        let r = spec("if true then 7 else (1 / 0)");
        assert_eq!(eval(&r), Ok(Value::Int(7)));
        // A statically non-boolean condition stays a runtime error.
        let r = spec("if 3 then 1 else 2");
        assert!(matches!(eval(&r), Err(EvalError::NonBooleanCondition(_))));
    }

    #[test]
    fn sequencing_preserves_possible_failures() {
        let r = spec("(1 / 0); 2");
        assert_eq!(eval(&r), Err(EvalError::DivisionByZero));
        let r = spec("1; 2");
        assert_eq!(r, Expr::int(2));
    }

    #[test]
    fn annotations_are_never_folded_away() {
        let r = spec("{A}:(1 + 2) * {B}:4");
        let anns: Vec<String> = r.annotations().iter().map(|a| a.to_string()).collect();
        assert_eq!(anns, vec!["{A}", "{B}"]);
        assert_eq!(eval(&r), Ok(Value::Int(12)));
    }

    #[test]
    fn higher_order_programs_specialize() {
        let r = spec("let twice = lambda f. lambda x. f (f x) in twice (lambda n. n + 1) y");
        // Unfolds to y + 1 + 1 (modulo association).
        let check = Expr::let_("y", Expr::int(40), r);
        assert_eq!(eval(&check), Ok(Value::Int(42)));
    }

    #[test]
    fn residual_agrees_on_paper_programs_with_dynamic_inputs() {
        for (make, arg) in [
            (programs::fac as fn(i64) -> Expr, 6i64),
            (programs::fib, 10),
            (programs::sum_to, 12),
        ] {
            let concrete = make(arg);
            let residual = specialize(&concrete, &SpecializeOptions::default());
            assert_eq!(eval(&residual), eval(&concrete));
        }
    }

    #[test]
    fn unfold_budget_bounds_the_residual() {
        let opts = SpecializeOptions {
            max_unfolds: 3,
            max_speculation: 0,
        };
        let e = parse_expr(
            "letrec count = lambda n. if n = 0 then 0 else count (n - 1) in count 1000000",
        )
        .unwrap();
        let residual = specialize(&e, &opts);
        // Budget too small to finish statically: the residue still
        // computes the answer at run time.
        assert_eq!(eval(&residual), Ok(Value::Int(0)));
    }

    #[test]
    fn mutual_recursion_specializes() {
        let src = "letrec even = lambda n. if n = 0 then true else odd (n - 1) \
                   and odd = lambda n. if n = 0 then false else even (n - 1) in even ";
        let closed = parse_expr(&format!("{src} 8")).unwrap();
        assert_eq!(
            specialize(&closed, &SpecializeOptions::default()),
            Expr::bool(true)
        );
        let open = parse_expr(&format!("{src} k")).unwrap();
        let residual = specialize(&open, &SpecializeOptions::default());
        let run = Expr::let_("k", Expr::int(9), residual);
        assert_eq!(eval(&run), Ok(Value::Bool(false)));
    }

    #[test]
    fn residual_programs_round_trip_through_the_parser() {
        let residual = spec(
            "letrec pow = lambda b. lambda e. if e = 0 then 1 else b * (pow b (e - 1)) \
             in pow base 4",
        );
        let printed = residual.to_string();
        assert_eq!(parse_expr(&printed).unwrap(), residual);
    }
}

#[cfg(test)]
mod imperative_tests {
    use super::*;
    use monsem_core::imperative::eval_imperative;
    use monsem_syntax::parse_expr;

    #[test]
    fn imperative_programs_residualize_and_agree() {
        // The pure specializer has no store model: loops and assignments
        // are residual, but static scaffolding around them still folds.
        let src = "let n = 2 + 3 in let acc = 1 in \
                   (while n > 0 do acc := acc * n; n := n - 1 end); acc";
        let program = parse_expr(src).unwrap();
        let residual = specialize(&program, &SpecializeOptions::default());
        assert_eq!(eval_imperative(&residual), eval_imperative(&program));
        assert_eq!(eval_imperative(&residual), Ok(Value::Int(120)));
        // The `2 + 3` folded.
        assert!(!residual.to_string().contains("2 + 3"), "{residual}");
    }
}

#[cfg(test)]
mod assigned_param_tests {
    use super::*;
    use monsem_core::imperative::eval_imperative;
    use monsem_syntax::parse_expr;

    #[test]
    fn assigned_parameters_keep_their_bindings() {
        let program = parse_expr("(lambda x. (x := x + 1; x)) 41").unwrap();
        let residual = specialize(&program, &SpecializeOptions::default());
        assert_eq!(eval_imperative(&residual), eval_imperative(&program));
        assert_eq!(eval_imperative(&residual), Ok(Value::Int(42)));
    }
}
