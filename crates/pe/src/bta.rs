//! Binding-time analysis (BTA).
//!
//! Schism — the partial evaluator the paper uses (§9.1) — is an *offline*
//! partial evaluator: a binding-time analysis first classifies every
//! program point as **static** (computable from the known inputs alone)
//! or **dynamic**, producing a two-level term that drives specialization.
//! Our specializer makes those decisions online, but the analysis is
//! valuable on its own: it *predicts* how much of a program (or of an
//! instrumented program's monitoring code) specialization can remove, and
//! the `paper_tables` harness reports it alongside the measurements.
//!
//! The analysis is a monovariant abstract interpretation over the
//! two-point lattice `S ⊑ D`, with abstract closures for higher-order
//! flow and a fixpoint loop for `letrec`. Each program point's
//! classification is the join over every evaluation context that reaches
//! it.

use monsem_core::prims::Prim;
use monsem_syntax::points::{ExprPath, PathStep};
use monsem_syntax::{Expr, Ident, Lambda};
use std::collections::BTreeMap;
use std::rc::Rc;

/// A binding time: static (known at specialization time) or dynamic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Bt {
    /// Computable at specialization time.
    Static,
    /// Only available at run time.
    Dynamic,
}

impl Bt {
    /// Least upper bound.
    pub fn join(self, other: Bt) -> Bt {
        self.max(other)
    }
}

/// Abstract values flowing through the analysis.
#[derive(Debug, Clone)]
enum Abs {
    /// First-order data with a binding time.
    Data(Bt),
    /// A (possibly partially applied) primitive: the result of a full
    /// application joins the binding times of all arguments seen so far.
    Prim(Bt),
    /// A function: its definition site, body, and abstract environment.
    Fun(Rc<AbsFun>),
}

#[derive(Debug)]
struct AbsFun {
    path: ExprPath,
    lambda: Lambda,
    env: AEnv,
}

impl Abs {
    /// Collapses an abstract value to a binding time: functions are
    /// specialization-time entities (their *applications* decide what is
    /// dynamic).
    fn bt(&self) -> Bt {
        match self {
            Abs::Data(bt) | Abs::Prim(bt) => *bt,
            Abs::Fun(_) => Bt::Static,
        }
    }

    /// Collapses to plain data, losing the ability to be applied: a
    /// function forced into data must be treated as dynamic, because a
    /// later application of it can no longer be analyzed.
    fn collapse(&self) -> Bt {
        match self {
            Abs::Data(bt) | Abs::Prim(bt) => *bt,
            Abs::Fun(_) => Bt::Dynamic,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct AEnv(Option<Rc<ANode>>);

#[derive(Debug)]
enum ANode {
    Plain {
        name: Ident,
        value: Abs,
        parent: AEnv,
    },
    Rec {
        defs: Rc<Vec<(Ident, Lambda, ExprPath)>>,
        parent: AEnv,
    },
}

impl AEnv {
    fn plain(&self, name: Ident, value: Abs) -> AEnv {
        AEnv(Some(Rc::new(ANode::Plain {
            name,
            value,
            parent: self.clone(),
        })))
    }

    fn rec(&self, defs: Rc<Vec<(Ident, Lambda, ExprPath)>>) -> AEnv {
        AEnv(Some(Rc::new(ANode::Rec {
            defs,
            parent: self.clone(),
        })))
    }

    fn lookup(&self, name: &Ident) -> Option<Abs> {
        let mut cur = self;
        loop {
            match cur.0.as_deref() {
                Some(ANode::Plain {
                    name: n,
                    value,
                    parent,
                }) => {
                    if n == name {
                        return Some(value.clone());
                    }
                    cur = parent;
                }
                Some(ANode::Rec { defs, parent }) => {
                    if let Some((_, lam, path)) = defs.iter().find(|(n, _, _)| n == name) {
                        return Some(Abs::Fun(Rc::new(AbsFun {
                            path: path.clone(),
                            lambda: lam.clone(),
                            env: cur.clone(),
                        })));
                    }
                    cur = parent;
                }
                None => return None,
            }
        }
    }
}

/// The result of a binding-time analysis: a classification per program
/// point (path from the root).
#[derive(Debug, Default)]
pub struct Division {
    marks: BTreeMap<ExprPath, Bt>,
}

impl Division {
    /// The binding time recorded for a program point (points the analysis
    /// never reached — dead code — are absent).
    pub fn bt_at(&self, path: &ExprPath) -> Option<Bt> {
        self.marks.get(path).copied()
    }

    /// The binding time of the whole program.
    pub fn result(&self) -> Option<Bt> {
        self.bt_at(&ExprPath::root())
    }

    /// How many reached points are static / dynamic.
    pub fn counts(&self) -> (usize, usize) {
        let stat = self.marks.values().filter(|b| **b == Bt::Static).count();
        (stat, self.marks.len() - stat)
    }

    fn mark(&mut self, path: &ExprPath, bt: Bt) -> Bt {
        let entry = self.marks.entry(path.clone()).or_insert(Bt::Static);
        *entry = entry.join(bt);
        *entry
    }
}

struct Analyzer {
    division: Division,
    /// Memo/assumption table for function bodies:
    /// (definition path, argument bt) → result bt. Seeds optimistically
    /// with `Static`; the outer fixpoint loop re-runs until stable.
    assumptions: BTreeMap<(ExprPath, Bt), Bt>,
    changed: bool,
    /// Active (path, arg-bt) calls, to cut recursion within one pass.
    active: Vec<(ExprPath, Bt)>,
}

impl Analyzer {
    fn analyze(&mut self, e: &Expr, path: &ExprPath, env: &AEnv) -> Abs {
        let result = match e {
            Expr::Con(_) => Abs::Data(Bt::Static),
            Expr::Var(x) | Expr::VarAt(x, _) => match env.lookup(x) {
                Some(v) => v,
                None => {
                    if Prim::by_name(x.as_str()).is_some() {
                        Abs::Prim(Bt::Static)
                    } else {
                        // Free variable: a dynamic input.
                        Abs::Data(Bt::Dynamic)
                    }
                }
            },
            Expr::Lambda(l) => Abs::Fun(Rc::new(AbsFun {
                path: path.clone(),
                lambda: l.clone(),
                env: env.clone(),
            })),
            Expr::If(c, t, f) => {
                let cb = self.analyze(c, &path.child(PathStep::Cond), env).bt();
                let tb = self.analyze(t, &path.child(PathStep::Then), env);
                let fb = self.analyze(f, &path.child(PathStep::Else), env);
                Abs::Data(cb.join(tb.collapse()).join(fb.collapse()))
            }
            Expr::App(f, a) => {
                let av = self.analyze(a, &path.child(PathStep::Arg), env);
                let fv = self.analyze(f, &path.child(PathStep::Fun), env);
                match fv {
                    Abs::Fun(def) => self.apply(&def, av),
                    Abs::Prim(acc) => Abs::Prim(acc.join(av.collapse())),
                    // Applying collapsed data: nothing is known about the
                    // callee any more, so the result is dynamic.
                    Abs::Data(_) => Abs::Data(Bt::Dynamic),
                }
            }
            Expr::Let(x, v, b) => {
                let vv = self.analyze(v, &path.child(PathStep::BindingValue(0)), env);
                let env = env.plain(x.clone(), vv);
                self.analyze(b, &path.child(PathStep::Body), &env)
            }
            Expr::Letrec(bs, body) => {
                let defs: Vec<(Ident, Lambda, ExprPath)> = bs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| match b.value.strip_annotations() {
                        Expr::Lambda(l) => Some((
                            b.name.clone(),
                            l.clone(),
                            path.child(PathStep::BindingValue(i)),
                        )),
                        _ => None,
                    })
                    .collect();
                let mut env = env.clone();
                for (i, b) in bs.iter().enumerate() {
                    if !b.value.is_lambda_like() {
                        let v =
                            self.analyze(&b.value, &path.child(PathStep::BindingValue(i)), &env);
                        env = env.plain(b.name.clone(), v);
                    }
                }
                if !defs.is_empty() {
                    env = env.rec(Rc::new(defs));
                }
                self.analyze(body, &path.child(PathStep::Body), &env)
            }
            Expr::Ann(_, inner) => {
                // Annotated points are monitoring events: dynamic by
                // decree (the specializer never folds them), though the
                // inner computation keeps its own classification.
                self.analyze(inner, &path.child(PathStep::Annotated), env);
                Abs::Data(Bt::Dynamic)
            }
            Expr::Seq(a, b) => {
                self.analyze(a, &path.child(PathStep::SeqFirst), env);
                self.analyze(b, &path.child(PathStep::SeqSecond), env)
            }
            Expr::Assign(_, v) => {
                self.analyze(v, &path.child(PathStep::AssignValue), env);
                Abs::Data(Bt::Dynamic)
            }
            Expr::While(c, b) => {
                self.analyze(c, &path.child(PathStep::Cond), env);
                self.analyze(b, &path.child(PathStep::LoopBody), env);
                Abs::Data(Bt::Dynamic)
            }
            Expr::Par(items) => {
                // `par` is an evaluation-strategy construct: the whole
                // point is to leave its elements for the (possibly
                // parallel) runtime, so it is dynamic by decree — like
                // annotations — though each element keeps its own
                // classification.
                for (i, item) in items.iter().enumerate() {
                    self.analyze(item, &path.child(PathStep::ParElem(i)), env);
                }
                Abs::Data(Bt::Dynamic)
            }
        };
        self.division.mark(path, result.bt());
        result
    }

    fn apply(&mut self, def: &AbsFun, arg: Abs) -> Abs {
        let key = (def.path.clone(), arg.bt());
        if self.active.contains(&key) {
            // Recursive call within this pass: use the current assumption.
            let assumed = self.assumptions.get(&key).copied().unwrap_or(Bt::Static);
            return Abs::Data(assumed);
        }
        self.active.push(key.clone());
        let env = def.env.plain(def.lambda.param.clone(), arg);
        let body_path = key.0.child(PathStep::LambdaBody);
        let out = self.analyze(&def.lambda.body, &body_path, &env);
        self.active.pop();
        let prev = self.assumptions.get(&key).copied().unwrap_or(Bt::Static);
        let joined = prev.join(out.collapse());
        if joined != prev {
            self.assumptions.insert(key, joined);
            self.changed = true;
        }
        // Function and primitive results stay applicable; data carries
        // the fixpoint-joined binding time.
        match out {
            Abs::Fun(_) | Abs::Prim(_) => out,
            Abs::Data(_) => Abs::Data(joined),
        }
    }
}

/// Runs the analysis: free variables are dynamic inputs unless listed in
/// `static_inputs`; constants and primitives are static. Iterates to a
/// fixpoint.
///
/// ```
/// use monsem_pe::bta::{analyze, Bt};
/// use monsem_syntax::{parse_expr, Ident};
/// let e = parse_expr("n + (2 * 3)")?;
/// assert_eq!(analyze(&e, &[]).result(), Some(Bt::Dynamic));
/// assert_eq!(analyze(&e, &[Ident::new("n")]).result(), Some(Bt::Static));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyze(program: &Expr, static_inputs: &[Ident]) -> Division {
    let mut assumptions = BTreeMap::new();
    for _pass in 0..16 {
        let mut a = Analyzer {
            division: Division::default(),
            assumptions,
            changed: false,
            active: Vec::new(),
        };
        let mut env = AEnv::default();
        for name in static_inputs {
            env = env.plain(name.clone(), Abs::Data(Bt::Static));
        }
        a.analyze(program, &ExprPath::root(), &env);
        if !a.changed {
            return a.division;
        }
        assumptions = a.assumptions;
    }
    // The lattice has height 1 per key, so this is unreachable in
    // practice; return the last division anyway.
    let mut a = Analyzer {
        division: Division::default(),
        assumptions,
        changed: false,
        active: Vec::new(),
    };
    let mut env = AEnv::default();
    for name in static_inputs {
        env = env.plain(name.clone(), Abs::Data(Bt::Static));
    }
    a.analyze(program, &ExprPath::root(), &env);
    a.division
}

/// Renders the program as a *two-level term*: every dynamic program point
/// is wrapped in `«…»`, static code is left bare — the offline partial
/// evaluator's traditional presentation of a division.
pub fn render_two_level(program: &Expr, division: &Division) -> String {
    fn walk(e: &Expr, path: &ExprPath, d: &Division, out: &mut String) {
        let dynamic = d.bt_at(path) == Some(Bt::Dynamic);
        if dynamic {
            out.push('«');
        }
        match e {
            Expr::Con(_) | Expr::Var(_) | Expr::VarAt(..) => out.push_str(&e.to_string()),
            Expr::Lambda(l) => {
                out.push_str("lambda ");
                out.push_str(l.param.as_str());
                out.push_str(". ");
                walk(&l.body, &path.child(PathStep::LambdaBody), d, out);
            }
            Expr::If(c, t, f) => {
                out.push_str("if ");
                walk(c, &path.child(PathStep::Cond), d, out);
                out.push_str(" then ");
                walk(t, &path.child(PathStep::Then), d, out);
                out.push_str(" else ");
                walk(f, &path.child(PathStep::Else), d, out);
            }
            Expr::App(f, a) => {
                out.push('(');
                walk(f, &path.child(PathStep::Fun), d, out);
                out.push(' ');
                walk(a, &path.child(PathStep::Arg), d, out);
                out.push(')');
            }
            Expr::Let(x, v, b) => {
                out.push_str("let ");
                out.push_str(x.as_str());
                out.push_str(" = ");
                walk(v, &path.child(PathStep::BindingValue(0)), d, out);
                out.push_str(" in ");
                walk(b, &path.child(PathStep::Body), d, out);
            }
            Expr::Letrec(bs, body) => {
                out.push_str("letrec ");
                for (i, b) in bs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" and ");
                    }
                    out.push_str(b.name.as_str());
                    out.push_str(" = ");
                    walk(&b.value, &path.child(PathStep::BindingValue(i)), d, out);
                }
                out.push_str(" in ");
                walk(body, &path.child(PathStep::Body), d, out);
            }
            Expr::Ann(a, inner) => {
                out.push_str(&a.to_string());
                out.push(':');
                walk(inner, &path.child(PathStep::Annotated), d, out);
            }
            Expr::Seq(a, b) => {
                walk(a, &path.child(PathStep::SeqFirst), d, out);
                out.push_str("; ");
                walk(b, &path.child(PathStep::SeqSecond), d, out);
            }
            Expr::Assign(x, v) => {
                out.push_str(x.as_str());
                out.push_str(" := ");
                walk(v, &path.child(PathStep::AssignValue), d, out);
            }
            Expr::While(c, b) => {
                out.push_str("while ");
                walk(c, &path.child(PathStep::Cond), d, out);
                out.push_str(" do ");
                walk(b, &path.child(PathStep::LoopBody), d, out);
                out.push_str(" end");
            }
            Expr::Par(items) => {
                out.push_str("par(");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    walk(item, &path.child(PathStep::ParElem(i)), d, out);
                }
                out.push(')');
            }
        }
        if dynamic {
            out.push('»');
        }
    }
    let mut out = String::new();
    walk(program, &ExprPath::root(), division, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_syntax::parse_expr;

    #[test]
    fn closed_programs_are_fully_static() {
        let e =
            parse_expr("letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac 5")
                .unwrap();
        let d = analyze(&e, &[]);
        assert_eq!(d.result(), Some(Bt::Static));
        let (_, dynamic) = d.counts();
        assert_eq!(dynamic, 0);
    }

    #[test]
    fn free_variables_are_dynamic_inputs() {
        let e = parse_expr("n + 1").unwrap();
        let d = analyze(&e, &[]);
        assert_eq!(d.result(), Some(Bt::Dynamic));
        // …unless declared static:
        let d = analyze(&e, &[Ident::new("n")]);
        assert_eq!(d.result(), Some(Bt::Static));
    }

    #[test]
    fn pow_with_static_exponent_has_static_control() {
        let e = parse_expr(
            "letrec pow = lambda b. lambda e. if e = 0 then 1 else b * (pow b (e - 1)) \
             in pow base exp",
        )
        .unwrap();
        let d = analyze(&e, &[Ident::new("exp")]);
        // The overall result is dynamic (it depends on base)…
        assert_eq!(d.result(), Some(Bt::Dynamic));
        // …but a healthy share of the program is static (the analysis is
        // monovariant, so `pow` is summarized over both call patterns).
        let (stat, dynamic) = d.counts();
        assert!(stat > 0, "static points: {stat}, dynamic: {dynamic}");
    }

    #[test]
    fn annotations_pin_points_dynamic() {
        let e = parse_expr("{A}:(1 + 2)").unwrap();
        let d = analyze(&e, &[]);
        assert_eq!(d.result(), Some(Bt::Dynamic));
        // The computation inside is still static.
        let inner = ExprPath(vec![PathStep::Annotated]);
        assert_eq!(d.bt_at(&inner), Some(Bt::Static));
    }

    #[test]
    fn recursion_reaches_a_fixpoint() {
        let e = parse_expr("letrec f = lambda n. if n = 0 then m else f (n - 1) in f k").unwrap();
        // m and k free → dynamic; the analysis must terminate and mark
        // the program dynamic.
        let d = analyze(&e, &[]);
        assert_eq!(d.result(), Some(Bt::Dynamic));
    }

    #[test]
    fn two_level_rendering_marks_dynamic_points() {
        let e = parse_expr("(n + 1) * (2 + 3)").unwrap();
        let d = analyze(&e, &[]);
        let rendered = render_two_level(&e, &d);
        // The n-side is dynamic, the constant side static.
        assert!(rendered.contains("«n»"), "{rendered}");
        assert!(rendered.contains("(((+) 2) 3)"), "{rendered}");
        // The static sub-sum is not wrapped.
        assert!(!rendered.contains("«(((+) 2"), "{rendered}");
    }

    #[test]
    fn higher_order_flow_is_tracked() {
        let e =
            parse_expr("let apply = lambda f. lambda x. f x in apply (lambda y. y + 1) d").unwrap();
        let d = analyze(&e, &[]);
        assert_eq!(d.result(), Some(Bt::Dynamic));
        let d = analyze(&e, &[Ident::new("d")]);
        assert_eq!(d.result(), Some(Bt::Static));
    }
}

#[cfg(test)]
mod cross_validation {
    use super::*;
    use crate::specialize::{specialize_with, SpecializeOptions};
    use monsem_core::Value;
    use monsem_syntax::parse_expr;

    /// BTA's verdict and the specializer's behaviour must line up: a
    /// program the analysis calls fully static (given its inputs) must
    /// specialize to a literal, and one it calls dynamic must leave a
    /// residue.
    #[test]
    fn analysis_predicts_specialization() {
        let cases: &[(&str, &[(&str, i64)])] = &[
            (
                "letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac 6",
                &[],
            ),
            ("n * (2 + 3)", &[("n", 7)]),
            ("if flag then 1 else 2", &[("flag", 1)]), // non-bool static input: still static per BTA
        ];
        for (src, inputs) in cases {
            let program = parse_expr(src).unwrap();
            let statics: Vec<Ident> = inputs.iter().map(|(n, _)| Ident::new(*n)).collect();
            let division = analyze(&program, &statics);
            let values: Vec<(Ident, Value)> = inputs
                .iter()
                .map(|(n, v)| (Ident::new(*n), Value::Int(*v)))
                .collect();
            let (residual, _) = specialize_with(&program, &values, &SpecializeOptions::default());
            match division.result() {
                Some(Bt::Static) => {
                    // Static per BTA ⇒ the specializer either folds to a
                    // constant or preserves a runtime error (`if 1 …`).
                    let fully_folded = matches!(residual, monsem_syntax::Expr::Con(_));
                    let is_error_residue = monsem_core::machine::eval(&residual).is_err();
                    assert!(
                        fully_folded || is_error_residue,
                        "BTA said static but residual is {residual}"
                    );
                }
                Some(Bt::Dynamic) => {
                    assert!(
                        !matches!(residual, monsem_syntax::Expr::Con(_)),
                        "BTA said dynamic but the specializer folded {src} to {residual}"
                    );
                }
                None => panic!("analysis reached no verdict for {src}"),
            }
        }
    }

    /// And in the other direction on generated closed programs: BTA must
    /// call them static (they have no free variables), matching the
    /// specializer's ability to fold them given enough budget.
    #[test]
    fn closed_generated_programs_are_static() {
        use monsem_syntax::gen::{gen_program, GenConfig};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
        for _ in 0..25 {
            let program = gen_program(&mut rng, &GenConfig::default());
            let division = analyze(&program, &[]);
            assert_eq!(
                division.result(),
                Some(Bt::Static),
                "closed program analysed dynamic: {program}"
            );
        }
    }
}
