//! Tiered, profile-guided specialization: promote hot programs to
//! compiled residuals behind state-region guards.
//!
//! The §9.1 ladder gives three ways to run a temporal-spec-monitored
//! program: interpret the monitor (level 1), compile the dispatch
//! (level 2, [`SpecializedSpec`] on the [`engine`](crate::engine)), or
//! compile the monitor *into* the program
//! ([`instrument_spec`](crate::instrument_spec), level 3). Level 3 is
//! fastest but costs a whole-program translation and fixes the compiled
//! automaton up front. [`TieredSession`] climbs the ladder at run time
//! instead, the way a tiered JIT does:
//!
//! 1. **Profile** — runs start on the hook tier (level 2), with the
//!    engine's per-site event counters ([`SiteStats`]) and a DFA-state
//!    probe riding along at negligible cost.
//! 2. **Promote** — when a site crosses
//!    [`TierPolicy::hot_threshold`], the session lazily invokes the
//!    state-threading translation *restricted to the profiled state
//!    region* ([`instrument_spec_region`]): transitions inside the
//!    region inline as comparison chains; transitions that leave it
//!    produce an escape sentinel. Functions that cannot observe events
//!    keep their original calling convention (the translation's
//!    polyvariance), so unmonitored call paths pay nothing.
//! 3. **Guard** — a run may use the residual only if the start state is
//!    in the compiled region; a negative (sentinel) final state means
//!    the run left the region mid-way, and the session re-runs it on
//!    the hook tier so results are *always* those of level 1.
//! 4. **Demote & refine** — a guard-failure storm
//!    ([`TierPolicy::demote_after`] consecutive escapes) demotes the
//!    residual; the session then re-promotes with the region widened by
//!    the escaped-to states, linking the new residual to its parent in
//!    a [`SpecTree`] (mijit-style `Relatives`), so re-promotion refines
//!    rather than recompiles from scratch — bounded by
//!    [`TierPolicy::max_refinements`].
//!
//! Promotion is observably lazy: a session whose sites never get hot
//! compiles nothing ([`TierStats::residuals_compiled`] stays 0).
//! Programs containing `par` and enforcing monitors stay on the hook
//! tier — the sequential state-threading translation does not model the
//! fork-join interleaving, and a residual has no abort channel.
//!
//! A [`Budget`] attached to the session meters the residual tier: a
//! compiled stretch fires no hooks, so the wall clock it burns is
//! charged in bulk via [`Guarded::charge`]; exhaustion demotes the
//! session back to the hook tier, where ordinary per-hook guarding
//! applies.

use crate::engine::{compile, compile_monitored, CompileError, CompiledProgram, SiteStats};
use crate::instrument::{instrument_spec_region, spec_verdict};
use crate::specmon::SpecializedSpec;
use monsem_core::error::EvalError;
use monsem_core::machine::EvalOptions;
use monsem_core::Value;
use monsem_monitor::fault::{Budget, GuardState, Guarded, Health};
use monsem_monitor::spec::HookPhase;
use monsem_monitor::{Monitor, Outcome, Scope, SpecTree, TierPolicy, TierStats};
use monsem_syntax::{Annotation, Expr};
use monsem_tspec::{SpecMonitor, SpecState};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::time::Instant;

/// Which tier served a [`TieredSession::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierOutcome {
    /// The profiling (hook) tier ran the program.
    Profiled,
    /// A compiled residual ran the program end to end.
    Residual,
    /// The residual escaped its state region; the hook tier re-ran the
    /// program and produced the result.
    GuardFallback,
}

/// The result of one tiered run.
#[derive(Debug, Clone)]
pub struct TieredRun {
    /// The program's answer — identical across tiers.
    pub value: Value,
    /// The final DFA state — identical across tiers.
    pub state: u32,
    /// Which tier produced the result.
    pub outcome: TierOutcome,
    /// The full monitor state (events, trace), available whenever the
    /// run went through the hook tier. A pure residual run threads only
    /// the bare DFA state, so it has no event log to report.
    pub full: Option<SpecState>,
}

/// A snapshot of a session's tiering machinery.
#[derive(Debug, Clone)]
pub struct TieredReport {
    /// The tier counters.
    pub stats: TierStats,
    /// The state region of the active residual, if one is installed.
    pub active_region: Option<Vec<u32>>,
    /// Refinement depth of the active residual (0 for a first
    /// promotion).
    pub lineage: usize,
    /// Sites currently over the promotion threshold.
    pub hot_sites: Vec<usize>,
    /// Budget health ([`Health::Ok`] when no budget is attached or the
    /// budget is not exhausted).
    pub health: Health,
}

/// A compiled residual in the specialization cache.
#[derive(Debug)]
struct Residual {
    region: Vec<u32>,
    program: CompiledProgram,
    refinements: u32,
}

/// Wraps the hook-tier monitor to record which DFA states a profiled
/// run visits — the "per DFA-state region" half of the profile, driving
/// the region choice at promotion. Interior mutability because monitor
/// hooks take `&self`; the sequential engine never aliases the probe.
struct StateProfiler<'a> {
    inner: &'a SpecializedSpec,
    visited: RefCell<BTreeSet<u32>>,
}

impl StateProfiler<'_> {
    fn record(&self, out: &Outcome<SpecState>) {
        let s = match out {
            Outcome::Continue(s) => s,
            Outcome::Abort { state, .. } => state,
        };
        self.visited.borrow_mut().insert(s.state);
    }
}

impl Monitor for StateProfiler<'_> {
    type State = SpecState;

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        self.inner.accepts(ann)
    }

    fn accepts_event(&self, ann: &Annotation, phase: HookPhase) -> bool {
        self.inner.accepts_event(ann, phase)
    }

    fn initial_state(&self) -> SpecState {
        let s = self.inner.initial_state();
        self.visited.borrow_mut().insert(s.state);
        s
    }

    fn try_pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: SpecState,
    ) -> Outcome<SpecState> {
        let out = self.inner.try_pre(ann, expr, scope, state);
        self.record(&out);
        out
    }

    fn try_post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: SpecState,
    ) -> Outcome<SpecState> {
        let out = self.inner.try_post(ann, expr, scope, value, state);
        self.record(&out);
        out
    }

    fn pre(&self, ann: &Annotation, expr: &Expr, scope: &Scope<'_>, state: SpecState) -> SpecState {
        match self.try_pre(ann, expr, scope, state) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: SpecState,
    ) -> SpecState {
        match self.try_post(ann, expr, scope, value, state) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn render_state(&self, state: &SpecState) -> String {
        self.inner.render_state(state)
    }
}

fn contains_par(e: &Expr) -> bool {
    let mut found = false;
    monsem_syntax::points::visit(e, |_, node| {
        if matches!(node, Expr::Par(_)) {
            found = true;
        }
    });
    found
}

/// The tiered driver: owns the profile, the specialization cache, and
/// the promotion/demotion state machine described in the module docs.
///
/// ```
/// use monsem_pe::TieredSession;
/// use monsem_monitor::TierPolicy;
/// use monsem_syntax::parse_expr;
/// use monsem_tspec::SpecMonitor;
///
/// let prog = parse_expr(
///     "letrec fac = lambda x. {fac}:(if x = 0 then 1 else x * (fac (x - 1))) in fac 10",
/// )?;
/// let m = SpecMonitor::new("pos", "always(post(fac) => value >= 1)")?;
/// let mut session = TieredSession::new(&prog, m)?
///     .policy(TierPolicy::default().hot_threshold(8));
/// let cold = session.run()?; // profiling tier
/// let hot = session.run()?;  // site is hot now: compiled residual
/// assert_eq!(cold.value, hot.value);
/// assert_eq!(cold.state, hot.state);
/// assert_eq!(session.stats().residuals_compiled, 1);
/// assert!(session.verdict(hot.state).is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct TieredSession {
    program: Expr,
    monitor: SpecMonitor,
    specialized: SpecializedSpec,
    compiled: CompiledProgram,
    options: EvalOptions,
    policy: TierPolicy,
    site_stats: SiteStats,
    stats: TierStats,
    has_par: bool,
    visited: BTreeSet<u32>,
    cache: SpecTree<Residual>,
    active: Option<usize>,
    consecutive_failures: u32,
    pending_escapes: BTreeSet<u32>,
    pinned: bool,
    guard: Option<(Guarded<SpecMonitor>, GuardState<SpecState>)>,
}

impl TieredSession {
    /// Builds a session for `program` monitored against `monitor`'s
    /// spec. Compiles the hook tier eagerly (it serves the first run);
    /// residuals are compiled only on promotion.
    ///
    /// # Errors
    ///
    /// [`CompileError`] if the program uses constructs the compiled
    /// engine does not support (assignment, `while`).
    pub fn new(program: &Expr, monitor: SpecMonitor) -> Result<TieredSession, CompileError> {
        let specialized = SpecializedSpec::new(program, monitor.clone());
        let compiled = compile_monitored(program, &specialized)?;
        let site_stats = SiteStats::for_program(&compiled);
        let has_par = contains_par(program);
        Ok(TieredSession {
            program: program.clone(),
            monitor,
            specialized,
            compiled,
            options: EvalOptions::default(),
            policy: TierPolicy::default(),
            site_stats,
            stats: TierStats::default(),
            has_par,
            visited: BTreeSet::new(),
            cache: SpecTree::new(),
            active: None,
            consecutive_failures: 0,
            pending_escapes: BTreeSet::new(),
            pinned: false,
            guard: None,
        })
    }

    /// Sets the promotion policy.
    pub fn policy(mut self, policy: TierPolicy) -> TieredSession {
        self.policy = policy;
        self
    }

    /// Sets the evaluation options used by every tier.
    pub fn options(mut self, options: EvalOptions) -> TieredSession {
        self.options = options;
        self
    }

    /// Attaches a monitoring budget. Hook-tier events are charged
    /// against the step budget; residual runs — which fire no hooks —
    /// are charged in bulk against the wall budget via
    /// [`Guarded::charge`] (conservatively: the whole residual run
    /// counts as monitoring time, since the inlined transitions are
    /// inseparable from the program). An exhausted budget demotes the
    /// session to the hook tier for good; [`TieredReport::health`]
    /// says so.
    pub fn budget(mut self, budget: Budget) -> TieredSession {
        let guard = Guarded::new(self.monitor.clone()).budget(budget);
        let gs = guard.initial_state();
        self.guard = Some((guard, gs));
        self
    }

    /// The spec monitor this session enforces.
    pub fn monitor(&self) -> &SpecMonitor {
        &self.monitor
    }

    /// The tier counters.
    pub fn stats(&self) -> &TierStats {
        &self.stats
    }

    /// The per-site event profile.
    pub fn site_stats(&self) -> &SiteStats {
        &self.site_stats
    }

    /// The state region of the active residual, if one is installed.
    pub fn active_region(&self) -> Option<&[u32]> {
        self.active
            .and_then(|id| self.cache.get(id))
            .map(|r| r.region.as_slice())
    }

    /// Decodes a final DFA state as a spec verdict, as
    /// [`spec_verdict`].
    ///
    /// # Errors
    ///
    /// The violation reason, if the trace is not accepted.
    pub fn verdict(&self, state: u32) -> Result<(), String> {
        spec_verdict(self.monitor.automaton(), state)
    }

    /// A snapshot of the tiering machinery.
    pub fn report(&self) -> TieredReport {
        TieredReport {
            stats: self.stats,
            active_region: self.active_region().map(|r| r.to_vec()),
            lineage: self
                .active
                .map(|id| self.cache.ancestors(id).len())
                .unwrap_or(0),
            hot_sites: self.site_stats.hot_sites(self.policy.hot_threshold),
            health: self
                .guard
                .as_ref()
                .map(|(_, gs)| gs.health.clone())
                .unwrap_or(Health::Ok),
        }
    }

    /// Runs the program once on the best tier currently available.
    ///
    /// The result — answer and final DFA state — is always that of the
    /// level-1 monitored run: a residual whose guard fails falls back
    /// to the hook tier transparently (reported as
    /// [`TierOutcome::GuardFallback`]).
    ///
    /// # Errors
    ///
    /// Any [`EvalError`] the program provokes; for an enforcing
    /// monitor, [`EvalError::MonitorAbort`] on violation (enforcing
    /// monitors never promote, so the abort channel is always live).
    pub fn run(&mut self) -> Result<TieredRun, EvalError> {
        if let Some(id) = self.active {
            let residual = self.cache.get(id).expect("active residual is cached");
            let started = Instant::now();
            let result = residual
                .program
                .run_monitored(&monsem_monitor::IdentityMonitor, &self.options)
                .map(|(v, ())| v);
            let elapsed = started.elapsed();
            self.charge_wall(elapsed);
            let (value, sigma) = split_pair(result?);
            if sigma >= 0 {
                self.stats.residual_runs += 1;
                self.consecutive_failures = 0;
                return Ok(TieredRun {
                    value,
                    state: sigma as u32,
                    outcome: TierOutcome::Residual,
                    full: None,
                });
            }
            // Guard failure: the run left the compiled region. The
            // sentinel encodes the state it escaped to; remember it for
            // refinement and let the hook tier produce the real result.
            self.stats.guard_failures += 1;
            self.consecutive_failures += 1;
            self.pending_escapes.insert((-sigma - 1) as u32);
            let mut run = self.run_profiled()?;
            run.outcome = TierOutcome::GuardFallback;
            if self.active.is_some() && self.consecutive_failures >= self.policy.demote_after {
                self.demote_and_refine();
            }
            return Ok(run);
        }
        let run = self.run_profiled()?;
        self.maybe_promote();
        Ok(run)
    }

    /// One hook-tier run: level-2 engine, site counters, state probe.
    fn run_profiled(&mut self) -> Result<TieredRun, EvalError> {
        let probe = StateProfiler {
            inner: &self.specialized,
            visited: RefCell::new(BTreeSet::new()),
        };
        let events_before = self.site_stats.total();
        let outcome =
            self.compiled
                .run_monitored_profiled(&probe, &self.options, &mut self.site_stats);
        self.visited.extend(probe.visited.into_inner());
        let delta = self.site_stats.total() - events_before;
        self.stats.interpreted_runs += 1;
        self.stats.profiled_events += delta;
        if let Some((guard, gs)) = self.guard.as_mut() {
            guard.charge(gs, delta, std::time::Duration::ZERO);
        }
        let (value, state) = outcome?;
        Ok(TieredRun {
            value,
            state: state.state,
            outcome: TierOutcome::Profiled,
            full: Some(state),
        })
    }

    /// Promotes when the profile says so: some site crossed the
    /// threshold, the program is promotable, and the cache has room.
    fn maybe_promote(&mut self) {
        if self.active.is_some()
            || self.pinned
            || self.has_par
            || self.monitor.is_enforcing()
            || self.stats.residuals_compiled as usize >= self.policy.max_residuals
            || self
                .site_stats
                .hot_sites(self.policy.hot_threshold)
                .is_empty()
        {
            return;
        }
        let mut region = self.visited.clone();
        region.insert(self.monitor.automaton().start());
        let region: Vec<u32> = region.into_iter().collect();
        self.install(region, None);
    }

    /// Compiles and installs a residual for `region`, linked under
    /// `parent` when it is a refinement. Declines (pinning the session
    /// to the hook tier) if the region does not contain the start state
    /// — the entry guard — or the residual fails to compile.
    fn install(&mut self, region: Vec<u32>, parent: Option<usize>) {
        if !region.contains(&self.monitor.automaton().start()) {
            self.pinned = true;
            return;
        }
        let source = instrument_spec_region(&self.program, &self.monitor, &region);
        let Ok(program) = compile(&source) else {
            self.pinned = true;
            return;
        };
        let refinements = parent
            .and_then(|p| self.cache.get(p))
            .map(|r| r.refinements + 1)
            .unwrap_or(0);
        let residual = Residual {
            region,
            program,
            refinements,
        };
        self.stats.residuals_compiled += 1;
        let id = match parent {
            None => {
                self.stats.promotions += 1;
                self.cache.root(residual)
            }
            Some(p) => {
                self.stats.refinements += 1;
                self.cache.refine(p, residual)
            }
        };
        self.active = Some(id);
        self.consecutive_failures = 0;
    }

    /// Demotes the active residual after a guard-failure storm and —
    /// refinement budget permitting — re-promotes with the region
    /// widened by everything learned since: the escaped-to states and
    /// the states the fallback runs visited.
    fn demote_and_refine(&mut self) {
        let Some(id) = self.active.take() else {
            return;
        };
        self.stats.demotions += 1;
        self.consecutive_failures = 0;
        let parent = self.cache.get(id).expect("demoted residual is cached");
        if parent.refinements >= self.policy.max_refinements {
            self.pinned = true;
            self.pending_escapes.clear();
            return;
        }
        let mut region: BTreeSet<u32> = parent.region.iter().copied().collect();
        region.append(&mut self.pending_escapes);
        region.extend(self.visited.iter().copied());
        self.install(region.into_iter().collect(), Some(id));
    }

    /// Forces promotion with an explicit state region (a tuning and
    /// testing hook — normal operation promotes from the profile).
    /// Returns whether a residual was installed.
    pub fn promote_with_region(&mut self, region: &[u32]) -> bool {
        if self.has_par || self.monitor.is_enforcing() {
            return false;
        }
        let parent = self.active.take();
        let mut region = region.to_vec();
        region.sort_unstable();
        region.dedup();
        let was_pinned = self.pinned;
        self.pinned = false;
        self.install(region, parent);
        if self.active.is_none() {
            self.pinned = was_pinned || self.pinned;
        }
        self.active.is_some()
    }

    /// Forces demotion to the hook tier (the residual stays cached; the
    /// profile keeps accumulating and may re-promote later).
    pub fn demote(&mut self) {
        if self.active.take().is_some() {
            self.stats.demotions += 1;
            self.consecutive_failures = 0;
        }
    }

    /// Charges a hook-free residual stretch against the wall budget.
    fn charge_wall(&mut self, elapsed: std::time::Duration) {
        if let Some((guard, gs)) = self.guard.as_mut() {
            guard.charge(gs, 0, elapsed);
            if !gs.health.is_ok() {
                // Over budget: compiled monitoring is too expensive.
                // Back to the hook tier, where per-hook guarding rules.
                self.active = None;
                self.pinned = true;
            }
        }
    }
}

/// Splits the `answer : state` pair a residual computes.
fn split_pair(v: Value) -> (Value, i64) {
    match v {
        Value::Pair(a, s) => match &*s {
            Value::Int(i) => ((*a).clone(), *i),
            other => panic!("residual state must be an integer, got {other}"),
        },
        other => panic!("residual must compute answer : state, got {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_monitor::machine::eval_monitored;
    use monsem_syntax::parse_expr;

    fn fac_prog(n: i64) -> Expr {
        parse_expr(&format!(
            "letrec fac = lambda x. {{fac}}:(if x = 0 then 1 else x * (fac (x - 1))) in fac {n}"
        ))
        .unwrap()
    }

    fn pos_monitor() -> SpecMonitor {
        SpecMonitor::new("pos", "always(post(fac) => value >= 1)").unwrap()
    }

    #[test]
    fn cold_sessions_compile_nothing() {
        let mut s = TieredSession::new(&fac_prog(3), pos_monitor()).unwrap();
        // 4 events per run, default threshold 32: stays cold for a while.
        for _ in 0..3 {
            let r = s.run().unwrap();
            assert_eq!(r.outcome, TierOutcome::Profiled);
        }
        assert_eq!(s.stats().residuals_compiled, 0, "promotion is lazy");
        assert_eq!(s.stats().interpreted_runs, 3);
        assert!(s.active_region().is_none());
    }

    #[test]
    fn hot_sites_promote_and_the_residual_matches_level_1() {
        let prog = fac_prog(8);
        let m = pos_monitor();
        let (expected, level1) = eval_monitored(&prog, &m).unwrap();
        let mut s = TieredSession::new(&prog, m)
            .unwrap()
            .policy(TierPolicy::default().hot_threshold(4));
        let first = s.run().unwrap();
        assert_eq!(first.outcome, TierOutcome::Profiled);
        assert_eq!(s.stats().promotions, 1, "first run tipped the site hot");
        let second = s.run().unwrap();
        assert_eq!(second.outcome, TierOutcome::Residual);
        assert_eq!(second.value, expected);
        assert_eq!(second.state, level1.state);
        assert_eq!(first.state, level1.state);
        assert_eq!(s.stats().residual_runs, 1);
        assert!(s.verdict(second.state).is_ok());
    }

    #[test]
    fn guard_failure_falls_back_demotes_and_refines() {
        // The run violates `pos` (every post value is 0), so level 1
        // ends in the dead state.
        let prog = parse_expr(
            "letrec count = lambda x. if x = 0 then {fac}:0 else {fac}:(count (x - 1)) in count 4",
        )
        .unwrap();
        let m = pos_monitor();
        let (expected, level1) = eval_monitored(&prog, &m).unwrap();
        assert!(m.automaton().is_dead(level1.state));
        // Default threshold (32) keeps the first run cold: the forced
        // promotion below is a root, not a refinement.
        let mut s = TieredSession::new(&prog, m)
            .unwrap()
            .policy(TierPolicy::default().demote_after(1));
        s.run().unwrap();
        // Install a residual whose region excludes the dead state: the
        // violating transition escapes, so the residual guard-fails.
        let region: Vec<u32> = s
            .monitor()
            .automaton()
            .reachable()
            .into_iter()
            .filter(|&t| t != level1.state)
            .collect();
        assert!(s.promote_with_region(&region));
        let r = s.run().unwrap();
        assert_eq!(r.outcome, TierOutcome::GuardFallback);
        assert_eq!(r.value, expected);
        assert_eq!(r.state, level1.state, "fallback preserves the DFA state");
        assert_eq!(s.stats().guard_failures, 1);
        assert_eq!(s.stats().demotions, 1);
        // demote_after(1) refines immediately with the escaped-to state.
        assert_eq!(s.stats().refinements, 1);
        let region = s.active_region().expect("refined residual installed");
        assert!(region.len() > 1, "region widened: {region:?}");
        let refined = s.run().unwrap();
        assert_eq!(refined.outcome, TierOutcome::Residual);
        assert_eq!(refined.state, level1.state);
    }

    #[test]
    fn par_programs_never_promote() {
        let prog = parse_expr("par({a}:1, {a}:2) ; {a}:3").unwrap();
        let m = SpecMonitor::new("obs", "always(post(a) => value >= 0)").unwrap();
        let mut s = TieredSession::new(&prog, m)
            .unwrap()
            .policy(TierPolicy::default().hot_threshold(1));
        for _ in 0..4 {
            assert_eq!(s.run().unwrap().outcome, TierOutcome::Profiled);
        }
        assert_eq!(s.stats().residuals_compiled, 0);
        assert!(
            !s.promote_with_region(&[0]),
            "forced promotion declines too"
        );
    }

    #[test]
    fn enforcing_monitors_stay_on_the_hook_tier() {
        let prog = fac_prog(5);
        let m = pos_monitor().enforcing();
        let mut s = TieredSession::new(&prog, m)
            .unwrap()
            .policy(TierPolicy::default().hot_threshold(1));
        s.run().unwrap();
        s.run().unwrap();
        assert_eq!(s.stats().residuals_compiled, 0);
    }

    #[test]
    fn exhausted_budget_demotes_for_good() {
        let prog = fac_prog(8);
        let mut s = TieredSession::new(&prog, pos_monitor())
            .unwrap()
            .policy(TierPolicy::default().hot_threshold(4))
            .budget(Budget::unlimited().with_wall(std::time::Duration::ZERO));
        s.run().unwrap(); // profiles and promotes
        assert_eq!(s.stats().promotions, 1);
        let r = s.run().unwrap(); // residual run charges > 0 wall
        assert_eq!(r.outcome, TierOutcome::Residual, "the run still completes");
        assert!(!s.report().health.is_ok());
        assert_eq!(s.run().unwrap().outcome, TierOutcome::Profiled);
        s.run().unwrap();
        assert_eq!(s.stats().residuals_compiled, 1, "no re-promotion");
    }

    #[test]
    fn report_surfaces_the_machinery() {
        let prog = fac_prog(8);
        let mut s = TieredSession::new(&prog, pos_monitor())
            .unwrap()
            .policy(TierPolicy::default().hot_threshold(4));
        s.run().unwrap();
        let report = s.report();
        assert_eq!(report.stats.promotions, 1);
        assert!(report.active_region.is_some());
        assert_eq!(report.lineage, 0);
        assert!(!report.hot_sites.is_empty());
        assert!(report.health.is_ok());
    }
}
