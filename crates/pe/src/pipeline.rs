//! The Figure 10 pipeline as concrete artifacts, plus small measurement
//! helpers shared by the benchmark harness.
//!
//! | level | paper | here |
//! |---|---|---|
//! | interpreter | "Int" | [`monsem_core::machine::eval`] on the erased program |
//! | 1 | interpreter × monitor specs → instrumented interpreter | [`monsem_monitor::machine::eval_monitored`] with a concrete monitor (statically dispatched) |
//! | 2 | × source program → instrumented program | [`crate::engine::compile_monitored`] (compiled form) and [`crate::instrument()`] (source form) |
//! | 3 | × partial input → specialized program | [`crate::specialize::specialize_with`] |

use crate::engine::{compile, compile_monitored, CompileError, CompiledProgram};
use monsem_core::error::EvalError;
use monsem_core::machine::{eval_with, EvalOptions};
use monsem_core::{Env, Value};
use monsem_monitor::machine::eval_monitored_with;
use monsem_monitor::Monitor;
use monsem_syntax::Expr;
use std::time::{Duration, Instant};

/// The artifacts of the specialization pipeline for one (program,
/// monitor) pair.
pub struct Pipeline<'m, M: Monitor> {
    /// The annotated source program.
    pub program: Expr,
    /// The erased program (`s` from `s̄`) — what the standard interpreter
    /// runs.
    pub erased: Expr,
    /// The monitor.
    pub monitor: &'m M,
    compiled_standard: CompiledProgram,
    compiled_monitored: CompiledProgram,
}

impl<'m, M: Monitor> Pipeline<'m, M> {
    /// Builds every artifact up front (compilation is the "specialization
    /// time" of the paper's level 2 — not counted in run times).
    ///
    /// # Errors
    ///
    /// [`CompileError`] for programs outside the compiled engine's
    /// fragment.
    pub fn new(program: Expr, monitor: &'m M) -> Result<Self, CompileError> {
        let erased = program.erase_annotations();
        let compiled_standard = compile(&erased)?;
        let compiled_monitored = compile_monitored(&program, monitor)?;
        Ok(Pipeline {
            program,
            erased,
            monitor,
            compiled_standard,
            compiled_monitored,
        })
    }

    /// Level “Int”: the standard interpreter on the erased program.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`].
    pub fn run_standard_interpreter(&self) -> Result<Value, EvalError> {
        eval_with(&self.erased, &Env::empty(), &EvalOptions::default())
    }

    /// Level 1: the monitored interpreter (monitor statically dispatched).
    ///
    /// # Errors
    ///
    /// Any [`EvalError`].
    pub fn run_monitored_interpreter(&self) -> Result<(Value, M::State), EvalError> {
        eval_monitored_with(
            &self.program,
            &Env::empty(),
            self.monitor,
            self.monitor.initial_state(),
            &EvalOptions::default(),
        )
    }

    /// Level 2 baseline: the compiled engine on the erased program.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`].
    pub fn run_compiled_standard(&self) -> Result<Value, EvalError> {
        self.compiled_standard.run()
    }

    /// Level 2: the compiled instrumented program.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`].
    pub fn run_compiled_monitored(&self) -> Result<(Value, M::State), EvalError> {
        self.compiled_monitored
            .run_monitored(self.monitor, &EvalOptions::default())
    }

    /// The compiled artifacts, for callers that want to time them
    /// externally.
    pub fn compiled(&self) -> (&CompiledProgram, &CompiledProgram) {
        (&self.compiled_standard, &self.compiled_monitored)
    }
}

/// Median-of-runs wall-clock measurement (the harness's unit of account;
/// Criterion benches exist separately for statistically serious numbers).
pub fn measure<F: FnMut()>(mut f: F, warmup: u32, runs: u32) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<Duration> = (0..runs.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Minimum-of-runs wall-clock measurement. For a deterministic workload
/// the minimum is the noise-robust estimator (scheduler and allocator
/// interference is strictly additive), so comparisons between engine
/// variants use this rather than [`measure`]'s median.
pub fn measure_min<F: FnMut()>(mut f: F, warmup: u32, runs: u32) -> Duration {
    for _ in 0..warmup {
        f();
    }
    (0..runs.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("at least one run")
}

/// Formats a speedup/slowdown pair the way the paper reports them:
/// "x is N% slower than y" / "x is N% faster than y".
pub fn relative_percent(subject: Duration, baseline: Duration) -> String {
    let s = subject.as_secs_f64();
    let b = baseline.as_secs_f64();
    if s >= b {
        format!("{:.0}% slower", (s / b - 1.0) * 100.0)
    } else {
        format!("{:.0}% faster", (1.0 - s / b) * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monsem_core::programs;
    use monsem_monitors::Tracer;

    #[test]
    fn all_levels_agree_on_the_answer() {
        let tracer = Tracer::new();
        let p = Pipeline::new(programs::fac_mul_traced(6), &tracer).unwrap();
        let standard = p.run_standard_interpreter().unwrap();
        let (v1, s1) = p.run_monitored_interpreter().unwrap();
        let v2 = p.run_compiled_standard().unwrap();
        let (v3, s3) = p.run_compiled_monitored().unwrap();
        assert_eq!(standard, v1);
        assert_eq!(standard, v2);
        assert_eq!(standard, v3);
        assert_eq!(s1.chan.render(), s3.chan.render());
    }

    #[test]
    fn measure_returns_a_sane_median() {
        let d = measure(
            || {
                std::hint::black_box(1 + 1);
            },
            1,
            5,
        );
        assert!(d < Duration::from_millis(50));
    }

    #[test]
    fn relative_percent_formats_both_directions() {
        let fast = Duration::from_millis(20);
        let slow = Duration::from_millis(100);
        assert_eq!(relative_percent(slow, fast), "400% slower");
        assert_eq!(relative_percent(fast, slow), "80% faster");
    }
}
