//! Specializing a temporal-specification monitor with respect to a
//! program — the §9.1 move applied to `monsem-tspec`.
//!
//! An interpreted [`SpecMonitor`] performs *alphabet dispatch* at every
//! event: hash the annotation name to its name class, classify the
//! observed value, combine the two into an abstract letter, then index
//! the transition table. The name-class half of that work depends only
//! on the program text, so — exactly like the engine's annotation
//! dispatch — it can be done once, at compile time.
//!
//! [`SpecializedSpec`] scans the program's annotations and precomputes,
//! per annotation site, the pre letter and the post letter family
//! (fully static whenever every post letter of the site's name class
//! shares one letter equivalence class of the compressed table — in
//! particular when the spec has no value predicates, or when this name's
//! observed values are never compared). At run time a
//! hook is a `HashMap` probe on the literal annotation plus a table
//! lookup; no name-class resolution or letter arithmetic remains on the
//! hot path, and phases the automaton cannot observe are compiled away
//! entirely by the engine's `accepts_event` dispatch.
//!
//! State evolution is delegated to [`SpecMonitor::advance`], so the
//! specialized monitor's states, traces, counters, and abort reasons are
//! *identical* to the interpreted monitor's — the differential tests in
//! `tests/tspec_semantics.rs` pin this down.

use monsem_core::Value;
use monsem_monitor::spec::HookPhase;
use monsem_monitor::{Monitor, Outcome, Scope};
use monsem_syntax::{Annotation, Expr};
use monsem_tspec::{SpecMonitor, SpecState};
use std::collections::HashMap;

/// The post-letter half of a site: fully resolved when every post letter
/// of the site's name class falls in the same letter equivalence class
/// (trivially so when the alphabet has a single value class — but the
/// minimized, letter-compressed table often merges columns even when the
/// spec compares values, e.g. when this name's posts are all ignored),
/// otherwise the name-class component with the value class still to be
/// observed.
#[derive(Debug, Clone, Copy)]
enum PostSite {
    /// All of this name's post letters transition identically: the
    /// representative letter is known at compile time.
    Static(u32),
    /// The value contributes; keep the name class and classify at run
    /// time.
    Dynamic(usize),
}

/// Letters precomputed for one annotation site.
#[derive(Debug, Clone, Copy)]
struct Site {
    /// The pre letter, if the pre phase is observable here.
    pre: Option<u32>,
    /// The post letter family, if the post phase is observable here.
    post: Option<PostSite>,
}

/// A [`SpecMonitor`] specialized to the annotations of one program.
#[derive(Debug, Clone)]
pub struct SpecializedSpec {
    inner: SpecMonitor,
    sites: HashMap<Annotation, Site>,
}

impl SpecializedSpec {
    /// Specializes `monitor` to the annotation sites of `program`.
    ///
    /// Annotations the automaton cannot observe in either phase get no
    /// site — the engine erases those hooks outright. Events from
    /// annotations *not* in `program` (possible when the monitor is run
    /// against a different program) fall back to the interpreted path,
    /// so specialization never changes verdicts.
    pub fn new(program: &Expr, monitor: SpecMonitor) -> Self {
        let aut = monitor.automaton().clone();
        let alphabet = aut.alphabet();
        // A post site is static when all its value classes land in one
        // letter class — then classifying the observed value cannot
        // change the transition, and the representative letter suffices.
        let static_post = |nc: usize| -> Option<u32> {
            let first = alphabet.post_letter(nc, 0);
            (1..alphabet.value_classes())
                .all(|vc| aut.letter_class(alphabet.post_letter(nc, vc)) == aut.letter_class(first))
                .then_some(first)
        };
        let mut sites = HashMap::new();
        for ann in program.annotations() {
            if ann.namespace != *monitor.namespace() || sites.contains_key(ann) {
                continue;
            }
            let nc = alphabet.name_class(ann.name());
            let pre = aut.pre_relevant(nc).then(|| alphabet.pre_letter(nc));
            let post = aut.post_relevant(nc).then(|| match static_post(nc) {
                Some(letter) => PostSite::Static(letter),
                None => PostSite::Dynamic(nc),
            });
            if pre.is_some() || post.is_some() {
                sites.insert(ann.clone(), Site { pre, post });
            }
        }
        SpecializedSpec {
            inner: monitor,
            sites,
        }
    }

    /// The underlying (unspecialized) monitor.
    pub fn inner(&self) -> &SpecMonitor {
        &self.inner
    }

    /// Number of annotation sites with at least one observable phase.
    pub fn live_sites(&self) -> usize {
        self.sites.len()
    }

    /// Ends the trace, as [`SpecMonitor::finish`].
    ///
    /// # Errors
    ///
    /// The violation reason, if the completed trace is not accepted.
    pub fn finish(&self, state: &SpecState) -> Result<SpecState, String> {
        self.inner.finish(state)
    }
}

impl Monitor for SpecializedSpec {
    type State = SpecState;

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn accepts(&self, ann: &Annotation) -> bool {
        self.sites.contains_key(ann) || self.inner.accepts(ann)
    }

    fn accepts_event(&self, ann: &Annotation, phase: HookPhase) -> bool {
        match self.sites.get(ann) {
            Some(site) => match phase {
                HookPhase::Pre => site.pre.is_some(),
                HookPhase::Post => site.post.is_some(),
            },
            None => self.inner.accepts_event(ann, phase),
        }
    }

    fn initial_state(&self) -> SpecState {
        self.inner.initial_state()
    }

    fn pre(&self, ann: &Annotation, expr: &Expr, scope: &Scope<'_>, state: SpecState) -> SpecState {
        match self.try_pre(ann, expr, scope, state) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: SpecState,
    ) -> SpecState {
        match self.try_post(ann, expr, scope, value, state) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        }
    }

    fn try_pre(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        state: SpecState,
    ) -> Outcome<SpecState> {
        match self.sites.get(ann) {
            Some(Site {
                pre: Some(letter), ..
            }) => self
                .inner
                .advance(state, *letter, || format!("pre {}", ann.name())),
            Some(_) => Outcome::Continue(state),
            None => self.inner.try_pre(ann, expr, scope, state),
        }
    }

    fn try_post(
        &self,
        ann: &Annotation,
        expr: &Expr,
        scope: &Scope<'_>,
        value: &Value,
        state: SpecState,
    ) -> Outcome<SpecState> {
        match self.sites.get(ann) {
            Some(Site {
                post: Some(site), ..
            }) => {
                let letter = match site {
                    PostSite::Static(l) => *l,
                    PostSite::Dynamic(nc) => {
                        let alphabet = self.inner.automaton().alphabet();
                        alphabet.post_letter(*nc, alphabet.classify_value(value))
                    }
                };
                self.inner.advance(state, letter, || {
                    // Match SpecMonitor's trace entry so states compare
                    // equal across the interpreted and specialized runs.
                    let s = value.to_string();
                    if s.chars().count() > 40 {
                        let head: String = s.chars().take(37).collect();
                        format!("post {} = {head}...", ann.name())
                    } else {
                        format!("post {} = {s}", ann.name())
                    }
                })
            }
            Some(_) => Outcome::Continue(state),
            None => self.inner.try_post(ann, expr, scope, value, state),
        }
    }

    fn render_state(&self, state: &SpecState) -> String {
        self.inner.render_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::compile_monitored;
    use monsem_core::error::EvalError;
    use monsem_core::machine::EvalOptions;
    use monsem_monitor::machine::eval_monitored;
    use monsem_syntax::parse_expr;

    fn fac_prog(n: i64) -> Expr {
        parse_expr(&format!(
            "letrec fac = lambda x. {{fac}}:(if x = 0 then 1 else x * (fac (x - 1))) in fac {n}"
        ))
        .unwrap()
    }

    #[test]
    fn specialized_states_match_interpreted_states() {
        let prog = fac_prog(6);
        let m = SpecMonitor::new("pos", "always(post(fac) => value >= 1)").unwrap();
        let (v_i, s_i) = eval_monitored(&prog, &m).unwrap();
        let sp = SpecializedSpec::new(&prog, m);
        let (v_c, s_c) = compile_monitored(&prog, &sp)
            .unwrap()
            .run_monitored(&sp, &EvalOptions::default())
            .unwrap();
        assert_eq!(v_i, v_c);
        assert_eq!(s_i, s_c, "identical DFA state, counters, and trace");
        assert!(sp.finish(&s_c).is_ok());
    }

    #[test]
    fn post_only_specs_compile_pre_hooks_away() {
        let prog = fac_prog(3);
        let sp = SpecializedSpec::new(
            &prog,
            SpecMonitor::new("pos", "always(post(fac) => value >= 1)").unwrap(),
        );
        assert_eq!(sp.live_sites(), 1);
        let ann = Annotation::label("fac");
        assert!(!sp.accepts_event(&ann, HookPhase::Pre));
        assert!(sp.accepts_event(&ann, HookPhase::Post));
        // The compiled program still embeds the hook (post phase live).
        assert_eq!(compile_monitored(&prog, &sp).unwrap().hooks, 1);
    }

    #[test]
    fn enforcing_specialized_spec_aborts_the_compiled_engine() {
        let prog = fac_prog(5);
        let m = SpecMonitor::new("small", "always(post(fac) => value <= 10)")
            .unwrap()
            .enforcing();
        let sp = SpecializedSpec::new(&prog, m);
        let err = compile_monitored(&prog, &sp)
            .unwrap()
            .run_monitored(&sp, &EvalOptions::default())
            .unwrap_err();
        match err {
            EvalError::MonitorAbort { monitor, reason } => {
                assert_eq!(monitor, "small");
                assert!(reason.contains("small"), "{reason}");
            }
            other => panic!("expected MonitorAbort, got {other:?}"),
        }
    }

    #[test]
    fn dead_annotations_get_no_site_and_no_hook() {
        let prog = parse_expr("{a}:({b}:1 + 1)").unwrap();
        let sp = SpecializedSpec::new(
            &prog,
            SpecMonitor::new("only-a", "always(post(a) => value >= 0)").unwrap(),
        );
        assert_eq!(sp.live_sites(), 1, "{{b}} is invisible to the spec");
        assert_eq!(compile_monitored(&prog, &sp).unwrap().hooks, 1);
    }
}
