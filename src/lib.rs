//! # Monitoring Semantics
//!
//! A Rust reproduction of *Monitoring Semantics: A Formal Framework for
//! Specifying, Implementing, and Reasoning about Execution Monitors*
//! (Amir Kishon, Paul Hudak, Charles Consel — PLDI 1991 / Yale
//! YALEU/DCS/RR-850).
//!
//! A *monitoring semantics* is a conservative extension of a language's
//! standard (continuation) semantics that captures monitoring activity —
//! debuggers, profilers, tracers, demons — as pure monitor-state
//! transformers attached to annotated program points. The meaning of a
//! program becomes `MS → (Ans × MS)`: the original answer, **provably
//! unchanged**, paired with the accumulated monitoring information.
//!
//! This crate is a facade over the workspace:
//!
//! * [`syntax`] — the `L_λ` language: AST, annotations `{μ}:e`, parser,
//!   pretty-printer, program points;
//! * [`core`] — semantic algebras and the standard continuation semantics
//!   (strict machine, call-by-need and imperative modules, answer
//!   algebras);
//! * [`monitor`] — the paper's contribution: the [`Monitor`] trait
//!   (Definition 5.1), monitored evaluators (Figure 3), composition (§6),
//!   soundness (§7), and the §9.2 session environment;
//! * [`monitors`] — the §8 toolbox: profiler, tracer, demon, collecting
//!   monitor, stepper, scripted debugger, and extensions;
//! * [`pe`] — the §9.1 partial-evaluation pipeline: compiled engines,
//!   source-to-source instrumentation, a specializer with partially
//!   static data, and binding-time analysis;
//! * [`tspec`] — a temporal specification language (regular expressions
//!   with intersection/complement plus `always`/`never`/`eventually`/
//!   `respond` sugar) compiled via Brzozowski derivatives into automaton
//!   monitors;
//! * [`tape`] — monitoring as a service: serializable event tapes with a
//!   versioned binary format, offline checking (`monsem check`), and a
//!   monitor server with bounded-queue backpressure and hot-swapped
//!   specs.
//!
//! # Quickstart
//!
//! ```
//! use monitoring_semantics::monitor::machine::eval_monitored;
//! use monitoring_semantics::monitors::Profiler;
//! use monitoring_semantics::syntax::parse_expr;
//!
//! // The paper's §8 example: each function body labelled with its name.
//! let program = parse_expr(
//!     "letrec mul = lambda x. lambda y. {mul}:(x*y) in \
//!      letrec fac = lambda x. {fac}:if (x=0) then 1 else mul x (fac (x-1)) \
//!      in fac 3",
//! )?;
//!
//! let profiler = Profiler::new();
//! let (answer, counts) = eval_monitored(&program, &profiler)?;
//! assert_eq!(answer.to_string(), "6"); // the answer is never changed
//! assert_eq!(
//!     monitoring_semantics::monitor::Monitor::render_state(&profiler, &counts),
//!     "[fac ↦ 4, mul ↦ 3]", // the paper's reported profile
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use monsem_core as core;
pub use monsem_monitor as monitor;
pub use monsem_monitors as monitors;
pub use monsem_pe as pe;
pub use monsem_stream as stream;
pub use monsem_syntax as syntax;
pub use monsem_tape as tape;
pub use monsem_tspec as tspec;

pub use monsem_monitor::Monitor;
