//! `monsem-repl` — an interactive front end to the §9.2 monitoring
//! environment.
//!
//! ```text
//! λ> def fac = lambda x. if x = 0 then 1 else x * (fac (x - 1))
//! λ> fac 5
//! 120
//! λ> :trace fac
//! λ> fac 2
//! [FAC receives (2)]
//! |    [FAC receives (1)]
//! ...
//! ```
//!
//! Commands: `:help`, `:defs`, `:module strict|lazy|imperative`,
//! `:trace f,g…`, `:profile f,g…`, `:collect`, `:monitors off`, `:load
//! <file>`, `:quit`. Everything else is parsed as an `L_λ` expression and
//! evaluated under the accumulated definitions and active monitors.
//!
//! The REPL core is a pure `line in → lines out` function, so the whole
//! interaction model is unit-tested.

use monitoring_semantics::monitor::session::{LanguageModule, Session};
use monitoring_semantics::monitors::toolbox;
use monitoring_semantics::syntax::points::{profile_functions, trace_functions};
use monitoring_semantics::syntax::{parse_expr, Binding, Expr, Ident, Namespace};
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Which tools are armed for the next evaluations.
#[derive(Debug, Clone, Default)]
struct Tools {
    trace: Vec<Ident>,
    profile: Vec<Ident>,
    collect: bool,
}

/// The REPL state: accumulated definitions, language module, armed tools.
struct Repl {
    defs: Vec<Binding>,
    module: LanguageModule,
    tools: Tools,
    prelude: bool,
    done: bool,
}

impl Default for Repl {
    fn default() -> Self {
        Repl {
            defs: Vec::new(),
            module: LanguageModule::default(),
            tools: Tools::default(),
            prelude: true,
            done: false,
        }
    }
}

impl Repl {
    fn new() -> Repl {
        Repl::default()
    }

    /// Processes one input line, returning the lines to print.
    fn handle(&mut self, line: &str) -> Vec<String> {
        let line = line.trim();
        if line.is_empty() {
            return Vec::new();
        }
        if let Some(rest) = line.strip_prefix(':') {
            return self.command(rest);
        }
        if let Some(rest) = line.strip_prefix("def ") {
            return self.define(rest);
        }
        self.evaluate(line)
    }

    fn command(&mut self, rest: &str) -> Vec<String> {
        let mut words = rest.split_whitespace();
        match words.next().unwrap_or("") {
            "help" | "h" | "?" => vec![
                "def <name> = <expr>      add a (possibly recursive) definition".into(),
                "<expr>                   evaluate under the definitions".into(),
                ":defs                    list definitions".into(),
                ":module strict|lazy|imperative".into(),
                ":trace f,g…              trace the named functions".into(),
                ":profile f,g…            profile the named functions".into(),
                ":collect                 collect values of {collect/x}: tags".into(),
                ":monitors off            disarm all tools".into(),
                ":specialize <expr>       print the partially evaluated residual".into(),
                ":bta <expr>              binding-time summary".into(),
                ":prelude on|off          toggle the standard prelude (default on)".into(),
                ":load <file>             read definitions/expressions from a file".into(),
                ":quit                    leave".into(),
            ],
            "defs" => {
                if self.defs.is_empty() {
                    vec!["(no definitions)".into()]
                } else {
                    self.defs
                        .iter()
                        .map(|b| format!("{} = {}", b.name, b.value))
                        .collect()
                }
            }
            "module" => match words.next() {
                Some("strict") => {
                    self.module = LanguageModule::Strict;
                    vec!["module: strict".into()]
                }
                Some("lazy") => {
                    self.module = LanguageModule::Lazy;
                    vec!["module: lazy".into()]
                }
                Some("imperative") => {
                    self.module = LanguageModule::Imperative;
                    vec!["module: imperative".into()]
                }
                other => vec![format!(
                    "unknown module {:?}; try strict, lazy or imperative",
                    other.unwrap_or("")
                )],
            },
            "trace" => {
                self.tools.trace = parse_names(words.next().unwrap_or(""));
                vec![format!(
                    "tracing: {}",
                    if self.tools.trace.is_empty() {
                        "(off)".into()
                    } else {
                        join(&self.tools.trace)
                    }
                )]
            }
            "profile" => {
                self.tools.profile = parse_names(words.next().unwrap_or(""));
                vec![format!(
                    "profiling: {}",
                    if self.tools.profile.is_empty() {
                        "(off)".into()
                    } else {
                        join(&self.tools.profile)
                    }
                )]
            }
            "collect" => {
                self.tools.collect = true;
                vec!["collecting {collect/x}: tags".into()]
            }
            "prelude" => match words.next() {
                Some("off") => {
                    self.prelude = false;
                    vec!["prelude: off".into()]
                }
                _ => {
                    self.prelude = true;
                    vec!["prelude: on (map, filter, foldr, range, …)".into()]
                }
            },
            "monitors" => {
                self.tools = Tools::default();
                vec!["all monitors off".into()]
            }
            "specialize" => {
                let src: String = rest["specialize".len()..].trim().to_string();
                match parse_expr(&src) {
                    Ok(e) => {
                        let program = self.program_for(e);
                        let residual = monitoring_semantics::pe::simplify::simplify(
                            &monitoring_semantics::pe::specialize::specialize(
                                &program,
                                &Default::default(),
                            ),
                        );
                        vec![residual.to_string()]
                    }
                    Err(e) => vec![e.to_string()],
                }
            }
            "bta" => {
                let src: String = rest["bta".len()..].trim().to_string();
                match parse_expr(&src) {
                    Ok(e) => {
                        let program = self.program_for(e);
                        let division = monitoring_semantics::pe::bta::analyze(&program, &[]);
                        let (st, dy) = division.counts();
                        vec![format!("{st} static points, {dy} dynamic")]
                    }
                    Err(e) => vec![e.to_string()],
                }
            }
            "load" => {
                let Some(path) = words.next() else {
                    return vec![":load needs a file path".into()];
                };
                match std::fs::read_to_string(path) {
                    Ok(contents) => {
                        let mut out = Vec::new();
                        for l in contents.lines() {
                            out.extend(self.handle(l));
                        }
                        out
                    }
                    Err(e) => vec![format!("cannot read `{path}`: {e}")],
                }
            }
            "quit" | "q" => {
                self.done = true;
                vec!["bye".into()]
            }
            other => vec![format!("unknown command `:{other}` (try :help)")],
        }
    }

    fn define(&mut self, rest: &str) -> Vec<String> {
        let Some((name, body)) = rest.split_once('=') else {
            return vec!["def needs the shape `def name = expr`".into()];
        };
        let name = name.trim();
        match parse_expr(body.trim()) {
            Ok(value) => {
                let name = Ident::new(name);
                self.defs.retain(|b| b.name != name);
                self.defs.push(Binding::new(name.clone(), value));
                vec![format!("defined {name}")]
            }
            Err(e) => vec![e.to_string()],
        }
    }

    /// Wraps the expression in the accumulated definitions (each its own
    /// `letrec`, so later definitions may use earlier ones), under the
    /// prelude when enabled.
    fn program_for(&self, body: Expr) -> Expr {
        let with_defs = self
            .defs
            .iter()
            .rev()
            .fold(body, |acc, b| Expr::Letrec(vec![b.clone()], Arc::new(acc)));
        if self.prelude {
            monitoring_semantics::core::prelude::with_prelude(&with_defs)
        } else {
            with_defs
        }
    }

    fn evaluate(&mut self, src: &str) -> Vec<String> {
        let expr = match parse_expr(src) {
            Ok(e) => e,
            Err(e) => return vec![e.to_string()],
        };
        let mut program = self.program_for(expr);

        // Arm the requested tools by annotating the program, the way the
        // paper's environment "virtually adds" annotations (§4.1).
        let mut session = Session::new().language(self.module);
        if !self.tools.trace.is_empty() {
            program = match trace_functions(&program, &self.tools.trace, &Namespace::anonymous()) {
                Ok(p) => p,
                Err(e) => return vec![e.to_string()],
            };
            session = session.monitor(toolbox::trace());
        }
        if !self.tools.profile.is_empty() {
            program =
                match profile_functions(&program, &self.tools.profile, &Namespace::anonymous()) {
                    Ok(p) => p,
                    Err(e) => return vec![e.to_string()],
                };
            session = session.monitor(toolbox::profile());
        }
        if self.tools.collect {
            session = session.monitor(toolbox::collect());
        }

        match session.run_expr(&program) {
            Ok(report) => {
                let mut out = Vec::new();
                for entry in &report.entries {
                    if !entry.rendered.is_empty() {
                        out.extend(entry.rendered.lines().map(String::from));
                    }
                }
                out.push(report.answer.to_string());
                out
            }
            Err(e) => vec![e.to_string()],
        }
    }
}

fn parse_names(csv: &str) -> Vec<Ident> {
    csv.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(Ident::new)
        .collect()
}

fn join(names: &[Ident]) -> String {
    names
        .iter()
        .map(Ident::as_str)
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let mut repl = Repl::new();
    println!("monsem repl — :help for commands");
    loop {
        print!("λ> ");
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        for out in repl.handle(&line) {
            println!("{out}");
        }
        if repl.done {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(lines: &[&str]) -> Vec<String> {
        let mut repl = Repl::new();
        let mut out = Vec::new();
        for l in lines {
            out.extend(repl.handle(l));
        }
        out
    }

    #[test]
    fn definitions_accumulate_and_evaluate() {
        let out = run(&[
            "def double = lambda x. x * 2",
            "def quad = lambda x. double (double x)",
            "quad 10",
        ]);
        assert_eq!(out, vec!["defined double", "defined quad", "40"]);
    }

    #[test]
    fn recursive_definitions_work() {
        let out = run(&[
            "def fac = lambda x. if x = 0 then 1 else x * (fac (x - 1))",
            "fac 5",
        ]);
        assert_eq!(out.last().map(String::as_str), Some("120"));
    }

    #[test]
    fn redefinition_replaces() {
        let out = run(&["def k = lambda u. 1", "def k = lambda u. 2", "k 0"]);
        assert_eq!(out.last().map(String::as_str), Some("2"));
    }

    #[test]
    fn tracing_prints_the_transcript_then_the_answer() {
        let out = run(&[
            "def fac = lambda x. if x = 0 then 1 else x * (fac (x - 1))",
            ":trace fac",
            "fac 2",
        ]);
        assert!(out.contains(&"[FAC receives (2)]".to_string()), "{out:?}");
        assert_eq!(out.last().map(String::as_str), Some("2"));
    }

    #[test]
    fn profiling_reports_counts() {
        let out = run(&[
            "def fib = lambda n. if n < 2 then n else (fib (n-1)) + (fib (n-2))",
            ":profile fib",
            "fib 5",
        ]);
        assert!(out.iter().any(|l| l.contains("fib ↦ 15")), "{out:?}");
        assert_eq!(out.last().map(String::as_str), Some("5"));
    }

    #[test]
    fn monitors_off_disarms() {
        let out = run(&["def id = lambda x. x", ":trace id", ":monitors off", "id 7"]);
        assert_eq!(out.last().map(String::as_str), Some("7"));
        assert!(!out.iter().any(|l| l.contains("receives")), "{out:?}");
    }

    #[test]
    fn module_switching() {
        let out = run(&[
            ":module lazy",
            "(lambda x. 42) (1 / 0)",
            ":module strict",
            "(lambda x. 42) (1 / 0)",
        ]);
        assert_eq!(
            out,
            vec!["module: lazy", "42", "module: strict", "division by zero"]
        );
    }

    #[test]
    fn imperative_module_runs_loops() {
        let out = run(&[
            ":module imperative",
            "let x = 0 in while x < 3 do x := x + 1 end; x",
        ]);
        assert_eq!(out.last().map(String::as_str), Some("3"));
    }

    #[test]
    fn parse_errors_are_reported_not_fatal() {
        let out = run(&["if without then", "1 + 1"]);
        assert!(out[0].contains("parse error"));
        assert_eq!(out.last().map(String::as_str), Some("2"));
    }

    #[test]
    fn unknown_functions_in_trace_are_reported() {
        let out = run(&[":trace ghost", "1 + 1"]);
        assert!(
            out.iter().any(|l| l.contains("no function named `ghost`")),
            "{out:?}"
        );
    }

    #[test]
    fn prelude_is_available_and_toggleable() {
        let out = run(&["sum (map (lambda x. x * 2) (range 1 3))"]);
        assert_eq!(out.last().map(String::as_str), Some("12"));
        let out = run(&[":prelude off", "sum [1]"]);
        assert!(
            out.last().unwrap().contains("unbound variable `sum`"),
            "{out:?}"
        );
    }

    #[test]
    fn specialize_command_prints_residuals() {
        let out = run(&[
            ":prelude off",
            "def pow = lambda b. lambda e. if e = 0 then 1 else b * (pow b (e - 1))",
            ":specialize pow base 3",
        ]);
        assert_eq!(
            out.last().map(String::as_str),
            Some("base * (base * (base * 1))")
        );
    }

    #[test]
    fn help_and_quit() {
        let mut repl = Repl::new();
        assert!(!repl.handle(":help").is_empty());
        repl.handle(":quit");
        assert!(repl.done);
    }
}
