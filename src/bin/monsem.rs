//! `monsem` — a command-line front end for the monitoring-semantics
//! environment (§9.2 as a shell tool).
//!
//! ```text
//! monsem run        (-e <src> | <file>) [--module strict|lazy|imperative]
//! monsem trace      (-e <src> | <file>) --functions f,g,…
//! monsem profile    (-e <src> | <file>) [--functions f,g,…]
//! monsem instrument (-e <src> | <file>)            # level-2 artifact, as source
//! monsem specialize (-e <src> | <file>) [--input name=int]…   # level 3
//! ```
//!
//! Examples:
//!
//! ```text
//! monsem run -e 'letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac 5'
//! monsem trace -e '…' --functions fac
//! monsem specialize -e 'pow base e' --input e=10
//! ```

use monitoring_semantics::core::machine::eval;
use monitoring_semantics::core::Value;
use monitoring_semantics::monitor::session::{LanguageModule, Session};
use monitoring_semantics::monitors::toolbox;
use monitoring_semantics::pe::instrument::{instrument, step_counter};
use monitoring_semantics::pe::simplify::simplify;
use monitoring_semantics::pe::specialize::{specialize_with, SpecializeOptions};
use monitoring_semantics::syntax::points::{
    bound_function_names, profile_functions, trace_functions,
};
use monitoring_semantics::syntax::{parse_program, Expr, Ident, Namespace};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("monsem: {message}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match command.as_str() {
        "run" => cmd_run(rest),
        "trace" => cmd_trace(rest),
        "profile" => cmd_profile(rest),
        "instrument" => cmd_instrument(rest),
        "bta" => cmd_bta(rest),
        "specialize" => cmd_specialize(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  monsem run        (-e <src> | <file>) [--module strict|lazy|imperative]\n  \
     monsem trace      (-e <src> | <file>) [--functions f,g,…]\n  \
     monsem profile    (-e <src> | <file>) [--functions f,g,…]\n  \
     monsem instrument (-e <src> | <file>)\n  \
     monsem bta        (-e <src> | <file>) [--static name,name]\n  \
     monsem specialize (-e <src> | <file>) [--input name=int]…"
        .to_string()
}

/// Reads the program from `-e <src>` or a file path, returning it plus
/// the remaining flags.
fn program_and_flags(args: &[String]) -> Result<(Expr, Vec<String>), String> {
    let mut source: Option<String> = None;
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "-e" {
            let src = it.next().ok_or("-e needs an argument")?;
            source = Some(src.clone());
        } else if a.starts_with("--") {
            flags.push(a.clone());
            if let Some(v) = it.next() {
                flags.push(v.clone());
            }
        } else if source.is_none() {
            source =
                Some(std::fs::read_to_string(a).map_err(|e| format!("cannot read `{a}`: {e}"))?);
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
    }
    let source = source.ok_or_else(usage)?;
    let program = parse_program(&source).map_err(|e| e.display_in(&source))?;
    Ok((program, flags))
}

fn flag_value<'a>(flags: &'a [String], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .position(|f| f == name)
        .and_then(|i| flags.get(i + 1))
        .map(String::as_str)
}

fn requested_functions(program: &Expr, flags: &[String]) -> Vec<Ident> {
    match flag_value(flags, "--functions") {
        Some(list) => list.split(',').map(str::trim).map(Ident::new).collect(),
        None => bound_function_names(program),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (program, flags) = program_and_flags(args)?;
    let module = match flag_value(&flags, "--module").unwrap_or("strict") {
        "strict" => LanguageModule::Strict,
        "lazy" => LanguageModule::Lazy,
        "imperative" => LanguageModule::Imperative,
        other => return Err(format!("unknown language module `{other}`")),
    };
    let report = Session::new()
        .language(module)
        .run_expr(&program)
        .map_err(|e| e.to_string())?;
    println!("{}", report.answer);
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let (program, flags) = program_and_flags(args)?;
    let functions = requested_functions(&program, &flags);
    let annotated = trace_functions(&program, &functions, &Namespace::anonymous())
        .map_err(|e| e.to_string())?;
    let report = Session::new()
        .monitor(toolbox::trace())
        .run_expr(&annotated)
        .map_err(|e| e.to_string())?;
    if let Some(t) = report.rendered_of("tracer") {
        println!("{t}");
    }
    println!("answer: {}", report.answer);
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let (program, flags) = program_and_flags(args)?;
    let functions = requested_functions(&program, &flags);
    let annotated = profile_functions(&program, &functions, &Namespace::anonymous())
        .map_err(|e| e.to_string())?;
    let report = Session::new()
        .monitor(toolbox::profile())
        .run_expr(&annotated)
        .map_err(|e| e.to_string())?;
    if let Some(p) = report.rendered_of("profiler") {
        println!("{p}");
    }
    println!("answer: {}", report.answer);
    Ok(())
}

fn cmd_instrument(args: &[String]) -> Result<(), String> {
    let (program, _) = program_and_flags(args)?;
    let instrumented = instrument(&program, &step_counter());
    println!(
        "{}",
        monitoring_semantics::syntax::pretty::pretty_block(&simplify(&instrumented), 80)
    );
    Ok(())
}

fn cmd_bta(args: &[String]) -> Result<(), String> {
    let (program, flags) = program_and_flags(args)?;
    let statics: Vec<Ident> = flag_value(&flags, "--static")
        .map(|list| list.split(',').map(str::trim).map(Ident::new).collect())
        .unwrap_or_default();
    let division = monitoring_semantics::pe::bta::analyze(&program, &statics);
    let (s, d) = division.counts();
    eprintln!("; {s} static points, {d} dynamic points (dynamic parts in «…»)");
    println!(
        "{}",
        monitoring_semantics::pe::bta::render_two_level(&program, &division)
    );
    Ok(())
}

fn cmd_specialize(args: &[String]) -> Result<(), String> {
    let (program, flags) = program_and_flags(args)?;
    let mut inputs: Vec<(Ident, Value)> = Vec::new();
    let mut i = 0;
    while let Some(pos) = flags[i..].iter().position(|f| f == "--input") {
        let idx = i + pos;
        let spec = flags.get(idx + 1).ok_or("--input needs name=int")?;
        let (name, value) = spec.split_once('=').ok_or("--input needs name=int")?;
        let n: i64 = value
            .parse()
            .map_err(|_| format!("`{value}` is not an integer"))?;
        inputs.push((Ident::new(name), Value::Int(n)));
        i = idx + 2;
    }
    let (residual, stats) = specialize_with(&program, &inputs, &SpecializeOptions::default());
    let residual = simplify(&residual);
    eprintln!(
        "; {} unfolds, {} folds, residual size {}",
        stats.unfolds,
        stats.folds,
        residual.size()
    );
    println!(
        "{}",
        monitoring_semantics::syntax::pretty::pretty_block(&residual, 80)
    );
    // If the residual is closed, also print its value.
    if residual
        .free_vars()
        .iter()
        .all(|v| monitoring_semantics::core::prims::Prim::by_name(v.as_str()).is_some())
    {
        if let Ok(v) = eval(&residual) {
            eprintln!("; value: {v}");
        }
    }
    Ok(())
}
