//! `monsem` — a command-line front end for the monitoring-semantics
//! environment (§9.2 as a shell tool).
//!
//! ```text
//! monsem run        (-e <src> | <file>) [--module strict|lazy|imperative]
//! monsem trace      (-e <src> | <file>) --functions f,g,…
//! monsem profile    (-e <src> | <file>) [--functions f,g,…]
//! monsem instrument (-e <src> | <file>)            # level-2 artifact, as source
//! monsem specialize (-e <src> | <file>) [--input name=int]…   # level 3
//! ```
//!
//! Examples:
//!
//! ```text
//! monsem run -e 'letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac 5'
//! monsem trace -e '…' --functions fac
//! monsem specialize -e 'pow base e' --input e=10
//! ```

use monitoring_semantics::core::machine::eval;
use monitoring_semantics::core::Value;
use monitoring_semantics::monitor::session::{LanguageModule, Session};
use monitoring_semantics::monitors::toolbox;
use monitoring_semantics::pe::instrument::{instrument, step_counter};
use monitoring_semantics::pe::simplify::simplify;
use monitoring_semantics::pe::specialize::{specialize_with, SpecializeOptions};
use monitoring_semantics::syntax::points::{
    bound_function_names, profile_functions, trace_functions,
};
use monitoring_semantics::syntax::{parse_program, Expr, Ident, Namespace};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("monsem: {message}");
            ExitCode::from(2)
        }
    }
}

fn ok(result: Result<(), String>) -> Result<ExitCode, String> {
    result.map(|()| ExitCode::SUCCESS)
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match command.as_str() {
        "run" => ok(cmd_run(rest)),
        "trace" => ok(cmd_trace(rest)),
        "profile" => ok(cmd_profile(rest)),
        "instrument" => ok(cmd_instrument(rest)),
        "bta" => ok(cmd_bta(rest)),
        "specialize" => ok(cmd_specialize(rest)),
        "record" => ok(cmd_record(rest)),
        "check" => cmd_check(rest),
        "serve" => ok(cmd_serve(rest)),
        "swap" => ok(cmd_swap(rest)),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  monsem run        (-e <src> | <file>) [--module strict|lazy|imperative]\n  \
     monsem trace      (-e <src> | <file>) [--functions f,g,…]\n  \
     monsem profile    (-e <src> | <file>) [--functions f,g,…]\n  \
     monsem instrument (-e <src> | <file>)\n  \
     monsem bta        (-e <src> | <file>) [--static name,name]\n  \
     monsem specialize (-e <src> | <file>) [--input name=int]…\n  \
     monsem record     (-e <src> | <file>) --out <tape.bin> [--spec <spec|file>] [--timed] [--checkpoint-every N]\n  \
     monsem check      <tape.bin> [<spec|file>] [--stream <spec|file>] [--enforcing] [--from N]\n  \
     monsem serve      (--tcp <addr> | --unix <path>) [--shards N] [--queue N] [--window N] [--ack-every N] [--checkpoint-every N] [--policy fatal|quarantine] [--io-backend threaded|reactor] [--io-threads N]\n  \
     monsem swap       (--tcp <addr> | --unix <path>) --session <id> [<spec|file>] [--stream <spec|file>]"
        .to_string()
}

/// Reads the program from `-e <src>` or a file path, returning it plus
/// the remaining flags.
fn program_and_flags(args: &[String]) -> Result<(Expr, Vec<String>), String> {
    let mut source: Option<String> = None;
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "-e" {
            let src = it.next().ok_or("-e needs an argument")?;
            source = Some(src.clone());
        } else if a.starts_with("--") {
            flags.push(a.clone());
            // Value-less flags must not swallow the next argument.
            if a != "--timed" {
                if let Some(v) = it.next() {
                    flags.push(v.clone());
                }
            }
        } else if source.is_none() {
            source =
                Some(std::fs::read_to_string(a).map_err(|e| format!("cannot read `{a}`: {e}"))?);
        } else {
            return Err(format!("unexpected argument `{a}`"));
        }
    }
    let source = source.ok_or_else(usage)?;
    let program = parse_program(&source).map_err(|e| e.display_in(&source))?;
    Ok((program, flags))
}

fn flag_value<'a>(flags: &'a [String], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .position(|f| f == name)
        .and_then(|i| flags.get(i + 1))
        .map(String::as_str)
}

fn requested_functions(program: &Expr, flags: &[String]) -> Vec<Ident> {
    match flag_value(flags, "--functions") {
        Some(list) => list.split(',').map(str::trim).map(Ident::new).collect(),
        None => bound_function_names(program),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (program, flags) = program_and_flags(args)?;
    let module = match flag_value(&flags, "--module").unwrap_or("strict") {
        "strict" => LanguageModule::Strict,
        "lazy" => LanguageModule::Lazy,
        "imperative" => LanguageModule::Imperative,
        other => return Err(format!("unknown language module `{other}`")),
    };
    let report = Session::new()
        .language(module)
        .run_expr(&program)
        .map_err(|e| e.to_string())?;
    println!("{}", report.answer);
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let (program, flags) = program_and_flags(args)?;
    let functions = requested_functions(&program, &flags);
    let annotated = trace_functions(&program, &functions, &Namespace::anonymous())
        .map_err(|e| e.to_string())?;
    let report = Session::new()
        .monitor(toolbox::trace())
        .run_expr(&annotated)
        .map_err(|e| e.to_string())?;
    if let Some(t) = report.rendered_of("tracer") {
        println!("{t}");
    }
    println!("answer: {}", report.answer);
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let (program, flags) = program_and_flags(args)?;
    let functions = requested_functions(&program, &flags);
    let annotated = profile_functions(&program, &functions, &Namespace::anonymous())
        .map_err(|e| e.to_string())?;
    let report = Session::new()
        .monitor(toolbox::profile())
        .run_expr(&annotated)
        .map_err(|e| e.to_string())?;
    if let Some(p) = report.rendered_of("profiler") {
        println!("{p}");
    }
    println!("answer: {}", report.answer);
    Ok(())
}

fn cmd_instrument(args: &[String]) -> Result<(), String> {
    let (program, _) = program_and_flags(args)?;
    let instrumented = instrument(&program, &step_counter());
    println!(
        "{}",
        monitoring_semantics::syntax::pretty::pretty_block(&simplify(&instrumented), 80)
    );
    Ok(())
}

fn cmd_bta(args: &[String]) -> Result<(), String> {
    let (program, flags) = program_and_flags(args)?;
    let statics: Vec<Ident> = flag_value(&flags, "--static")
        .map(|list| list.split(',').map(str::trim).map(Ident::new).collect())
        .unwrap_or_default();
    let division = monitoring_semantics::pe::bta::analyze(&program, &statics);
    let (s, d) = division.counts();
    eprintln!("; {s} static points, {d} dynamic points (dynamic parts in «…»)");
    println!(
        "{}",
        monitoring_semantics::pe::bta::render_two_level(&program, &division)
    );
    Ok(())
}

/// Reads a spec argument: a path to a `.tsp` file if one exists, else
/// the argument itself as inline spec source.
fn load_spec(arg: &str) -> Result<String, String> {
    if std::path::Path::new(arg).is_file() {
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read `{arg}`: {e}"))
    } else {
        Ok(arg.to_string())
    }
}

fn cmd_record(args: &[String]) -> Result<(), String> {
    use monitoring_semantics::monitor::{record_monitored, MemorySink, SharedSink};
    use monitoring_semantics::tape::{write_tape, write_tape_checkpointed};
    use monitoring_semantics::tspec::SpecMonitor;
    let (program, flags) = program_and_flags(args)?;
    let out = flag_value(&flags, "--out").ok_or("record needs --out <tape.bin>")?;
    let checkpoint_every: Option<usize> = flag_value(&flags, "--checkpoint-every")
        .map(|v| v.parse().map_err(|_| "--checkpoint-every needs an integer"))
        .transpose()?;
    let mem = MemorySink::new();
    let sink = if flags.iter().any(|f| f == "--timed") {
        // Stamp every event with wall-clock milliseconds (tape format
        // v2), enabling offline deadline checking.
        let epoch = std::time::Instant::now();
        SharedSink::with_clock(mem.clone(), move || epoch.elapsed().as_millis() as u64)
    } else {
        SharedSink::new(mem.clone())
    };
    let spec_src = flag_value(&flags, "--spec").map(load_spec).transpose()?;
    if checkpoint_every.is_some() && spec_src.is_none() {
        return Err("--checkpoint-every needs --spec (a checkpoint pins the spec's state)".into());
    }
    let answer = match &spec_src {
        Some(src) => {
            let monitor = SpecMonitor::new("cli", src).map_err(|e| e.to_string())?;
            let (value, state) =
                record_monitored(&program, monitor, &sink).map_err(|e| e.to_string())?;
            if let Some(v) = &state.violation {
                eprintln!("; live violation: {v}");
            }
            value
        }
        None => {
            let (value, ()) = record_monitored(
                &program,
                monitoring_semantics::monitor::IdentityMonitor,
                &sink,
            )
            .map_err(|e| e.to_string())?;
            value
        }
    };
    let events = mem.take();
    let bytes = match checkpoint_every {
        Some(every) => {
            // Re-fold a fresh monitor over the recorded events so each
            // checkpoint pins the exact DFA state at its cut.
            let src = spec_src.as_deref().expect("checked above");
            let monitor = SpecMonitor::new("cli", src).map_err(|e| e.to_string())?;
            write_tape_checkpointed(&events, &monitor, None, every)
        }
        None => write_tape(&events),
    };
    std::fs::write(out, &bytes).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    eprintln!("; {} events, {} bytes -> {out}", events.len(), bytes.len());
    println!("{answer}");
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    use monitoring_semantics::stream::StreamMonitor;
    use monitoring_semantics::tape::{check_stream_from, check_tape_from, read_tape};
    use monitoring_semantics::tspec::{SpecMonitor, TapeOutcome};
    let stream_arg = flag_value(args, "--stream");
    let from: Option<u64> = flag_value(args, "--from")
        .map(|v| v.parse().map_err(|_| "--from needs an event offset"))
        .transpose()?;
    let positional: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && !matches!(args.get(i.wrapping_sub(1)), Some(prev) if prev == "--stream" || prev == "--from")
        })
        .map(|(_, a)| a)
        .collect();
    let (tape_path, spec_arg) = match positional.as_slice() {
        [tape] if stream_arg.is_some() => (tape, None),
        [tape, spec] => (tape, Some(spec)),
        _ => return Err("check needs <tape.bin> and a <spec|file> and/or --stream".to_string()),
    };
    let bytes = std::fs::read(tape_path).map_err(|e| format!("cannot read `{tape_path}`: {e}"))?;
    let events = read_tape(&bytes).map_err(|e| e.to_string())?;
    let mut code = ExitCode::SUCCESS;
    if let Some(spec_arg) = spec_arg {
        let src = load_spec(spec_arg)?;
        let mut monitor = SpecMonitor::new("check", &src).map_err(|e| e.to_string())?;
        if args.iter().any(|a| a == "--enforcing") {
            monitor = monitor.enforcing();
        }
        let check = match from {
            Some(n) => {
                // Seek to the last checkpoint at or before the offset
                // (falling back to a full replay when none fits).
                let seeded = check_tape_from(&monitor, &bytes, n).map_err(|e| e.to_string())?;
                eprintln!(
                    "; resumed at event {} ({} of {} replayed)",
                    seeded.resumed_at,
                    seeded.replayed,
                    events.len()
                );
                seeded.check
            }
            None => monitor.check_tape(events.iter()),
        };
        match &check.outcome {
            TapeOutcome::Satisfied => {
                println!("satisfied after {} events", check.state.events);
            }
            TapeOutcome::Pending => {
                println!(
                    "pending after {} events (no `done` marker on the tape)",
                    check.state.events
                );
            }
            TapeOutcome::Violated(reason) => {
                match check.earliest_violation {
                    Some(step) => println!("violated at step {step}: {reason}"),
                    None => println!("violated at end of trace: {reason}"),
                }
                code = ExitCode::from(1);
            }
        }
    }
    if let Some(stream_arg) = stream_arg {
        let src = load_spec(stream_arg)?;
        let monitor = StreamMonitor::new("check-stream", &src).map_err(|e| e.to_string())?;
        eprintln!("; static memory bound:");
        for line in monitor.spec().memory().to_string().lines() {
            eprintln!(";{line}");
        }
        let check = match from {
            Some(n) => {
                let seeded = check_stream_from(&monitor, &bytes, n).map_err(|e| e.to_string())?;
                eprintln!(
                    "; resumed at event {} ({} of {} replayed)",
                    seeded.resumed_at,
                    seeded.replayed,
                    events.len()
                );
                seeded.check
            }
            None => monitor.check_tape(events.iter()),
        };
        for f in &check.firings {
            match f.step {
                Some(step) => println!("step {step}: {}", f.reason),
                None => println!("{}", f.reason),
            }
        }
        if let Some(miss) = &check.state.first_miss {
            println!("deadline {miss}");
        }
        println!(
            "stream: {} firing(s), {} deadline miss(es) over {} events{}",
            check.fired_total,
            check.missed,
            check.state.events,
            if check.completed {
                ""
            } else {
                " (no `done` marker)"
            }
        );
        if check.fired_total > 0 || check.missed > 0 {
            code = ExitCode::from(1);
        }
    }
    Ok(code)
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use monitoring_semantics::monitor::fault::FaultPolicy;
    use monitoring_semantics::tape::{
        serve_tcp_with, serve_unix_with, IoBackend, MonitorServer, ServerConfig, DEFAULT_IO_THREADS,
    };
    use std::sync::Arc;
    let parse = |name: &str, default: usize| -> Result<usize, String> {
        match flag_value(args, name) {
            Some(v) => v.parse().map_err(|_| format!("{name} needs an integer")),
            None => Ok(default),
        }
    };
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        shards: parse("--shards", defaults.shards)?,
        queue_depth: parse("--queue", defaults.queue_depth)?,
        swap_window: parse("--window", defaults.swap_window)?,
        ack_every: parse("--ack-every", defaults.ack_every)?,
        checkpoint_every: parse("--checkpoint-every", defaults.checkpoint_every)?,
        policy: match flag_value(args, "--policy").unwrap_or("quarantine") {
            "fatal" => FaultPolicy::Fatal,
            "quarantine" => FaultPolicy::Quarantine,
            other => return Err(format!("unknown policy `{other}`")),
        },
        ..defaults
    };
    // Flag beats MONSEM_IO_BACKEND beats the threaded default;
    // --io-threads refines either reactor spelling.
    let mut backend = match flag_value(args, "--io-backend") {
        Some(name) => {
            IoBackend::parse(name).ok_or_else(|| format!("unknown io backend `{name}`"))?
        }
        None => IoBackend::from_env(),
    };
    if let Some(n) = flag_value(args, "--io-threads") {
        let io_threads: usize = n
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("--io-threads needs a positive integer")?;
        backend = match backend {
            IoBackend::Threaded => IoBackend::Reactor { io_threads },
            IoBackend::Reactor { .. } => IoBackend::Reactor { io_threads },
        };
    }
    let server = Arc::new(MonitorServer::start(config));
    let handle = match (flag_value(args, "--tcp"), flag_value(args, "--unix")) {
        (Some(addr), None) => {
            serve_tcp_with(Arc::clone(&server), addr, backend).map_err(|e| e.to_string())?
        }
        (None, Some(path)) => {
            serve_unix_with(Arc::clone(&server), path, backend).map_err(|e| e.to_string())?
        }
        _ => return Err("serve needs exactly one of --tcp <addr> or --unix <path>".to_string()),
    };
    let backend_name = match backend {
        IoBackend::Threaded => "threaded".to_string(),
        IoBackend::Reactor { io_threads } if io_threads == DEFAULT_IO_THREADS => {
            "reactor".to_string()
        }
        IoBackend::Reactor { io_threads } => format!("reactor:{io_threads}"),
    };
    match handle.addr() {
        Some(addr) => eprintln!("; monitor server listening on tcp {addr} ({backend_name} io)"),
        None => eprintln!("; monitor server listening on unix socket ({backend_name} io)"),
    }
    // Serve until stdin closes or says `stop`: queued events are still
    // folded (and acked) before the workers exit.
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "stop" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    eprintln!("; draining shard queues");
    handle.stop();
    server.shutdown();
    Ok(())
}

fn cmd_swap(args: &[String]) -> Result<(), String> {
    use monitoring_semantics::tape::{Client, Request, Response};
    let session: u64 = flag_value(args, "--session")
        .ok_or("swap needs --session <id>")?
        .parse()
        .map_err(|_| "--session needs an integer".to_string())?;
    let spec_arg = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && !matches!(args.get(i.wrapping_sub(1)), Some(prev) if prev.starts_with("--"))
        })
        .map(|(_, a)| a)
        .next();
    let stream_arg = flag_value(args, "--stream");
    if spec_arg.is_none() && stream_arg.is_none() {
        return Err("swap needs a <spec|file> argument and/or --stream <spec|file>".to_string());
    }
    let req = Request::Swap {
        session,
        spec: spec_arg.map(|a| load_spec(a)).transpose()?,
        stream: stream_arg.map(load_spec).transpose()?,
    };
    let response = match (flag_value(args, "--tcp"), flag_value(args, "--unix")) {
        (Some(addr), None) => Client::connect_tcp(addr)
            .and_then(|mut c| c.request(&req))
            .map_err(|e| e.to_string())?,
        (None, Some(path)) => Client::connect_unix(path)
            .and_then(|mut c| c.request(&req))
            .map_err(|e| e.to_string())?,
        _ => return Err("swap needs exactly one of --tcp <addr> or --unix <path>".to_string()),
    };
    match response {
        Response::Verdict(v) => {
            println!(
                "session {}: {} events ingested, health {}{}{}{}",
                v.session,
                v.ingested,
                v.health,
                match &v.violation {
                    Some(reason) => format!(", violation: {reason}"),
                    None => ", no violation".to_string(),
                },
                if v.firings > 0 || v.missed > 0 {
                    format!(", stream: {} firing(s), {} miss(es)", v.firings, v.missed)
                } else {
                    String::new()
                },
                if v.swap_truncated {
                    " (spliced from a truncated window)"
                } else {
                    ""
                }
            );
            Ok(())
        }
        Response::Ok => Ok(()),
        // The client absorbs ack frames inside `request`; a stray one
        // here means the server answered a swap with nonsense.
        Response::Ack { .. } => Err("unexpected ack reply to swap".to_string()),
        Response::Err(e) => Err(e),
    }
}

fn cmd_specialize(args: &[String]) -> Result<(), String> {
    let (program, flags) = program_and_flags(args)?;
    let mut inputs: Vec<(Ident, Value)> = Vec::new();
    let mut i = 0;
    while let Some(pos) = flags[i..].iter().position(|f| f == "--input") {
        let idx = i + pos;
        let spec = flags.get(idx + 1).ok_or("--input needs name=int")?;
        let (name, value) = spec.split_once('=').ok_or("--input needs name=int")?;
        let n: i64 = value
            .parse()
            .map_err(|_| format!("`{value}` is not an integer"))?;
        inputs.push((Ident::new(name), Value::Int(n)));
        i = idx + 2;
    }
    let (residual, stats) = specialize_with(&program, &inputs, &SpecializeOptions::default());
    let residual = simplify(&residual);
    eprintln!(
        "; {} unfolds, {} folds, residual size {}",
        stats.unfolds,
        stats.folds,
        residual.size()
    );
    println!(
        "{}",
        monitoring_semantics::syntax::pretty::pretty_block(&residual, 80)
    );
    // If the residual is closed, also print its value.
    if residual
        .free_vars()
        .iter()
        .all(|v| monitoring_semantics::core::prims::Prim::by_name(v.as_str()).is_some())
    {
        if let Ok(v) = eval(&residual) {
            eprintln!("; value: {v}");
        }
    }
    Ok(())
}
