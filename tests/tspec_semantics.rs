//! Semantics of the `monsem-tspec` temporal specification language.
//!
//! Three layers of evidence, each differential:
//!
//! 1. **The compiler is right** — the Brzozowski-derivative DFA agrees
//!    with a naive structural matcher on thousands of random words over
//!    the abstract alphabet, for specs exercising concatenation, union,
//!    intersection, complement, repetition, and the temporal sugar.
//! 2. **The monitor is right** — an automaton monitor for "no negative
//!    value at a labelled point" reaches exactly the verdicts of the §8
//!    [`PredicateDemon`] with the same trigger, enforcing and observing
//!    alike, on randomly generated annotated programs.
//! 3. **The theory holds** — an observing spec never changes the
//!    program's answer (Theorem 7.7), an enforcing spec aborts with
//!    [`EvalError::MonitorAbort`] naming the spec precisely when the
//!    observing run records a violation, and the pe-specialized monitor
//!    evolves states identically to the interpreted one.

use monitoring_semantics::core::machine::{eval_with, EvalOptions};
use monitoring_semantics::core::{Env, EvalError, Value};
use monitoring_semantics::monitor::machine::eval_monitored_with;
use monitoring_semantics::monitor::soundness::{check_soundness, SoundnessOutcome};
use monitoring_semantics::monitor::Monitor;
use monitoring_semantics::monitors::PredicateDemon;
use monitoring_semantics::pe::{instrument_spec, spec_verdict, SpecializedSpec};
use monitoring_semantics::syntax::gen::{gen_program, sprinkle_annotations, GenConfig};
use monitoring_semantics::syntax::{Expr, Namespace};
use monitoring_semantics::tspec::{Automaton, CompileOptions, SpecMonitor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FUEL: u64 = 400_000;

fn annotated_program(seed: u64, density: u16) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let plain = gen_program(&mut rng, &GenConfig::default());
    sprinkle_annotations(
        &mut rng,
        &plain,
        &Namespace::new("ns"),
        f64::from(density) / 1000.0,
    )
}

// ---------------------------------------------------------------------
// 1. DFA vs naive matcher
// ---------------------------------------------------------------------

/// Specs chosen to cover every connective the derivative compiler
/// normalizes: sequencing, union, intersection, complement, nesting of
/// star under complement, bounded repetition, and the sugar forms.
const WORD_SPECS: &[&str] = &[
    "always(post(fac) => value >= 1)",
    "never(post(l) and value < 0)",
    "eventually(post(b))",
    "respond(pre(req), post(ack), 3)",
    "[pre(f)] ; [post(f)]*",
    "(any* ; [post(a)]) & !(any* ; [post(b)] ; any*)",
    "![pre(x)]{2} | [at(x)]+",
    "always(value = 0 or value = 1)",
    "until(pre(req), post(ack))",
    "until(at(a), post(b) and value > 0)",
    "release(pre(stop), post(ok))",
    "release(at(r), at(a) or value >= 2)",
];

#[test]
fn dfa_agrees_with_the_naive_matcher_on_random_words() {
    let mut rng = StdRng::seed_from_u64(0x7E5C);
    let mut checked = 0u32;
    for src in WORD_SPECS {
        let spec = monitoring_semantics::tspec::parse_spec(src).unwrap();
        let aut = Automaton::compile(&spec).unwrap();
        let width = aut.alphabet().width();
        for _ in 0..150 {
            let len = rng.gen_range(0..=10);
            let word: Vec<u32> = (0..len).map(|_| rng.gen_range(0..width)).collect();
            assert_eq!(
                aut.accepts_word(&word),
                aut.naive_word(&word),
                "spec {src:?} disagrees on word {word:?}"
            );
            checked += 1;
        }
    }
    assert!(checked >= 1000, "need at least 1000 words, got {checked}");
}

/// `until`/`release` differentially against their *LTL* reading, not
/// just the naive matcher: for random words, acceptance must equal the
/// quantifier form — `until(p, q)` ⇔ ∃i. q(wᵢ) ∧ ∀j<i. p(wⱼ) ∧ ¬q(wⱼ),
/// and `release(p, q)` ⇔ ¬∃i. (¬q(wᵢ) ∧ wᵢ ≠ done) ∧ ∀j<i. ¬p(wⱼ) ∧ q(wⱼ).
#[test]
fn until_and_release_match_their_ltl_reading_on_random_words() {
    use monitoring_semantics::syntax::Ident;
    use monitoring_semantics::tspec::{Atom, CmpOp, NamePat, Pred};

    let pre = |n: &str| Pred::Atom(Atom::Pre(NamePat::Name(Ident::new(n))));
    let post = |n: &str| Pred::Atom(Atom::Post(NamePat::Name(Ident::new(n))));
    let at = |n: &str| Pred::Atom(Atom::At(NamePat::Name(Ident::new(n))));
    let gt0 = || Pred::Atom(Atom::Value(CmpOp::Gt, 0));

    let pairs: &[(&str, Pred, Pred)] = &[
        ("until(pre(req), post(ack))", pre("req"), post("ack")),
        (
            "until(at(a), post(b) and value > 0)",
            at("a"),
            Pred::And(Box::new(post("b")), Box::new(gt0())),
        ),
        ("release(pre(stop), post(ok))", pre("stop"), post("ok")),
        (
            "release(at(r), at(a) or value >= 2)",
            at("r"),
            Pred::Or(
                Box::new(at("a")),
                Box::new(Pred::Atom(Atom::Value(CmpOp::Ge, 2))),
            ),
        ),
    ];

    let mut rng = StdRng::seed_from_u64(0x0417);
    for (src, p, q) in pairs {
        let is_release = src.starts_with("release");
        let spec = monitoring_semantics::tspec::parse_spec(src).unwrap();
        let aut = Automaton::compile(&spec).unwrap();
        let alphabet = aut.alphabet();
        let pset = alphabet.pred_to_set(p);
        let qset = alphabet.pred_to_set(q);
        let done = alphabet.done_letter();
        let width = alphabet.width();
        for _ in 0..200 {
            let len = rng.gen_range(0..=8);
            let word: Vec<u32> = (0..len).map(|_| rng.gen_range(0..width)).collect();
            let expected = if is_release {
                // No un-released `not q` hook event.
                !(0..word.len()).any(|i| {
                    !qset.contains(word[i])
                        && word[i] != done
                        && word[..i]
                            .iter()
                            .all(|&l| !pset.contains(l) && qset.contains(l))
                })
            } else {
                // Some `q` event with a strict `p and not q` prefix.
                (0..word.len()).any(|i| {
                    qset.contains(word[i])
                        && word[..i]
                            .iter()
                            .all(|&l| pset.contains(l) && !qset.contains(l))
                })
            };
            assert_eq!(
                aut.accepts_word(&word),
                expected,
                "spec {src:?} diverges from its LTL reading on {word:?}"
            );
        }
    }
}

/// `until`/`release` through the full monitor stack on concrete
/// programs: strong until demands its release event before `done`;
/// release is exempt at `done` but violated by an unreleased `not q`.
#[test]
fn until_and_release_verdicts_on_concrete_programs() {
    let ns = Namespace::new("ns");
    let m = |src: &str| {
        SpecMonitor::new("ltl", src)
            .unwrap()
            .in_namespace(ns.clone())
    };
    let prog = |src: &str| monitoring_semantics::syntax::parse_expr(src).unwrap();

    // The strict machine evaluates the *right* operand of `+` first, so
    // `{ns/b}:2 + {ns/a}:1` produces the event order a, then b.
    // until satisfied: a-events, then the releasing b-event.
    let (_, s) = run(&prog("{ns/b}:2 + {ns/a}:1"), &m("until(at(a), at(b))")).unwrap();
    assert!(m("until(at(a), at(b))").finish(&s).is_ok());
    // until violated mid-trace: a non-p event before any q.
    let (_, s) = run(&prog("{ns/b}:2 + {ns/c}:1"), &m("until(at(a), at(b))")).unwrap();
    assert!(s.violation.is_some(), "non-p prefix event must kill until");
    // strong until violated at the end: q never happens.
    let (_, s) = run(&prog("{ns/a}:1"), &m("until(at(a), at(b))")).unwrap();
    assert!(s.violation.is_none(), "no verdict before the trace ends");
    assert!(
        m("until(at(a), at(b))").finish(&s).is_err(),
        "strong until is unsatisfied if the trace ends without q"
    );
    // release satisfied with p never occurring: done is exempt.
    let (_, s) = run(&prog("{ns/a}:1"), &m("release(at(r), at(a))")).unwrap();
    assert!(m("release(at(r), at(a))").finish(&s).is_ok());
    // release violated: q fails before any releasing p.
    let (_, s) = run(&prog("{ns/b}:2 + {ns/a}:1"), &m("release(at(r), at(a))")).unwrap();
    assert!(s.violation.is_some(), "unreleased not-q event must violate");
    // release satisfied by an early releasing event: q may fail afterwards.
    let (_, s) = run(
        &prog("{ns/b}:3 + {ns/r}:2"),
        &m("release(at(r), at(a) or at(r))"),
    )
    .unwrap();
    assert!(m("release(at(r), at(a) or at(r))").finish(&s).is_ok());
}

/// Compiles `src` twice: once with the full optimization pipeline
/// (Hopcroft minimization + letter-class compression, the default), once
/// with both passes disabled — the raw ACI-deduped derivative automaton.
fn compile_pair(src: &str) -> (Automaton, Automaton) {
    let spec = monitoring_semantics::tspec::parse_spec(src).unwrap();
    let opt = Automaton::compile(&spec).unwrap();
    let raw = Automaton::compile_with(
        &spec,
        CompileOptions {
            minimize: false,
            compress_letters: false,
            ..CompileOptions::default()
        },
    )
    .unwrap();
    (opt, raw)
}

/// The ISSUE acceptance bound: the minimized, letter-compressed table is
/// never larger than the ACI-deduped one — in states or in cells.
#[test]
fn minimized_letter_compressed_tables_are_never_larger() {
    for src in WORD_SPECS {
        let (opt, raw) = compile_pair(src);
        assert!(
            opt.num_states() <= raw.num_states(),
            "spec {src:?}: {} minimized states > {} raw",
            opt.num_states(),
            raw.num_states()
        );
        assert!(
            opt.table_cells() <= raw.table_cells(),
            "spec {src:?}: {} minimized cells > {} raw",
            opt.table_cells(),
            raw.table_cells()
        );
        assert_eq!(
            opt.raw_states(),
            raw.num_states(),
            "spec {src:?}: both compilations explore the same derivative closure"
        );
    }
}

// ---------------------------------------------------------------------
// 2 & 3. Differential properties on generated programs
// ---------------------------------------------------------------------

/// "No labelled point produces a negative integer" — once as a temporal
/// spec, once as the §8 demon.
const NEG_SPEC: &str = "never(post(_) and value < 0)";

fn neg_spec() -> SpecMonitor {
    SpecMonitor::new("no-negatives", NEG_SPEC)
        .unwrap()
        .in_namespace(Namespace::new("ns"))
}

fn neg_demon() -> PredicateDemon {
    PredicateDemon::new(
        "no-negatives-demon",
        |v| matches!(v, Value::Int(n) if *n < 0),
    )
    .in_namespace(Namespace::new("ns"))
}

fn run<M: Monitor>(program: &Expr, m: &M) -> Result<(Value, M::State), EvalError> {
    eval_monitored_with(
        program,
        &Env::empty(),
        m,
        m.initial_state(),
        &EvalOptions::with_fuel(FUEL),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 7.7 for automaton monitors: an observing spec is a pure
    /// monitor, so the monitored answer equals the standard answer.
    #[test]
    fn observing_spec_preserves_the_answer(seed: u64, density in 100u16..=1000) {
        let program = annotated_program(seed, density);
        let outcome = check_soundness(&program, &neg_spec(), &EvalOptions::with_fuel(FUEL))
            .unwrap_or_else(|v| panic!("soundness violation: {v}"));
        prop_assert!(
            !matches!(outcome, SoundnessOutcome::MonitorAborted { .. }),
            "an observing spec must never abort"
        );
    }

    /// The enforcing spec aborts (naming the spec) exactly when the
    /// observing run records a violation; otherwise the answers agree.
    #[test]
    fn enforcing_spec_aborts_iff_the_spec_is_violated(seed: u64, density in 100u16..=1000) {
        let program = annotated_program(seed, density);
        let observed = run(&program, &neg_spec());
        let enforced = run(&program, &neg_spec().enforcing());
        match observed {
            Err(EvalError::FuelExhausted) => {} // no verdict either way
            Ok((answer, state)) => match state.violation {
                Some(_) => match enforced {
                    Err(EvalError::MonitorAbort { monitor, reason }) => {
                        prop_assert_eq!(monitor, "no-negatives");
                        prop_assert!(
                            reason.contains("no-negatives"),
                            "reason must name the spec: {}", reason
                        );
                    }
                    other => prop_assert!(false, "expected MonitorAbort, got {:?}", other),
                },
                None => {
                    let (v, s) = enforced.expect("unviolated spec must not abort");
                    prop_assert_eq!(answer, v);
                    prop_assert_eq!(state, s);
                }
            },
            Err(e) => {
                // Program errors (never aborts: the observing monitor has
                // no veto) must reproduce under enforcement unless the
                // spec vetoes first.
                match enforced {
                    Err(EvalError::MonitorAbort { .. }) => {}
                    Err(e2) => prop_assert_eq!(e, e2),
                    Ok(_) => prop_assert!(false, "enforcing run cannot out-succeed observing"),
                }
            }
        }
    }

    /// The automaton monitor and the §8 demon implement the same
    /// property, so their enforcing verdicts coincide event-for-event.
    #[test]
    fn enforcing_spec_matches_the_enforcing_demon(seed: u64, density in 100u16..=1000) {
        let program = annotated_program(seed, density);
        let by_spec = run(&program, &neg_spec().enforcing()).map(|(v, _)| v);
        let by_demon = run(&program, &neg_demon().enforcing()).map(|(v, _)| v);
        match (by_spec, by_demon) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (
                Err(EvalError::MonitorAbort { monitor: a, .. }),
                Err(EvalError::MonitorAbort { monitor: b, .. }),
            ) => {
                prop_assert_eq!(a, "no-negatives");
                prop_assert_eq!(b, "no-negatives-demon");
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "verdicts diverge: spec={:?} demon={:?}", a, b),
        }
    }

    /// The pe-specialized monitor evolves exactly the interpreted
    /// monitor's states: same answers, same DFA state, same counters,
    /// same trace, same violations.
    #[test]
    fn specialized_spec_is_state_identical_to_interpreted(seed: u64, density in 100u16..=1000) {
        let program = annotated_program(seed, density);
        let interpreted = run(&program, &neg_spec());
        let specialized = run(&program, &SpecializedSpec::new(&program, neg_spec()));
        match (interpreted, specialized) {
            (Ok((v1, s1)), Ok((v2, s2))) => {
                prop_assert_eq!(v1, v2);
                prop_assert_eq!(s1, s2);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "runs diverge: {:?} vs {:?}", a, b),
        }
    }

    /// Minimization is invisible: the Hopcroft-minimized,
    /// letter-compressed DFA is language-equivalent to the raw derivative
    /// automaton — acceptance, deadness, and nullability agree at every
    /// prefix of every random event word, for every connective.
    #[test]
    fn minimized_dfa_is_language_equivalent_on_random_words(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for src in WORD_SPECS {
            let (opt, raw) = compile_pair(src);
            let width = opt.alphabet().width();
            for _ in 0..6 {
                let len = rng.gen_range(0..=12);
                let word: Vec<u32> = (0..len).map(|_| rng.gen_range(0..width)).collect();
                prop_assert_eq!(
                    opt.accepts_word(&word),
                    raw.accepts_word(&word),
                    "spec {:?} disagrees on word {:?}", src, word
                );
                let (mut a, mut b) = (opt.start(), raw.start());
                for &l in &word {
                    a = opt.step(a, l);
                    b = raw.step(b, l);
                    prop_assert_eq!(opt.is_dead(a), raw.is_dead(b), "deadness, spec {:?}", src);
                    prop_assert_eq!(
                        opt.is_nullable(a),
                        raw.is_nullable(b),
                        "nullability, spec {:?}", src
                    );
                }
            }
        }
    }

    /// Level 3 (§9.1): `instrument_spec` compiles the spec's DFA *into*
    /// the program. The residual program — run on the plain, unmonitored
    /// machine — returns `(answer, final state)` with the answer and DFA
    /// state identical to the interpreted [`SpecMonitor`] run, and
    /// [`spec_verdict`] decodes the verdict from the bare state integer.
    #[test]
    fn level3_self_monitoring_program_matches_the_interpreted_monitor(
        seed: u64,
        density in 100u16..=1000,
    ) {
        let program = annotated_program(seed, density);
        let m = neg_spec();
        let instrumented = instrument_spec(&program, &m);
        // State threading inflates step counts, so the residual program
        // gets proportionally more fuel than the interpreted run.
        let residual_opts = EvalOptions::with_fuel(FUEL * 50);
        match run(&program, &m) {
            Err(EvalError::FuelExhausted) => {} // no verdict at this budget
            Ok((v, s)) => match eval_with(&instrumented, &Env::empty(), &residual_opts) {
                Err(EvalError::FuelExhausted) => {} // headroom insufficient (rare)
                Ok(Value::Pair(rv, rs)) => {
                    prop_assert_eq!(&*rv, &v, "level-3 answer diverged");
                    prop_assert_eq!(&*rs, &Value::Int(i64::from(s.state)), "level-3 state diverged");
                    let aut = m.automaton();
                    prop_assert_eq!(aut.is_dead(s.state), s.violation.is_some());
                    prop_assert_eq!(
                        spec_verdict(aut, s.state).is_err(),
                        m.finish(&s).is_err(),
                        "verdict decoded from the bare state must match finish()"
                    );
                }
                Ok(other) => prop_assert!(
                    false,
                    "residual program must return (answer, state), got {}", other
                ),
                Err(e) => prop_assert!(
                    false,
                    "residual program failed where the interpreted run succeeded: {:?}", e
                ),
            },
            Err(e) => match eval_with(&instrumented, &Env::empty(), &residual_opts) {
                Err(EvalError::FuelExhausted) => {}
                Err(e2) => prop_assert_eq!(e, e2, "program errors must reproduce at level 3"),
                Ok(v) => prop_assert!(
                    false,
                    "residual program out-succeeded the source program: {}", v
                ),
            },
        }
    }
}

// ---------------------------------------------------------------------
// Pinned end-to-end example (the ISSUE acceptance shape)
// ---------------------------------------------------------------------

#[test]
fn violated_spec_aborts_naming_the_spec_on_a_concrete_program() {
    let program = monitoring_semantics::syntax::parse_expr("{ns/a}:(1 - 2) + {ns/b}:3").unwrap();
    let err = run(&program, &neg_spec().enforcing()).unwrap_err();
    match err {
        EvalError::MonitorAbort { monitor, reason } => {
            assert_eq!(monitor, "no-negatives");
            assert!(reason.contains("no-negatives"), "{reason}");
            assert!(reason.contains("post a = -1"), "{reason}");
        }
        other => panic!("expected MonitorAbort, got {other:?}"),
    }
    // The observing twin preserves the answer.
    let (v, s) = run(&program, &neg_spec()).unwrap();
    assert_eq!(v, Value::Int(2));
    assert!(s.violation.is_some());
}
