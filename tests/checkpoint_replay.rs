//! PR 9: batched/pipelined ingest and checkpointed tapes never change
//! a verdict — they only change how fast it arrives.
//!
//! Three differential properties on randomly generated annotated
//! programs:
//!
//! 1. **Batched ≡ per-event ≡ offline** — feeding a session one
//!    [`Request::Events`] frame per event, feeding another the same
//!    tape as fire-and-forget [`Request::EventBatch`] frames, and
//!    folding `check_tape` offline all reach the same ingested count,
//!    earliest-violation offset, and verdict class; cumulative acks
//!    are monotone and never pass the fold.
//! 2. **Checkpoint-seeded ≡ full replay** — for every checkpoint
//!    interval and `--from` offset, `check_tape_from` /
//!    `check_stream_from` over a v3 tape equals the full-replay check,
//!    for the temporal spec and the stream evaluator alike.
//! 3. **Version negotiation round-trips** — v1 (untimed), v2 (timed),
//!    and v3 (checkpointed) tapes all decode to the identical event
//!    stream; the plain reader skips checkpoint records, the
//!    checkpoint-aware reader recovers them, and a v3 image rides
//!    inside an `EventBatch` frame unchanged.

use std::sync::mpsc::sync_channel;

use monitoring_semantics::core::machine::EvalOptions;
use monitoring_semantics::core::{Env, Value};
use monitoring_semantics::monitor::{
    record_monitored_with, MemorySink, SharedSink, TapeEvent, TapePhase,
};
use monitoring_semantics::stream::StreamMonitor;
use monitoring_semantics::syntax::gen::{gen_program, sprinkle_annotations, GenConfig};
use monitoring_semantics::syntax::{Annotation, Expr, Namespace};
use monitoring_semantics::tape::{
    check_stream_from, check_tape_from, read_tape, read_tape_checkpointed, write_tape,
    write_tape_checkpointed, MonitorServer, Request, Response, ServerConfig, Verdict, MAGIC,
    VERSION, VERSION_CHECKPOINT, VERSION_TIMED,
};
use monitoring_semantics::tspec::SpecMonitor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FUEL: u64 = 200_000;
const SPEC: &str = "never(post(_) and value < 0)";
const STREAM: &str = "stream neg = count(value < 0) over window(7)\ntrigger hot = neg >= 3";

/// Records a random annotated program's tape, then splices in
/// `inject` synthetic negative `post` events (the generator almost
/// never produces one itself, and the violating path is the one these
/// properties most need to exercise). Steps are renumbered so the
/// result is a well-formed tape; the `done` marker, if any, stays
/// last.
fn tape_for(seed: u64, density: u16, inject: &[usize]) -> Vec<TapeEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = GenConfig {
        par_chance: 0.35,
        ..GenConfig::default()
    };
    let plain = gen_program(&mut rng, &config);
    let program: Expr = sprinkle_annotations(
        &mut rng,
        &plain,
        &Namespace::new("ns"),
        f64::from(density) / 1000.0,
    );
    let mem = MemorySink::new();
    let sink = SharedSink::new(mem.clone());
    let _ = record_monitored_with(
        &program,
        &Env::empty(),
        SpecMonitor::new("rec", SPEC).unwrap(),
        &sink,
        &EvalOptions::with_fuel(FUEL),
    );
    let mut events = mem.take();
    let bad = Annotation::label("bad");
    let body = events
        .iter()
        .filter(|e| !matches!(e.phase, TapePhase::Done))
        .count();
    for (i, at) in inject.iter().enumerate() {
        let value = Value::Int(-((i as i64) + 1));
        events.insert(at % (body + 1), TapeEvent::post(&bad, &value, 0));
    }
    for (i, ev) in events.iter_mut().enumerate() {
        ev.step = i as u64;
    }
    events
}

fn verdict(resp: Response) -> Verdict {
    match resp {
        Response::Verdict(v) => v,
        other => panic!("expected a verdict, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: the wire shape of ingest — one frame per event,
    /// or pipelined tape-image batches — is invisible in the verdict.
    #[test]
    fn batched_pipelined_and_offline_checks_agree(
        seed: u64,
        density in 100u16..=1000,
        batch in 1usize..=16,
        inject in proptest::collection::vec(0usize..512, 0..3),
    ) {
        let events = tape_for(seed, density, &inject);
        let offline = SpecMonitor::new("off", SPEC)
            .unwrap()
            .check_tape(events.iter());

        let server = MonitorServer::start(ServerConfig {
            ack_every: batch,
            ..ServerConfig::default()
        });
        server.open(1, SPEC, false);
        server.open(2, SPEC, false);
        // Session 1: one synchronous Events frame per event.
        for ev in &events {
            server.events(1, vec![ev.clone()]);
        }
        let per_event = verdict(server.close(1));
        // Session 2: fire-and-forget batches, acked cumulatively.
        let (out, acks) = sync_channel(events.len() + 8);
        for chunk in events.chunks(batch) {
            let posted = server.post(
                Request::EventBatch { session: 2, tape: write_tape(chunk) },
                out.clone(),
            );
            prop_assert!(posted, "a live server accepts posts");
        }
        let batched = verdict(server.close(2));
        server.shutdown();
        drop(out);

        prop_assert_eq!(per_event.ingested, events.len() as u64);
        prop_assert_eq!(batched.ingested, events.len() as u64);
        prop_assert_eq!(per_event.earliest_violation, batched.earliest_violation);
        prop_assert_eq!(per_event.earliest_violation, offline.earliest_violation);
        prop_assert_eq!(per_event.violation.is_some(), batched.violation.is_some());
        prop_assert_eq!(
            batched.violation.is_some(),
            matches!(offline.outcome, monitoring_semantics::tspec::TapeOutcome::Violated(_))
        );
        // Acks are cumulative: monotone step offsets, never past the fold.
        let mut last = None;
        for resp in acks.iter() {
            if let Response::Ack { session, through_step } = resp {
                prop_assert_eq!(session, 2);
                prop_assert!(last.is_none_or(|l| l <= through_step));
                prop_assert!(events.iter().any(|e| e.step == through_step));
                last = Some(through_step);
            }
        }
    }

    /// Property 2: seeking to a checkpoint and replaying the suffix is
    /// indistinguishable from replaying the whole tape — for the
    /// temporal spec and the stream evaluator.
    #[test]
    fn checkpoint_seeded_checks_match_full_replay(
        seed: u64,
        density in 100u16..=1000,
        every in 1usize..=32,
        from in 0u64..=300,
        inject in proptest::collection::vec(0usize..512, 0..3),
    ) {
        let events = tape_for(seed, density, &inject);
        let monitor = SpecMonitor::new("ck", SPEC).unwrap();
        let stream = StreamMonitor::new("ck-stream", STREAM).unwrap();
        let bytes = write_tape_checkpointed(&events, &monitor, Some(&stream), every);

        let full = monitor.check_tape(events.iter());
        let seeded = check_tape_from(&monitor, &bytes, from).unwrap();
        prop_assert_eq!(
            std::mem::discriminant(&seeded.check.outcome),
            std::mem::discriminant(&full.outcome)
        );
        prop_assert_eq!(seeded.check.earliest_violation, full.earliest_violation);
        prop_assert_eq!(seeded.check.state.state, full.state.state);
        prop_assert_eq!(seeded.check.state.events, full.state.events);
        prop_assert_eq!(seeded.resumed_at + seeded.replayed, events.len() as u64);

        let s_full = stream.check_tape(events.iter());
        let s_seeded = check_stream_from(&stream, &bytes, from).unwrap();
        prop_assert_eq!(&s_seeded.check.firings, &s_full.firings);
        prop_assert_eq!(s_seeded.check.fired_total, s_full.fired_total);
        prop_assert_eq!(s_seeded.check.missed, s_full.missed);
        prop_assert_eq!(s_seeded.check.state, s_full.state);
    }

    /// Property 3: every tape version decodes to the same events, and
    /// checkpoints are invisible to readers that don't ask for them.
    #[test]
    fn tape_versions_negotiate_and_roundtrip(
        seed: u64,
        density in 100u16..=1000,
        timed: bool,
        every in 1usize..=32,
        inject in proptest::collection::vec(0usize..512, 0..3),
    ) {
        let mut events = tape_for(seed, density, &inject);
        if timed {
            for ev in &mut events {
                ev.time = Some(ev.step * 3);
            }
        }
        // v1/v2: the writer picks the version from the events.
        let plain = write_tape(&events);
        prop_assert_eq!(&plain[..4], MAGIC);
        prop_assert_eq!(
            u16::from(plain[4]),
            if timed { VERSION_TIMED } else { VERSION }
        );
        prop_assert_eq!(&read_tape(&plain).unwrap(), &events);
        let (decoded, ckpts) = read_tape_checkpointed(&plain).unwrap();
        prop_assert_eq!(&decoded, &events);
        prop_assert!(ckpts.is_empty(), "v1/v2 tapes carry no checkpoints");

        // v3: checkpoints interleave but the event stream is untouched.
        let monitor = SpecMonitor::new("v3", SPEC).unwrap();
        let v3 = write_tape_checkpointed(&events, &monitor, None, every);
        prop_assert_eq!(u16::from(v3[4]), VERSION_CHECKPOINT);
        prop_assert_eq!(&read_tape(&v3).unwrap(), &events);
        let (decoded, ckpts) = read_tape_checkpointed(&v3).unwrap();
        prop_assert_eq!(&decoded, &events);
        for pair in ckpts.windows(2) {
            prop_assert!(pair[0].events < pair[1].events, "checkpoints are ordered");
        }
        for ck in &ckpts {
            prop_assert_eq!(ck.events % every as u64, 0);
            prop_assert!((ck.events as usize) < events.len().max(1));
        }

        // A v3 image rides inside an EventBatch frame byte-for-byte.
        let req = Request::EventBatch { session: 5, tape: v3.clone() };
        match Request::decode(&req.encode()).unwrap() {
            Request::EventBatch { session, tape } => {
                prop_assert_eq!(session, 5);
                prop_assert_eq!(&read_tape(&tape).unwrap(), &events);
                prop_assert_eq!(tape, v3);
            }
            other => prop_assert!(false, "decoded to {other:?}"),
        }
    }
}

/// The tapes this suite generates really exercise the interesting
/// cases: some runs violate, some don't, some carry a `done` marker.
#[test]
fn generated_tapes_are_not_degenerate() {
    let mut violated = 0;
    let mut done = 0;
    let mut nonempty = 0;
    for seed in 0..64u64 {
        // Every third tape gets a synthetic violation spliced in.
        let inject: &[usize] = if seed % 3 == 0 { &[11] } else { &[] };
        let events = tape_for(seed, 700, inject);
        if !events.is_empty() {
            nonempty += 1;
        }
        if events.iter().any(|e| matches!(e.phase, TapePhase::Done)) {
            done += 1;
        }
        let check = SpecMonitor::new("d", SPEC)
            .unwrap()
            .check_tape(events.iter());
        if check.earliest_violation.is_some() {
            violated += 1;
        }
    }
    assert!(nonempty >= 16, "only {nonempty}/64 tapes had events");
    assert!(violated >= 4, "only {violated}/64 tapes violated");
    assert!(done >= 4, "only {done}/64 runs completed");
}
