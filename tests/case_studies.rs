//! Larger end-to-end case studies: the monitors applied to realistic
//! workloads, at sizes where the properties they check actually bite.

use monitoring_semantics::core::machine::eval;
use monitoring_semantics::core::{programs, Value};
use monitoring_semantics::monitor::machine::eval_monitored;
use monitoring_semantics::monitors::callgraph::CallGraph;
use monitoring_semantics::monitors::demon::{PredicateDemon, UnsortedDemon};
use monitoring_semantics::monitors::memo::MemoScout;
use monitoring_semantics::monitors::profiler::Profiler;
use monitoring_semantics::syntax::points::{annotate_where, profile_functions, trace_functions};
use monitoring_semantics::syntax::{parse_expr, Expr, Ident, Namespace};

/// The sortedness demon as a *verifier* for merge sort: annotate every
/// recursive `sort` result; the demon must stay silent on the final
/// output but we also check it flags a deliberately broken merge.
#[test]
fn demon_verifies_merge_sort_and_catches_a_bug() {
    // Correct merge sort: wrap the body of `sort` with a label so the
    // demon checks every intermediate sorted run.
    let good = parse_expr(
        "letrec merge = lambda a. lambda b. \
            if null? a then b else if null? b then a \
            else if (hd a) <= (hd b) \
                 then (hd a) : (merge (tl a) b) \
                 else (hd b) : (merge a (tl b)) in \
         letrec evens = lambda l. if null? l then [] else if null? (tl l) then l \
            else (hd l) : (evens (tl (tl l))) in \
         letrec odds = lambda l. if null? l then [] else if null? (tl l) then [] \
            else (hd (tl l)) : (odds (tl (tl l))) in \
         letrec sort = lambda l. \
            {run}:(if null? l then [] else if null? (tl l) then l \
            else merge (sort (evens l)) (sort (odds l))) in \
         sort [9, 3, 7, 1, 8, 2, 6, 4, 5]",
    )
    .unwrap();
    let (answer, fired) = eval_monitored(&good, &UnsortedDemon::new()).unwrap();
    assert_eq!(answer, Value::list((1..=9).map(Value::Int)));
    assert!(fired.is_empty(), "demon fired on a correct sort: {fired:?}");

    // Broken merge (flipped comparison): the demon pinpoints the label.
    let bad_src = good.to_string().replace("hd a <= hd b", "hd a >= hd b");
    let bad = parse_expr(&bad_src).unwrap();
    let (_, fired) = eval_monitored(&bad, &UnsortedDemon::new()).unwrap();
    let names: Vec<&str> = fired.iter().map(Ident::as_str).collect();
    assert_eq!(names, vec!["run"], "the demon names the offending point");
}

/// Profile `n`-queens: the profiler's counter environment quantifies the
/// search (safe checks dominate), and the answer stays correct.
#[test]
fn profiling_nqueens_quantifies_the_search() {
    let plain = programs::nqueens(5);
    let annotated = profile_functions(
        &plain,
        &[Ident::new("safe"), Ident::new("count")],
        &Namespace::anonymous(),
    )
    .unwrap();
    let p = Profiler::new();
    let (answer, profile) = eval_monitored(&annotated, &p).unwrap();
    assert_eq!(answer, Value::Int(10));
    let safe = profile.count(&Ident::new("safe"));
    let count = profile.count(&Ident::new("count"));
    assert!(safe > count, "safe ({safe}) dominates count ({count})");
    assert!(count > 100, "the search explores >100 nodes, saw {count}");
}

/// The memo scout quantifies exactly how much a memo table would save on
/// tak — and the call graph shows tak's self-calls.
#[test]
fn memo_scout_and_call_graph_on_tak() {
    let plain = programs::tak(8, 4, 2);
    let traced = trace_functions(&plain, &[Ident::new("tak")], &Namespace::anonymous()).unwrap();

    let (answer, counts) = eval_monitored(&traced, &MemoScout::new()).unwrap();
    assert_eq!(answer, Value::Int(3));
    assert!(
        counts.redundant_calls() > 10,
        "tak recomputes: {}",
        counts.redundant_calls()
    );

    let (_, graph) = eval_monitored(&traced, &CallGraph::new()).unwrap();
    assert_eq!(graph.calls(None, "tak"), 1);
    assert!(graph.calls(Some("tak"), "tak") > 50);
}

/// `annotate_where` as a "semantic grep": tag every conditional in the
/// primes program and collect how many evaluate.
#[test]
fn predicate_demon_counts_divisibility_hits() {
    let plain = programs::primes_below(50);
    // Tag every `if` — the demon records which ones ever produce `true`.
    let counter = std::cell::Cell::new(0u32);
    let tagged = annotate_where(&plain, &|node| matches!(node, Expr::If(..)), &|_| {
        counter.set(counter.get() + 1);
        monitoring_semantics::syntax::Annotation::label(format!("c{}", counter.get()))
    });
    let truthy = PredicateDemon::new("truthy", |v| matches!(v, Value::Bool(true)));
    // The annotation wraps the whole `if`, so the demon sees branch
    // *results*; we only check soundness + that it fired somewhere.
    let (answer, fired) = eval_monitored(&tagged, &truthy).unwrap();
    assert_eq!(answer, eval(&plain).unwrap());
    assert!(!fired.is_empty());
}

/// Monitors on the heavy fixtures never change answers (spot-check of
/// Theorem 7.7 at scale).
#[test]
fn soundness_at_scale() {
    for plain in [
        programs::merge_sort(40),
        programs::primes_below(200),
        programs::nqueens(6),
        programs::tak(10, 5, 2),
    ] {
        let names = monitoring_semantics::syntax::points::bound_function_names(&plain);
        let annotated = profile_functions(&plain, &names, &Namespace::anonymous()).unwrap();
        let (monitored, _) = eval_monitored(&annotated, &Profiler::new()).unwrap();
        assert_eq!(Ok(monitored), eval(&plain));
    }
}
