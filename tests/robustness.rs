//! Robustness properties: the front end never panics, printing
//! round-trips, and the residual-cleanup pass preserves semantics.

use monitoring_semantics::core::machine::{eval_with, EvalOptions};
use monitoring_semantics::core::{Env, EvalError};
use monitoring_semantics::pe::simplify::simplify;
use monitoring_semantics::syntax::gen::{gen_program, sprinkle_annotations, GenConfig};
use monitoring_semantics::syntax::{parse_expr, Namespace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary input never panics the lexer/parser — it parses or
    /// reports a positioned error.
    #[test]
    fn parser_never_panics(src in ".{0,200}") {
        match parse_expr(&src) {
            Ok(_) => {}
            Err(e) => {
                // The error position is within (or just past) the input.
                prop_assert!(e.offset <= src.len());
                let _ = e.display_in(&src);
            }
        }
    }

    /// Structured junk built from the language's own tokens.
    #[test]
    fn parser_never_panics_on_token_soup(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "lambda", "letrec", "let", "in", "if", "then", "else", "and",
                "while", "do", "end", "x", "f", "0", "1", "(", ")", "[", "]",
                "{", "}", ":", ":=", ".", ",", ";", "+", "-", "*", "/", "=",
                "<", "<=", "++", "true", "false", "\"s\"",
            ]),
            0..40,
        )
    ) {
        let src = words.join(" ");
        let _ = parse_expr(&src);
    }

    /// Pretty-printed annotated programs re-parse to the same tree.
    #[test]
    fn annotated_round_trip(seed: u64, density in 0u16..=1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plain = gen_program(&mut rng, &GenConfig::default());
        let program = sprinkle_annotations(
            &mut rng,
            &plain,
            &Namespace::new("ns"),
            f64::from(density) / 1000.0,
        );
        let printed = program.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|e| panic!("{}\nprogram: {printed}", e.display_in(&printed)));
        prop_assert_eq!(reparsed, program);
    }

    /// The residual-cleanup pass is semantics-preserving on generated
    /// programs (values and errors alike).
    #[test]
    fn simplify_preserves_semantics(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let program = gen_program(&mut rng, &GenConfig::default());
        let cleaned = simplify(&program);
        let opts = EvalOptions::with_fuel(400_000);
        let original = eval_with(&program, &Env::empty(), &opts);
        let simplified = eval_with(&cleaned, &Env::empty(), &opts);
        let fuel = |r: &Result<_, EvalError>| matches!(r, Err(EvalError::FuelExhausted));
        if !fuel(&original) && !fuel(&simplified) {
            prop_assert_eq!(original, simplified, "cleaned: {}", cleaned);
        }
    }
}
