//! Fault isolation properties: a quarantined faulty monitor degrades to
//! the identity monitor and therefore stays inside Theorem 7.7 — the
//! monitored answer equals the standard answer, byte for byte, no matter
//! when or how the monitor misbehaves, and a faulty layer in a stack
//! never disturbs its healthy neighbours.

use monitoring_semantics::core::machine::{eval_with, EvalOptions};
use monitoring_semantics::core::{Env, EvalError, Value};
use monitoring_semantics::monitor::compose::boxed;
use monitoring_semantics::monitor::machine::eval_monitored_with;
use monitoring_semantics::monitor::scope::Scope;
use monitoring_semantics::monitor::soundness::{check_soundness, SoundnessOutcome};
use monitoring_semantics::monitor::{Budget, FaultPolicy, Guarded, Health, Monitor, MonitorStack};
use monitoring_semantics::monitors::{FaultMode, FaultyMonitor};
use monitoring_semantics::syntax::gen::{gen_program, sprinkle_annotations, GenConfig};
use monitoring_semantics::syntax::{parse_expr, Annotation, Expr, Namespace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FUEL: u64 = 400_000;

/// A generated program with annotations sprinkled at `density`/1000.
fn annotated_program(seed: u64, density: u16) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let plain = gen_program(&mut rng, &GenConfig::default());
    sprinkle_annotations(
        &mut rng,
        &plain,
        &Namespace::new("ns"),
        f64::from(density) / 1000.0,
    )
}

fn fuel_limited(r: &Result<Value, EvalError>) -> bool {
    matches!(r, Err(EvalError::FuelExhausted))
}

/// Counts every event it sees — the healthy neighbour in cascade tests.
#[derive(Debug)]
struct Count;
impl Monitor for Count {
    type State = u64;
    fn name(&self) -> &str {
        "count"
    }
    fn initial_state(&self) -> u64 {
        0
    }
    fn pre(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, n: u64) -> u64 {
        n + 1
    }
    fn post(&self, _: &Annotation, _: &Expr, _: &Scope<'_>, _: &Value, n: u64) -> u64 {
        n + 1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A monitor that panics on its Nth event, quarantined, never changes
    /// the standard answer (values *and* errors agree).
    #[test]
    fn quarantined_panic_never_changes_the_answer(
        seed: u64,
        density in 100u16..=1000,
        fire_at in 1u64..=12,
    ) {
        let program = annotated_program(seed, density);
        let bomb = FaultyMonitor::new(fire_at, FaultMode::Panic);
        let guarded = Guarded::new(bomb).policy(FaultPolicy::Quarantine);
        let outcome = check_soundness(&program, &guarded, &EvalOptions::with_fuel(FUEL))
            .unwrap_or_else(|v| panic!("soundness violation: {v}"));
        let aborted = matches!(outcome, SoundnessOutcome::MonitorAborted { .. });
        prop_assert!(
            !aborted,
            "a quarantined fault must be confined, not surfaced as an abort"
        );
    }

    /// Same property for a monitor whose fault is an *abort verdict*:
    /// quarantine confines the verdict, so the run completes unchanged.
    #[test]
    fn quarantined_abort_never_changes_the_answer(
        seed: u64,
        density in 100u16..=1000,
        fire_at in 1u64..=12,
    ) {
        let program = annotated_program(seed, density);
        let veto = FaultyMonitor::new(fire_at, FaultMode::Abort("injected".into()));
        let guarded = Guarded::new(veto).policy(FaultPolicy::Quarantine);
        let outcome = check_soundness(&program, &guarded, &EvalOptions::with_fuel(FUEL))
            .unwrap_or_else(|v| panic!("soundness violation: {v}"));
        let aborted = matches!(outcome, SoundnessOutcome::MonitorAborted { .. });
        prop_assert!(!aborted, "quarantine must confine the abort verdict");
    }

    /// Two-layer cascade: a quarantined bomb layered next to a healthy
    /// counter leaves both the answer and the counter's final state
    /// exactly as a fault-free run produces them.
    #[test]
    fn cascade_with_a_quarantined_layer_matches_the_fault_free_run(
        seed: u64,
        density in 100u16..=1000,
        fire_at in 1u64..=12,
    ) {
        let program = annotated_program(seed, density);
        let opts = EvalOptions::with_fuel(FUEL);

        let healthy = MonitorStack::empty().push(boxed(Count));
        let healthy_run = eval_monitored_with(
            &program, &Env::empty(), &healthy, healthy.initial_state(), &opts,
        );

        let stack = MonitorStack::empty()
            .push(boxed(Count))
            .push_guarded(
                FaultyMonitor::new(fire_at, FaultMode::Panic),
                FaultPolicy::Quarantine,
                Budget::unlimited(),
            );
        let faulty_run = eval_monitored_with(
            &program, &Env::empty(), &stack, stack.initial_state(), &opts,
        );

        // Fuel budgets are identical (same machine, same hooks), so both
        // runs exhaust together; guard anyway.
        match (healthy_run, faulty_run) {
            (Err(EvalError::FuelExhausted), _) | (_, Err(EvalError::FuelExhausted)) => {}
            (Ok((v_healthy, healthy_states)), Ok((v, states))) => {
                prop_assert_eq!(v, v_healthy, "answer disturbed by the quarantined layer");
                prop_assert_eq!(
                    states[0].downcast::<u64>(),
                    healthy_states[0].downcast::<u64>(),
                    "healthy neighbour's state disturbed"
                );
                let healths = stack.healths(&states);
                prop_assert_eq!(&healths[0].1, &Health::Ok);
                if fire_at <= states[0].downcast::<u64>().unwrap_or(0) {
                    prop_assert!(
                        matches!(&healths[1].1, Health::Quarantined(_)),
                        "the bomb saw its trigger event but was not quarantined: {:?}",
                        healths[1].1
                    );
                }
            }
            (Err(e_healthy), Err(e)) => {
                prop_assert_eq!(e, e_healthy, "runs disagree on the error");
            }
            (healthy_run, faulty_run) => prop_assert!(
                false,
                "one run succeeded while the other failed: healthy ok={} faulty ok={}",
                healthy_run.is_ok(),
                faulty_run.is_ok()
            ),
        }
    }

    /// Under the default `Fatal` policy an abort verdict surfaces as
    /// `MonitorAbort` — and agrees with the standard run everywhere the
    /// monitor does *not* fire.
    #[test]
    fn fatal_abort_surfaces_or_the_run_agrees(
        seed: u64,
        density in 100u16..=1000,
        fire_at in 1u64..=12,
    ) {
        let program = annotated_program(seed, density);
        let veto = FaultyMonitor::new(fire_at, FaultMode::Abort("injected".into()));
        let opts = EvalOptions::with_fuel(FUEL);
        let monitored = eval_monitored_with(
            &program, &Env::empty(), &veto, veto.initial_state(), &opts,
        ).map(|(v, _)| v);
        let standard = eval_with(&program.erase_annotations(), &Env::empty(), &opts);
        if !fuel_limited(&monitored) && !fuel_limited(&standard) {
            match monitored {
                Err(EvalError::MonitorAbort { monitor, reason }) => {
                    prop_assert_eq!(monitor, "faulty");
                    prop_assert_eq!(reason, "injected");
                }
                other => prop_assert_eq!(other, standard, "pure phase must agree"),
            }
        }
    }
}

/// Deterministic cascade smoke test on a paper program: the quarantined
/// layer reports its health, neighbours stay `Ok`, answer is `120`.
#[test]
fn cascade_smoke_test_on_fac() {
    let program = parse_expr(
        "letrec fac = lambda x. {ns/fac}:(if x = 0 then 1 else x * (fac (x - 1))) in fac 5",
    )
    .unwrap();
    let stack = MonitorStack::empty().push(boxed(Count)).push_guarded(
        FaultyMonitor::new(1, FaultMode::Panic),
        FaultPolicy::Quarantine,
        Budget::unlimited(),
    );
    let (v, states) = eval_monitored_with(
        &program,
        &Env::empty(),
        &stack,
        stack.initial_state(),
        &EvalOptions::with_fuel(FUEL),
    )
    .unwrap();
    assert_eq!(v, Value::Int(120));
    assert_eq!(states[0].downcast::<u64>(), Some(12), "6 pre + 6 post");
    let healths = stack.healths(&states);
    assert_eq!(healths[0].1, Health::Ok);
    assert!(matches!(&healths[1].1, Health::Quarantined(_)));
}
