//! Counterexample shrinking for generated programs that abort monitors.
//!
//! The property harness is seed-based: a failing case reproduces a whole
//! generated program, not a minimal one. [`shrink`] closes that gap with
//! greedy 1-minimal reduction under the predicate "the enforcing run
//! still aborts naming this monitor". These tests pin down the contract
//! end-to-end: the shrunk program still aborts, never grew, never leaks
//! free variables, and admits no further single rewrite that keeps the
//! abort — so counterexamples are minimal expressions, not programs.

use monitoring_semantics::core::machine::EvalOptions;
use monitoring_semantics::core::{Env, EvalError, Value};
use monitoring_semantics::monitor::machine::eval_monitored_with;
use monitoring_semantics::monitor::Monitor;
use monitoring_semantics::syntax::gen::{gen_program, sprinkle_annotations, GenConfig};
use monitoring_semantics::syntax::shrink::{free_vars, shrink, shrink_steps};
use monitoring_semantics::syntax::{parse_expr, Expr, Namespace};
use monitoring_semantics::tspec::SpecMonitor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FUEL: u64 = 100_000;

fn annotated_program(seed: u64, density: u16) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let plain = gen_program(&mut rng, &GenConfig::default());
    sprinkle_annotations(
        &mut rng,
        &plain,
        &Namespace::new("ns"),
        f64::from(density) / 1000.0,
    )
}

fn neg_spec() -> SpecMonitor {
    SpecMonitor::new("no-negatives", "never(post(_) and value < 0)")
        .unwrap()
        .in_namespace(Namespace::new("ns"))
        .enforcing()
}

/// The shrinking predicate: the enforcing spec vetoes this program,
/// naming itself. Fuel exhaustion or ordinary program errors do not
/// count — a minimal counterexample must still *abort*.
fn aborts(program: &Expr) -> bool {
    let m = neg_spec();
    matches!(
        eval_monitored_with(
            program,
            &Env::empty(),
            &m,
            m.initial_state(),
            &EvalOptions::with_fuel(FUEL),
        ),
        Err(EvalError::MonitorAbort { monitor, .. }) if monitor == "no-negatives"
    )
}

#[test]
fn shrunk_counterexamples_are_one_minimal_and_still_abort() {
    let mut cases = 0u32;
    for seed in 0..400u64 {
        let original = annotated_program(seed, 600);
        if !aborts(&original) {
            continue;
        }
        cases += 1;
        let small = shrink(&original, aborts);

        assert!(
            aborts(&small),
            "seed {seed}: shrunk program stopped aborting"
        );
        assert!(
            small.size() <= original.size(),
            "seed {seed}: shrinking grew the program"
        );
        assert!(
            !small.annotations().is_empty(),
            "seed {seed}: an abort needs at least one observed event"
        );
        let allowed = free_vars(&original);
        assert!(
            free_vars(&small).is_subset(&allowed),
            "seed {seed}: shrinking introduced free variables"
        );
        // 1-minimality: no single further rewrite (that stays closed
        // under the original's free variables) keeps the abort.
        for cand in shrink_steps(&small) {
            if free_vars(&cand).is_subset(&allowed) {
                assert!(
                    !aborts(&cand),
                    "seed {seed}: not 1-minimal, {cand} still aborts"
                );
            }
        }
        if cases == 3 {
            break;
        }
    }
    assert!(
        cases >= 1,
        "no aborting generated program found in 400 seeds"
    );
}

#[test]
fn pinned_shrink_reaches_the_known_minimum() {
    // The violating event is `post p = -1`; everything else — the other
    // annotation, the addition, the positive magnitude of the constants —
    // is noise the shrinker must strip.
    let original = parse_expr("{ns/p}:(1 - 2) + {ns/q}:3").unwrap();
    assert!(aborts(&original));
    let small = shrink(&original, aborts);
    assert_eq!(small, parse_expr("{ns/p}:(0 - 2)").unwrap(), "got {small}");
    for cand in shrink_steps(&small) {
        assert!(!aborts(&cand), "{cand} still aborts");
    }
}

#[test]
fn shrinking_a_non_counterexample_is_the_identity() {
    let benign = parse_expr("{ns/p}:1 + {ns/q}:2").unwrap();
    assert!(!aborts(&benign));
    assert_eq!(shrink(&benign, aborts), benign);
    // Sanity: the benign program actually runs to its answer.
    let m = neg_spec();
    let (v, _) = eval_monitored_with(
        &benign,
        &Env::empty(),
        &m,
        m.initial_state(),
        &EvalOptions::with_fuel(FUEL),
    )
    .unwrap();
    assert_eq!(v, Value::Int(3));
}
