//! Level-2 parity: the compiled engine must produce byte-identical
//! monitor states to the monitored interpreter for every §8-style
//! monitor — i.e. specialization really is *transparent* to monitoring.

use monitoring_semantics::core::machine::EvalOptions;
use monitoring_semantics::core::{programs, Env};
use monitoring_semantics::monitor::machine::eval_monitored_with;
use monitoring_semantics::monitor::Monitor;
use monitoring_semantics::monitors::callgraph::CallGraph;
use monitoring_semantics::monitors::collecting::Collecting;
use monitoring_semantics::monitors::demon::UnsortedDemon;
use monitoring_semantics::monitors::memo::MemoScout;
use monitoring_semantics::monitors::profiler::{AbProfiler, Profiler};
use monitoring_semantics::monitors::replay::{tape_of, Recorder, Replay};
use monitoring_semantics::monitors::space::SpaceProfiler;
use monitoring_semantics::monitors::stepper::Stepper;
use monitoring_semantics::monitors::tracer::Tracer;
use monitoring_semantics::pe::engine::compile_monitored;
use monitoring_semantics::syntax::gen::{gen_program, sprinkle_annotations, GenConfig};
use monitoring_semantics::syntax::{Expr, Namespace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn parity<M: Monitor>(program: &Expr, monitor: &M) -> (M::State, M::State) {
    let opts = EvalOptions::default();
    let (vi, si) = eval_monitored_with(
        program,
        &Env::empty(),
        monitor,
        monitor.initial_state(),
        &opts,
    )
    .expect("interpreter run");
    let compiled = compile_monitored(program, monitor).expect("compiles");
    let (vc, sc) = compiled
        .run_monitored(monitor, &opts)
        .expect("compiled run");
    assert_eq!(vi, vc, "answers diverge");
    (si, sc)
}

#[test]
fn profilers_match() {
    let (a, b) = parity(&programs::fac_ab(7), &AbProfiler);
    assert_eq!(a, b);
    let (a, b) = parity(&programs::fac_mul_profiled(6), &Profiler::new());
    assert_eq!(a, b);
}

#[test]
fn tracer_transcripts_match() {
    let t = Tracer::new();
    let (a, b) = parity(&programs::fac_mul_traced(5), &t);
    assert_eq!(a.chan.render(), b.chan.render());
}

#[test]
fn demon_and_collecting_match() {
    let (a, b) = parity(&programs::inclist_demon(), &UnsortedDemon::new());
    assert_eq!(a, b);
    let (a, b) = parity(&programs::collecting_fac(4), &Collecting::new());
    assert_eq!(a, b);
}

#[test]
fn stepper_and_space_match() {
    let (a, b) = parity(&programs::fac_ab(5), &Stepper::new());
    // Step logs include expression text; the compiled engine reports a
    // placeholder for it, so compare the event *shape* (point + step).
    let shape = |log: &monitoring_semantics::monitors::stepper::StepLog| {
        log.events()
            .iter()
            .map(|e| match e {
                monitoring_semantics::monitors::stepper::StepEvent::Enter {
                    step, point, ..
                } => format!("enter {step} {point}"),
                monitoring_semantics::monitors::stepper::StepEvent::Leave {
                    step,
                    point,
                    value,
                } => format!("leave {step} {point} {value}"),
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(shape(&a), shape(&b));

    let (a, b) = parity(&programs::fac_ab(5), &SpaceProfiler::new());
    assert_eq!(a, b);
}

#[test]
fn call_graph_and_memo_match() {
    let traced = programs::fac_mul_traced(5);
    let (a, b) = parity(&traced, &CallGraph::new());
    assert_eq!(a, b);
    let (a, b) = parity(&traced, &MemoScout::new());
    assert_eq!(a, b);
}

#[test]
fn a_tape_recorded_on_the_interpreter_replays_on_the_engine() {
    let program = programs::fac_ab(6);
    let (_, events) = eval_monitored_with(
        &program,
        &Env::empty(),
        &Recorder::new(),
        Vec::new(),
        &EvalOptions::default(),
    )
    .unwrap();
    let tape = tape_of(events);
    let replay = Replay::new(tape.clone());
    let compiled = compile_monitored(&program, &replay).unwrap();
    let (_, verdict) = compiled
        .run_monitored(&replay, &EvalOptions::default())
        .unwrap();
    assert!(verdict.complete(&tape), "{}", replay.render_state(&verdict));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated programs, sprinkled labels: interpreter and compiled
    /// engine produce identical profiler states.
    #[test]
    fn profiler_parity_on_generated_programs(seed: u64, density in 0u16..=600) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plain = gen_program(&mut rng, &GenConfig::default());
        let program = sprinkle_annotations(
            &mut rng,
            &plain,
            &Namespace::anonymous(),
            f64::from(density) / 1000.0,
        );
        let opts = EvalOptions::with_fuel(400_000);
        let monitor = Profiler::new();
        let interp = eval_monitored_with(
            &program,
            &Env::empty(),
            &monitor,
            monitor.initial_state(),
            &opts,
        );
        let compiled = compile_monitored(&program, &monitor)
            .expect("compiles")
            .run_monitored(&monitor, &opts);
        use monitoring_semantics::core::EvalError;
        let fuel = |r: &Result<_, EvalError>| matches!(r, Err(EvalError::FuelExhausted));
        if !fuel(&interp) && !fuel(&compiled) {
            prop_assert_eq!(interp, compiled);
        }
    }
}
