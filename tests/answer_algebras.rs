//! §3.1 end to end: parameterizing the semantics by its final answer.
//!
//! The paper's point is that the *same* valuation functional serves any
//! answer algebra — swapping `Ans_std` for `Ans_str` (or the derived
//! monitoring algebra) re-targets the semantics without touching it.

use monitoring_semantics::core::answer::{AnswerAlgebra, BasAnswer, StringAnswer, ValueAnswer};
use monitoring_semantics::core::machine::{eval, eval_with_algebra};
use monitoring_semantics::core::{programs, EvalError, Value};
use monitoring_semantics::syntax::parse_expr;

#[test]
fn std_algebra_projects_to_bas() {
    // φ v = v|Bas succeeds on basic answers…
    assert_eq!(
        eval_with_algebra(&programs::fac(5), &BasAnswer).unwrap(),
        Value::Int(120)
    );
    // …including observable lists (the §8 examples treat them as answers)…
    assert_eq!(
        eval_with_algebra(&programs::inclist_demon(), &BasAnswer).unwrap(),
        Value::list([Value::Int(103), Value::Int(13), Value::Int(4)])
    );
    // …and rejects function answers, exactly as the projection does.
    let fun = parse_expr("lambda x. x").unwrap();
    assert!(matches!(
        eval_with_algebra(&fun, &BasAnswer),
        Err(EvalError::TypeError { .. })
    ));
}

#[test]
fn str_algebra_renders_answers_as_the_paper_shows() {
    // Ans_str: φ v = "The result is:" ++ toStr(v).
    assert_eq!(
        eval_with_algebra(&programs::fac(5), &StringAnswer).unwrap(),
        "The result is: 120"
    );
    assert_eq!(
        eval_with_algebra(&parse_expr("[1, 2] ++ [3]").unwrap(), &StringAnswer).unwrap(),
        "The result is: [1, 2, 3]"
    );
}

#[test]
fn value_algebra_admits_function_answers() {
    let fun = parse_expr("lambda x. x").unwrap();
    let v = eval_with_algebra(&fun, &ValueAnswer).unwrap();
    assert!(matches!(v, Value::Closure(_)));
}

#[test]
fn the_to_str_primitive_agrees_with_the_algebra() {
    // `toStr` inside the language matches the rendering φ uses.
    let rendered = eval(&parse_expr("toStr [1, 2, 3]").unwrap()).unwrap();
    let direct = eval(&parse_expr("[1, 2, 3]").unwrap()).unwrap();
    assert_eq!(rendered, Value::Str(direct.to_string().into()));
    assert_eq!(
        StringAnswer.phi(direct).unwrap(),
        "The result is: [1, 2, 3]"
    );
}

#[test]
fn algebras_compose_with_monitoring() {
    // The monitored run's first projection feeds any algebra — the
    // Definition 4.1 derivation, spelled with the building blocks.
    use monitoring_semantics::monitor::machine::eval_monitored;
    use monitoring_semantics::monitors::Profiler;
    let (answer, _) = eval_monitored(&programs::fac_mul_profiled(3), &Profiler::new()).unwrap();
    assert_eq!(StringAnswer.phi(answer).unwrap(), "The result is: 6");
}
