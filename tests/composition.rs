//! Experiment E9 — §6: cascaded monitors with disjoint annotation
//! syntaxes do not interfere, and the composite behaves like running each
//! monitor alone.

use monitoring_semantics::core::machine::eval;
use monitoring_semantics::monitor::compose::{boxed, Compose};
use monitoring_semantics::monitor::machine::eval_monitored;
use monitoring_semantics::monitor::session::{evaluate, LanguageModule};
use monitoring_semantics::monitors::collecting::Collecting;
use monitoring_semantics::monitors::profiler::Profiler;
use monitoring_semantics::monitors::tracer::Tracer;
use monitoring_semantics::syntax::{parse_expr, Ident, Namespace};

/// One program carrying three monitors' annotations: profiler labels,
/// tracer headers, and `collect/`-namespaced collecting tags.
fn three_way_program() -> monitoring_semantics::syntax::Expr {
    parse_expr(
        "letrec mul = lambda x. lambda y. {mul(x, y)}:({mul}:(x*y)) in \
         letrec fac = lambda x. {fac(x)}:({fac}:if (x=0) then 1 \
            else {collect/step}:(mul x (fac (x-1)))) \
         in fac 4",
    )
    .unwrap()
}

#[test]
fn typed_cascade_equals_individual_runs() {
    let prog = three_way_program();
    let profiler = Profiler::new();
    let tracer = Tracer::new();

    let (v_solo_p, profile_alone) = eval_monitored(&prog, &profiler).unwrap();
    let (v_solo_t, trace_alone) = eval_monitored(&prog, &tracer).unwrap();

    let composed = Compose::new(Profiler::new(), Tracer::new());
    let (v_both, (profile_both, trace_both)) = eval_monitored(&prog, &composed).unwrap();

    assert_eq!(v_both, v_solo_p);
    assert_eq!(v_both, v_solo_t);
    assert_eq!(
        profile_both, profile_alone,
        "composition changed the profiler's state"
    );
    assert_eq!(
        trace_both.chan.render(),
        trace_alone.chan.render(),
        "composition changed the tracer's transcript"
    );
}

#[test]
fn cascade_answer_matches_the_standard_semantics() {
    let prog = three_way_program();
    let plain = eval(&prog).unwrap();
    let stack = boxed(Profiler::new())
        & boxed(Tracer::new())
        & boxed(Collecting::in_namespace(Namespace::new("collect")));
    stack.check_disjoint(&prog).unwrap();
    let report = evaluate(stack, LanguageModule::Strict, &prog).unwrap();
    assert_eq!(report.answer, plain);
    assert_eq!(report.entries.len(), 3);
}

#[test]
fn composite_state_is_the_paper_product_shape() {
    // §6: Ans̄̄ = MS₂ → ((Ans × MS₁) × MS₂). With the typed cascade the
    // state type is literally the product (MS₁, MS₂).
    let prog = three_way_program();
    let composed = Compose::new(Profiler::new(), Tracer::new());
    let (_, (ms1, ms2)): (_, (_, _)) = eval_monitored(&prog, &composed).unwrap();
    assert_eq!(ms1.count(&Ident::new("fac")), 5);
    assert!(ms2.chan.render().contains("[FAC receives (4)]"));
}

#[test]
fn composition_order_does_not_matter_for_disjoint_monitors() {
    let prog = three_way_program();
    let pt = Compose::new(Profiler::new(), Tracer::new());
    let tp = Compose::new(Tracer::new(), Profiler::new());
    let (v1, (p1, t1)) = eval_monitored(&prog, &pt).unwrap();
    let (v2, (t2, p2)) = eval_monitored(&prog, &tp).unwrap();
    assert_eq!(v1, v2);
    assert_eq!(p1, p2);
    assert_eq!(t1.chan.render(), t2.chan.render());
}

#[test]
fn a_cascade_may_be_iterated_arbitrarily() {
    // "This process may be repeated an arbitrary number of times."
    let prog = three_way_program();
    let deep = Compose::new(
        Compose::new(Profiler::new(), Tracer::new()),
        Collecting::in_namespace(Namespace::new("collect")),
    );
    let (v, ((profile, trace), collected)) = eval_monitored(&prog, &deep).unwrap();
    assert_eq!(v, eval(&prog).unwrap());
    assert_eq!(profile.count(&Ident::new("mul")), 4);
    assert!(!trace.chan.lines().is_empty());
    assert_eq!(collected.values_of(&Ident::new("step")).len(), 4);
}
