//! PR 7 (S6): end-to-end smoke for the monitor server — many concurrent
//! producer sessions over the sharded in-process API and over real
//! socket framing, with one mid-run hot swap; every server verdict is
//! checked against the local offline checker on the same tape.

use std::sync::Arc;

use monitoring_semantics::monitor::{record_monitored, MemorySink, SharedSink, TapeEvent};
use monitoring_semantics::monitors::Profiler;
use monitoring_semantics::syntax::parse_expr;
use monitoring_semantics::tape::{
    serve_tcp, serve_unix, Client, MonitorServer, Response, ServerConfig, Verdict,
};
use monitoring_semantics::tspec::{SpecMonitor, TapeOutcome};

const NEG_SPEC: &str = "never(post(_) and value < 0)";
const ZERO_SPEC: &str = "never(post(_) and value = 0)";

/// Producer `i` violates `NEG_SPEC` when `i % 3 == 0`; every producer's
/// tape contains a zero, so the swapped-in `ZERO_SPEC` always convicts.
fn producer_program(i: u64) -> String {
    if i.is_multiple_of(3) {
        "{a}:(0 - 1) + ({b}:0 + {c}:2)".to_string()
    } else {
        "{a}:1 + ({b}:0 + {c}:2)".to_string()
    }
}

/// Records producer `i`'s event tape (with the trailing `done`).
fn producer_tape(i: u64) -> Vec<TapeEvent> {
    let mem = MemorySink::new();
    let sink = SharedSink::new(mem.clone());
    record_monitored(
        &parse_expr(&producer_program(i)).unwrap(),
        Profiler::new(),
        &sink,
    )
    .expect("producer programs are total");
    mem.take()
}

fn verdict(resp: Response) -> Verdict {
    match resp {
        Response::Verdict(v) => v,
        other => panic!("expected a verdict, got {other:?}"),
    }
}

/// The local ground truth: the offline checker over the same tape under
/// the session's *final* spec.
fn expected_accepted(tape: &[TapeEvent], spec: &str) -> (bool, Option<u64>) {
    let m = SpecMonitor::new("oracle", spec).unwrap();
    let check = m.check_tape(tape);
    match check.outcome {
        TapeOutcome::Satisfied => (true, check.earliest_violation),
        TapeOutcome::Violated(_) => (false, check.earliest_violation),
        TapeOutcome::Pending => panic!("producer tapes always carry done"),
    }
}

/// The ISSUE acceptance shape: ≥ 8 concurrent producers against one
/// server, one of them hot-swapping its spec mid-run, every close
/// verdict equal to the local offline check. A queue depth of 1 keeps
/// the bounded channels permanently full, so the run also exercises
/// backpressure (blocking sends) rather than sneaking through idle
/// queues.
#[test]
fn concurrent_producers_reach_the_offline_verdicts() {
    const PRODUCERS: u64 = 12;
    const SWAPPER: u64 = 4; // clean under NEG_SPEC, convicted by ZERO_SPEC

    let server = Arc::new(MonitorServer::start(ServerConfig {
        queue_depth: 1,
        ..ServerConfig::default()
    }));

    let handles: Vec<_> = (0..PRODUCERS)
        .map(|i| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let tape = producer_tape(i);
                assert_eq!(server.open(i, NEG_SPEC, false), Response::Ok);
                // Stream in single-event chunks to keep the shard
                // queues churning under the depth-1 bound.
                let (head, tail) = tape.split_at(tape.len() / 2);
                for ev in head {
                    verdict(server.events(i, vec![ev.clone()]));
                }
                if i == SWAPPER {
                    let v = verdict(server.swap(i, ZERO_SPEC));
                    assert!(!v.swap_truncated, "the window covers the whole prefix");
                }
                for ev in tail {
                    verdict(server.events(i, vec![ev.clone()]));
                }
                let v = verdict(server.close(i));
                let spec = if i == SWAPPER { ZERO_SPEC } else { NEG_SPEC };
                (i, tape, spec, v)
            })
        })
        .collect();

    for h in handles {
        let (i, tape, spec, v) = h.join().expect("producer thread");
        let (accepted, earliest) = expected_accepted(&tape, spec);
        assert_eq!(v.session, i);
        assert_eq!(v.ingested, tape.len() as u64, "producer {i} ingest count");
        assert_eq!(v.accepted, Some(accepted), "producer {i} verdict");
        assert_eq!(
            v.earliest_violation, earliest,
            "producer {i} earliest offset"
        );
        assert_eq!(v.violation.is_some(), !accepted, "producer {i} violation");
    }
    server.shutdown();
}

/// The same lifecycle through real TCP framing: open, stream, swap,
/// close — with two clients interleaved on one listener.
#[test]
fn tcp_round_trip_with_a_hot_swap() {
    let server = Arc::new(MonitorServer::start(ServerConfig::default()));
    let handle = serve_tcp(Arc::clone(&server), "127.0.0.1:0").expect("bind");
    let addr = handle.addr().expect("tcp listeners report their address");

    let mut alice = Client::connect_tcp(addr).expect("connect");
    let mut bob = Client::connect_tcp(addr).expect("connect");

    let tape = producer_tape(1); // clean under NEG_SPEC, zero inside
    assert_eq!(alice.open(101, NEG_SPEC, false).unwrap(), Response::Ok);
    assert_eq!(bob.open(102, NEG_SPEC, false).unwrap(), Response::Ok);

    // Event frames are fire-and-forget under the pipelined protocol;
    // the next synchronous request (swap or close) is the barrier that
    // proves they were folded.
    let (head, tail) = tape.split_at(tape.len() / 2);
    alice.events(101, head.to_vec()).unwrap();
    bob.events(102, tape.clone()).unwrap();

    // Alice swaps mid-run: history is re-judged under the new spec.
    // The swap verdict doubles as the barrier for the head frames.
    let v = verdict(alice.swap(101, ZERO_SPEC).unwrap());
    assert!(!v.swap_truncated);
    assert_eq!(v.ingested, head.len() as u64, "swap barriers the head");
    alice.events(101, tail.to_vec()).unwrap();

    let v = verdict(alice.close(101).unwrap());
    let (accepted, earliest) = expected_accepted(&tape, ZERO_SPEC);
    assert_eq!(v.accepted, Some(accepted));
    assert_eq!(v.earliest_violation, earliest);

    let v = verdict(bob.close(102).unwrap());
    let (accepted, _) = expected_accepted(&tape, NEG_SPEC);
    assert_eq!(v.accepted, Some(accepted));

    handle.stop();
    server.shutdown();
}

/// Unix-domain framing: one full session over a socket file.
#[test]
fn unix_socket_round_trip() {
    let path = std::env::temp_dir().join(format!("monsem-smoke-{}.sock", std::process::id()));
    let server = Arc::new(MonitorServer::start(ServerConfig::default()));
    let handle = serve_unix(Arc::clone(&server), &path).expect("bind unix socket");

    let mut client = Client::connect_unix(&path).expect("connect");
    let tape = producer_tape(3); // violates NEG_SPEC
    assert_eq!(client.open(7, NEG_SPEC, false).unwrap(), Response::Ok);
    client.events(7, tape.clone()).unwrap();
    let v = verdict(client.close(7).unwrap());
    assert_eq!(v.ingested, tape.len() as u64);
    let (accepted, earliest) = expected_accepted(&tape, NEG_SPEC);
    assert_eq!(v.accepted, Some(accepted));
    assert_eq!(v.earliest_violation, earliest);

    handle.stop();
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}
