//! PR 8: stream-algebra monitors. Differential properties:
//!
//! 1. **Incremental ≡ naive** — every windowed aggregate (`count`,
//!    `sum`, `avg`, `min`, `max` over event windows; the same plus
//!    `rate` over time windows) computed by the O(1)-per-event
//!    evaluator equals an O(n·k) recomputation from scratch at every
//!    step. The incremental machinery under test: ring buffers with
//!    invertible totals, monotonic deques for the extrema, and
//!    pane-quantized time windows.
//! 2. **Trigger ≡ tspec** — a pure event trigger fires exactly where
//!    the equivalent temporal spec convicts: first firing step equals
//!    `earliest_violation`, and "ever fired" equals "violated".
//! 3. **Live ≡ offline** — `StreamMonitor::check_tape` over a recorded
//!    tape reproduces the live run's trigger firings and final stream
//!    values.
//! 4. **Parallel ≡ sequential** — the stream monitor's `MergeMonitor`
//!    replay makes the parallel machine agree with the sequential one
//!    bit-for-bit on random `par` programs.

use monitoring_semantics::core::machine::EvalOptions;
use monitoring_semantics::core::{Env, EvalError, Value};
use monitoring_semantics::monitor::machine::eval_monitored_with;
use monitoring_semantics::monitor::{
    eval_parallel_with, record_monitored_with, MemorySink, MergeMonitor, Monitor, Outcome,
    ParOptions, SharedSink, TapePhase,
};
use monitoring_semantics::stream::{EvView, StreamMonitor, StreamState, PANES};
use monitoring_semantics::syntax::gen::{gen_program, sprinkle_annotations, GenConfig};
use monitoring_semantics::syntax::{Expr, Namespace};
use monitoring_semantics::tspec::{SpecMonitor, TapeOutcome};
use proptest::prelude::*;
use proptest::sample::select;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FUEL: u64 = 400_000;

/// One synthetic observed event: a `post` at `name` carrying `int`, at
/// `dt` milliseconds after the previous event.
#[derive(Debug, Clone)]
struct Ev {
    name: &'static str,
    int: Option<i64>,
    dt: u64,
}

/// A seeded random event sequence: names split between a matching and a
/// non-matching label, mostly-integer values, small time gaps.
fn gen_events(seed: u64, n: usize) -> Vec<Ev> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Ev {
            name: if rng.gen_bool(0.5) { "p" } else { "q" },
            int: rng.gen_bool(0.75).then(|| rng.gen_range(-100i64..100)),
            dt: rng.gen_range(0u64..=20),
        })
        .collect()
}

/// Feeds the events through the monitor with explicit (cumulative)
/// timestamps, capturing the stream values after every event.
fn run_events(m: &StreamMonitor, events: &[Ev]) -> (Vec<Vec<Option<i64>>>, StreamState) {
    let mut s = m.initial_state();
    let mut t = 0;
    let mut history = Vec::with_capacity(events.len());
    for e in events {
        t += e.dt;
        let view = EvView {
            phase: TapePhase::Post,
            name: e.name,
            int: e.int,
            unsorted: false,
        };
        s = match m.step_event(s, &view, None, Some(t)) {
            Outcome::Continue(s) | Outcome::Abort { state: s, .. } => s,
        };
        history.push(s.values.clone());
    }
    (history, s)
}

/// The naive aggregate over a slice of matching contributions:
/// `(int-or-hit)` pairs where `None` is a match without an integer.
fn naive(agg: &str, matching: &[Option<i64>], span_ms: u64) -> Option<i64> {
    let vals: Vec<i64> = matching.iter().filter_map(|c| *c).collect();
    match agg {
        "count" => Some(matching.len() as i64),
        "sum" => Some(vals.iter().fold(0i64, |a, v| a.wrapping_add(*v))),
        "avg" => (!vals.is_empty()).then(|| {
            vals.iter()
                .fold(0i64, |a, v| a.wrapping_add(*v))
                .wrapping_div(vals.len() as i64)
        }),
        "min" => vals.iter().min().copied(),
        "max" => vals.iter().max().copied(),
        "rate" => Some(((matching.len() as i64) * 1000) / span_ms as i64),
        other => panic!("unknown aggregate {other}"),
    }
}

/// The matching contributions among `events[..=i]` visible to an
/// event-count window of width `k` (`None` = whole trace): the window
/// slides over *observed* events, matching or not.
fn window_matches(events: &[Ev], i: usize, k: Option<usize>) -> Vec<Option<i64>> {
    let lo = k.map_or(0, |k| (i + 1).saturating_sub(k));
    events[lo..=i]
        .iter()
        .filter(|e| e.name == "p")
        .map(|e| e.int)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Property 1a: event-count windows (and cumulative aggregates) are
    /// exactly a naive recomputation at every step.
    #[test]
    fn event_windows_match_naive_recomputation(
        seed: u64,
        n in 1usize..80,
        k in 1usize..9,
        agg in select(vec!["count", "sum", "avg", "min", "max"]),
        windowed: bool,
    ) {
        let events = gen_events(seed, n);
        let window = if windowed { format!(" over window({k})") } else { String::new() };
        let m = StreamMonitor::new("t", &format!("stream s = {agg}(post(p)){window}")).unwrap();
        let (history, _) = run_events(&m, &events);
        for (i, values) in history.iter().enumerate() {
            let matching = window_matches(&events, i, windowed.then_some(k));
            prop_assert_eq!(
                values[0],
                naive(agg, &matching, 1),
                "{} over last {:?} at event {}: {:?}",
                agg, windowed.then_some(k), i, matching
            );
        }
    }

    /// Property 1b: time windows are exactly a naive recomputation under
    /// the documented pane quantization — a `window(d ms)` spec covers
    /// the current pane plus the previous PANES-1 panes of width
    /// ⌈d/PANES⌉, an effective span of at least `d`.
    #[test]
    fn time_windows_match_naive_pane_recomputation(
        seed: u64,
        n in 1usize..80,
        d in 1u64..200,
        agg in select(vec!["count", "sum", "avg", "min", "max", "rate"]),
    ) {
        let events = gen_events(seed, n);
        let m = StreamMonitor::new("t", &format!("stream s = {agg}(post(p)) over window({d} ms)"))
            .unwrap();
        let (history, _) = run_events(&m, &events);
        let width = d.div_ceil(PANES as u64).max(1);
        let span = width * PANES as u64;
        let mut t = 0;
        let mut times = Vec::with_capacity(events.len());
        for e in &events {
            t += e.dt;
            times.push(t);
        }
        for (i, values) in history.iter().enumerate() {
            let idx = times[i] / width;
            let lo_pane = idx.saturating_sub(PANES as u64 - 1);
            let matching: Vec<Option<i64>> = events[..=i]
                .iter()
                .zip(&times)
                .filter(|(e, te)| e.name == "p" && **te / width >= lo_pane)
                .map(|(e, _)| e.int)
                .collect();
            prop_assert_eq!(
                values[0],
                naive(agg, &matching, span),
                "{} over window({} ms) (pane width {}) at event {}",
                agg, d, width, i
            );
        }
    }

    /// Property 2: a pure event trigger is the rising-edge view of the
    /// equivalent temporal spec — it first fires exactly at the step
    /// `never(…)` convicts, and fires at all iff the spec is violated.
    #[test]
    fn event_triggers_agree_with_the_equivalent_tspec(seed: u64, density in 100u16..=1000) {
        let program = annotated_program(seed, density);
        let tspec = SpecMonitor::new("never-neg", "never(post(_) and value < 0)")
            .unwrap()
            .in_namespace(Namespace::new("ns"));
        let (events, _) = record(&program, tspec.clone());
        let tcheck = tspec.check_tape(&events);

        let stream = StreamMonitor::new("neg", "trigger neg = post(_) and value < 0")
            .unwrap()
            .in_namespace(Namespace::new("ns"));
        let scheck = stream.check_tape(&events);

        let violated = matches!(tcheck.outcome, TapeOutcome::Violated(_));
        prop_assert_eq!(
            scheck.fired_total > 0,
            violated,
            "fired iff the temporal spec is violated"
        );
        prop_assert_eq!(
            scheck.firings.first().and_then(|f| f.step),
            tcheck.earliest_violation,
            "the first firing is the earliest violation"
        );
    }

    /// Property 3: offline checking reproduces the live run — same
    /// trigger firings (name and position), same final stream values.
    #[test]
    fn offline_check_matches_the_live_run(seed: u64, density in 100u16..=1000) {
        let program = annotated_program(seed, density);
        let m = StreamMonitor::new(
            "slo",
            "stream negs = count(value < 0) over window(5)\n\
             stream all = count(post(_))\n\
             trigger burst = negs >= 2\n\
             trigger deep = all > 40",
        )
        .unwrap()
        .in_namespace(Namespace::new("ns"));
        let (events, result) = record(&program, m.clone());
        if let Ok((_, live)) = result {
            let check = m.check_tape(&events);
            let keys = |fs: &[monitoring_semantics::stream::Firing]| -> Vec<(String, u64)> {
                fs.iter().map(|f| (f.trigger.clone(), f.at)).collect()
            };
            prop_assert_eq!(keys(&live.firings), keys(&check.firings));
            prop_assert_eq!(live.fired_total, check.fired_total);
            prop_assert_eq!(live.values, check.state.values);
            prop_assert_eq!(live.events, check.state.events);
        }
    }

    /// Property 4: the parallel machine agrees with the sequential one
    /// bit-for-bit under a stream monitor — the shard-tape replay merge
    /// is exact.
    #[test]
    fn parallel_stream_monitor_matches_sequential(
        seed: u64,
        density in 0u16..300,
        threads in 1usize..5,
    ) {
        let program = par_program(seed, density);
        let m = StreamMonitor::new(
            "win",
            "stream lo = min(post(_)) over window(3)\n\
             stream hi = max(post(_)) over window(3)\n\
             stream n = count(post(_)) over window(8)\n\
             stream spread = hi - lo\n\
             trigger wide = spread > 50",
        )
        .unwrap()
        .in_namespace(Namespace::new("ns"));
        assert_parallel_matches_sequential(&program, &m, threads)?;
    }
}

fn annotated_program(seed: u64, density: u16) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let plain = gen_program(&mut rng, &GenConfig::default());
    sprinkle_annotations(
        &mut rng,
        &plain,
        &Namespace::new("ns"),
        f64::from(density) / 1000.0,
    )
}

fn par_program(seed: u64, density: u16) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = GenConfig {
        par_chance: 0.35,
        ..GenConfig::default()
    };
    let plain = gen_program(&mut rng, &cfg);
    sprinkle_annotations(
        &mut rng,
        &plain,
        &Namespace::new("ns"),
        f64::from(density) / 1000.0,
    )
}

type Recorded<S> = (
    Vec<monitoring_semantics::monitor::TapeEvent>,
    Result<(Value, S), EvalError>,
);

/// Records `program` under `monitor`, returning the tape and the run's
/// result.
fn record<M: Monitor + Clone>(program: &Expr, monitor: M) -> Recorded<M::State> {
    let mem = MemorySink::new();
    let sink = SharedSink::new(mem.clone());
    let result = record_monitored_with(
        program,
        &Env::empty(),
        monitor,
        &sink,
        &EvalOptions::with_fuel(FUEL),
    );
    (mem.take(), result)
}

fn assert_parallel_matches_sequential<M>(
    program: &Expr,
    monitor: &M,
    threads: usize,
) -> Result<(), TestCaseError>
where
    M: MergeMonitor + Sync,
    M::State: Send + PartialEq + std::fmt::Debug,
{
    let seq = eval_monitored_with(
        program,
        &Env::empty(),
        monitor,
        monitor.initial_state(),
        &EvalOptions::with_fuel(FUEL),
    );
    let par = eval_parallel_with(
        program,
        &Env::empty(),
        monitor,
        monitor.initial_state(),
        &ParOptions {
            threads,
            eval: EvalOptions::with_fuel(FUEL),
        },
    );
    let fuel =
        |r: &Result<(Value, M::State), EvalError>| matches!(r, Err(EvalError::FuelExhausted));
    if !fuel(&seq) && !fuel(&par) {
        prop_assert_eq!(seq, par, "program: {}", program);
    }
    Ok(())
}
