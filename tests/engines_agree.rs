//! Cross-engine agreement: the defunctionalized machine, the
//! boxed-closure CPS transliteration, and the compiled engine implement
//! the *same* standard semantics; the lazy module agrees on values for
//! programs where both terminate.

use monitoring_semantics::core::closure_cps::eval_cps_with;
use monitoring_semantics::core::lazy::eval_lazy_with;
use monitoring_semantics::core::machine::{eval_with, EvalOptions};
use monitoring_semantics::core::{Env, EvalError};
use monitoring_semantics::pe::engine::compile;
use monitoring_semantics::syntax::gen::{gen_program, GenConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FUEL: u64 = 400_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn machine_cps_and_compiled_agree(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let program = gen_program(&mut rng, &GenConfig::default());
        let opts = EvalOptions::with_fuel(FUEL);

        let machine = eval_with(&program, &Env::empty(), &opts);
        let cps = eval_cps_with(&program, &Env::empty(), &opts);
        let compiled = compile(&program).expect("pure program compiles");
        let engine = compiled
            .run_monitored(&monitoring_semantics::monitor::IdentityMonitor, &opts)
            .map(|(v, ())| v);

        // Step accounting differs per engine, so fuel exhaustion is the
        // only allowed disagreement.
        let fuel = |r: &Result<_, EvalError>| matches!(r, Err(EvalError::FuelExhausted));
        if !fuel(&machine) && !fuel(&cps) {
            prop_assert_eq!(&machine, &cps);
        }
        if !fuel(&machine) && !fuel(&engine) {
            prop_assert_eq!(&machine, &engine);
        }
    }

    #[test]
    fn lazy_agrees_on_successful_strict_runs(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let program = gen_program(&mut rng, &GenConfig::default());
        let opts = EvalOptions::with_fuel(FUEL);

        let strict = eval_with(&program, &Env::empty(), &opts);
        let lazy = eval_lazy_with(&program, &Env::empty(), &opts);
        // Call-by-need may avoid errors strict evaluation hits (an unused
        // failing argument), so agreement is one-sided: when the strict
        // run succeeds, the lazy run must produce the same value.
        if let Ok(v) = &strict {
            if !matches!(lazy, Err(EvalError::FuelExhausted)) {
                prop_assert_eq!(&lazy, &Ok(v.clone()));
            }
        }
    }

    #[test]
    fn imperative_module_agrees_on_pure_programs(seed: u64) {
        use monitoring_semantics::core::imperative::eval_imperative_with;
        let mut rng = StdRng::seed_from_u64(seed);
        let program = gen_program(&mut rng, &GenConfig::default());
        let opts = EvalOptions::with_fuel(FUEL);

        let pure = eval_with(&program, &Env::empty(), &opts);
        let imperative =
            eval_imperative_with(&program, &Env::empty(), &opts).map(|(v, _)| v);
        let fuel = |r: &Result<_, EvalError>| matches!(r, Err(EvalError::FuelExhausted));
        if !fuel(&pure) && !fuel(&imperative) {
            prop_assert_eq!(pure, imperative);
        }
    }
}
