//! Fuel accounting, differentially: the interpreter (`core::machine`) and
//! the compiled engine (`pe::engine`) decrement fuel once per transition
//! and agree on the *invariant* even though they disagree on the *count*
//! (the compiled engine fuses `Prim1`/`Prim2`/`CallRec` into single
//! transitions, so it takes at most as many steps as the interpreter on
//! the same program — the intended divergence documented in
//! `monsem_monitor::soundness`).
//!
//! The shared invariant, pinned here for both engines on every sample
//! program: a run that takes `steps` transitions succeeds with exactly
//! `fuel = steps` and exhausts with `fuel = steps − 1`.

use monitoring_semantics::core::machine::{eval_stats, eval_with, EvalOptions};
use monitoring_semantics::core::{Env, EvalError};
use monitoring_semantics::monitor::machine::eval_monitored_stats_with;
use monitoring_semantics::monitor::{eval_parallel_with, IdentityMonitor, ParOptions};
use monitoring_semantics::pe::engine::compile;
use monitoring_semantics::syntax::parse_expr;

/// Pure sample programs both engines accept (no imperative constructs).
const PROGRAMS: &[&str] = &[
    "1 + 2",
    "letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac 10",
    "letrec fib = lambda n. if n < 2 then n else (fib (n-1)) + (fib (n-2)) in fib 12",
    "let twice = lambda f. lambda x. f (f x) in twice (lambda n. n * 2) 5",
    "letrec sum = lambda l. if null? l then 0 else (hd l) + (sum (tl l)) in sum [1,2,3]",
    "letrec even = lambda n. if n = 0 then true else odd (n - 1) \
     and odd = lambda n. if n = 0 then false else even (n - 1) in even 9",
    "if true then 1 else 2",
    "(lambda x. x * x) 7",
];

#[test]
fn interpreter_fuel_equals_its_step_count() {
    for src in PROGRAMS {
        let e = parse_expr(src).unwrap();
        let (result, stats) = eval_stats(&e, &Env::empty(), &EvalOptions::default());
        let expected = result.unwrap();
        assert_eq!(
            eval_with(&e, &Env::empty(), &EvalOptions::with_fuel(stats.steps)),
            Ok(expected),
            "fuel = steps must succeed ({src})"
        );
        assert_eq!(
            eval_with(&e, &Env::empty(), &EvalOptions::with_fuel(stats.steps - 1)),
            Err(EvalError::FuelExhausted),
            "fuel = steps - 1 must exhaust ({src})"
        );
    }
}

#[test]
fn compiled_engine_fuel_equals_its_step_count() {
    for src in PROGRAMS {
        let e = parse_expr(src).unwrap();
        let p = compile(&e).unwrap();
        let (expected, (), stats) = p
            .run_monitored_stats(&IdentityMonitor, &EvalOptions::default())
            .unwrap();
        assert_eq!(
            p.run_monitored(&IdentityMonitor, &EvalOptions::with_fuel(stats.steps))
                .map(|(v, ())| v),
            Ok(expected),
            "fuel = steps must succeed ({src})"
        );
        assert_eq!(
            p.run_monitored(&IdentityMonitor, &EvalOptions::with_fuel(stats.steps - 1)),
            Err(EvalError::FuelExhausted),
            "fuel = steps - 1 must exhaust ({src})"
        );
    }
}

#[test]
fn compiled_engine_never_takes_more_steps_than_the_interpreter() {
    for src in PROGRAMS {
        let e = parse_expr(src).unwrap();
        let (interpreted, interp_stats) = eval_stats(&e, &Env::empty(), &EvalOptions::default());
        let p = compile(&e).unwrap();
        let (compiled, (), pe_stats) = p
            .run_monitored_stats(&IdentityMonitor, &EvalOptions::default())
            .unwrap();
        assert_eq!(interpreted, Ok(compiled), "engines agree on {src}");
        assert!(
            pe_stats.steps <= interp_stats.steps,
            "fused transitions can only shrink the step count \
             ({src}: compiled {} vs interpreted {})",
            pe_stats.steps,
            interp_stats.steps
        );
    }
}

#[test]
fn parallel_fuel_is_charged_globally_at_the_join() {
    // PR 7 bugfix (S3): shard step counts are charged back to the parent
    // at the join, so the fork-join machine draws on ONE fuel budget.
    // Under the historical per-shard accounting every shard received the
    // full remaining budget, so four shards could jointly spend ~4× the
    // bound — the starved case below would (wrongly) have succeeded.
    let prog = parse_expr(
        "letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) \
         in par(fac 10, fac 10, fac 10, fac 10)",
    )
    .unwrap();
    let monitor = IdentityMonitor;
    // `IdentityMonitor::State` is `()`, so the initial state is passed
    // literally below.
    let (_, _, seq_steps) =
        eval_monitored_stats_with(&prog, &Env::empty(), &monitor, (), &EvalOptions::default())
            .unwrap();

    let par_opts = |fuel: u64| ParOptions {
        threads: 4,
        eval: EvalOptions::with_fuel(fuel),
    };

    // The parallel driver's spine transitions are uncharged, so the
    // sequential step count is always a sufficient global budget.
    eval_parallel_with(&prog, &Env::empty(), &monitor, (), &par_opts(seq_steps))
        .expect("fuel = sequential steps must suffice in parallel");

    // A third of the sequential budget still covers any single shard
    // (each shard is ~a quarter of the work), so per-shard accounting
    // would pass — global accounting must exhaust.
    assert_eq!(
        eval_parallel_with(&prog, &Env::empty(), &monitor, (), &par_opts(seq_steps / 3)),
        Err(EvalError::FuelExhausted),
        "four shards cannot jointly overdraw a global budget"
    );
}

#[test]
fn both_engines_exhaust_identically_under_a_starved_budget() {
    // With fuel far below either step count, both report FuelExhausted —
    // fuel never converts a diverging program into an answer or vice versa.
    let e = parse_expr("letrec loop = lambda x. loop x in loop 0").unwrap();
    let starved = EvalOptions::with_fuel(1_000);
    assert_eq!(
        eval_with(&e, &Env::empty(), &starved),
        Err(EvalError::FuelExhausted)
    );
    assert_eq!(
        compile(&e)
            .unwrap()
            .run_monitored(&IdentityMonitor, &starved),
        Err(EvalError::FuelExhausted)
    );
}
