//! Partial-evaluation correctness (the §9.1 pipeline): specialization and
//! instrumentation preserve behaviour on generated programs.

use monitoring_semantics::core::machine::{eval_with, EvalOptions};
use monitoring_semantics::core::{Env, EvalError, Value};
use monitoring_semantics::monitor::machine::eval_monitored_with;
use monitoring_semantics::monitor::Monitor;
use monitoring_semantics::pe::instrument::{instrument, step_counter};
use monitoring_semantics::pe::specialize::{specialize, SpecializeOptions};
use monitoring_semantics::syntax::gen::{gen_program, sprinkle_annotations, GenConfig};
use monitoring_semantics::syntax::{Annotation, Expr, Namespace};

/// Generated programs can compose recursive templates into large static
/// computations (`fib (2^5)`…), so the property tests run the specializer
/// with a small unfold budget: correctness must hold at *any* budget.
fn small_budget() -> SpecializeOptions {
    SpecializeOptions {
        max_unfolds: 400,
        ..SpecializeOptions::default()
    }
}

/// The specializer's unfold chain recurses on the Rust stack (see its
/// module docs); debug-build frames are fat, so run each case on a
/// dedicated thread with room to spare. The closure returns `Ok(())` or
/// a failure description (values inside are not `Send`).
fn on_big_stack(f: impl FnOnce() -> Result<(), String> + Send + 'static) -> Result<(), String> {
    std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("no panic")
}
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FUEL: u64 = 800_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Residual programs compute the same result (value or error) as the
    /// original — fuel aside, since the residual takes fewer steps.
    #[test]
    fn specialization_preserves_results(seed: u64) {
        let outcome = on_big_stack(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let program = gen_program(&mut rng, &GenConfig::default());
            let residual = specialize(&program, &small_budget());
            let opts = EvalOptions::with_fuel(FUEL);
            let original = eval_with(&program, &Env::empty(), &opts);
            let specialized = eval_with(&residual, &Env::empty(), &opts);
            let fuel = |r: &Result<Value, EvalError>| matches!(r, Err(EvalError::FuelExhausted));
            if !fuel(&original) && !fuel(&specialized) && original != specialized {
                return Err(format!(
                    "original {original:?} != specialized {specialized:?}\nresidual: {residual}"
                ));
            }
            Ok(())
        });
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }

    /// Specialization also preserves *monitoring*: annotations survive,
    /// and a step counter sees the same events on the residual program
    /// whenever no folding removed inner computation around them. We
    /// check the stronger end-to-end property on the answer plus the
    /// invariant that annotation names survive verbatim.
    #[test]
    fn specialization_keeps_annotations(seed: u64, density in 50u16..400) {
        let outcome = on_big_stack(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let plain = gen_program(&mut rng, &GenConfig::default());
            let program = sprinkle_annotations(
                &mut rng,
                &plain,
                &Namespace::anonymous(),
                f64::from(density) / 1000.0,
            );
            let residual = specialize(&program, &small_budget());
            let before: std::collections::BTreeSet<String> =
                program.annotations().iter().map(|a| a.to_string()).collect();
            let after: std::collections::BTreeSet<String> =
                residual.annotations().iter().map(|a| a.to_string()).collect();
            // Annotations may be dropped only with dead code (a branch the
            // specializer proved unreachable); they are never invented.
            if !after.is_subset(&before) {
                return Err(format!(
                    "invented annotations: {:?}",
                    after.difference(&before).collect::<Vec<_>>()
                ));
            }
            Ok(())
        });
        prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
    }

    /// The instrumented (state-passing) program computes the same answer
    /// as the monitored interpreter, and the same monitor state.
    #[test]
    fn instrumentation_agrees_with_the_monitored_interpreter(seed: u64, density in 0u16..400) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plain = gen_program(&mut rng, &GenConfig::default());
        let program = sprinkle_annotations(
            &mut rng,
            &plain,
            &Namespace::anonymous(),
            f64::from(density) / 1000.0,
        );

        /// The Rust-side step counter matching `pe::instrument::step_counter`.
        struct Count;
        impl Monitor for Count {
            type State = i64;
            fn name(&self) -> &str { "count" }
            fn accepts(&self, ann: &Annotation) -> bool {
                matches!(ann.kind, monitoring_semantics::syntax::AnnKind::Label(_))
            }
            fn initial_state(&self) -> i64 { 0 }
            fn pre(
                &self,
                _: &Annotation,
                _: &Expr,
                _: &monitoring_semantics::monitor::Scope<'_>,
                n: i64,
            ) -> i64 {
                n + 1
            }
        }

        let opts = EvalOptions::with_fuel(FUEL);
        let monitored =
            eval_monitored_with(&program, &Env::empty(), &Count, 0, &opts);
        let instrumented = instrument(&program, &step_counter());
        let translated = eval_with(&instrumented, &Env::empty(), &opts);

        match (monitored, translated) {
            (Err(EvalError::FuelExhausted), _) | (_, Err(EvalError::FuelExhausted)) => {}
            (Ok((v, n)), Ok(Value::Pair(tv, tn))) => {
                prop_assert_eq!(v, (*tv).clone());
                prop_assert_eq!(Value::Int(n), (*tn).clone());
            }
            (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
            (a, b) => prop_assert!(false, "monitored: {:?}, instrumented: {:?}", a, b),
        }
    }
}

/// Level 3 on the flagship example: `pow` with a static exponent unrolls
/// to straight-line code and still computes powers.
#[test]
fn pow_specialization_is_correct_for_every_base() {
    let program = monitoring_semantics::syntax::parse_expr(
        "letrec pow = lambda b. lambda e. if e = 0 then 1 else b * (pow b (e - 1)) \
         in pow base 16",
    )
    .unwrap();
    let residual = specialize(&program, &SpecializeOptions::default());
    assert!(!residual.to_string().contains("letrec"));
    for base in [-3i64, 0, 1, 2, 5] {
        let run = Expr::let_("base", Expr::int(base), residual.clone());
        assert_eq!(
            eval_with(&run, &Env::empty(), &EvalOptions::default()),
            Ok(Value::Int(base.pow(16)))
        );
    }
}
