//! Experiment E11 — the §9.2 environment:
//! `evaluate (profile & debug & strict) prog`, across the three language
//! modules, with the toolbox constructors.

use monitoring_semantics::core::Value;
use monitoring_semantics::monitor::session::{evaluate, LanguageModule, Session, SessionError};
use monitoring_semantics::monitors::debugger::Command;
use monitoring_semantics::monitors::toolbox;
use monitoring_semantics::syntax::{parse_expr, Ident};

/// The paper's one-liner, transliterated:
/// `evaluate (profile & debug & strict) prog`.
#[test]
fn evaluate_profile_and_debug_and_strict() {
    let prog = parse_expr(
        "letrec fac = lambda x. {fac}:({bp/stop}:if x = 0 then 1 else x * (fac (x - 1))) \
         in fac 4",
    )
    .unwrap();
    let tools = toolbox::profile()
        & toolbox::debug(vec![
            Command::Where,
            Command::Print(Ident::new("x")),
            Command::Continue,
            Command::Disable,
        ]);
    let report = evaluate(tools, LanguageModule::Strict, &prog).unwrap();
    assert_eq!(report.answer, Value::Int(24));
    assert_eq!(report.rendered_of("profiler"), Some("[fac ↦ 5]"));
    let transcript = report.rendered_of("debugger").unwrap();
    assert!(transcript.contains("stopped at {stop}"));
    assert!(transcript.contains("x = 4"));
    assert!(transcript.contains("breakpoints disabled"));
}

/// Every language module runs the same pure monitored program and reports
/// the same answer and profile.
#[test]
fn language_modules_agree_on_monitored_pure_programs() {
    let prog = parse_expr(
        "letrec fib = lambda n. {fib}:if n < 2 then n else (fib (n-1)) + (fib (n-2)) \
         in fib 10",
    )
    .unwrap();
    let mut profiles = Vec::new();
    for lang in [
        LanguageModule::Strict,
        LanguageModule::Lazy,
        LanguageModule::Imperative,
    ] {
        let report = Session::new()
            .language(lang)
            .monitor(toolbox::profile())
            .run_expr(&prog)
            .unwrap();
        assert_eq!(report.answer, Value::Int(55), "{lang:?}");
        profiles.push(report.rendered_of("profiler").unwrap().to_string());
    }
    // Strict and imperative evaluate identically; call-by-need takes the
    // same call tree here (every argument is demanded).
    assert_eq!(profiles[0], profiles[2]);
    assert_eq!(profiles[0], profiles[1]);
}

/// The imperative module supports the full §9.2 surface: loops and
/// assignment, still monitored and still answer-preserving.
#[test]
fn imperative_programs_with_watchpoints() {
    let prog = parse_expr(
        "let sum = 0 in let i = 0 in \
         (while i < 5 do {watch/tick}:(sum := sum + i); i := i + 1 end); sum",
    )
    .unwrap();
    let report = Session::new()
        .language(LanguageModule::Imperative)
        .monitor(toolbox::watch("sum"))
        .run_expr(&prog)
        .unwrap();
    assert_eq!(report.answer, Value::Int(10));
    let log = report.rendered_of("watchpoint").unwrap();
    // sum takes values 0,1,3,6,10 across the loop.
    for v in ["sum = 0", "sum = 1", "sum = 3", "sum = 6", "sum = 10"] {
        assert!(log.contains(v), "missing `{v}` in:\n{log}");
    }
}

#[test]
fn lazy_module_skips_events_in_unused_bindings() {
    let prog = parse_expr("(lambda x. 7) ({never}:(1 + 2))").unwrap();
    let strict = Session::new()
        .monitor(toolbox::profile())
        .run_expr(&prog)
        .unwrap();
    let lazy = Session::new()
        .language(LanguageModule::Lazy)
        .monitor(toolbox::profile())
        .run_expr(&prog)
        .unwrap();
    assert_eq!(strict.answer, lazy.answer);
    assert_eq!(strict.rendered_of("profiler"), Some("[never ↦ 1]"));
    assert_eq!(lazy.rendered_of("profiler"), Some("[]"));
}

#[test]
fn session_surfaces_evaluation_errors() {
    let err = Session::new().run("1 / 0").unwrap_err();
    assert!(matches!(err, SessionError::Eval(_)));
    assert_eq!(err.to_string(), "division by zero");
}
