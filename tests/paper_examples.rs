//! Experiments E1–E5: every literal output in the paper's §5 and §8,
//! reproduced exactly (see DESIGN.md's experiment index).

use monitoring_semantics::core::{programs, Value};
use monitoring_semantics::monitor::machine::eval_monitored;
use monitoring_semantics::monitor::Monitor;
use monitoring_semantics::monitors::collecting::Collecting;
use monitoring_semantics::monitors::demon::UnsortedDemon;
use monitoring_semantics::monitors::profiler::{AbCounts, AbProfiler, Profiler};
use monitoring_semantics::monitors::tracer::Tracer;
use monitoring_semantics::syntax::Ident;

/// §5: "The profiling information gathered by monitoring this program
/// with the above monitor would be σ = ⟨1, 5⟩."
#[test]
fn e1_ab_profiler_fac5() {
    let (answer, sigma) = eval_monitored(&programs::fac_ab(5), &AbProfiler).unwrap();
    assert_eq!(answer, Value::Int(120));
    assert_eq!(sigma, AbCounts { a: 1, b: 5 });
}

/// §8: "The profiler semantics would provide the following information in
/// the counter environment: [fac ↦ 4, mul ↦ 3]".
#[test]
fn e2_profiler_fac3() {
    let p = Profiler::new();
    let (answer, sigma) = eval_monitored(&programs::fac_mul_profiled(3), &p).unwrap();
    assert_eq!(answer, Value::Int(6));
    assert_eq!(sigma.count(&Ident::new("fac")), 4);
    assert_eq!(sigma.count(&Ident::new("mul")), 3);
    assert_eq!(p.render_state(&sigma), "[fac ↦ 4, mul ↦ 3]");
}

/// §8: the tracer's indented transcript for `fac 3` via `mul`.
#[test]
fn e3_tracer_fac3_transcript() {
    let t = Tracer::new();
    let (answer, sigma) = eval_monitored(&programs::fac_mul_traced(3), &t).unwrap();
    assert_eq!(answer, Value::Int(6));
    let expected = "\
[FAC receives (3)]
|    [FAC receives (2)]
|    |    [FAC receives (1)]
|    |    |    [FAC receives (0)]
|    |    |    [FAC returns 1]
|    |    |    [MUL receives (1 1)]
|    |    |    [MUL returns 1]
|    |    [FAC returns 1]
|    |    [MUL receives (2 1)]
|    |    [MUL returns 2]
|    [FAC returns 2]
|    [MUL receives (3 2)]
|    [MUL returns 6]
[FAC returns 6]";
    assert_eq!(t.render_state(&sigma), expected);
}

/// §8: "The demon returns the following information in its state:
/// σ = {l1, l3}".
#[test]
fn e4_demon_inclist() {
    let d = UnsortedDemon::new();
    let (answer, sigma) = eval_monitored(&programs::inclist_demon(), &d).unwrap();
    // inclist reverses while incrementing: the final list is [103, 13, 4].
    assert_eq!(
        answer,
        Value::list([Value::Int(103), Value::Int(13), Value::Int(4)])
    );
    let names: Vec<&str> = sigma.iter().map(|i| i.as_str()).collect();
    assert_eq!(names, vec!["l1", "l3"]);
}

/// §8: "The collecting monitor provides the following information in its
/// final state: [test ↦ {True, False}, n ↦ {1, 2, 3}]".
#[test]
fn e5_collecting_fac3() {
    let c = Collecting::new();
    let (answer, sigma) = eval_monitored(&programs::collecting_fac(3), &c).unwrap();
    assert_eq!(answer, Value::Int(6));
    assert_eq!(
        sigma.values_of(&Ident::new("test")),
        &[Value::Bool(false), Value::Bool(true)]
    );
    assert_eq!(
        sigma.values_of(&Ident::new("n")),
        &[Value::Int(1), Value::Int(2), Value::Int(3)]
    );
}

/// §3.1: the string answer algebra maps the final answer as the paper
/// shows ("The result is: …").
#[test]
fn string_answer_algebra() {
    use monitoring_semantics::core::answer::{AnswerAlgebra, StringAnswer};
    use monitoring_semantics::core::machine::eval;
    let v = eval(&programs::fac(5)).unwrap();
    assert_eq!(StringAnswer.phi(v).unwrap(), "The result is: 120");
}
