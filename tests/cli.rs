//! End-to-end tests of the `monsem` command-line tool and the REPL
//! binary, via their real executables.

use std::io::Write;
use std::process::{Command, Stdio};

fn monsem(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_monsem"))
        .args(args)
        .output()
        .expect("monsem runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn run_evaluates_programs() {
    let (stdout, _, ok) = monsem(&[
        "run",
        "-e",
        "letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac 5",
    ]);
    assert!(ok);
    assert_eq!(stdout.trim(), "120");
}

#[test]
fn run_supports_language_modules() {
    let (stdout, _, ok) = monsem(&[
        "run",
        "--module",
        "imperative",
        "-e",
        "let x = 0 in while x < 7 do x := x + 1 end; x",
    ]);
    assert!(ok);
    assert_eq!(stdout.trim(), "7");

    let (stdout, _, ok) = monsem(&["run", "--module", "lazy", "-e", "(lambda u. 9) (1 / 0)"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "9");
}

#[test]
fn trace_prints_the_transcript() {
    let (stdout, _, ok) = monsem(&[
        "trace",
        "-e",
        "letrec fac = lambda x. if x = 0 then 1 else x * (fac (x - 1)) in fac 2",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("[FAC receives (2)]"), "{stdout}");
    assert!(stdout.trim_end().ends_with("answer: 2"), "{stdout}");
}

#[test]
fn profile_reports_counts() {
    let (stdout, _, ok) = monsem(&[
        "profile",
        "-e",
        "letrec mul = lambda x. lambda y. x*y in \
         letrec fac = lambda x. if (x=0) then 1 else mul x (fac (x-1)) in fac 3",
    ]);
    assert!(ok);
    assert!(stdout.contains("[fac ↦ 4, mul ↦ 3]"), "{stdout}");
}

#[test]
fn specialize_prints_residuals_and_values() {
    let (stdout, stderr, ok) = monsem(&[
        "specialize",
        "-e",
        "letrec pow = lambda b. lambda e. if e = 0 then 1 else b * (pow b (e - 1)) \
         in pow base e",
        "--input",
        "e=4",
    ]);
    assert!(ok);
    assert_eq!(stdout.trim(), "base * (base * (base * (base * 1)))");
    assert!(stderr.contains("unfolds"), "{stderr}");
}

#[test]
fn bta_renders_two_level_terms() {
    let (stdout, stderr, ok) = monsem(&["bta", "-e", "n + (2 * 3)"]);
    assert!(ok);
    assert!(stdout.contains("«n»"), "{stdout}");
    assert!(stderr.contains("static points"), "{stderr}");
}

#[test]
fn parse_errors_carry_line_and_column() {
    let (_, stderr, ok) = monsem(&["run", "-e", "if x\nthen"]);
    assert!(!ok);
    assert!(stderr.contains("parse error at 2:5"), "{stderr}");
}

#[test]
fn unknown_commands_fail_with_usage() {
    let (_, stderr, ok) = monsem(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn repl_session_end_to_end() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_monsem-repl"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("repl starts");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            b"def double = lambda x. x * 2\n\
              double 21\n\
              sum (map double (range 1 3))\n\
              :quit\n",
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("42"), "{stdout}");
    assert!(stdout.contains("12"), "{stdout}"); // 2 + 4 + 6
    assert!(stdout.contains("bye"), "{stdout}");
}

/// `monsem serve --io-backend reactor` comes up, names its backend in
/// the listen banner, serves a real session over TCP, and drains
/// cleanly on `stop`.
#[cfg(target_os = "linux")]
#[test]
fn serve_reactor_backend_smoke() {
    use monitoring_semantics::core::Value;
    use monitoring_semantics::monitor::TapeEvent;
    use monitoring_semantics::syntax::Annotation;
    use monitoring_semantics::tape::{Client, Response};
    use std::io::BufRead;

    let mut child = Command::new(env!("CARGO_BIN_EXE_monsem"))
        .args([
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--io-backend",
            "reactor",
            "--io-threads",
            "2",
        ])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("monsem serve starts");

    let mut stderr = std::io::BufReader::new(child.stderr.take().unwrap());
    let mut banner = String::new();
    stderr.read_line(&mut banner).unwrap();
    assert!(
        banner.contains("listening on tcp") && banner.contains("reactor:2"),
        "{banner}"
    );
    let addr = banner
        .split("tcp ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("banner carries the bound address");

    let mut client = Client::connect_tcp(addr).expect("connect to served address");
    assert!(matches!(
        client
            .open(1, "never(post(_) and value < 0)", false)
            .unwrap(),
        Response::Ok
    ));
    let events: Vec<TapeEvent> = (0..10)
        .map(|s| {
            TapeEvent::post(
                &Annotation::label("p"),
                &Value::Int(if s == 7 { -1 } else { 1 }),
                s,
            )
        })
        .chain(std::iter::once(TapeEvent::done(10)))
        .collect();
    client.send_batch(1, &events).unwrap();
    let resp = client.close(1).unwrap();
    match resp {
        Response::Verdict(v) => {
            assert_eq!(v.accepted, Some(false), "{v:?}");
            assert_eq!(v.earliest_violation, Some(7), "{v:?}");
        }
        other => panic!("expected verdict, got {other:?}"),
    }
    drop(client);

    child.stdin.as_mut().unwrap().write_all(b"stop\n").unwrap();
    let status = child.wait().unwrap();
    assert!(status.success());
}
