//! PR 10: the readiness-driven I/O reactor, differentially tested
//! against the threaded backend.
//!
//! Four concerns, each a satellite of the reactor tentpole:
//!
//! * **Byte dribbles** — frames split at arbitrary byte boundaries must
//!   decode identically whether they arrive whole or one byte at a
//!   time, both through [`FrameDecoder`] directly (proptest over random
//!   frame contents and chunk sizes) and over a real socket against
//!   both backends, with close verdicts checked against the offline
//!   oracle.
//! * **Fd hygiene** — N connect/disconnect cycles leave the
//!   `/proc/self/fd` count where it started: no leaked sockets, dup'd
//!   reader handles, epoll instances, or eventfds.
//! * **Sticky client faults** — a broken connection errors the *next*
//!   `events()`/control call, and every call after that fails
//!   immediately with the original error kind.
//! * **Parking backpressure** — depth-1 shard queues under concurrent
//!   producers force the reactor to park read interest; verdicts must
//!   still match the oracle exactly (no dropped or reordered frames).

#![cfg(target_os = "linux")]

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use monitoring_semantics::core::Value;
use monitoring_semantics::monitor::TapeEvent;
use monitoring_semantics::syntax::Annotation;
use monitoring_semantics::tape::{
    read_frame, serve_tcp_with, write_frame, Client, FrameDecoder, IoBackend, MonitorServer,
    Request, Response, ServerConfig, Verdict,
};
use monitoring_semantics::tspec::{SpecMonitor, TapeOutcome};
use proptest::prelude::*;

const SPEC: &str = "never(post(_) and value < 0)";

fn both_backends() -> [(&'static str, IoBackend); 2] {
    [
        ("threaded", IoBackend::Threaded),
        ("reactor", IoBackend::Reactor { io_threads: 2 }),
    ]
}

fn post(v: i64, step: u64) -> TapeEvent {
    TapeEvent::post(&Annotation::label("p"), &Value::Int(v), step)
}

/// `n` posts with violations at `violate_at`, closed by a `done` marker.
fn tape(n: u64, violate_at: &[u64]) -> Vec<TapeEvent> {
    let mut evs: Vec<TapeEvent> = (0..n)
        .map(|s| post(if violate_at.contains(&s) { -1 } else { 1 }, s))
        .collect();
    evs.push(TapeEvent::done(n));
    evs
}

/// The offline ground truth for a tape that carries its `done`.
fn oracle(tape: &[TapeEvent]) -> (bool, Option<u64>) {
    let m = SpecMonitor::new("oracle", SPEC).unwrap();
    let check = m.check_tape(tape);
    match check.outcome {
        TapeOutcome::Satisfied => (true, check.earliest_violation),
        TapeOutcome::Violated(_) => (false, check.earliest_violation),
        TapeOutcome::Pending => panic!("test tapes always carry done"),
    }
}

fn verdict(resp: Response) -> Verdict {
    match resp {
        Response::Verdict(v) => v,
        other => panic!("expected a verdict, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental decoder recovers the exact frame sequence no
    /// matter how the byte stream is chopped up, and ends with no
    /// phantom partial frame.
    #[test]
    fn frame_decoder_survives_any_byte_dribble(
        frames in proptest::collection::vec(
            proptest::collection::vec(0u8..=255, 0..200),
            1..6,
        ),
        chunk_sizes in proptest::collection::vec(1usize..7, 1..64),
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        let mut at = 0;
        let mut turn = 0;
        while at < wire.len() {
            let n = chunk_sizes[turn % chunk_sizes.len()].min(wire.len() - at);
            turn += 1;
            dec.extend(&wire[at..at + n]);
            at += n;
            while let Some(frame) = dec.next_frame().unwrap() {
                got.push(frame);
            }
        }
        prop_assert_eq!(&got, &frames);
        prop_assert!(!dec.has_partial());
    }
}

/// Writes one length-prefixed frame in 3-byte chunks, flushing each and
/// sleeping occasionally so some chunks genuinely arrive as separate
/// reads on the server side.
fn dribble_frame(sock: &mut TcpStream, payload: &[u8]) {
    let mut frame = Vec::with_capacity(payload.len() + 4);
    write_frame(&mut frame, payload).unwrap();
    for (i, chunk) in frame.chunks(3).enumerate() {
        sock.write_all(chunk).unwrap();
        sock.flush().unwrap();
        if i % 16 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

fn next_response(sock: &mut TcpStream) -> Response {
    let frame = read_frame(sock).unwrap().expect("server closed early");
    Response::decode(&frame).unwrap()
}

/// Byte-dribbled frames over a real socket reach the same close verdict
/// as the offline oracle, on both backends.
#[test]
fn socket_dribbles_reach_oracle_verdicts_on_both_backends() {
    for (name, backend) in both_backends() {
        let server = Arc::new(MonitorServer::start(ServerConfig::default()));
        let handle = serve_tcp_with(Arc::clone(&server), "127.0.0.1:0", backend).expect("bind");
        let addr = handle.addr().expect("tcp listener has an address");

        let mut sock = TcpStream::connect(addr).unwrap();
        sock.set_nodelay(true).ok();

        let events = tape(25, &[17]);
        let (want_accept, want_earliest) = oracle(&events);

        dribble_frame(
            &mut sock,
            &Request::Open {
                session: 5,
                enforcing: false,
                spec: SPEC.to_string(),
                stream: None,
            }
            .encode(),
        );
        match next_response(&mut sock) {
            Response::Ok => {}
            other => panic!("{name}: open failed: {other:?}"),
        }

        // Events flow through the fire-and-forget path, one dribbled
        // frame per small chunk, so a frame routinely straddles reads.
        for chunk in events.chunks(4) {
            dribble_frame(
                &mut sock,
                &Request::Events {
                    session: 5,
                    events: chunk.to_vec(),
                }
                .encode(),
            );
        }
        dribble_frame(&mut sock, &Request::Close { session: 5 }.encode());

        let v = loop {
            match next_response(&mut sock) {
                Response::Ack { .. } => continue,
                Response::Verdict(v) => break v,
                other => panic!("{name}: unexpected response {other:?}"),
            }
        };
        assert_eq!(v.ingested, events.len() as u64, "{name}: ingested");
        assert_eq!(v.accepted, Some(want_accept), "{name}: accepted");
        assert_eq!(v.earliest_violation, want_earliest, "{name}: earliest");

        drop(sock);
        handle.stop();
        server.shutdown();
    }
}

fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd").unwrap().count()
}

/// Waits for the fd count to settle at or below `target` (connection
/// teardown is asynchronous on the threaded backend: the reader thread
/// has to notice EOF before the dup'd handle closes).
fn settle_fds(target: usize) -> usize {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let now = fd_count();
        if now <= target || Instant::now() > deadline {
            return now;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// N connect/run/disconnect cycles leave `/proc/self/fd` exactly where
/// it started, on both backends — and tearing the server down releases
/// the listener, epoll, and eventfd descriptors too.
#[test]
fn connect_disconnect_cycles_leak_no_fds() {
    let before_servers = fd_count();
    for (name, backend) in both_backends() {
        let server = Arc::new(MonitorServer::start(ServerConfig::default()));
        let handle = serve_tcp_with(Arc::clone(&server), "127.0.0.1:0", backend).expect("bind");
        let addr = handle.addr().unwrap();

        // Baseline after the server is up: listener + any reactor
        // epoll/eventfd descriptors are part of the steady state.
        let baseline = fd_count();

        for i in 0..24u64 {
            let mut client = Client::connect_tcp(addr).unwrap();
            let events = tape(8, &[]);
            let (want_accept, _) = oracle(&events);
            match client.open(i, SPEC, false).unwrap() {
                Response::Ok => {}
                other => panic!("{name}: open failed: {other:?}"),
            }
            client.send_batch(i, &events).unwrap();
            let v = verdict(client.close(i).unwrap());
            assert_eq!(v.accepted, Some(want_accept), "{name}: cycle {i}");
            drop(client);
        }

        let settled = settle_fds(baseline);
        assert!(
            settled <= baseline,
            "{name}: leaked fds: {settled} open after cycles vs baseline {baseline}"
        );

        handle.stop();
        server.shutdown();
    }
    let settled = settle_fds(before_servers);
    assert!(
        settled <= before_servers,
        "server teardown leaked fds: {settled} open vs {before_servers} before any server"
    );
}

/// A connection whose peer vanished errors the next `events()` call
/// (once the broken pipe surfaces), and every call after that —
/// including `close()` — fails immediately with the original kind.
#[test]
fn broken_connection_errors_next_call_and_stays_failed() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let sock = TcpStream::connect(addr).unwrap();
    let (server_side, _) = listener.accept().unwrap();
    drop(server_side); // peer hangs up before a single reply
    drop(listener);

    let mut client = Client::new(sock);
    let mut first = None;
    // Writes land in socket buffers until the RST comes back; keep
    // streaming until the failure surfaces (bounded so a regression
    // hangs the loop rather than spinning forever).
    for step in 0..200_000u64 {
        if let Err(e) = client.events(1, vec![post(1, step)]) {
            first = Some(e);
            break;
        }
    }
    let first = first.expect("a dead peer eventually fails events()");

    let next = client.close(1).unwrap_err();
    assert_eq!(
        next.kind(),
        first.kind(),
        "sticky fault keeps the original kind"
    );
    assert!(
        next.to_string().contains("connection failed earlier"),
        "sticky fault names the earlier failure: {next}"
    );
    // Still failing: the fault does not clear.
    assert!(client.events(1, vec![post(1, 0)]).is_err());
}

/// Stopping a reactor-backed server closes its multiplexed connections,
/// which a streaming client observes as a prompt `events()` error —
/// not a silent hang until `close()`.
#[test]
fn reactor_stop_surfaces_as_client_io_error() {
    let server = Arc::new(MonitorServer::start(ServerConfig::default()));
    let handle = serve_tcp_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        IoBackend::Reactor { io_threads: 1 },
    )
    .expect("bind");
    let addr = handle.addr().unwrap();

    let mut client = Client::connect_tcp(addr).unwrap();
    match client.open(9, SPEC, false).unwrap() {
        Response::Ok => {}
        other => panic!("open failed: {other:?}"),
    }
    handle.stop(); // reactor teardown closes the connection

    let mut first = None;
    for step in 0..200_000u64 {
        if let Err(e) = client.events(9, vec![post(1, step)]) {
            first = Some(e);
            break;
        }
    }
    let first = first.expect("a stopped reactor eventually fails events()");
    let next = client.close(9).unwrap_err();
    assert_eq!(next.kind(), first.kind());
    server.shutdown();
}

/// Depth-1 shard queues under eight concurrent dribbling producers on
/// one reactor thread: read interest parks and resumes constantly, yet
/// every verdict matches the offline oracle — nothing dropped, nothing
/// reordered.
#[test]
fn reactor_parks_full_queues_without_losing_frames() {
    let server = Arc::new(MonitorServer::start(ServerConfig {
        queue_depth: 1,
        shards: 2,
        ack_every: 4,
        ..ServerConfig::default()
    }));
    let handle = serve_tcp_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        IoBackend::Reactor { io_threads: 1 },
    )
    .expect("bind");
    let addr = handle.addr().unwrap();

    let producers: Vec<_> = (0..8u64)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(addr).unwrap();
                let events = tape(200, &[(i * 37) % 200]);
                let (want_accept, want_earliest) = oracle(&events);
                match client.open(i, SPEC, false).unwrap() {
                    Response::Ok => {}
                    other => panic!("producer {i}: open failed: {other:?}"),
                }
                // Small chunks keep the depth-1 queues permanently
                // full, so parking is exercised rather than skirted.
                for chunk in events.chunks(5) {
                    client.send_batch(i, chunk).unwrap();
                }
                let v = verdict(client.close(i).unwrap());
                assert_eq!(v.ingested, events.len() as u64, "producer {i}: ingested");
                assert_eq!(v.accepted, Some(want_accept), "producer {i}: accepted");
                assert_eq!(
                    v.earliest_violation, want_earliest,
                    "producer {i}: earliest"
                );
            })
        })
        .collect();
    for p in producers {
        p.join().expect("producer thread panicked");
    }

    handle.stop();
    server.shutdown();
}
