//! PR 7 (S4): the event tape is a faithful, serializable image of the
//! pre-abstraction monitoring stream.
//!
//! Three differential properties on randomly generated annotated
//! programs (including `par` tuples, whose shard events interleave on
//! the tape in the machine's schedule):
//!
//! 1. **Serialization is lossless** — `write_tape` → `read_tape` is the
//!    identity on the in-process [`MemorySink`] stream, including the
//!    `done` marker and string re-interning.
//! 2. **Offline check ≡ live run** — `SpecMonitor::check_tape` over a
//!    recorded tape reaches exactly the live monitored run's verdict,
//!    DFA state, event count, and violation, and its
//!    `earliest_violation` names the first violating event's step.
//! 3. **Hot-swap splice ≡ fresh run over the prefix** — `splice_state`
//!    for a *different* spec equals folding that spec's
//!    `advance_tape_event` over the same replayed prefix (the server's
//!    swap semantics, checked against first principles).

use monitoring_semantics::core::machine::EvalOptions;
use monitoring_semantics::core::{Env, EvalError};
use monitoring_semantics::monitor::{
    record_monitored_with, MemorySink, Monitor, Outcome, SharedSink, TapeEvent, TapePhase,
};
use monitoring_semantics::syntax::gen::{gen_program, sprinkle_annotations, GenConfig};
use monitoring_semantics::syntax::{Expr, Namespace};
use monitoring_semantics::tape::{read_tape, splice_state, write_tape};
use monitoring_semantics::tspec::{SpecMonitor, TapeOutcome};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FUEL: u64 = 400_000;

fn annotated_program(seed: u64, density: u16) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = GenConfig {
        par_chance: 0.35,
        ..GenConfig::default()
    };
    let plain = gen_program(&mut rng, &config);
    sprinkle_annotations(
        &mut rng,
        &plain,
        &Namespace::new("ns"),
        f64::from(density) / 1000.0,
    )
}

fn neg_spec() -> SpecMonitor {
    SpecMonitor::new("no-negatives", "never(post(_) and value < 0)")
        .unwrap()
        .in_namespace(Namespace::new("ns"))
}

/// A monitored run's outcome: the answer and final monitor state, or
/// the evaluation error that cut the run short.
type RunResult<M> = Result<(monitoring_semantics::core::Value, <M as Monitor>::State), EvalError>;

/// Records `program` under `monitor`, returning the tape and the run's
/// result. The tape carries `done` exactly when the run succeeded.
fn record<M: Monitor + Clone>(program: &Expr, monitor: M) -> (Vec<TapeEvent>, RunResult<M>) {
    let mem = MemorySink::new();
    let sink = SharedSink::new(mem.clone());
    let result = record_monitored_with(
        program,
        &Env::empty(),
        monitor,
        &sink,
        &EvalOptions::with_fuel(FUEL),
    );
    (mem.take(), result)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1: the binary format round-trips the exact event stream.
    #[test]
    fn tape_serialization_roundtrips(seed: u64, density in 100u16..=1000) {
        let program = annotated_program(seed, density);
        let (events, result) = record(&program, neg_spec());
        let bytes = write_tape(&events);
        let decoded = read_tape(&bytes).expect("a written tape must decode");
        prop_assert_eq!(&decoded, &events, "decode ∘ encode must be the identity");
        prop_assert_eq!(
            events.iter().any(|e| matches!(e.phase, TapePhase::Done)),
            result.is_ok(),
            "the done marker appears exactly on successful runs"
        );
    }

    /// Property 2: `check_tape` over the recorded tape is
    /// indistinguishable from having monitored the run live.
    #[test]
    fn offline_check_matches_the_live_run(seed: u64, density in 100u16..=1000) {
        let program = annotated_program(seed, density);
        let m = neg_spec();
        let (events, result) = record(&program, m.clone());
        // Round-trip through the wire format first: the offline checker
        // consumes deserialized tapes, not in-process ones.
        let events = read_tape(&write_tape(&events)).unwrap();
        let check = m.check_tape(&events);

        match result {
            Ok((_, live)) => {
                prop_assert_eq!(check.state.state, live.state, "DFA states agree");
                prop_assert_eq!(check.state.events, live.events, "event counts agree");
                prop_assert_eq!(
                    check.state.violation.clone(), live.violation.clone(),
                    "violations agree"
                );
                match check.outcome {
                    TapeOutcome::Satisfied => {
                        prop_assert!(m.finish(&live).is_ok(), "live finish must agree")
                    }
                    TapeOutcome::Violated(_) => {
                        prop_assert!(m.finish(&live).is_err(), "live finish must agree")
                    }
                    TapeOutcome::Pending => prop_assert!(
                        false,
                        "a tape with a done marker cannot be pending"
                    ),
                }
                // The earliest offset names the first event whose replay
                // flips the monitor into violation — recomputed here from
                // first principles.
                let mut s = m.initial_state();
                let mut expected = None;
                for ev in &events {
                    if matches!(ev.phase, TapePhase::Done) {
                        break;
                    }
                    let had = s.violation.is_some();
                    s = match m.advance_tape_event(s, ev) {
                        Outcome::Continue(s) => s,
                        Outcome::Abort { state, .. } => state,
                    };
                    if !had && s.violation.is_some() && expected.is_none() {
                        expected = Some(ev.step);
                    }
                }
                prop_assert_eq!(check.earliest_violation, expected);
            }
            Err(_) => {
                // Fuel exhaustion or a program error: no done marker, so
                // the checker must not claim satisfaction.
                prop_assert!(
                    !matches!(check.outcome, TapeOutcome::Satisfied),
                    "an unfinished tape cannot be satisfied"
                );
            }
        }
    }

    /// Property 2b: enforcement offline equals enforcement live — the
    /// enforcing checker aborts exactly where the enforcing machine did.
    #[test]
    fn enforcing_check_matches_the_enforcing_run(seed: u64, density in 100u16..=1000) {
        let program = annotated_program(seed, density);
        let enforcing = neg_spec().enforcing();
        let (events, result) = record(&program, enforcing.clone());
        let check = enforcing.check_tape(&events);
        match result {
            Err(EvalError::MonitorAbort { .. }) => {
                prop_assert!(
                    matches!(check.outcome, TapeOutcome::Violated(_)),
                    "the live abort must replay as a violation"
                );
                // The abort cut the recording at the violating event, so
                // the earliest offset is the tape's final step.
                prop_assert_eq!(
                    check.earliest_violation,
                    events.last().map(|e| e.step),
                    "the tape ends at the abort point"
                );
            }
            Ok(_) => prop_assert!(
                !matches!(check.outcome, TapeOutcome::Violated(_)),
                "a clean live run cannot replay as violated"
            ),
            Err(_) => {} // fuel/program error before any verdict
        }
    }

    /// Property 3: the server's hot-swap splice is exactly a fresh run
    /// of the *new* spec over the replayed prefix.
    #[test]
    fn hot_swap_splice_matches_a_fresh_run_over_the_prefix(
        seed: u64,
        density in 100u16..=1000,
        cut in 0usize..=64,
    ) {
        let program = annotated_program(seed, density);
        let (events, _) = record(&program, neg_spec());
        let prefix: Vec<&TapeEvent> = events
            .iter()
            .filter(|e| !matches!(e.phase, TapePhase::Done))
            .take(cut)
            .collect();

        // A different property than the one the tape was recorded
        // under: swap must re-judge history, not copy old state.
        let swapped = SpecMonitor::new("no-zeros", "never(post(_) and value = 0)")
            .unwrap()
            .in_namespace(Namespace::new("ns"));

        let (spliced, earliest) = splice_state(&swapped, prefix.iter().copied());

        let mut s = swapped.initial_state();
        let mut expected_earliest = None;
        for ev in &prefix {
            let had = s.violation.is_some();
            s = match swapped.advance_tape_event(s, ev) {
                Outcome::Continue(s) => s,
                Outcome::Abort { state, .. } => state,
            };
            if !had && s.violation.is_some() && expected_earliest.is_none() {
                expected_earliest = Some(ev.step);
            }
        }
        prop_assert_eq!(spliced, s, "splice must equal the fresh replay");
        prop_assert_eq!(earliest, expected_earliest);
    }
}

/// Records `program` with a clocked sink whose (seeded, jittery) clock
/// can step backwards; the sink's monotone clamp must still produce a
/// nondecreasing tape.
fn record_timed(program: &Expr, seed: u64) -> Vec<TapeEvent> {
    use rand::Rng;
    use std::sync::{Arc, Mutex};
    let mem = MemorySink::new();
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(seed ^ 0x7131)));
    let clock = move || {
        let mut rng = rng.lock().unwrap();
        // A drifting clock with occasional backwards jitter.
        rng.gen_range(0..5000)
    };
    let sink = SharedSink::with_clock(mem.clone(), clock);
    let _ = record_monitored_with(
        program,
        &Env::empty(),
        neg_spec(),
        &sink,
        &EvalOptions::with_fuel(FUEL),
    );
    mem.take()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 4 (format v2): timed tapes round-trip exactly — the
    /// LEB128 delta coding loses nothing — and version selection is
    /// automatic: v2 iff the sink stamped timestamps.
    #[test]
    fn timed_tape_serialization_roundtrips(seed: u64, density in 100u16..=1000) {
        let program = annotated_program(seed, density);
        let timed = record_timed(&program, seed);
        if timed.is_empty() {
            return Ok(()); // the program had no annotations to record
        }
        prop_assert!(
            timed.iter().all(|e| e.time.is_some()),
            "a clocked sink stamps every event"
        );
        let bytes = write_tape(&timed);
        prop_assert_eq!(
            u16::from_le_bytes([bytes[4], bytes[5]]),
            monitoring_semantics::tape::format::VERSION_TIMED,
            "stamped events select format v2"
        );
        let decoded = read_tape(&bytes).expect("a written v2 tape must decode");
        prop_assert_eq!(&decoded, &timed, "decode ∘ encode is the identity on v2");

        // The same events stripped of timestamps select v1 and still
        // round-trip — readers accept both versions unchanged.
        let untimed: Vec<TapeEvent> = timed
            .iter()
            .map(|e| TapeEvent { time: None, ..e.clone() })
            .collect();
        let bytes = write_tape(&untimed);
        prop_assert_eq!(
            u16::from_le_bytes([bytes[4], bytes[5]]),
            monitoring_semantics::tape::format::VERSION,
            "unstamped events select format v1"
        );
        prop_assert_eq!(read_tape(&bytes).unwrap(), untimed);
    }

    /// Property 5 (format v2): tape timestamps are monotone even when
    /// the wall clock jitters backwards — the sink clamps, and the
    /// delta coding (which cannot express a negative step) never has to.
    #[test]
    fn timed_tapes_are_monotone_under_clock_jitter(seed: u64, density in 100u16..=1000) {
        let program = annotated_program(seed, density);
        let timed = record_timed(&program, seed);
        let decoded = read_tape(&write_tape(&timed)).unwrap();
        let times: Vec<u64> = decoded.iter().filter_map(|e| e.time).collect();
        prop_assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "timestamps must be nondecreasing: {:?}",
            times
        );
    }
}

/// Pinned concrete shape: the machine evaluates operands right-to-left,
/// so `{ns/a}:1 + {ns/b}:(0 - 2)` puts the b events first on the tape;
/// the offline checker convicts at the `post b = -2` step.
#[test]
fn earliest_violation_names_the_offending_step() {
    let program = monitoring_semantics::syntax::parse_expr("{ns/a}:1 + {ns/b}:(0 - 2)").unwrap();
    let m = neg_spec();
    let (events, result) = record(&program, m.clone());
    result.expect("observing runs never abort");
    let check = m.check_tape(&events);
    let step = check.earliest_violation.expect("the spec is violated");
    let offending = events.iter().find(|e| e.step == step).unwrap();
    assert_eq!(offending.name, "b");
    assert!(matches!(offending.phase, TapePhase::Post));
    assert!(matches!(check.outcome, TapeOutcome::Violated(_)));
}
