//! E11 — the lexical-addressing pass is semantically invisible.
//!
//! The static resolver (`monsem_core::resolve`) rewrites variable
//! occurrences to `(depth, slot)` addresses before evaluation; the engines
//! then follow pointers instead of comparing names. These properties pin
//! down that the rewrite changes *nothing observable*: for randomly
//! generated programs with randomly sprinkled annotations, every engine
//! run by address agrees with the same engine run by (interned or string)
//! name lookup — on answers, on errors, and on the monitor's final state.
//!
//! The mode comparison is exact: resolution happens before the first
//! transition and an addressed occurrence costs the same one transition a
//! named one does, so even `FuelExhausted` outcomes must coincide.

use monitoring_semantics::core::imperative::eval_imperative_with;
use monitoring_semantics::core::lazy::eval_lazy_with;
use monitoring_semantics::core::machine::{eval_with, EvalOptions, LookupMode};
use monitoring_semantics::core::{closure_cps, Env, EvalError, Value};
use monitoring_semantics::monitor::imperative::eval_monitored_imperative_with;
use monitoring_semantics::monitor::lazy::eval_monitored_lazy_with;
use monitoring_semantics::monitor::machine::eval_monitored_with;
use monitoring_semantics::monitor::scope::Scope;
use monitoring_semantics::monitor::Monitor;
use monitoring_semantics::monitors::Profiler;
use monitoring_semantics::syntax::gen::{
    gen_imperative_program, gen_program, sprinkle_annotations, GenConfig,
};
use monitoring_semantics::syntax::{parse_expr, Annotation, Expr, Namespace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FUEL: u64 = 400_000;

fn opts(lookup: LookupMode) -> EvalOptions {
    EvalOptions { fuel: FUEL, lookup }
}

const MODES: [LookupMode; 3] = [
    LookupMode::ByAddress,
    LookupMode::BySymbol,
    LookupMode::ByString,
];

fn generated(seed: u64, density_milli: u16) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let plain = gen_program(&mut rng, &GenConfig::default());
    sprinkle_annotations(
        &mut rng,
        &plain,
        &Namespace::anonymous(),
        f64::from(density_milli) / 1000.0,
    )
}

/// A monitor whose state is a rendered event log — order, labels and
/// (displayed) values. Strings make the state comparable across runs,
/// which `Value`s are not (closures compare by pointer identity).
struct RenderLog;
impl Monitor for RenderLog {
    type State = Vec<String>;
    fn name(&self) -> &str {
        "render-log"
    }
    fn initial_state(&self) -> Vec<String> {
        Vec::new()
    }
    fn pre(&self, a: &Annotation, e: &Expr, _: &Scope<'_>, mut s: Vec<String>) -> Vec<String> {
        s.push(format!("pre {} {e}", a.name()));
        s
    }
    fn post(
        &self,
        a: &Annotation,
        _: &Expr,
        _: &Scope<'_>,
        v: &Value,
        mut s: Vec<String>,
    ) -> Vec<String> {
        s.push(format!("post {} = {v}", a.name()));
        s
    }
}

/// `Err`s with closure payloads would also compare by pointer; render.
fn shown(r: Result<Value, EvalError>) -> Result<String, String> {
    r.map(|v| v.to_string()).map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Strict machine, CPS transliteration and lazy machine: identical
    /// answers in all three lookup modes.
    #[test]
    fn pure_engines_agree_across_lookup_modes(seed: u64, density in 0u16..=1000) {
        let program = generated(seed, density);
        let baseline = shown(eval_with(&program, &Env::empty(), &opts(LookupMode::ByAddress)));
        for mode in MODES {
            let o = opts(mode);
            prop_assert_eq!(
                shown(eval_with(&program, &Env::empty(), &o)),
                baseline.clone(),
                "standard machine, mode {:?}", mode
            );
            prop_assert_eq!(
                shown(closure_cps::eval_cps_with(&program, &Env::empty(), &o)),
                baseline.clone(),
                "closure-CPS engine, mode {:?}", mode
            );
        }
        let lazy_baseline =
            shown(eval_lazy_with(&program, &Env::empty(), &opts(LookupMode::ByAddress)));
        for mode in MODES {
            prop_assert_eq!(
                shown(eval_lazy_with(&program, &Env::empty(), &opts(mode))),
                lazy_baseline.clone(),
                "lazy machine, mode {:?}", mode
            );
        }
    }

    /// Monitored strict machine: answers AND final monitor states agree —
    /// the profiler's counters and an order-sensitive rendered event log.
    #[test]
    fn monitored_machine_agrees_across_lookup_modes(seed: u64, density in 0u16..=1000) {
        let program = generated(seed, density);
        let run = |mode: LookupMode| {
            let log = eval_monitored_with(
                &program, &Env::empty(), &RenderLog, Vec::new(), &opts(mode));
            let counts = eval_monitored_with(
                &program, &Env::empty(), &Profiler::new(), Default::default(), &opts(mode));
            (
                log.map(|(v, s)| (v.to_string(), s)).map_err(|e| e.to_string()),
                counts.map(|(v, s)| (v.to_string(), s)).map_err(|e| e.to_string()),
            )
        };
        let baseline = run(LookupMode::ByAddress);
        for mode in MODES {
            prop_assert_eq!(run(mode), baseline.clone(), "mode {:?}", mode);
        }
    }

    /// Monitored lazy machine: demand order (which annotations fire, and
    /// when) is part of the compared state.
    #[test]
    fn monitored_lazy_agrees_across_lookup_modes(seed: u64, density in 0u16..=1000) {
        let program = generated(seed, density);
        let run = |mode: LookupMode| {
            eval_monitored_lazy_with(
                &program, &Env::empty(), &RenderLog, Vec::new(), &opts(mode))
            .map(|(v, s)| (v.to_string(), s))
            .map_err(|e| e.to_string())
        };
        let baseline = run(LookupMode::ByAddress);
        for mode in MODES {
            prop_assert_eq!(run(mode), baseline.clone(), "mode {:?}", mode);
        }
    }

    /// Monitored imperative machine, on programs with assignment and
    /// `while`: the store-threaded engine agrees too.
    #[test]
    fn monitored_imperative_agrees_across_lookup_modes(seed: u64, density in 0u16..=1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plain = gen_imperative_program(&mut rng, &Default::default());
        let program = sprinkle_annotations(
            &mut rng,
            &plain,
            &Namespace::anonymous(),
            f64::from(density) / 1000.0,
        );
        let unmonitored = |mode: LookupMode| {
            shown(eval_imperative_with(&program, &Env::empty(), &opts(mode)).map(|(v, _)| v))
        };
        let run = |mode: LookupMode| {
            eval_monitored_imperative_with(
                &program, &Env::empty(), &RenderLog, Vec::new(), &opts(mode))
            .map(|(v, _, _s)| v.to_string())
            .map_err(|e| e.to_string())
        };
        let baseline = unmonitored(LookupMode::ByAddress);
        for mode in MODES {
            prop_assert_eq!(unmonitored(mode), baseline.clone(), "unmonitored, mode {:?}", mode);
        }
        let monitored_baseline = run(LookupMode::ByAddress);
        for mode in MODES {
            prop_assert_eq!(run(mode), monitored_baseline.clone(), "monitored, mode {:?}", mode);
        }
    }
}

/// The `letrec` frame discipline is where addressing is subtlest — value
/// bindings, the rec frame and annotated-lambda shadow frames each occupy
/// one statically predicted slot. Exercise the corner cases directly.
#[test]
fn annotated_letrec_corner_cases_agree_across_modes() {
    let cases = [
        // Annotated lambda binding, recursive through the rec frame.
        "letrec f = {m}:(lambda x. if x = 0 then 0 else f (x - 1)) in f 5",
        // Mutual recursion, one side annotated.
        "letrec even = {e}:(lambda n. if n = 0 then true else odd (n - 1)) \
         and odd = lambda n. if n = 0 then false else even (n - 1) in even 9",
        // Values + rec frame + two annotated shadows, body uses them all.
        "letrec base = 10 and f = {a}:(lambda x. x + base) \
         and g = {b}:(lambda x. f (x * 2)) in g base",
        // Value binding whose expression closes over an outer binder
        // (resolution stops at the barrier; name lookup takes over).
        "lambda k. letrec v = k + 1 and f = {m}:(lambda x. x * v) in f v",
        // Annotated lambda referring to a later annotated lambda.
        "letrec f = {a}:(lambda x. g x) and g = {b}:(lambda x. x + 1) in f 41",
        // Shadowing across the whole plan.
        "let f = 1 in letrec f = {m}:(lambda x. x) in f f",
    ];
    for src in cases {
        let program = match parse_expr(src) {
            Ok(e) => e,
            Err(err) => panic!("{src}: {err}"),
        };
        let applied = |e: &Expr| match e {
            // The 4th case is a function of k; apply it.
            Expr::Lambda(_) => Expr::app(e.clone(), Expr::int(7)),
            _ => e.clone(),
        };
        let program = applied(&program);
        let run = |mode: LookupMode| {
            eval_monitored_with(&program, &Env::empty(), &RenderLog, Vec::new(), &opts(mode))
                .map(|(v, s)| (v.to_string(), s))
                .map_err(|e| e.to_string())
        };
        let lazy_run = |mode: LookupMode| {
            eval_monitored_lazy_with(&program, &Env::empty(), &RenderLog, Vec::new(), &opts(mode))
                .map(|(v, s)| (v.to_string(), s))
                .map_err(|e| e.to_string())
        };
        let baseline = run(LookupMode::ByAddress);
        let lazy_baseline = lazy_run(LookupMode::ByAddress);
        for mode in MODES {
            assert_eq!(run(mode), baseline, "strict, mode {mode:?}, program {src}");
            assert_eq!(
                lazy_run(mode),
                lazy_baseline,
                "lazy, mode {mode:?}, program {src}"
            );
        }
    }
}
