//! The §7 lemmas, executable: the answer transformer machinery of
//! Definition 4.1 and the relation `R` of Definition 7.4 evaluated on
//! real monitored meanings, not toy values.

use monitoring_semantics::core::machine::eval;
use monitoring_semantics::core::machine::EvalOptions;
use monitoring_semantics::core::programs;
use monitoring_semantics::core::Env;
use monitoring_semantics::monitor::answer::{related, theta, theta_inv, MonAnswer};
use monitoring_semantics::monitor::machine::eval_monitored_with;
use monitoring_semantics::monitors::profiler::{CounterEnv, Profiler};
use monitoring_semantics::syntax::{Expr, Ident};

/// Wraps a monitored program as the paper's meaning `MS → (Ans × MS)`.
fn meaning_of(program: Expr) -> MonAnswer<monitoring_semantics::core::Value, CounterEnv> {
    MonAnswer::new(move |sigma| {
        eval_monitored_with(
            &program,
            &Env::empty(),
            &Profiler::new(),
            sigma,
            &EvalOptions::default(),
        )
    })
}

/// Lemma 7.3's engine on a real program:
/// `θ⁻¹((fix Ḡ)⟦s̄⟧ …) = (fix G)⟦s⟧ …` — for arbitrary σ.
#[test]
fn theta_inverse_recovers_the_standard_answer() {
    let annotated = programs::fac_mul_profiled(4);
    let standard = eval(&annotated).unwrap();
    let meaning = meaning_of(annotated);
    for sigma in [
        CounterEnv::init(),
        CounterEnv::init().inc(&Ident::new("noise")),
        CounterEnv::init()
            .inc(&Ident::new("fac"))
            .inc(&Ident::new("fac")),
    ] {
        assert_eq!(theta_inv(&meaning, sigma).unwrap(), standard);
    }
}

/// Definition 7.4 on real meanings: the monitored meaning of `s̄` is
/// `R`-related to `θ` of the standard answer of `s` — the two sides of
/// Lemma 7.6.
#[test]
fn monitored_meaning_is_related_to_theta_of_the_standard_answer() {
    let annotated = programs::fac_ab(6);
    let standard = eval(&annotated).unwrap();
    let lhs = theta(standard);
    let rhs = meaning_of(annotated);
    let sample_states = [
        CounterEnv::init(),
        CounterEnv::init().inc(&Ident::new("A")),
        CounterEnv::init()
            .inc(&Ident::new("B"))
            .inc(&Ident::new("B")),
    ];
    assert!(related(&lhs, &rhs, &sample_states));
}

/// And the relation distinguishes genuinely different programs.
#[test]
fn the_relation_rejects_different_answers() {
    let five = meaning_of(programs::fac_ab(5));
    let six = meaning_of(programs::fac_ab(6));
    let states = [CounterEnv::init()];
    assert!(!related(&five, &six, &states));
}

/// Lemma 7.5 on a real meaning: composing a state transformer onto the
/// initial state does not change the first projection.
#[test]
fn relation_invariant_under_state_transformers_for_real_meanings() {
    let program = programs::fac_mul_profiled(3);
    let plain = meaning_of(program.clone());
    // ᾱ ∘ v with v = "charge the ghost counter first".
    let composed = MonAnswer::new(move |sigma: CounterEnv| {
        let sigma = sigma.inc(&Ident::new("ghost"));
        eval_monitored_with(
            &program,
            &Env::empty(),
            &Profiler::new(),
            sigma,
            &EvalOptions::default(),
        )
    });
    let states = [CounterEnv::init(), CounterEnv::init().inc(&Ident::new("x"))];
    assert!(related(&plain, &composed, &states));
}
