//! Fork-join parallel evaluation: the parallel machine agrees with the
//! sequential monitored machine bit-for-bit (answer *and* final monitor
//! state), and every `MergeMonitor` obeys the split/merge laws —
//! `merge` is associative and `split` produces a merge identity — which
//! is what makes the agreement a theorem rather than a coincidence
//! (DESIGN.md §6½).

use monitoring_semantics::core::machine::EvalOptions;
use monitoring_semantics::core::{programs, Env, EvalError, Value};
use monitoring_semantics::monitor::machine::eval_monitored_with;
use monitoring_semantics::monitor::{
    eval_parallel, eval_parallel_with, Compose, FaultPolicy, Guarded, Health, MergeMonitor,
    Monitor, ParOptions,
};
use monitoring_semantics::monitors::{
    AbProfiler, CallGraph, Collecting, Coverage, FaultMode, FaultyMonitor, Profiler, TimeProfiler,
};
use monitoring_semantics::syntax::gen::{gen_program, sprinkle_annotations, GenConfig};
use monitoring_semantics::syntax::{parse_expr, Expr, Ident, Namespace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FUEL: u64 = 400_000;

/// A generated program that contains `par(…)` forms (opt-in; the default
/// generator stays par-free for the lazy/CPS engines) with labels
/// sprinkled at `density`/1000 in namespace `ns`.
fn par_program(seed: u64, density: u16) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = GenConfig {
        par_chance: 0.35,
        ..GenConfig::default()
    };
    let plain = gen_program(&mut rng, &cfg);
    sprinkle_annotations(
        &mut rng,
        &plain,
        &Namespace::new("ns"),
        f64::from(density) / 1000.0,
    )
}

fn ns() -> Namespace {
    Namespace::new("ns")
}

fn par_options(threads: usize) -> ParOptions {
    ParOptions {
        threads,
        eval: EvalOptions::with_fuel(FUEL),
    }
}

/// Runs both machines and compares results, ignoring fuel-exhaustion
/// divergence. Fuel is global in both machines (shard steps are charged
/// back to the parent at the join), but the parallel driver's spine
/// transitions are uncharged, so a program near the limit may complete
/// in parallel while the sequential run exhausts.
fn assert_parallel_matches_sequential<M>(program: &Expr, monitor: &M, threads: usize)
where
    M: MergeMonitor + Sync,
    M::State: Send + PartialEq + std::fmt::Debug,
{
    let seq = eval_monitored_with(
        program,
        &Env::empty(),
        monitor,
        monitor.initial_state(),
        &EvalOptions::with_fuel(FUEL),
    );
    let par = eval_parallel_with(
        program,
        &Env::empty(),
        monitor,
        monitor.initial_state(),
        &par_options(threads),
    );
    let fuel =
        |r: &Result<(Value, M::State), EvalError>| matches!(r, Err(EvalError::FuelExhausted));
    if !fuel(&seq) && !fuel(&par) {
        assert_eq!(seq, par, "program: {program}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_profiler_matches_sequential(seed: u64, density in 0u16..300, threads in 1usize..5) {
        let program = par_program(seed, density);
        assert_parallel_matches_sequential(&program, &Profiler::in_namespace(ns()), threads);
    }

    #[test]
    fn parallel_compose_cascade_matches_sequential(seed: u64, density in 0u16..300) {
        // A §6 cascade: both layers must split and merge pairwise.
        let program = par_program(seed, density);
        let cascade = Compose::new(Profiler::in_namespace(ns()), Coverage::in_namespace(ns()));
        assert_parallel_matches_sequential(&program, &cascade, 4);
    }

    #[test]
    fn parallel_guarded_matches_sequential_when_healthy(seed: u64, density in 0u16..300) {
        // A healthy Guarded wrapper (the bomb never fires) adds
        // accounting but no faults; events sum across the join.
        let program = par_program(seed, density);
        let guarded = Guarded::new(FaultyMonitor::new(0, FaultMode::Panic))
            .policy(FaultPolicy::Quarantine);
        let seq = eval_monitored_with(
            &program,
            &Env::empty(),
            &guarded,
            guarded.initial_state(),
            &EvalOptions::with_fuel(FUEL),
        );
        let par = eval_parallel_with(
            &program,
            &Env::empty(),
            &guarded,
            guarded.initial_state(),
            &par_options(4),
        );
        let fuel = |r: &Result<(Value, _), EvalError>| matches!(r, Err(EvalError::FuelExhausted));
        if let (Ok((sv, ss)), Ok((pv, ps))) = (&seq, &par) {
            prop_assert_eq!(sv, pv);
            prop_assert_eq!(&ss.state, &ps.state, "inner counter");
            prop_assert_eq!(ss.events, ps.events, "hook accounting");
            prop_assert!(ss.health.is_ok() && ps.health.is_ok());
        } else if !fuel(&seq) && !fuel(&par) {
            prop_assert_eq!(
                seq.as_ref().err(),
                par.as_ref().err(),
                "both machines fail identically"
            );
        }
    }

    #[test]
    fn profiler_split_merge_laws(seed: u64, density in 1u16..300) {
        check_laws_on_generated(&Profiler::in_namespace(ns()), seed, density)?;
    }

    #[test]
    fn coverage_split_merge_laws(seed: u64, density in 1u16..300) {
        check_laws_on_generated(&Coverage::in_namespace(ns()), seed, density)?;
    }

    #[test]
    fn collecting_split_merge_laws(seed: u64, density in 1u16..300) {
        // `Interpretations` holds `Value` (not `Send`), so the collecting
        // monitor cannot ride the thread scope — but its split/merge obey
        // the same laws, so it composes under `Compose` forwarding.
        check_laws_on_generated(&Collecting::in_namespace(ns()), seed, density)?;
    }

    #[test]
    fn compose_split_merge_laws(seed: u64, density in 1u16..300) {
        let cascade = Compose::new(Profiler::in_namespace(ns()), Coverage::in_namespace(ns()));
        check_laws_on_generated(&cascade, seed, density)?;
    }
}

/// Evolves `monitor` over three generated programs from a common
/// mid-run state σ and checks both laws on the resulting shard states.
fn check_laws_on_generated<M>(monitor: &M, seed: u64, density: u16) -> Result<(), TestCaseError>
where
    M: MergeMonitor,
    M::State: Clone + PartialEq + std::fmt::Debug,
{
    let run = |sigma: M::State, salt: u64| -> Option<M::State> {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(salt));
        let plain = gen_program(&mut rng, &GenConfig::default());
        let program = sprinkle_annotations(
            &mut rng,
            &plain,
            &Namespace::new("ns"),
            f64::from(density) / 1000.0,
        );
        eval_monitored_with(
            &program,
            &Env::empty(),
            monitor,
            sigma,
            &EvalOptions::with_fuel(FUEL),
        )
        .ok()
        .map(|(_, s)| s)
    };
    // A mid-run σ (not the pristine initial state) exercises split
    // against accumulated history.
    let Some(sigma) = run(monitor.initial_state(), 0) else {
        return Ok(()); // program errored; nothing to check
    };
    // split is a right identity for merge.
    prop_assert_eq!(
        monitor.merge(sigma.clone(), monitor.split(&sigma)),
        sigma.clone()
    );
    // merge is associative over independently-evolved shard states.
    let shards: Vec<M::State> = (1..=3)
        .filter_map(|salt| run(monitor.split(&sigma), salt))
        .collect();
    if let [a, b, c] = shards.as_slice() {
        prop_assert_eq!(
            monitor.merge(monitor.merge(a.clone(), b.clone()), c.clone()),
            monitor.merge(a.clone(), monitor.merge(b.clone(), c.clone()))
        );
    }
    Ok(())
}

#[test]
fn callgraph_laws_and_parallel_agreement() {
    let m = CallGraph::new();
    // Shard states from the traced fac/mul program at different depths.
    let run = |n: i64| {
        eval_monitored_with(
            &programs::fac_mul_traced(n),
            &Env::empty(),
            &m,
            m.split(&m.initial_state()),
            &EvalOptions::with_fuel(FUEL),
        )
        .unwrap()
        .1
    };
    let (a, b, c) = (run(2), run(3), run(4));
    assert_eq!(
        m.merge(m.merge(a.clone(), b.clone()), c.clone()),
        m.merge(a.clone(), m.merge(b.clone(), c.clone()))
    );
    let sigma = run(5);
    assert_eq!(m.merge(sigma.clone(), m.split(&sigma)), sigma);

    // The same traced workload under par: graphs sum deterministically.
    let prog = parse_expr(
        "letrec fac = lambda x. {fac(x)}:(if x = 0 then 1 else x * (fac (x - 1))) \
         in par(fac 3, fac 5)",
    )
    .unwrap();
    let seq = eval_monitored_with(
        &prog,
        &Env::empty(),
        &m,
        m.initial_state(),
        &EvalOptions::with_fuel(FUEL),
    )
    .unwrap();
    let par = eval_parallel(&prog, &m).unwrap();
    assert_eq!(seq, par);
    assert_eq!(par.1.calls(None, "fac"), 2);
    assert_eq!(par.1.calls(Some("fac"), "fac"), 3 + 5);
}

#[test]
fn ab_profiler_parallel_agreement() {
    let prog = parse_expr("par({A}:1, {B}:2, {B}:3) ++ par({A}:4)").unwrap();
    let m = AbProfiler;
    let seq = eval_monitored_with(
        &prog,
        &Env::empty(),
        &m,
        m.initial_state(),
        &EvalOptions::default(),
    )
    .unwrap();
    let par = eval_parallel(&prog, &m).unwrap();
    assert_eq!(seq, par);
    assert_eq!(par.1.a, 2);
    assert_eq!(par.1.b, 2);
}

#[test]
fn time_profiler_merges_counts_exactly() {
    // Durations are nondeterministic, so the law checks compare the
    // deterministic projections: per-label activation counts.
    let m = TimeProfiler::new();
    let prog = parse_expr(
        "letrec fac = lambda x. {fac}:(if x = 0 then 1 else x * (fac (x - 1))) \
         in par(fac 4, fac 6, fac 2)",
    )
    .unwrap();
    let seq = eval_monitored_with(
        &prog,
        &Env::empty(),
        &m,
        m.initial_state(),
        &EvalOptions::default(),
    )
    .unwrap();
    let par = eval_parallel(&prog, &m).unwrap();
    assert_eq!(seq.0, par.0);
    let fac = Ident::new("fac");
    assert_eq!(seq.1.count(&fac), par.1.count(&fac));
    assert_eq!(seq.1.count(&fac), 5 + 7 + 3);
    // Identity-law projection: merging a fresh split changes no counts.
    let merged = m.merge(par.1, m.split(&seq.1));
    assert_eq!(merged.count(&fac), 5 + 7 + 3);
}

// ---------------------------------------------------------------------
// Fault policy under parallelism (PR 2 semantics inside worker threads)
// ---------------------------------------------------------------------

#[test]
fn panicking_shard_surfaces_monitor_abort_and_never_poisons() {
    let prog = parse_expr("par({a}:1, {b}:2, {c}:3)").unwrap();
    let bomb = FaultyMonitor::new(1, FaultMode::Panic);
    let err = eval_parallel(&prog, &bomb).unwrap_err();
    match &err {
        EvalError::MonitorAbort { reason, .. } => {
            assert!(reason.contains("panic"), "{reason}");
        }
        other => panic!("expected MonitorAbort, got {other:?}"),
    }
    // The scope was not poisoned: the same thread pool machinery runs
    // again, healthy.
    let (v, seen) = eval_parallel(&prog, &FaultyMonitor::new(0, FaultMode::Panic)).unwrap();
    assert_eq!(
        v,
        Value::list([Value::Int(1), Value::Int(2), Value::Int(3)])
    );
    assert_eq!(seen, 6, "two events per annotated element");
}

#[test]
fn quarantined_shard_degrades_and_the_answer_survives() {
    let prog = parse_expr("par({a}:1, {b}:2, {c}:3)").unwrap();
    let guarded =
        Guarded::new(FaultyMonitor::new(1, FaultMode::Panic)).policy(FaultPolicy::Quarantine);
    let (v, s) = eval_parallel(&prog, &guarded).unwrap();
    assert_eq!(
        v,
        Value::list([Value::Int(1), Value::Int(2), Value::Int(3)])
    );
    assert!(matches!(s.health, Health::Quarantined(_)), "{:?}", s.health);
}

#[test]
fn fatal_policy_shard_aborts_without_poisoning_the_scope() {
    let prog = parse_expr("par({a}:1, {b}:2, {c}:3)").unwrap();
    let guarded = Guarded::new(FaultyMonitor::new(1, FaultMode::Panic)).policy(FaultPolicy::Fatal);
    let err = eval_parallel(&prog, &guarded).unwrap_err();
    assert!(
        matches!(err, EvalError::MonitorAbort { .. }),
        "fatal policy propagates as MonitorAbort: {err:?}"
    );
}

#[test]
fn abort_verdict_in_a_shard_is_the_leftmost_error() {
    let prog = parse_expr("par({a}:1, {b}:2, {c}:3)").unwrap();
    // Shard-local counters (split = 0) mean every annotated shard's first
    // event fires the abort; the join must rank the leftmost shard first.
    let bomb = FaultyMonitor::new(1, FaultMode::Abort("boom".into()));
    let err = eval_parallel(&prog, &bomb).unwrap_err();
    assert_eq!(
        err,
        EvalError::MonitorAbort {
            monitor: "faulty".into(),
            reason: "boom".into(),
        }
    );
}
