//! Experiment E10 — Theorem 7.7 as property tests.
//!
//! For randomly generated programs with randomly sprinkled annotations,
//! under every toolbox monitor (and stacks of them), the monitored run's
//! answer must equal the standard run's answer — values *and* errors.

use monitoring_semantics::core::machine::EvalOptions;
use monitoring_semantics::monitor::compose::boxed;
use monitoring_semantics::monitor::soundness::{
    check_sigma_independence, check_soundness, SoundnessOutcome,
};
use monitoring_semantics::monitor::{IdentityMonitor, Monitor, MonitorStack};
use monitoring_semantics::monitors::collecting::Collecting;
use monitoring_semantics::monitors::coverage::Coverage;
use monitoring_semantics::monitors::demon::UnsortedDemon;
use monitoring_semantics::monitors::logger::EventLogger;
use monitoring_semantics::monitors::profiler::Profiler;
use monitoring_semantics::monitors::stepper::Stepper;
use monitoring_semantics::monitors::tracer::Tracer;
use monitoring_semantics::syntax::gen::{gen_program, sprinkle_annotations, GenConfig};
use monitoring_semantics::syntax::{Expr, Namespace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FUEL: u64 = 400_000;

fn generated(seed: u64, density_milli: u16) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let plain = gen_program(&mut rng, &GenConfig::default());
    sprinkle_annotations(
        &mut rng,
        &plain,
        &Namespace::anonymous(),
        f64::from(density_milli) / 1000.0,
    )
}

fn assert_sound<M: Monitor>(program: &Expr, monitor: &M) {
    let outcome = check_soundness(program, monitor, &EvalOptions::with_fuel(FUEL))
        .unwrap_or_else(|violation| panic!("{violation}"));
    // Inconclusive (fuel) is allowed; disagreement is not.
    let _ = matches!(outcome, SoundnessOutcome::Agreed(_));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn monitored_answers_equal_standard_answers(seed: u64, density in 0u16..=1000) {
        let program = generated(seed, density);
        assert_sound(&program, &IdentityMonitor);
        assert_sound(&program, &Profiler::new());
        assert_sound(&program, &Collecting::new());
        assert_sound(&program, &UnsortedDemon::new());
        assert_sound(&program, &Stepper::new());
        assert_sound(&program, &EventLogger::new());
        assert_sound(&program, &Coverage::new());
        // Tracer accepts only headers; the sprinkled labels exercise its
        // `accepts` rejection path.
        assert_sound(&program, &Tracer::new());
    }

    #[test]
    fn monitor_stacks_are_sound_too(seed: u64, density in 0u16..=600) {
        let program = generated(seed, density);
        // Label-shaped monitors need disjoint namespaces; here only the
        // profiler listens on the anonymous namespace, the rest listen on
        // namespaces the program never uses — the point is that a whole
        // stack still never changes the answer.
        let stack: MonitorStack = boxed(Profiler::new())
            & boxed(Collecting::in_namespace(Namespace::new("c")))
            & boxed(UnsortedDemon::new())
            & boxed(Tracer::in_namespace(Namespace::new("t")));
        assert_sound(&program, &stack);
    }

    #[test]
    fn answers_do_not_depend_on_the_initial_monitor_state(seed: u64) {
        let program = generated(seed, 300);
        check_sigma_independence(
            &program,
            &Profiler::new(),
            [
                Default::default(),
                monitoring_semantics::monitors::profiler::CounterEnv::init()
                    .inc(&monitoring_semantics::syntax::Ident::new("ghost")),
            ],
            &EvalOptions::with_fuel(FUEL),
        )
        .unwrap_or_else(|violation| panic!("{violation}"));
    }

    /// The oblivious-functional half of §7: the standard machine produces
    /// identical results on the annotated and erased programs.
    #[test]
    fn standard_semantics_is_oblivious_to_annotations(seed: u64, density in 0u16..=1000) {
        use monitoring_semantics::core::machine::eval_with;
        use monitoring_semantics::core::Env;
        let annotated = generated(seed, density);
        let erased = annotated.erase_annotations();
        let opts = EvalOptions::with_fuel(FUEL);
        let a = eval_with(&annotated, &Env::empty(), &opts);
        let b = eval_with(&erased, &Env::empty(), &opts);
        // Annotation skipping costs a transition, so fuel boundaries may
        // differ; everything else must agree.
        use monitoring_semantics::core::EvalError;
        if a != Err(EvalError::FuelExhausted) && b != Err(EvalError::FuelExhausted) {
            prop_assert_eq!(a, b);
        }
    }
}

/// E10 across language modules: Theorem 7.7 holds per module — the
/// monitored lazy/imperative machines agree with their unmonitored
/// counterparts on annotated programs.
mod per_module {
    use super::*;
    use monitoring_semantics::core::imperative::eval_imperative_with;
    use monitoring_semantics::core::lazy::eval_lazy_with;
    use monitoring_semantics::core::{Env, EvalError};
    use monitoring_semantics::monitor::imperative::eval_monitored_imperative_with;
    use monitoring_semantics::monitor::lazy::eval_monitored_lazy_with;
    use monitoring_semantics::monitors::profiler::Profiler;
    use monitoring_semantics::syntax::gen::gen_imperative_program;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn lazy_module_soundness(seed: u64, density in 0u16..=800) {
            let annotated = generated(seed, density);
            let erased = annotated.erase_annotations();
            let opts = EvalOptions::with_fuel(FUEL);
            let standard = eval_lazy_with(&erased, &Env::empty(), &opts);
            let monitored = eval_monitored_lazy_with(
                &annotated,
                &Env::empty(),
                &Profiler::new(),
                Default::default(),
                &opts,
            )
            .map(|(v, _)| v);
            let fuel = |r: &Result<_, EvalError>| matches!(r, Err(EvalError::FuelExhausted));
            if !fuel(&standard) && !fuel(&monitored) {
                prop_assert_eq!(standard, monitored);
            }
        }

        #[test]
        fn imperative_module_soundness(seed: u64, density in 0u16..=800) {
            let mut rng = StdRng::seed_from_u64(seed);
            let plain = gen_imperative_program(&mut rng, &Default::default());
            let annotated = sprinkle_annotations(
                &mut rng,
                &plain,
                &Namespace::anonymous(),
                f64::from(density) / 1000.0,
            );
            let erased = annotated.erase_annotations();
            let opts = EvalOptions::with_fuel(FUEL);
            let standard =
                eval_imperative_with(&erased, &Env::empty(), &opts).map(|(v, _)| v);
            let monitored = eval_monitored_imperative_with(
                &annotated,
                &Env::empty(),
                &Profiler::new(),
                Default::default(),
                &opts,
            )
            .map(|(v, _, _)| v);
            let fuel = |r: &Result<_, EvalError>| matches!(r, Err(EvalError::FuelExhausted));
            if !fuel(&standard) && !fuel(&monitored) {
                prop_assert_eq!(standard, monitored);
            }
        }
    }
}
