//! Guarded budgets under fork-join are **global** (PR 7): the budget
//! meters the whole monitored history through a fork-shared
//! [`BudgetLedger`], so a parallel run degrades exactly where the
//! sequential run would — shards can no longer jointly overdraw the
//! bound by each metering from the fork point. The historical behaviour
//! remains available behind the documented
//! [`Guarded::per_shard_budgets`] opt-in.

use monitoring_semantics::core::machine::EvalOptions;
use monitoring_semantics::core::Env;
use monitoring_semantics::monitor::machine::eval_monitored_with;
use monitoring_semantics::monitor::{
    eval_parallel, Budget, FaultPolicy, Guarded, Health, Monitor, ParOptions,
};
use monitoring_semantics::monitors::{FaultMode, FaultyMonitor};
use monitoring_semantics::syntax::parse_expr;

/// A benign counting monitor (the bomb never fires): two events per
/// annotated element, eight in total across the four shards.
fn counting() -> FaultyMonitor {
    FaultyMonitor::new(0, FaultMode::Panic)
}

fn steps(budget: u64) -> Budget {
    Budget {
        steps: Some(budget),
        wall: None,
    }
}

const PAR_PROG: &str = "par({a}:1, {b}:2, {c}:3, {d}:4)";

#[test]
fn shards_cannot_jointly_overdraw_the_step_budget() {
    // 8 events total, 2 per shard. A budget of 5 is exceeded globally
    // but never by any single shard relative to its fork point — under
    // the historical per-shard accounting this run stayed healthy.
    let prog = parse_expr(PAR_PROG).unwrap();
    let guarded = Guarded::new(counting())
        .policy(FaultPolicy::Quarantine)
        .budget(steps(5));
    let (_, gs) = eval_parallel(&prog, &guarded).unwrap();
    assert!(
        matches!(gs.health, Health::OverBudget(_)),
        "global accounting must trip the budget: {:?}",
        gs.health
    );
}

#[test]
fn per_shard_opt_in_restores_the_historical_accounting() {
    let prog = parse_expr(PAR_PROG).unwrap();
    let guarded = Guarded::new(counting())
        .policy(FaultPolicy::Quarantine)
        .budget(steps(5))
        .per_shard_budgets(true);
    let (_, gs) = eval_parallel(&prog, &guarded).unwrap();
    assert!(
        gs.health.is_ok(),
        "each shard sees only 2 of its own events: {:?}",
        gs.health
    );
    assert_eq!(gs.events, 8, "the join still sums the accounting");
}

#[test]
fn a_sufficient_budget_is_healthy_under_both_accountings() {
    let prog = parse_expr(PAR_PROG).unwrap();
    for per_shard in [false, true] {
        let guarded = Guarded::new(counting())
            .policy(FaultPolicy::Quarantine)
            .budget(steps(8))
            .per_shard_budgets(per_shard);
        let (_, gs) = eval_parallel(&prog, &guarded).unwrap();
        assert!(gs.health.is_ok(), "per_shard={per_shard}: {:?}", gs.health);
        assert_eq!(gs.events, 8);
    }
}

#[test]
fn parallel_budget_verdict_matches_sequential() {
    // The sequential machine charges linearly; with global accounting
    // the parallel machine reaches the same health verdict on both
    // sides of the bound.
    let prog = parse_expr(PAR_PROG).unwrap();
    for budget in [5u64, 8] {
        let guarded = Guarded::new(counting())
            .policy(FaultPolicy::Quarantine)
            .budget(steps(budget));
        let seq = eval_monitored_with(
            &prog,
            &Env::empty(),
            &guarded,
            guarded.initial_state(),
            &EvalOptions::default(),
        )
        .unwrap();
        let par = eval_parallel(&prog, &guarded).unwrap();
        assert_eq!(seq.0, par.0, "answers agree (budget {budget})");
        assert_eq!(
            seq.1.health.is_ok(),
            par.1.health.is_ok(),
            "health verdicts agree (budget {budget}): seq {:?} vs par {:?}",
            seq.1.health,
            par.1.health
        );
    }
}

#[test]
fn the_ledger_survives_nested_forks() {
    // Nested `par` forms reuse the ledger installed at the outermost
    // fork, so deeply forked histories still meter one global budget.
    let prog = parse_expr("par(par({a}:1, {b}:2), par({c}:3, {d}:4))").unwrap();
    let guarded = Guarded::new(counting())
        .policy(FaultPolicy::Quarantine)
        .budget(steps(5));
    let options = ParOptions {
        threads: 4,
        eval: EvalOptions::default(),
    };
    let (_, gs) = monitoring_semantics::monitor::eval_parallel_with(
        &prog,
        &Env::empty(),
        &guarded,
        guarded.initial_state(),
        &options,
    )
    .unwrap();
    assert!(
        matches!(gs.health, Health::OverBudget(_)),
        "8 events against a budget of 5: {:?}",
        gs.health
    );
}
