//! Tiered execution correctness: the profile-guided ladder in
//! [`TieredSession`] must be invisible — every run, whatever tier serves
//! it, produces exactly the level-1 (interpreted-monitor) answer and
//! final DFA state.
//!
//! Three differential properties on generated programs:
//!
//! 1. **Tier transparency** — repeated tiered runs (which climb from
//!    the profiling tier to compiled residuals once sites get hot)
//!    all agree with `eval_monitored`; programs containing `par` never
//!    leave the profiling tier.
//! 2. **Demotion safety** — forcing promotion to a full-region residual
//!    and then demoting mid-session preserves the DFA state exactly
//!    across the tier changes, in both directions.
//! 3. **Laziness** — a session whose sites never cross the threshold
//!    compiles nothing, observable through [`TieredSession::stats`].

use monitoring_semantics::core::machine::EvalOptions;
use monitoring_semantics::core::{Env, EvalError, Value};
use monitoring_semantics::monitor::machine::eval_monitored_with;
use monitoring_semantics::monitor::{Monitor, TierPolicy};
use monitoring_semantics::pe::{TierOutcome, TieredSession};
use monitoring_semantics::syntax::gen::{gen_program, sprinkle_annotations, GenConfig};
use monitoring_semantics::syntax::{Expr, Namespace};
use monitoring_semantics::tspec::{SpecMonitor, SpecState};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FUEL: u64 = 800_000;

fn neg_spec() -> SpecMonitor {
    SpecMonitor::new("no-negatives", "never(post(_) and value < 0)")
        .unwrap()
        .in_namespace(Namespace::new("ns"))
}

fn annotated_program(seed: u64, density: u16, par_chance: f64) -> Expr {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = GenConfig {
        par_chance,
        ..GenConfig::default()
    };
    let plain = gen_program(&mut rng, &config);
    sprinkle_annotations(
        &mut rng,
        &plain,
        &Namespace::new("ns"),
        f64::from(density) / 1000.0,
    )
}

/// The level-1 reference: interpreted monitor on the strict machine.
fn level1(program: &Expr, m: &SpecMonitor) -> Result<(Value, SpecState), EvalError> {
    eval_monitored_with(
        program,
        &Env::empty(),
        m,
        m.initial_state(),
        &EvalOptions::with_fuel(FUEL),
    )
}

fn fuel_exhausted(e: &EvalError) -> bool {
    matches!(e, EvalError::FuelExhausted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every tiered run equals level 1, across the promotion boundary:
    /// with `hot_threshold(1)` the second run of any program that fires
    /// a hook is served by a compiled residual (unless it contains
    /// `par`, which must stay on the profiling tier).
    #[test]
    fn tiered_runs_match_level_1(seed: u64, density in 100u16..=1000) {
        let program = annotated_program(seed, density, 0.15);
        let m = neg_spec();
        let reference = level1(&program, &m);
        let mut session = match TieredSession::new(&program, m) {
            Ok(s) => s
                .policy(TierPolicy::default().hot_threshold(1).demote_after(1))
                .options(EvalOptions::with_fuel(FUEL)),
            // The engine declines imperative constructs; gen_program
            // emits none, but be explicit rather than assume.
            Err(e) => return Err(TestCaseError::fail(format!("compile: {e}"))),
        };
        let has_par = {
            let mut found = false;
            monitoring_semantics::syntax::points::visit(&program, |_, n| {
                if matches!(n, Expr::Par(_)) { found = true; }
            });
            found
        };
        for round in 0..4 {
            match (&reference, session.run()) {
                (Ok((value, state)), Ok(run)) => {
                    prop_assert_eq!(&run.value, value, "round {} answer", round);
                    prop_assert_eq!(run.state, state.state, "round {} state", round);
                }
                (Err(e), Err(f)) => {
                    prop_assert_eq!(e.to_string(), f.to_string());
                }
                // The residual evaluates monitor transitions as program
                // steps, so fuel accounting may differ across tiers —
                // a fuel verdict on either side is inconclusive.
                (Ok(_), Err(f)) if fuel_exhausted(&f) => return Ok(()),
                (Err(e), Ok(_)) if fuel_exhausted(e) => return Ok(()),
                (r, t) => {
                    return Err(TestCaseError::fail(format!(
                        "round {round}: reference {r:?} vs tiered {t:?}"
                    )));
                }
            }
        }
        if has_par {
            prop_assert_eq!(
                session.stats().residuals_compiled, 0,
                "par programs must stay on the profiling tier"
            );
            prop_assert_eq!(session.stats().interpreted_runs, 4);
        }
    }

    /// Forcing a promotion and a demotion mid-session never perturbs
    /// the DFA state: profiled → residual → profiled all end where
    /// level 1 ends.
    #[test]
    fn forced_demotion_preserves_the_dfa_state(seed: u64, density in 100u16..=1000) {
        let program = annotated_program(seed, density, 0.0);
        let m = neg_spec();
        let region = m.automaton().reachable();
        let (_, reference) = match level1(&program, &m) {
            Ok(r) => r,
            Err(e) if fuel_exhausted(&e) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("level 1: {e}"))),
        };
        let mut session = TieredSession::new(&program, m)
            .map_err(|e| TestCaseError::fail(format!("compile: {e}")))?
            .options(EvalOptions::with_fuel(FUEL));
        let before = session.run().unwrap();
        prop_assert_eq!(before.outcome, TierOutcome::Profiled);
        prop_assert_eq!(before.state, reference.state);
        // The region covers every reachable state, so the residual can
        // never escape: the run is served compiled, end to end.
        prop_assert!(session.promote_with_region(&region));
        let residual = session.run().unwrap();
        prop_assert_eq!(residual.outcome, TierOutcome::Residual);
        prop_assert_eq!(residual.state, reference.state);
        session.demote();
        let after = session.run().unwrap();
        prop_assert_eq!(after.outcome, TierOutcome::Profiled);
        prop_assert_eq!(after.state, reference.state);
        prop_assert_eq!(session.stats().demotions, 1);
        prop_assert_eq!(session.stats().guard_failures, 0);
    }
}

/// Promotion is observably lazy: a program whose only site stays under
/// the threshold never triggers compilation.
#[test]
fn cold_sites_compile_no_residuals() {
    let program = monitoring_semantics::syntax::parse_expr("let x = {ns/L0}:21 in x + x").unwrap();
    let mut session = TieredSession::new(&program, neg_spec()).unwrap();
    for _ in 0..8 {
        // 8 runs × 1 event stays under the default threshold of 32.
        let run = session.run().unwrap();
        assert_eq!(run.outcome, TierOutcome::Profiled);
        assert_eq!(run.value, Value::Int(42));
    }
    assert_eq!(session.stats().residuals_compiled, 0, "compilation is lazy");
    assert_eq!(session.stats().promotions, 0);
    assert_eq!(session.stats().profiled_events, 8);
    assert!(session.active_region().is_none());
}
